//! Fragment program interpreter.
//!
//! Executes one [`Program`] per fragment over a SIMD4 register file, exactly
//! as the fragment processors of the modelled GPUs would: no control flow,
//! one instruction per cycle, texture units resolved through the bound
//! samplers. Work counts (instructions, texel fetches, cache hits/misses)
//! are returned with the result so passes can be costed.

use crate::isa::{
    Opcode, Program, Reg, Swizzle, NUM_CONSTS, NUM_OUTPUTS, NUM_TEMPS, NUM_TEXCOORDS,
};
use crate::texcache::TextureCache;
use crate::texture::Texture2D;

/// Per-fragment inputs.
#[derive(Debug, Clone)]
pub struct FragmentInput {
    /// Interpolated texture-coordinate sets (`T0..T7`); `[u, v, 0, 1]`.
    pub texcoords: [[f32; 4]; NUM_TEXCOORDS],
}

impl FragmentInput {
    /// All coordinate sets zero.
    pub fn zero() -> Self {
        Self {
            texcoords: [[0.0, 0.0, 0.0, 1.0]; NUM_TEXCOORDS],
        }
    }
}

/// Per-fragment outputs and work counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentOutput {
    /// Output colors `O0..O3` (`O0` = `OC`).
    pub colors: [[f32; 4]; NUM_OUTPUTS],
    /// Instructions executed.
    pub instructions: u64,
    /// Texel fetches issued.
    pub texel_fetches: u64,
}

/// Smallest positive f32, used to clamp `LG2` inputs (see module docs of
/// [`crate::isa`]).
const LG2_TINY: f32 = f32::MIN_POSITIVE;

#[inline(always)]
fn lanewise1(op: impl Fn(f32) -> f32, a: [f32; 4]) -> [f32; 4] {
    [op(a[0]), op(a[1]), op(a[2]), op(a[3])]
}

#[inline(always)]
fn lanewise2(op: impl Fn(f32, f32) -> f32, a: [f32; 4], b: [f32; 4]) -> [f32; 4] {
    [
        op(a[0], b[0]),
        op(a[1], b[1]),
        op(a[2], b[2]),
        op(a[3], b[3]),
    ]
}

/// The arithmetic core shared by [`execute`] and [`execute_lowered`]: both
/// executors funnel every non-`TEX` opcode through this one match so their
/// float operations are the same code and results stay bit-identical.
#[inline(always)]
pub(crate) fn alu(op: Opcode, s: impl Fn(usize) -> [f32; 4]) -> [f32; 4] {
    match op {
        Opcode::Mov => s(0),
        Opcode::Add => lanewise2(|a, b| a + b, s(0), s(1)),
        Opcode::Sub => lanewise2(|a, b| a - b, s(0), s(1)),
        Opcode::Mul => lanewise2(|a, b| a * b, s(0), s(1)),
        Opcode::Mad => {
            let (a, b, c) = (s(0), s(1), s(2));
            [
                a[0] * b[0] + c[0],
                a[1] * b[1] + c[1],
                a[2] * b[2] + c[2],
                a[3] * b[3] + c[3],
            ]
        }
        Opcode::Min => lanewise2(f32::min, s(0), s(1)),
        Opcode::Max => lanewise2(f32::max, s(0), s(1)),
        Opcode::Rcp => lanewise1(|a| 1.0 / a, s(0)),
        Opcode::Rsq => lanewise1(|a| 1.0 / a.sqrt(), s(0)),
        Opcode::Ex2 => lanewise1(f32::exp2, s(0)),
        Opcode::Lg2 => lanewise1(|a| a.max(LG2_TINY).log2(), s(0)),
        Opcode::Frc => lanewise1(|a| a - a.floor(), s(0)),
        Opcode::Flr => lanewise1(f32::floor, s(0)),
        Opcode::Abs => lanewise1(f32::abs, s(0)),
        Opcode::Slt => lanewise2(|a, b| if a < b { 1.0 } else { 0.0 }, s(0), s(1)),
        Opcode::Sge => lanewise2(|a, b| if a >= b { 1.0 } else { 0.0 }, s(0), s(1)),
        Opcode::Cmp => {
            let (c, a, b) = (s(0), s(1), s(2));
            [
                if c[0] < 0.0 { a[0] } else { b[0] },
                if c[1] < 0.0 { a[1] } else { b[1] },
                if c[2] < 0.0 { a[2] } else { b[2] },
                if c[3] < 0.0 { a[3] } else { b[3] },
            ]
        }
        Opcode::Lrp => {
            let (t, a, b) = (s(0), s(1), s(2));
            [
                t[0] * a[0] + (1.0 - t[0]) * b[0],
                t[1] * a[1] + (1.0 - t[1]) * b[1],
                t[2] * a[2] + (1.0 - t[2]) * b[2],
                t[3] * a[3] + (1.0 - t[3]) * b[3],
            ]
        }
        Opcode::Dp3 => {
            let (a, b) = (s(0), s(1));
            let d = a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
            [d; 4]
        }
        Opcode::Dp4 => {
            let (a, b) = (s(0), s(1));
            let d = a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
            [d; 4]
        }
        Opcode::Tex => unreachable!("TEX handled by the executors"),
    }
}

/// The texture path shared by both executors: counts the fetch, tags the
/// cache with the texel the sampler actually touches, and samples.
#[inline(always)]
fn tex_fetch(
    tex: &Texture2D,
    sampler: usize,
    coord: [f32; 4],
    cache: &mut Option<&mut TextureCache>,
    texel_fetches: &mut u64,
) -> [f32; 4] {
    *texel_fetches += 1;
    if let Some(cache) = cache.as_deref_mut() {
        // Tag the cache with the texel the sampler actually touches under
        // its address mode; a border fetch that resolves to no texel
        // generates no cache traffic.
        let x = (coord[0] * tex.width() as f32).floor() as i64;
        let y = (coord[1] * tex.height() as f32).floor() as i64;
        if let Some((cx, cy)) = tex.resolve_coords(x, y) {
            cache.access(sampler as u32, cx, cy);
        }
    }
    tex.sample(coord[0], coord[1])
}

/// Masked, optionally saturating write-back shared by both executors.
#[inline(always)]
fn write_back(target: &mut [f32; 4], value: [f32; 4], mask_bits: u8, saturate: bool) {
    let value = if saturate {
        lanewise1(|a| a.clamp(0.0, 1.0), value)
    } else {
        value
    };
    for lane in 0..4 {
        if mask_bits & (1 << lane) != 0 {
            target[lane] = value[lane];
        }
    }
}

/// Execute `program` for one fragment.
///
/// `constants` are the pass-level constant registers (with `DEF`s already
/// applied — see [`resolve_constants`]); `textures` are the bound samplers.
/// `cache` optionally models the per-pipe texture cache.
pub fn execute(
    program: &Program,
    input: &FragmentInput,
    constants: &[[f32; 4]; NUM_CONSTS],
    textures: &[&Texture2D],
    mut cache: Option<&mut TextureCache>,
) -> FragmentOutput {
    let mut temps = [[0.0f32; 4]; NUM_TEMPS];
    let mut outputs = [[0.0f32; 4]; NUM_OUTPUTS];
    let mut instructions = 0u64;
    let mut texel_fetches = 0u64;

    for instr in &program.instrs {
        instructions += 1;
        let s = |i: usize| -> [f32; 4] {
            let src = &instr.srcs[i];
            let raw = match src.reg {
                Reg::Temp(r) => temps[r as usize],
                Reg::Const(c) => constants[c as usize],
                Reg::TexCoord(t) => input.texcoords[t as usize],
                Reg::Output(o) => outputs[o as usize],
            };
            let mut v = src.swizzle.apply(raw);
            if src.negate {
                v = [-v[0], -v[1], -v[2], -v[3]];
            }
            v
        };

        let value: [f32; 4] = if instr.op == Opcode::Tex {
            let sampler = instr.sampler.expect("TEX carries a sampler") as usize;
            tex_fetch(
                textures[sampler],
                sampler,
                s(0),
                &mut cache,
                &mut texel_fetches,
            )
        } else {
            alu(instr.op, s)
        };

        let target: &mut [f32; 4] = match instr.dst.reg {
            Reg::Temp(r) => &mut temps[r as usize],
            Reg::Output(o) => &mut outputs[o as usize],
            _ => unreachable!("assembler rejects non-writable destinations"),
        };
        write_back(target, value, instr.dst.mask_bits(), instr.dst.saturate);
    }

    FragmentOutput {
        colors: outputs,
        instructions,
        texel_fetches,
    }
}

/// A source operand pre-resolved at lower time: constants are folded to
/// immediates (swizzle and negation already applied), everything else keeps
/// its register index plus decoded swizzle/negate.
#[derive(Debug, Clone, Copy)]
enum LoweredSrc {
    /// Folded constant operand.
    Imm([f32; 4]),
    /// Temporary register read.
    Temp(u8, Swizzle, bool),
    /// Interpolated texture coordinate read.
    Coord(u8, Swizzle, bool),
    /// Output register read.
    Out(u8, Swizzle, bool),
}

#[inline(always)]
pub(crate) fn swizzle_negate(sw: Swizzle, negate: bool, raw: [f32; 4]) -> [f32; 4] {
    let v = sw.apply(raw);
    if negate {
        [-v[0], -v[1], -v[2], -v[3]]
    } else {
        v
    }
}

impl LoweredSrc {
    #[inline(always)]
    fn read(
        &self,
        temps: &[[f32; 4]; NUM_TEMPS],
        outputs: &[[f32; 4]; NUM_OUTPUTS],
        texcoords: &[[f32; 4]; NUM_TEXCOORDS],
    ) -> [f32; 4] {
        match *self {
            LoweredSrc::Imm(v) => v,
            LoweredSrc::Temp(r, sw, neg) => swizzle_negate(sw, neg, temps[r as usize]),
            LoweredSrc::Coord(t, sw, neg) => swizzle_negate(sw, neg, texcoords[t as usize]),
            LoweredSrc::Out(o, sw, neg) => swizzle_negate(sw, neg, outputs[o as usize]),
        }
    }
}

/// Pre-decoded destination: which register file, which index.
#[derive(Debug, Clone, Copy)]
enum LoweredDst {
    /// Temporary register.
    Temp(u8),
    /// Output register.
    Out(u8),
}

/// One pre-decoded instruction of a [`LoweredProgram`].
#[derive(Debug, Clone, Copy)]
struct LoweredInstr {
    op: Opcode,
    /// `op.arity()` live operands; the rest are zero immediates.
    srcs: [LoweredSrc; 3],
    dst: LoweredDst,
    mask_bits: u8,
    saturate: bool,
    sampler: u8,
}

/// A fragment program lowered for repeated execution: operand registers,
/// swizzles, and write masks are decoded once, and constant operands are
/// folded to immediates against a resolved constant block. Produced by
/// [`lower`], executed by [`execute_lowered`], and cached per
/// (program, constants) on `Gpu`.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    instrs: Vec<LoweredInstr>,
    tex_count: u64,
}

impl LoweredProgram {
    /// Instructions executed per fragment.
    pub fn instruction_count(&self) -> u64 {
        self.instrs.len() as u64
    }

    /// Texel fetches issued per fragment.
    pub fn tex_count(&self) -> u64 {
        self.tex_count
    }
}

/// Lower `program` against a resolved constant block (see
/// [`resolve_constants`]). Constant folding applies the same
/// swizzle-then-negate float ops the interpreter would, so lowered
/// execution is bit-identical to [`execute`].
pub fn lower(program: &Program, constants: &[[f32; 4]; NUM_CONSTS]) -> LoweredProgram {
    let mut instrs = Vec::with_capacity(program.instrs.len());
    let mut tex_count = 0u64;
    for instr in &program.instrs {
        let mut srcs = [LoweredSrc::Imm([0.0; 4]); 3];
        for (slot, src) in srcs.iter_mut().zip(&instr.srcs) {
            *slot = match src.reg {
                Reg::Const(c) => {
                    // Constant folding is owned by the optimizer's lattice
                    // helper so there is exactly one definition of
                    // "swizzle, then negate, a resolved constant".
                    LoweredSrc::Imm(crate::opt::fold_const_src(src, constants[c as usize]))
                }
                Reg::Temp(r) => LoweredSrc::Temp(r, src.swizzle, src.negate),
                Reg::TexCoord(t) => LoweredSrc::Coord(t, src.swizzle, src.negate),
                Reg::Output(o) => LoweredSrc::Out(o, src.swizzle, src.negate),
            };
        }
        if instr.op == Opcode::Tex {
            tex_count += 1;
        }
        instrs.push(LoweredInstr {
            op: instr.op,
            srcs,
            dst: match instr.dst.reg {
                Reg::Temp(r) => LoweredDst::Temp(r),
                Reg::Output(o) => LoweredDst::Out(o),
                _ => unreachable!("assembler rejects non-writable destinations"),
            },
            mask_bits: instr.dst.mask_bits(),
            saturate: instr.dst.saturate,
            sampler: instr.sampler.unwrap_or(0),
        });
    }
    LoweredProgram { instrs, tex_count }
}

/// Execute a [`LoweredProgram`] for one fragment. Constants were folded at
/// lower time, so only textures and the optional cache model are needed.
/// Results (colors and work counts) are bit-identical to [`execute`] on the
/// same program, constants, and fragment input.
pub fn execute_lowered(
    program: &LoweredProgram,
    input: &FragmentInput,
    textures: &[&Texture2D],
    mut cache: Option<&mut TextureCache>,
) -> FragmentOutput {
    let mut temps = [[0.0f32; 4]; NUM_TEMPS];
    let mut outputs = [[0.0f32; 4]; NUM_OUTPUTS];
    let mut texel_fetches = 0u64;

    for instr in &program.instrs {
        let s = |i: usize| instr.srcs[i].read(&temps, &outputs, &input.texcoords);
        let value: [f32; 4] = if instr.op == Opcode::Tex {
            let sampler = instr.sampler as usize;
            tex_fetch(
                textures[sampler],
                sampler,
                s(0),
                &mut cache,
                &mut texel_fetches,
            )
        } else {
            alu(instr.op, s)
        };
        let target: &mut [f32; 4] = match instr.dst {
            LoweredDst::Temp(r) => &mut temps[r as usize],
            LoweredDst::Out(o) => &mut outputs[o as usize],
        };
        write_back(target, value, instr.mask_bits, instr.saturate);
    }

    FragmentOutput {
        colors: outputs,
        instructions: program.instrs.len() as u64,
        texel_fetches,
    }
}

/// Merge a program's `DEF` constants into a pass-level constant block.
pub fn resolve_constants(
    program: &Program,
    pass_constants: &[(u8, [f32; 4])],
) -> [[f32; 4]; NUM_CONSTS] {
    let mut c = [[0.0f32; 4]; NUM_CONSTS];
    for d in &program.defs {
        c[d.index as usize] = d.value;
    }
    for &(idx, v) in pass_constants {
        c[idx as usize] = v;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str, textures: &[&Texture2D]) -> FragmentOutput {
        let p = assemble(src).unwrap();
        let constants = resolve_constants(&p, &[]);
        execute(&p, &FragmentInput::zero(), &constants, textures, None)
    }

    fn run_with_input(src: &str, input: &FragmentInput, textures: &[&Texture2D]) -> FragmentOutput {
        let p = assemble(src).unwrap();
        let constants = resolve_constants(&p, &[]);
        execute(&p, input, &constants, textures, None)
    }

    #[test]
    fn arithmetic_opcodes() {
        let out = run(
            "DEF C0, 1, 2, 3, 4\nDEF C1, 10, 20, 30, 40\n\
             ADD R0, C0, C1\nSUB R1, C1, C0\nMUL R2, C0, C0\nMAD R3, C0, C1, C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2\nMOV O3, R3",
            &[],
        );
        assert_eq!(out.colors[0], [11.0, 22.0, 33.0, 44.0]);
        assert_eq!(out.colors[1], [9.0, 18.0, 27.0, 36.0]);
        assert_eq!(out.colors[2], [1.0, 4.0, 9.0, 16.0]);
        assert_eq!(out.colors[3], [11.0, 42.0, 93.0, 164.0]);
        assert_eq!(out.instructions, 8);
        assert_eq!(out.texel_fetches, 0);
    }

    #[test]
    fn transcendental_opcodes() {
        let out = run(
            "DEF C0, 2, 4, 8, 1\nRCP R0, C0\nRSQ R1, C0\nLG2 R2, C0\nEX2 R3, C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2\nMOV O3, R3",
            &[],
        );
        assert_eq!(out.colors[0], [0.5, 0.25, 0.125, 1.0]);
        assert!((out.colors[1][0] - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(out.colors[2], [1.0, 2.0, 3.0, 0.0]);
        assert_eq!(out.colors[3], [4.0, 16.0, 256.0, 2.0]);
    }

    #[test]
    fn lg2_clamps_non_positive() {
        let out = run("DEF C0, 0, -1, 1, 2\nLG2 R0, C0\nMOV OC, R0", &[]);
        assert!(out.colors[0][0].is_finite());
        assert!(out.colors[0][1].is_finite());
        assert_eq!(out.colors[0][2], 0.0);
        assert_eq!(out.colors[0][3], 1.0);
    }

    #[test]
    fn comparison_and_select_opcodes() {
        let out = run(
            "DEF C0, 1, 5, 3, 3\nDEF C1, 2, 2, 3, 4\n\
             SLT R0, C0, C1\nSGE R1, C0, C1\n\
             DEF C2, -1, 1, -0.5, 0\nCMP R2, C2, C0, C1\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2",
            &[],
        );
        assert_eq!(out.colors[0], [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(out.colors[1], [0.0, 1.0, 1.0, 0.0]);
        assert_eq!(out.colors[2], [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn misc_opcodes() {
        let out = run(
            "DEF C0, 1.75, -1.25, 2, -2\n\
             FRC R0, C0\nFLR R1, C0\nABS R2, C0\n\
             MIN R3, C0, -C0\nMAX R4, C0, -C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2\nMOV O3, R3\nMOV R5, R4",
            &[],
        );
        assert_eq!(out.colors[0], [0.75, 0.75, 0.0, 0.0]);
        assert_eq!(out.colors[1], [1.0, -2.0, 2.0, -2.0]);
        assert_eq!(out.colors[2], [1.75, 1.25, 2.0, 2.0]);
        assert_eq!(out.colors[3], [-1.75, -1.25, -2.0, -2.0]);
    }

    #[test]
    fn dot_products_broadcast() {
        let out = run(
            "DEF C0, 1, 2, 3, 4\nDEF C1, 1, 1, 1, 1\nDP3 R0, C0, C1\nDP4 R1, C0, C1\n\
             MOV OC, R0\nMOV O1, R1",
            &[],
        );
        assert_eq!(out.colors[0], [6.0; 4]);
        assert_eq!(out.colors[1], [10.0; 4]);
    }

    #[test]
    fn lrp_interpolates() {
        let out = run(
            "DEF C0, 0, 1, 0.5, 0.25\nDEF C1, 10, 10, 10, 10\nDEF C2, 20, 20, 20, 20\n\
             LRP R0, C0, C1, C2\nMOV OC, R0",
            &[],
        );
        assert_eq!(out.colors[0], [20.0, 10.0, 15.0, 17.5]);
    }

    #[test]
    fn swizzle_negate_mask_saturate() {
        let out = run(
            "DEF C0, 1, 2, 3, 4\nMOV R0, C0.wzyx\nMOV R1.xz, C0\nMOV_SAT R2, -C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2",
            &[],
        );
        assert_eq!(out.colors[0], [4.0, 3.0, 2.0, 1.0]);
        assert_eq!(out.colors[1], [1.0, 0.0, 3.0, 0.0]);
        assert_eq!(out.colors[2], [0.0; 4]); // negatives saturate to 0
    }

    #[test]
    fn texture_sampling_uses_texcoords_and_counts_fetches() {
        let mut tex = Texture2D::new(2, 2);
        tex.set_texel(0, 0, [1.0, 0.0, 0.0, 1.0]);
        tex.set_texel(1, 1, [0.0, 1.0, 0.0, 1.0]);
        let mut input = FragmentInput::zero();
        input.texcoords[0] = [0.25, 0.25, 0.0, 1.0]; // texel (0,0)
        input.texcoords[1] = [0.75, 0.75, 0.0, 1.0]; // texel (1,1)
        let out = run_with_input(
            "TEX R0, T0, tex0\nTEX R1, T1, tex0\nADD OC, R0, R1",
            &input,
            &[&tex],
        );
        assert_eq!(out.colors[0], [1.0, 1.0, 0.0, 2.0]);
        assert_eq!(out.texel_fetches, 2);
        assert_eq!(out.instructions, 3);
    }

    #[test]
    fn dependent_texture_read() {
        // Compute a coordinate in the shader, then sample with it.
        let mut lut = Texture2D::new(2, 1);
        lut.set_texel(0, 0, [11.0; 4]);
        lut.set_texel(1, 0, [22.0; 4]);
        let out = run(
            "DEF C0, 0.75, 0.5, 0, 0\nMOV R0, C0\nTEX R1, R0, tex0\nMOV OC, R1",
            &[&lut],
        );
        assert_eq!(out.colors[0], [22.0; 4]);
    }

    #[test]
    fn cache_is_consulted_per_fetch() {
        let tex = Texture2D::new(4, 4);
        let p = assemble("TEX R0, T0, tex0\nTEX R1, T0, tex0\nMOV OC, R0").unwrap();
        let constants = resolve_constants(&p, &[]);
        let mut cache = TextureCache::new(16, 2);
        let input = FragmentInput::zero();
        execute(&p, &input, &constants, &[&tex], Some(&mut cache));
        assert_eq!(cache.hits() + cache.misses(), 2);
        assert_eq!(cache.hits(), 1); // second fetch hits the same block
    }

    #[test]
    fn lowered_execution_matches_interpreter() {
        let mut tex = Texture2D::new(2, 2);
        tex.set_texel(0, 0, [0.25, 0.5, 0.75, 1.0]);
        tex.set_texel(1, 1, [0.1, 0.2, 0.3, 0.4]);
        let p = assemble(
            "DEF C0, 1.5, -2, 0.25, 4\n\
             TEX R0, T0, tex0\nMAD R1.xz, R0, C0.wzyx, -C0\nLRP R2, C0.x, R0, R1\n\
             RSQ R3, C0.w\nMOV_SAT OC, R2\nDP4 O1, R1, C0\nMOV O2, R3",
        )
        .unwrap();
        let constants = resolve_constants(&p, &[(1, [0.5, 0.5, 0.0, 1.0])]);
        let lowered = lower(&p, &constants);
        assert_eq!(lowered.instruction_count(), p.len() as u64);
        assert_eq!(lowered.tex_count(), p.tex_count() as u64);
        let mut input = FragmentInput::zero();
        input.texcoords[0] = [0.6, 0.7, 0.0, 1.0];
        let a = execute(&p, &input, &constants, &[&tex], None);
        let b = execute_lowered(&lowered, &input, &[&tex], None);
        assert_eq!(a, b);
    }

    #[test]
    fn lowered_cache_traffic_matches_interpreter() {
        let tex = Texture2D::new(4, 4);
        let p = assemble("TEX R0, T0, tex0\nTEX R1, T0, tex0\nMOV OC, R0").unwrap();
        let constants = resolve_constants(&p, &[]);
        let lowered = lower(&p, &constants);
        let input = FragmentInput::zero();
        let mut ca = TextureCache::new(16, 2);
        let mut cb = TextureCache::new(16, 2);
        execute(&p, &input, &constants, &[&tex], Some(&mut ca));
        execute_lowered(&lowered, &input, &[&tex], Some(&mut cb));
        assert_eq!((ca.hits(), ca.misses()), (cb.hits(), cb.misses()));
    }

    #[test]
    fn pass_constants_override_defs() {
        let p = assemble("DEF C0, 1, 1, 1, 1\nMOV OC, C0").unwrap();
        let constants = resolve_constants(&p, &[(0, [9.0, 8.0, 7.0, 6.0])]);
        let out = execute(&p, &FragmentInput::zero(), &constants, &[], None);
        assert_eq!(out.colors[0], [9.0, 8.0, 7.0, 6.0]);
    }
}
