//! Machine-readable benchmark results (`BENCH_results.json`).
//!
//! `tables -- bench [path]` runs the AMC pipeline end to end on the reduced
//! synthetic Indian Pines scene, wall-clocks each phase, and writes a JSON
//! record: host wall-clock seconds for scene generation, the GPU stream
//! pipeline and the CPU classification tail, the six-stage counter,
//! wall-clock and modeled-time breakdown, device cache hit-rates, and a
//! snapshot of the [`trace::metrics`] registry. The JSON is hand-rolled
//! (the workspace carries no serde); keys are stable so successive
//! baselines diff cleanly.
//!
//! The document carries a `schema_version` and [`from_json`] refuses any
//! other version, so downstream consumers (the CI bench-smoke comparison)
//! fail loudly on schema drift instead of silently reading defaults.
//! [`from_json`] ∘ [`to_json`] is the identity on the serialized form:
//! derived fields (modeled milliseconds, skew ratios, hit-rates, the
//! optimizer rollup) are recomputed from the parsed inputs, and every
//! input field round-trips bit-stably (times at fixed 6-decimal
//! precision, counters as exact integers — the parser goes through
//! `f64`, exact up to 2⁵³, far above any counter this workload produces).
//!
//! Since schema 3 the document also carries an `opt` block: the
//! [`opt_rollup`] of the shader optimizer over the six AMC kernels
//! (per-kernel raw vs optimized instruction counts, dynamically shaded
//! instruction totals, eliminated-op counters, modeled-ms deltas) plus a
//! small measured ISA-mode A/B microbench (`GPU_SIM_OPT=0` vs default).
//!
//! Since schema 5 it carries a `fusion` block: the render-graph compiler's
//! pass-fusion attribution (committed producer→consumer inlines aggregated
//! per kernel pair, eliminated passes, static normalize+distance texel
//! fetches per fragment fused vs unfused) plus a measured unfused-oracle
//! arm (`GPU_SIM_FUSE=0` equivalent) whose stage counters anchor the
//! ≥ 30% fetch-reduction gate CI enforces.
//!
//! Since schema 6 it carries a `fleet` block: the multi-device sharding
//! scaling curve ([`amc_core::fleet::DeviceFleet`]) over a fixed set of
//! fleet shapes (always 1× and 2× GeForce 7800 GTX, plus any `--devices`
//! shape), with per-device rows recording the placement model's initial
//! assignment vs the chunks actually executed, steal counts, and modeled
//! vs measured seconds. The modeled 2×7800GTX speedup over the single
//! device anchors the ≥ 1.8× scaling gate CI enforces. The fleet arms run
//! the closure kernel path — counters are identical to the ISA path by
//! construction and the speedup is modeled, so the cheaper simulation
//! changes nothing it reports.

use amc_core::fleet::DeviceFleet;
use amc_core::graph::CompiledGraph;
use amc_core::kernels;
use amc_core::pipeline::{GpuAmc, KernelMode, PipelineOutput, StageStats, StageWall};
use gpu_sim::counters::PassStats;
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use gpu_sim::opt::InlineMode;
use gpu_sim::opt::OptCounters;
use gpu_sim::raster::TexCoordSet;
use gpu_sim::timing;
use hsi::classify::{AmcClassifier, AmcConfig, TailBreakdown};
use hsi_scene::library::indian_pines_classes;
use hsi_scene::scene::{generate, SceneConfig};
use std::fmt::Write as _;
use std::time::Instant;
use trace::metrics::{HistBucket, HistSummary, Snapshot};

/// Version of the `BENCH_results.json` document layout. Bump when keys are
/// added, removed or change meaning; [`from_json`] rejects mismatches.
/// Version 3 added the `opt` block (optimizer rollup + ISA microbench).
/// Version 4 added `kernel_mode` (the headline bench now runs the ISA
/// path) and made `wall_over_modeled` `null` when the modeled time is zero
/// instead of a misleading `0.0`.
/// Version 5 added the `fusion` block (render-graph pass-fusion
/// attribution and the measured unfused-oracle arm).
/// Version 6 added the `fleet` block (multi-device scaling shapes with
/// per-device placement, steal and timing rows).
/// Version 7 added the `analysis` block (the in-process trace analyzer's
/// per-arm critical-path, utilization and overlap summaries) and exported
/// histogram bucket boundaries in the `metrics` block.
pub const SCHEMA_VERSION: u64 = 7;

/// Device-cache effectiveness counters read off the [`Gpu`] after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuCacheCounters {
    /// Full dataflow verifications executed (verification-cache misses).
    pub verify_runs: u64,
    /// Passes whose verification came from the cache.
    pub verify_cache_hits: u64,
    /// Program lowerings executed (lowering-cache misses).
    pub lower_runs: u64,
    /// ISA passes whose lowering came from the cache.
    pub lower_cache_hits: u64,
    /// Texture allocations served from the release pool.
    pub pool_hits: u64,
    /// Real texture allocations performed.
    pub texture_allocs: u64,
}

impl GpuCacheCounters {
    /// Read the counters from a device.
    pub fn from_gpu(gpu: &Gpu) -> Self {
        Self {
            verify_runs: gpu.verifications(),
            verify_cache_hits: gpu.verify_cache_hits(),
            lower_runs: gpu.lowerings(),
            lower_cache_hits: gpu.lower_cache_hits(),
            pool_hits: gpu.pool_hits(),
            texture_allocs: gpu.texture_allocs(),
        }
    }

    fn rate(hits: u64, misses: u64) -> f64 {
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Verification-cache hit rate in `[0, 1]`.
    pub fn verify_hit_rate(&self) -> f64 {
        Self::rate(self.verify_cache_hits, self.verify_runs)
    }

    /// Lowering-cache hit rate in `[0, 1]`.
    pub fn lower_hit_rate(&self) -> f64 {
        Self::rate(self.lower_cache_hits, self.lower_runs)
    }

    /// Texture-pool hit rate in `[0, 1]`.
    pub fn pool_hit_rate(&self) -> f64 {
        Self::rate(self.pool_hits, self.texture_allocs)
    }
}

/// One timed benchmark run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Scene seed.
    pub seed: u64,
    /// Worker threads the executor used ([`rayon::max_threads`]).
    pub threads: usize,
    /// Scene dimensions `(width, height, bands)`.
    pub dims: (usize, usize, usize),
    /// Wall-clock seconds generating the synthetic scene.
    pub scene_s: f64,
    /// Wall-clock seconds for the GPU stream pipeline (MEI computation).
    pub gpu_pipeline_s: f64,
    /// Wall-clock seconds for the CPU tail (endmembers + classification).
    pub cpu_tail_s: f64,
    /// Stage breakdown of the CPU tail (selection/unmix/classify/argmax).
    pub tail: TailBreakdown,
    /// Chunks the pipeline split the scene into.
    pub chunks: usize,
    /// Endmembers extracted.
    pub endmembers: usize,
    /// Per-stage simulator counters.
    pub stages: StageStats,
    /// Measured host wall-clock per pipeline stage.
    pub stage_wall: StageWall,
    /// Device cache effectiveness counters.
    pub gpu_caches: GpuCacheCounters,
    /// Snapshot of the metrics registry taken after the run.
    pub metrics: Snapshot,
    /// Measured wall seconds of the ISA-mode microbench with the shader
    /// optimizer disabled (`GPU_SIM_OPT=0` path).
    pub opt_wall_raw_s: f64,
    /// Measured wall seconds of the same microbench with the optimizer on
    /// (the default lowering path).
    pub opt_wall_opt_s: f64,
    /// Which kernel implementation the benchmark executed. The headline
    /// bench runs [`KernelMode::Isa`] — the path the verifier, optimizer
    /// and batched executor actually exercise — so the device cache
    /// counters above are meaningful.
    pub kernel_mode: KernelMode,
    /// Render-graph fusion attribution plus the measured unfused arm.
    pub fusion: FusionReport,
    /// Multi-device sharding scaling curve (the schema-6 `fleet` block).
    pub fleet: FleetReport,
    /// Trace-analyzer summaries per bench arm (the schema-7 `analysis`
    /// block): critical path, utilization, pack overlap, fleet balance.
    pub analysis: AnalysisReport,
}

impl BenchRun {
    /// End-to-end wall-clock (scene generation excluded — it is input
    /// preparation, not AMC).
    pub fn amc_wall_s(&self) -> f64 {
        self.gpu_pipeline_s + self.cpu_tail_s
    }
}

// ---------------------------------------------------------------------------
// Optimizer rollup (the `opt` block)
// ---------------------------------------------------------------------------

/// One AMC kernel's row in the optimizer rollup: static instruction counts
/// from [`kernels::stage_cases`] and the optimizer, dynamic pass/fragment
/// counts attributed back from the run's per-stage [`PassStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptKernelRow {
    /// Kernel name (`Program::name`).
    pub name: String,
    /// Assembled (raw, Cg-shaped) instruction count.
    pub raw_instructions: u64,
    /// Instruction count after [`gpu_sim::optimize`].
    pub opt_instructions: u64,
    /// Render passes this kernel executed during the run.
    pub passes: u64,
    /// Fragments this kernel shaded during the run.
    pub fragments: u64,
}

impl OptKernelRow {
    /// Dynamically shaded instructions had the raw program been lowered.
    pub fn dynamic_raw(&self) -> u64 {
        self.fragments * self.raw_instructions
    }

    /// Dynamically shaded instructions under the optimized program.
    pub fn dynamic_opt(&self) -> u64 {
        self.fragments * self.opt_instructions
    }

    /// Percentage of dynamic instructions the optimizer removed.
    pub fn reduction_pct(&self) -> f64 {
        if self.raw_instructions == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.opt_instructions as f64 / self.raw_instructions as f64)
        }
    }
}

/// Per-kernel and summed optimizer effect over the six AMC kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptRollup {
    /// One row per AMC kernel, in pipeline order.
    pub kernels: Vec<OptKernelRow>,
    /// Eliminated-op counters summed over the six static optimizer runs.
    pub counters: OptCounters,
}

impl OptRollup {
    /// Total dynamically shaded instructions without the optimizer.
    pub fn dynamic_raw(&self) -> u64 {
        self.kernels.iter().map(OptKernelRow::dynamic_raw).sum()
    }

    /// Total dynamically shaded instructions with the optimizer.
    pub fn dynamic_opt(&self) -> u64 {
        self.kernels.iter().map(OptKernelRow::dynamic_opt).sum()
    }

    /// Percentage of total dynamic instructions removed (the ≥10% headline).
    pub fn reduction_pct(&self) -> f64 {
        if self.dynamic_raw() == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.dynamic_opt() as f64 / self.dynamic_raw() as f64)
        }
    }
}

/// Build the optimizer rollup for a run.
///
/// Static counts come from optimizing the checked-in kernels under their
/// pipeline bindings. Dynamic pass/fragment counts are attributed from the
/// per-stage counters exactly: the `normalize` stage interleaves `band_sum`
/// and `normalize` with equal pass counts and equal fragments per pass
/// (a 50/50 split); `minmax` runs one `minmax_init` pass per chunk and
/// `p_B − 1` `minmax_update` passes, all over the same chunk quad, so the
/// init share is `1/p_B` with `p_B = minmax.passes / chunks`; `distance`
/// and `mei` each run a single kernel. The attribution is derived — it is
/// recomputed, not parsed, on a [`from_json`] round trip.
pub fn opt_rollup(run: &BenchRun) -> OptRollup {
    let s = &run.stages;
    let chunks = run.chunks as u64;
    let p_b = s.minmax.passes.checked_div(chunks).unwrap_or(0);
    let (init_passes, init_frags) = match s.minmax.fragments.checked_div(p_b) {
        Some(f) => (chunks, f),
        None => (0, 0),
    };
    let splits: [(u64, u64); 6] = [
        (s.normalize.passes / 2, s.normalize.fragments / 2),
        (s.normalize.passes / 2, s.normalize.fragments / 2),
        (s.distance.passes, s.distance.fragments),
        (init_passes, init_frags),
        (
            s.minmax.passes - init_passes,
            s.minmax.fragments - init_frags,
        ),
        (s.mei.passes, s.mei.fragments),
    ];
    let mut counters = OptCounters::default();
    let mut rows = Vec::with_capacity(6);
    for ((program, bindings), (passes, fragments)) in kernels::stage_cases().into_iter().zip(splits)
    {
        let (optimized, report) = gpu_sim::optimize(&program, &bindings);
        counters.add(&report.counters);
        rows.push(OptKernelRow {
            name: program.name.clone(),
            raw_instructions: program.len() as u64,
            opt_instructions: optimized.len() as u64,
            passes,
            fragments,
        });
    }
    OptRollup {
        kernels: rows,
        counters,
    }
}

// ---------------------------------------------------------------------------
// Fusion attribution (the `fusion` block, schema 5)
// ---------------------------------------------------------------------------

/// One aggregated family of committed producer→consumer inlines: every
/// [`amc_core::graph::FusionRecord`] with the same kernel pair and
/// coordinate mode, with sites and per-fragment fetch counts summed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPairRow {
    /// Kernel whose body was inlined.
    pub producer_kernel: String,
    /// Kernel that absorbed it.
    pub consumer_kernel: String,
    /// Coordinate reconciliation (`substitute-site-coord` or
    /// `keep-producer-coords`).
    pub mode: String,
    /// Commits in this family.
    pub count: u64,
    /// `TEX` sites replaced, summed.
    pub sites: u64,
    /// Per-fragment fetches of the separate passes, summed.
    pub fetches_before: u64,
    /// Per-fragment fetches of the fused programs, summed.
    pub fetches_after: u64,
}

/// The schema-5 `fusion` block: static compiler attribution at the scene
/// geometry plus the measured unfused-oracle arm.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionReport {
    /// Whether the headline run executed the fused schedule (`GPU_SIM_FUSE`
    /// unset or non-zero).
    pub enabled: bool,
    /// Committed fusions aggregated per (producer, consumer, mode).
    pub pairs: Vec<FusionPairRow>,
    /// Passes dead-pass elimination removed from the fused schedule.
    pub eliminated_passes: u64,
    /// Scheduled passes in the fused compile.
    pub fused_passes: u64,
    /// Scheduled passes in the unfused compile.
    pub unfused_passes: u64,
    /// Static normalize+distance texel fetches per fragment, fused.
    pub fused_fetches_per_fragment: u64,
    /// Static normalize+distance texel fetches per fragment, unfused.
    pub unfused_fetches_per_fragment: u64,
    /// Pool reuses that skipped their zero fill during the headline run
    /// (the compiler proved every texel overwritten before read).
    pub zero_fill_skips: u64,
    /// Measured normalize-stage texel fetches of the unfused-oracle arm.
    pub unfused_normalize_texel_fetches: u64,
    /// Measured distance-stage texel fetches of the unfused-oracle arm.
    pub unfused_distance_texel_fetches: u64,
    /// Measured distance-stage wall seconds of the unfused-oracle arm.
    pub unfused_distance_wall_s: f64,
}

impl FusionReport {
    fn reduction(fused: u64, unfused: u64) -> f64 {
        if unfused == 0 {
            0.0
        } else {
            100.0 * (1.0 - fused as f64 / unfused as f64)
        }
    }

    /// Percentage of static normalize+distance fetches per fragment that
    /// fusion removed (the ≥ 30% CI gate).
    pub fn static_fetch_reduction_pct(&self) -> f64 {
        Self::reduction(
            self.fused_fetches_per_fragment,
            self.unfused_fetches_per_fragment,
        )
    }

    /// Percentage of measured normalize+distance texel fetches the fused
    /// run saved against the unfused-oracle arm.
    pub fn measured_fetch_reduction_pct(&self, fused_norm_dist_fetches: u64) -> f64 {
        Self::reduction(
            fused_norm_dist_fetches,
            self.unfused_normalize_texel_fetches + self.unfused_distance_texel_fetches,
        )
    }
}

fn mode_str(mode: InlineMode) -> &'static str {
    match mode {
        InlineMode::SubstituteSiteCoord => "substitute-site-coord",
        InlineMode::KeepProducerCoords => "keep-producer-coords",
    }
}

fn norm_dist_fetches(c: &CompiledGraph) -> u64 {
    (c.stage_fetches_per_fragment("normalize") + c.stage_fetches_per_fragment("distance")) as u64
}

/// Build the fusion attribution for a run. The static side compiles the
/// AMC graph at the full scene geometry — the pass/fetch structure depends
/// only on the band count and the structuring element, so it attributes the
/// chunked execution exactly — and the measured side reads the counters of
/// the unfused-oracle arm run alongside the benchmark.
pub fn fusion_report(
    amc: &GpuAmc,
    dims: (usize, usize, usize),
    zero_fill_skips: u64,
    unfused_arm: &PipelineOutput,
) -> FusionReport {
    let profile = GpuProfile::geforce_7800gtx();
    let fused = amc
        .compile_graph(&profile, dims.0, dims.1, dims.2, true)
        .expect("fused AMC graph compiles");
    let unfused = amc
        .compile_graph(&profile, dims.0, dims.1, dims.2, false)
        .expect("unfused AMC graph compiles");
    let mut pairs: Vec<FusionPairRow> = Vec::new();
    for f in &fused.fusions {
        let mode = mode_str(f.mode);
        match pairs.iter_mut().find(|p| {
            p.producer_kernel == f.kernels.0 && p.consumer_kernel == f.kernels.1 && p.mode == mode
        }) {
            Some(row) => {
                row.count += 1;
                row.sites += f.sites as u64;
                row.fetches_before += f.fetches_before as u64;
                row.fetches_after += f.fetches_after as u64;
            }
            None => pairs.push(FusionPairRow {
                producer_kernel: f.kernels.0.clone(),
                consumer_kernel: f.kernels.1.clone(),
                mode: mode.to_owned(),
                count: 1,
                sites: f.sites as u64,
                fetches_before: f.fetches_before as u64,
                fetches_after: f.fetches_after as u64,
            }),
        }
    }
    FusionReport {
        enabled: amc.fusion(),
        pairs,
        eliminated_passes: fused.eliminated.len() as u64,
        fused_passes: fused.passes.len() as u64,
        unfused_passes: unfused.passes.len() as u64,
        fused_fetches_per_fragment: norm_dist_fetches(&fused),
        unfused_fetches_per_fragment: norm_dist_fetches(&unfused),
        zero_fill_skips,
        unfused_normalize_texel_fetches: unfused_arm.stages.normalize.texel_fetches,
        unfused_distance_texel_fetches: unfused_arm.stages.distance.texel_fetches,
        unfused_distance_wall_s: unfused_arm.stage_wall.distance_s,
    }
}

// ---------------------------------------------------------------------------
// Fleet scaling (the `fleet` block, schema 6)
// ---------------------------------------------------------------------------

/// One device's row inside a fleet shape run: the placement model's
/// initial assignment vs what the work-stealing dispatcher actually
/// executed, plus modeled and measured seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDeviceRow {
    /// Device short name (`GpuProfile::short_name`).
    pub device: String,
    /// Chunk indices the placement model assigned up front.
    pub planned: Vec<u64>,
    /// Chunk indices executed, in execution order.
    pub executed: Vec<u64>,
    /// Chunks this device stole from other queues.
    pub steals: u64,
    /// Modeled busy seconds for the executed chunks.
    pub modeled_s: f64,
    /// Measured host wall seconds of this device's dispatch loop.
    pub wall_s: f64,
}

/// One fleet shape's run over the shared chunk plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetShapeRun {
    /// Shape name: device short names joined with `+`.
    pub name: String,
    /// Per-device rows, in fleet order.
    pub devices: Vec<FleetDeviceRow>,
    /// Chunks in the shared plan.
    pub chunks: u64,
    /// Total chunks that moved between queues.
    pub steals: u64,
    /// Modeled fleet makespan (slowest device's modeled busy time).
    pub modeled_makespan_s: f64,
    /// Measured host wall seconds of the parallel dispatch phase.
    pub wall_s: f64,
}

/// The schema-6 `fleet` block: one shared chunk plan, a single-device
/// modeled baseline, and one [`FleetShapeRun`] per fleet shape.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Body lines per chunk of the shared (fleet-shape-independent) plan.
    pub lines_per_chunk: u64,
    /// Halo lines per chunk side.
    pub halo: u64,
    /// Short name of the baseline device.
    pub baseline_device: String,
    /// Modeled seconds one baseline device needs for the whole plan
    /// (uncontended bus) — the denominator of every shape's speedup.
    pub baseline_modeled_s: f64,
    /// One run per fleet shape, in execution order.
    pub shapes: Vec<FleetShapeRun>,
}

impl FleetShapeRun {
    /// Modeled speedup over the single-baseline-device time. Derived — it
    /// is recomputed, not parsed, on a [`from_json`] round trip.
    pub fn modeled_speedup(&self, baseline_s: f64) -> f64 {
        if self.modeled_makespan_s > 0.0 {
            baseline_s / self.modeled_makespan_s
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-analyzer summaries (the `analysis` block)
// ---------------------------------------------------------------------------

/// One thread's busy time inside an analysis arm. Utilization is derived
/// (`busy_s / wall_s`) and recomputed, not parsed, on a round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisThread {
    /// Timeline-row name (`main`, `packer`, `device0.7800gtx`, …).
    pub name: String,
    /// Union of root-span time on this thread, seconds.
    pub busy_s: f64,
}

/// One device's load inside an analysis arm's fleet section.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisDevice {
    /// Device ordinal within the fleet.
    pub device: u64,
    /// Timeline-row name of the device thread.
    pub label: String,
    /// Chunks executed.
    pub chunks: u64,
    /// Of those, chunks stolen from other devices' queues.
    pub stolen: u64,
    /// Summed `fleet.chunk` span time, seconds.
    pub busy_s: f64,
}

/// Fleet balance measured off the trace (distinct from the modeled `fleet`
/// block: these are span timings, not placement-model predictions).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisFleet {
    /// First chunk begin → last chunk end across devices, seconds.
    pub makespan_s: f64,
    /// Total stolen chunks.
    pub steals: u64,
    /// Per-device rows, in device order.
    pub devices: Vec<AnalysisDevice>,
}

/// One bench arm's analyzer summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisArm {
    /// Arm name (`headline`, `unfused_oracle`, `fleet:<shape>`).
    pub name: String,
    /// Arm wall clock, seconds.
    pub wall_s: f64,
    /// Critical-path length through the chunk/pack DAG, seconds.
    pub critical_path_s: f64,
    /// Spans on the critical path.
    pub critical_path_nodes: u64,
    /// `(bucket, self-seconds)` attribution along the path, sorted by
    /// bucket name (stage names plus `pack` and `other`).
    pub critical_path_stages: Vec<(String, f64)>,
    /// Total pack-span time, seconds.
    pub pack_total_s: f64,
    /// Pack time hidden under concurrent chunk execution, seconds.
    pub pack_hidden_s: f64,
    /// Time with ≥ 1 `gpu.xfer` transfer in flight, seconds.
    pub bus_busy_s: f64,
    /// Time with ≥ 2 transfers in flight (bus contention), seconds.
    pub bus_contended_s: f64,
    /// Per-thread busy rows.
    pub threads: Vec<AnalysisThread>,
    /// Fleet balance, for arms that ran `fleet.chunk` spans.
    pub fleet: Option<AnalysisFleet>,
}

impl AnalysisArm {
    /// Fraction of pack time hidden under shading (`1.0` when nothing was
    /// packed). Derived; recomputed from the rounded operands on re-serialize.
    pub fn pack_overlap_efficiency(&self) -> f64 {
        if self.pack_total_s <= 0.0 {
            1.0
        } else {
            (self.pack_hidden_s / self.pack_total_s).clamp(0.0, 1.0)
        }
    }
}

impl AnalysisFleet {
    /// Mean over max device busy time: `1.0` is perfectly balanced. Derived.
    pub fn load_balance(&self) -> f64 {
        let max = self.devices.iter().map(|d| d.busy_s).fold(0.0f64, f64::max);
        if max <= 0.0 || self.devices.is_empty() {
            return 1.0;
        }
        let mean = self.devices.iter().map(|d| d.busy_s).sum::<f64>() / self.devices.len() as f64;
        (mean / max).clamp(0.0, 1.0)
    }
}

/// The schema-7 `analysis` block: one analyzer summary per bench arm.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalysisReport {
    /// Per-arm summaries, in execution order.
    pub arms: Vec<AnalysisArm>,
}

/// Build the `analysis` block from a captured trace snapshot.
pub fn analysis_report(snap: &trace::TraceSnapshot) -> AnalysisReport {
    let analysis = trace::analyze::analyze(snap);
    AnalysisReport {
        arms: analysis
            .arms
            .iter()
            .map(|arm| AnalysisArm {
                name: arm.name.clone(),
                wall_s: arm.wall_s,
                critical_path_s: arm.critical_path.total_s,
                critical_path_nodes: arm.critical_path.nodes as u64,
                critical_path_stages: arm.critical_path.stages.clone(),
                pack_total_s: arm.overlap.pack_total_s,
                pack_hidden_s: arm.overlap.pack_hidden_s,
                bus_busy_s: arm.overlap.bus_busy_s,
                bus_contended_s: arm.overlap.bus_contended_s,
                threads: arm
                    .threads
                    .iter()
                    .map(|t| AnalysisThread {
                        name: t.name.clone(),
                        busy_s: t.busy_s,
                    })
                    .collect(),
                fleet: arm.fleet.as_ref().map(|f| AnalysisFleet {
                    makespan_s: f.makespan_s,
                    steals: f.steals,
                    devices: f
                        .devices
                        .iter()
                        .map(|d| AnalysisDevice {
                            device: d.device,
                            label: d.label.clone(),
                            chunks: d.chunks,
                            stolen: d.stolen,
                            busy_s: d.busy_s,
                        })
                        .collect(),
                }),
            })
            .collect(),
    }
}

/// Name a fleet shape: device short names joined with `+`.
fn shape_name(profiles: &[GpuProfile]) -> String {
    profiles
        .iter()
        .map(|p| p.short_name())
        .collect::<Vec<_>>()
        .join("+")
}

/// Execute the fleet scaling arms and build the `fleet` block. Always runs
/// 1× and 2× GeForce 7800 GTX (the scaling headline CI gates on), plus
/// `extra` when it names a distinct shape. Every shape shares one chunk
/// plan, so the merged outputs — bit-identical across shapes by the fleet
/// executor's determinism guarantee — are also identical to each other.
pub fn fleet_report(
    cube: &hsi::cube::Cube,
    amc: &GpuAmc,
    extra: Option<&[GpuProfile]>,
) -> FleetReport {
    let baseline = GpuProfile::geforce_7800gtx();
    let mut shapes: Vec<Vec<GpuProfile>> = vec![
        vec![baseline.clone()],
        vec![baseline.clone(), baseline.clone()],
    ];
    if let Some(extra) = extra {
        if !extra.is_empty() && !shapes.iter().any(|s| s.as_slice() == extra) {
            shapes.push(extra.to_vec());
        }
    }
    // One plan for every shape: derived from the union of profiles, whose
    // minimum video memory governs — identical to each shape's own plan
    // whenever the memory sizes agree (they do for the paper's devices).
    let all: Vec<GpuProfile> = shapes.iter().flatten().cloned().collect();
    let chunking = DeviceFleet::new(all)
        .plan_chunking(amc, cube)
        .expect("fleet chunk plan");
    let baseline_modeled_s = DeviceFleet::modeled_single_device_s(amc, cube, chunking, &baseline);
    let runs = shapes
        .into_iter()
        .map(|profiles| {
            let name = shape_name(&profiles);
            eprintln!("[bench] fleet shape {name}...");
            let out = {
                let _arm = trace::span("bench.arm", &format!("fleet:{name}"));
                DeviceFleet::new(profiles).run_with_chunking(amc, cube, chunking)
            }
            .expect("fleet run");
            FleetShapeRun {
                name,
                devices: out
                    .devices
                    .iter()
                    .map(|d| FleetDeviceRow {
                        device: d.profile.short_name().to_owned(),
                        planned: d.planned.iter().map(|&i| i as u64).collect(),
                        executed: d.executed.iter().map(|&i| i as u64).collect(),
                        steals: d.steals,
                        modeled_s: d.modeled_s,
                        wall_s: d.wall_s,
                    })
                    .collect(),
                chunks: out.pipeline.chunks as u64,
                steals: out.steals,
                modeled_makespan_s: out.modeled_makespan_s,
                wall_s: out.wall_s,
            }
        })
        .collect();
    FleetReport {
        lines_per_chunk: chunking.lines_per_chunk as u64,
        halo: chunking.halo as u64,
        baseline_device: baseline.short_name().to_owned(),
        baseline_modeled_s,
        shapes: runs,
    }
}

/// Wall-clock the ISA lowering path with the optimizer off, then on: every
/// AMC kernel shades a 96×96 quad for a few passes on a cold device per
/// arm, so the measured delta is the per-fragment interpreter cost of the
/// instructions the optimizer removes (plus one optimizer run per kernel,
/// amortized across the passes exactly as the lowering cache amortizes it).
fn isa_microbench() -> (f64, f64) {
    const SIZE: usize = 96;
    const REPS: usize = 8;
    let time_arm = |optimize: bool| -> f64 {
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        gpu.set_optimizer(optimize);
        let t = Instant::now();
        for (program, bindings) in kernels::stage_cases() {
            let inputs: Vec<_> = (0..bindings.samplers)
                .map(|_| {
                    let id = gpu.alloc_texture(SIZE, SIZE).expect("microbench input");
                    gpu.upload(id, &vec![0.25f32; SIZE * SIZE * 4])
                        .expect("microbench upload");
                    id
                })
                .collect();
            let target = gpu.alloc_texture(SIZE, SIZE).expect("microbench target");
            let constants: Vec<_> = bindings
                .constants
                .iter()
                .map(|&idx| (idx, [0.5f32, 0.25, 0.75, 1.0]))
                .collect();
            let texcoords = vec![TexCoordSet::identity(); bindings.texcoord_sets];
            for _ in 0..REPS {
                gpu.run_pass(&program, &inputs, &constants, &texcoords, target, None)
                    .expect("microbench pass");
            }
        }
        t.elapsed().as_secs_f64()
    };
    (time_arm(false), time_arm(true))
}

/// Execute the end-to-end benchmark once. The metrics registry is reset
/// first so the emitted `metrics` block covers exactly this run.
pub fn run_benchmark(seed: u64) -> BenchRun {
    run_benchmark_with_devices(seed, None)
}

/// [`run_benchmark`] with an extra fleet shape from `--devices` appended to
/// the standard 1×/2× 7800 GTX scaling arms.
pub fn run_benchmark_with_devices(seed: u64, extra_shape: Option<&[GpuProfile]>) -> BenchRun {
    trace::metrics::reset();
    // The analyzer needs the span stream, so tracing is forced on for the
    // benchmark. The prior state is restored afterwards; the sink is left
    // intact (not drained) so a later `--trace` export still sees the run.
    let was_tracing = trace::enabled();
    trace::enable();
    trace::reset();
    let classes = indian_pines_classes();
    let t = Instant::now();
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(seed));
    let scene_s = t.elapsed().as_secs_f64();
    let dims = scene.cube.dims();

    let config = AmcConfig::paper_default(classes.len());
    // The ISA path is the benchmark's subject: it is what the verifier,
    // the optimizer and the batched SoA executor run, and it populates the
    // verify/lower cache counters the document reports. (The closure path
    // used to be benchmarked here, which left those counters at zero.)
    let kernel_mode = KernelMode::Isa;
    let amc = GpuAmc::new(config.se.clone(), kernel_mode);
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let classifier = AmcClassifier::new(config);
    let hybrid = {
        let _arm = trace::span("bench.arm", "headline");
        amc.run_and_classify(&mut gpu, &scene.cube, &classifier)
    }
    .expect("hybrid AMC run");
    // Snapshot before the microbench so the metrics block covers exactly
    // the end-to-end run; the A/B arms below would otherwise pollute it.
    let metrics = trace::metrics::snapshot();
    let zero_fill_skips = gpu.zero_fill_skips();
    let (opt_wall_raw_s, opt_wall_opt_s) = isa_microbench();
    // The unfused-oracle arm (`GPU_SIM_FUSE=0` equivalent): same pipeline,
    // same scene, fresh device, fusion pinned off — its stage counters
    // anchor the measured fetch-reduction attribution.
    let mut amc_unfused = GpuAmc::new(amc.se().clone(), kernel_mode);
    amc_unfused.set_fusion(false);
    let mut gpu_unfused = Gpu::new(GpuProfile::geforce_7800gtx());
    let unfused_arm = {
        let _arm = trace::span("bench.arm", "unfused_oracle");
        amc_unfused.run(&mut gpu_unfused, &scene.cube)
    }
    .expect("unfused oracle run");
    let fusion = fusion_report(
        &amc,
        (dims.width, dims.height, dims.bands),
        zero_fill_skips,
        &unfused_arm,
    );
    // Fleet scaling arms on the closure path: counters match the ISA path
    // by construction and the speedup gate is on modeled time.
    let amc_fleet = GpuAmc::new(amc.se().clone(), KernelMode::Closure);
    let fleet = fleet_report(&scene.cube, &amc_fleet, extra_shape);

    let analysis = analysis_report(&trace::snapshot_events());
    if !was_tracing {
        trace::disable();
    }

    BenchRun {
        seed,
        threads: rayon::max_threads(),
        dims: (dims.width, dims.height, dims.bands),
        scene_s,
        gpu_pipeline_s: hybrid.gpu_wall_s,
        cpu_tail_s: hybrid.tail_wall_s,
        tail: hybrid.tail,
        chunks: hybrid.pipeline.chunks,
        endmembers: hybrid.classification.class_count(),
        stages: hybrid.pipeline.stages,
        stage_wall: hybrid.pipeline.stage_wall,
        gpu_caches: GpuCacheCounters::from_gpu(&gpu),
        metrics,
        opt_wall_raw_s,
        opt_wall_opt_s,
        kernel_mode,
        fusion,
        fleet,
        analysis,
    }
}

/// Round to the serialized 6-decimal precision, exactly as `{:.6}` prints.
/// Derived values (sums, ratios) are computed from rounded operands so the
/// document is a fixed point of parse → re-serialize.
fn r6(x: f64) -> f64 {
    format!("{x:.6}").parse().expect("fixed-precision float")
}

fn stage_json(name: &str, s: &PassStats, wall_s: f64, profile: &GpuProfile) -> String {
    let modeled_ms = timing::gpu_time(s, profile).total_ms();
    let wall_s = r6(wall_s);
    // Measured-over-modeled skew: >1000 means a modeled millisecond costs
    // more than a host second to simulate. Derived, so recomputed (not
    // parsed) on round trip. A stage with no modeled time (e.g. upload or
    // download on configs that skip it) has no meaningful ratio — emit
    // `null`, never a `0.0` that reads as "perfectly modeled".
    let skew = if modeled_ms > 0.0 {
        format!("{:.6}", wall_s * 1e3 / modeled_ms)
    } else {
        "null".to_owned()
    };
    format!(
        "    {{\"stage\": \"{name}\", \"passes\": {}, \"fragments\": {}, \
         \"instructions\": {}, \"texel_fetches\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"tiles\": {}, \"bytes_written\": {}, \
         \"bytes_uploaded\": {}, \"bytes_downloaded\": {}, \
         \"wall_s\": {:.6}, \"modeled_ms\": {:.6}, \
         \"wall_over_modeled\": {skew}}}",
        s.passes,
        s.fragments,
        s.instructions,
        s.texel_fetches,
        s.cache_hits,
        s.cache_misses,
        s.tiles,
        s.bytes_written,
        s.bytes_uploaded,
        s.bytes_downloaded,
        wall_s,
        modeled_ms,
    )
}

/// Render a [`BenchRun`] as the `BENCH_results.json` document.
pub fn to_json(run: &BenchRun) -> String {
    let profile = GpuProfile::geforce_7800gtx();
    let total = run.stages.total();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"benchmark\": \"amc_end_to_end\",");
    let _ = writeln!(s, "  \"kernel_mode\": \"{}\",", run.kernel_mode);
    let _ = writeln!(s, "  \"seed\": {},", run.seed);
    let _ = writeln!(s, "  \"threads\": {},", run.threads);
    let _ = writeln!(
        s,
        "  \"scene\": {{\"width\": {}, \"height\": {}, \"bands\": {}}},",
        run.dims.0, run.dims.1, run.dims.2
    );
    let _ = writeln!(s, "  \"scene_generation_s\": {:.6},", run.scene_s);
    let _ = writeln!(s, "  \"gpu_pipeline_wall_s\": {:.6},", run.gpu_pipeline_s);
    let _ = writeln!(s, "  \"cpu_tail_wall_s\": {:.6},", run.cpu_tail_s);
    // Tail stage breakdown mirroring the GPU `stages` array. selection_s and
    // classify_s are wall clock; unmix_s and argmax_s are worker-summed CPU
    // seconds from the batched kernels (equal to wall at threads=1).
    let _ = writeln!(
        s,
        "  \"cpu_tail_stages\": {{\"selection_s\": {:.6}, \"unmix_s\": {:.6}, \
         \"classify_s\": {:.6}, \"argmax_s\": {:.6}}},",
        run.tail.selection_s, run.tail.unmix_s, run.tail.classify_s, run.tail.argmax_s
    );
    let _ = writeln!(
        s,
        "  \"amc_wall_s\": {:.6},",
        r6(run.gpu_pipeline_s) + r6(run.cpu_tail_s)
    );
    let _ = writeln!(s, "  \"chunks\": {},", run.chunks);
    let _ = writeln!(s, "  \"endmembers\": {},", run.endmembers);
    let _ = writeln!(
        s,
        "  \"modeled_kernel_ms_7800gtx\": {:.6},",
        timing::gpu_time(&total, &profile).kernel_ms()
    );
    s.push_str("  \"stages\": [\n");
    let walls = run.stage_wall.as_named();
    let stages: [(&str, &PassStats); 6] = [
        ("upload", &run.stages.upload),
        ("normalize", &run.stages.normalize),
        ("distance", &run.stages.distance),
        ("minmax", &run.stages.minmax),
        ("mei", &run.stages.mei),
        ("download", &run.stages.download),
    ];
    for (i, (name, stats)) in stages.iter().enumerate() {
        debug_assert_eq!(*name, walls[i].0, "stage order mismatch");
        s.push_str(&stage_json(name, stats, walls[i].1, &profile));
        s.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    // Optimizer rollup: per-kernel static counts are constants of the tree,
    // dynamic attributions derive from the stage counters above, and only
    // the microbench walls are measured inputs (everything else is
    // recomputed on a parse → re-serialize round trip).
    let rollup = opt_rollup(run);
    s.push_str("  \"opt\": {\n    \"kernels\": [\n");
    for (i, k) in rollup.kernels.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"kernel\": \"{}\", \"raw_instructions\": {}, \
             \"opt_instructions\": {}, \"passes\": {}, \"fragments\": {}, \
             \"dynamic_raw\": {}, \"dynamic_opt\": {}, \
             \"reduction_pct\": {:.6}}}",
            k.name,
            k.raw_instructions,
            k.opt_instructions,
            k.passes,
            k.fragments,
            k.dynamic_raw(),
            k.dynamic_opt(),
            k.reduction_pct()
        );
        s.push_str(if i + 1 < rollup.kernels.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("    ],\n");
    let _ = writeln!(
        s,
        "    \"dynamic_instructions_raw\": {},",
        rollup.dynamic_raw()
    );
    let _ = writeln!(
        s,
        "    \"dynamic_instructions_opt\": {},",
        rollup.dynamic_opt()
    );
    let _ = writeln!(
        s,
        "    \"dynamic_reduction_pct\": {:.6},",
        rollup.reduction_pct()
    );
    s.push_str("    \"eliminated\": {");
    for (i, (label, count)) in rollup.counters.entries().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{label}\": {count}");
    }
    s.push_str("},\n");
    // Modeled kernel time had the raw programs been shaded: the run's
    // instruction total plus exactly the instructions the optimizer removed.
    let mut raw_total = total;
    raw_total.instructions = total.instructions + (rollup.dynamic_raw() - rollup.dynamic_opt());
    let _ = writeln!(
        s,
        "    \"modeled_kernel_ms_raw_7800gtx\": {:.6},",
        timing::gpu_time(&raw_total, &profile).kernel_ms()
    );
    let _ = writeln!(
        s,
        "    \"modeled_kernel_ms_opt_7800gtx\": {:.6},",
        timing::gpu_time(&total, &profile).kernel_ms()
    );
    let _ = writeln!(
        s,
        "    \"isa_microbench\": {{\"wall_raw_s\": {:.6}, \"wall_opt_s\": {:.6}}}",
        run.opt_wall_raw_s, run.opt_wall_opt_s
    );
    s.push_str("  },\n");
    // Fusion attribution: the pairs, pass counts, static per-fragment
    // fetches and the unfused-arm counters are inputs; both reduction
    // percentages are derived and recomputed on a round trip.
    let f = &run.fusion;
    s.push_str("  \"fusion\": {\n");
    let _ = writeln!(s, "    \"enabled\": {},", f.enabled);
    s.push_str("    \"pairs\": [\n");
    for (i, p) in f.pairs.iter().enumerate() {
        let _ = write!(
            s,
            "      {{\"producer_kernel\": \"{}\", \"consumer_kernel\": \"{}\", \
             \"mode\": \"{}\", \"count\": {}, \"sites\": {}, \
             \"fetches_before\": {}, \"fetches_after\": {}}}",
            p.producer_kernel,
            p.consumer_kernel,
            p.mode,
            p.count,
            p.sites,
            p.fetches_before,
            p.fetches_after
        );
        s.push_str(if i + 1 < f.pairs.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ],\n");
    let _ = writeln!(s, "    \"eliminated_passes\": {},", f.eliminated_passes);
    let _ = writeln!(s, "    \"fused_passes\": {},", f.fused_passes);
    let _ = writeln!(s, "    \"unfused_passes\": {},", f.unfused_passes);
    let _ = writeln!(
        s,
        "    \"normalize_distance_fetches_per_fragment\": \
         {{\"fused\": {}, \"unfused\": {}}},",
        f.fused_fetches_per_fragment, f.unfused_fetches_per_fragment
    );
    let _ = writeln!(
        s,
        "    \"static_fetch_reduction_pct\": {:.6},",
        f.static_fetch_reduction_pct()
    );
    let _ = writeln!(s, "    \"zero_fill_skips\": {},", f.zero_fill_skips);
    let _ = writeln!(
        s,
        "    \"unfused_arm\": {{\"normalize_texel_fetches\": {}, \
         \"distance_texel_fetches\": {}, \"distance_wall_s\": {:.6}}},",
        f.unfused_normalize_texel_fetches,
        f.unfused_distance_texel_fetches,
        f.unfused_distance_wall_s
    );
    let _ = writeln!(
        s,
        "    \"measured_fetch_reduction_pct\": {:.6}",
        f.measured_fetch_reduction_pct(
            run.stages.normalize.texel_fetches + run.stages.distance.texel_fetches
        )
    );
    s.push_str("  },\n");
    // Fleet scaling: the chunk plan, the single-device modeled baseline and
    // per-shape runs with per-device placement/execution rows are inputs;
    // every `modeled_speedup` is derived from the (rounded) baseline and
    // makespan and recomputed on a round trip.
    let fl = &run.fleet;
    s.push_str("  \"fleet\": {\n");
    let _ = writeln!(
        s,
        "    \"chunking\": {{\"lines_per_chunk\": {}, \"halo\": {}}},",
        fl.lines_per_chunk, fl.halo
    );
    let _ = writeln!(s, "    \"baseline_device\": \"{}\",", fl.baseline_device);
    let _ = writeln!(
        s,
        "    \"baseline_modeled_s\": {:.6},",
        fl.baseline_modeled_s
    );
    s.push_str("    \"shapes\": [\n");
    let idx_list = |idx: &[u64]| {
        let mut out = String::from("[");
        for (i, v) in idx.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{v}");
        }
        out.push(']');
        out
    };
    for (i, shape) in fl.shapes.iter().enumerate() {
        let _ = writeln!(s, "      {{\"name\": \"{}\",", shape.name);
        let _ = writeln!(s, "       \"chunks\": {},", shape.chunks);
        let _ = writeln!(s, "       \"steals\": {},", shape.steals);
        let _ = writeln!(
            s,
            "       \"modeled_makespan_s\": {:.6},",
            shape.modeled_makespan_s
        );
        let _ = writeln!(
            s,
            "       \"modeled_speedup\": {:.6},",
            FleetShapeRun {
                modeled_makespan_s: r6(shape.modeled_makespan_s),
                ..shape.clone()
            }
            .modeled_speedup(r6(fl.baseline_modeled_s))
        );
        let _ = writeln!(s, "       \"wall_s\": {:.6},", shape.wall_s);
        s.push_str("       \"devices\": [\n");
        for (j, d) in shape.devices.iter().enumerate() {
            let _ = write!(
                s,
                "         {{\"device\": \"{}\", \"planned\": {}, \
                 \"executed\": {}, \"steals\": {}, \"modeled_s\": {:.6}, \
                 \"wall_s\": {:.6}}}",
                d.device,
                idx_list(&d.planned),
                idx_list(&d.executed),
                d.steals,
                d.modeled_s,
                d.wall_s
            );
            s.push_str(if j + 1 < shape.devices.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("       ]}");
        s.push_str(if i + 1 < fl.shapes.len() { ",\n" } else { "\n" });
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"analysis\": {\n    \"arms\": [");
    for (i, arm) in run.analysis.arms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let wall = r6(arm.wall_s);
        let cp = r6(arm.critical_path_s);
        // Share of the arm's wall clock the critical path explains. Derived
        // from the rounded operands, so recomputed (never parsed) on a
        // round trip; a zero-wall arm trivially has a full-share path.
        let share = if wall > 0.0 {
            (cp / wall).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let _ = write!(
            s,
            "\n      {{\"name\": \"{}\", \"wall_s\": {:.6}, \
             \"critical_path_s\": {:.6}, \"critical_path_nodes\": {}, \
             \"critical_path_share\": {:.6},\n       \"critical_path_stages\": [",
            arm.name, arm.wall_s, arm.critical_path_s, arm.critical_path_nodes, share
        );
        for (j, (stage, self_s)) in arm.critical_path_stages.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{{\"stage\": \"{stage}\", \"self_s\": {self_s:.6}}}");
        }
        let rounded_arm = AnalysisArm {
            pack_total_s: r6(arm.pack_total_s),
            pack_hidden_s: r6(arm.pack_hidden_s),
            ..arm.clone()
        };
        let _ = write!(
            s,
            "],\n       \"pack\": {{\"total_s\": {:.6}, \"hidden_s\": {:.6}, \
             \"overlap_efficiency\": {:.6}}},\n       \
             \"bus\": {{\"busy_s\": {:.6}, \"contended_s\": {:.6}}},\n       \
             \"threads\": [",
            arm.pack_total_s,
            arm.pack_hidden_s,
            rounded_arm.pack_overlap_efficiency(),
            arm.bus_busy_s,
            arm.bus_contended_s
        );
        for (j, t) in arm.threads.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let util = if wall > 0.0 {
                (r6(t.busy_s) / wall).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let _ = write!(
                s,
                "\n         {{\"name\": \"{}\", \"busy_s\": {:.6}, \"utilization\": {:.6}}}",
                t.name, t.busy_s, util
            );
        }
        s.push_str(if arm.threads.is_empty() {
            "],\n"
        } else {
            "\n       ],\n"
        });
        match &arm.fleet {
            None => s.push_str("       \"fleet\": null}"),
            Some(f) => {
                let makespan = r6(f.makespan_s);
                let rounded_fleet = AnalysisFleet {
                    makespan_s: makespan,
                    steals: f.steals,
                    devices: f
                        .devices
                        .iter()
                        .map(|d| AnalysisDevice {
                            busy_s: r6(d.busy_s),
                            ..d.clone()
                        })
                        .collect(),
                };
                let _ = write!(
                    s,
                    "       \"fleet\": {{\"makespan_s\": {:.6}, \"steals\": {}, \
                     \"load_balance\": {:.6},\n        \"devices\": [",
                    f.makespan_s,
                    f.steals,
                    rounded_fleet.load_balance()
                );
                for (j, d) in f.devices.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let util = if makespan > 0.0 {
                        (r6(d.busy_s) / makespan).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    let _ = write!(
                        s,
                        "\n          {{\"device\": {}, \"label\": \"{}\", \
                         \"chunks\": {}, \"stolen\": {}, \"busy_s\": {:.6}, \
                         \"utilization\": {:.6}}}",
                        d.device, d.label, d.chunks, d.stolen, d.busy_s, util
                    );
                }
                s.push_str(if f.devices.is_empty() {
                    "]}}"
                } else {
                    "\n        ]}}"
                });
            }
        }
    }
    s.push_str(if run.analysis.arms.is_empty() {
        "]\n  },\n"
    } else {
        "\n    ]\n  },\n"
    });
    let c = &run.gpu_caches;
    let _ = writeln!(
        s,
        "  \"gpu_caches\": {{\"verify_runs\": {}, \"verify_cache_hits\": {}, \
         \"lower_runs\": {}, \"lower_cache_hits\": {}, \"pool_hits\": {}, \
         \"texture_allocs\": {}}},",
        c.verify_runs,
        c.verify_cache_hits,
        c.lower_runs,
        c.lower_cache_hits,
        c.pool_hits,
        c.texture_allocs
    );
    s.push_str("  \"metrics\": {\n");
    let _ = writeln!(
        s,
        "    \"cache_hit_rates\": {{\"verify\": {:.6}, \"lower\": {:.6}, \
         \"texture_pool\": {:.6}}},",
        c.verify_hit_rate(),
        c.lower_hit_rate(),
        c.pool_hit_rate()
    );
    s.push_str("    \"counters\": [");
    for (i, (name, value)) in run.metrics.counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n      {{\"name\": \"{name}\", \"value\": {value}}}");
    }
    s.push_str(if run.metrics.counters.is_empty() {
        "],\n"
    } else {
        "\n    ],\n"
    });
    s.push_str("    \"histograms\": [");
    for (i, (name, h)) in run.metrics.histograms.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n      {{\"name\": \"{name}\", \"count\": {}, \"sum_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
            h.count, h.sum_ns, h.p50_ns, h.p95_ns, h.p99_ns
        );
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"lo_ns\": {}, \"hi_ns\": {}, \"count\": {}}}",
                b.lo_ns, b.hi_ns, b.count
            );
        }
        s.push_str("]}");
    }
    s.push_str(if run.metrics.histograms.is_empty() {
        "]\n"
    } else {
        "\n    ]\n"
    });
    s.push_str("  }\n}\n");
    s
}

// ---------------------------------------------------------------------------
// Parsing (round-trip serde without serde)
// ---------------------------------------------------------------------------

/// Minimal JSON value for [`from_json`]. Numbers go through `f64`: exact
/// for the integers this document carries (all far below 2⁵³).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    /// `null`, `true`/`false` — accepted but unused by this schema.
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = std::result::Result<T, String>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, what: &str) -> ParseResult<T> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> ParseResult<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> ParseResult<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> ParseResult<Json> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> ParseResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> ParseResult<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> ParseResult<&'a Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key \"{key}\"")),
            _ => Err(format!("expected object for key \"{key}\"")),
        }
    }

    fn num(&self) -> ParseResult<f64> {
        match self {
            Json::Num(n) => Ok(*n),
            _ => Err("expected number".into()),
        }
    }

    fn u64(&self) -> ParseResult<u64> {
        let n = self.num()?;
        if n >= 0.0 && n.fract() == 0.0 {
            Ok(n as u64)
        } else {
            Err(format!("expected unsigned integer, got {n}"))
        }
    }

    fn str(&self) -> ParseResult<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }

    fn bool(&self) -> ParseResult<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err("expected boolean".into()),
        }
    }

    fn arr(&self) -> ParseResult<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err("expected array".into()),
        }
    }
}

fn pass_stats_from(v: &Json) -> ParseResult<PassStats> {
    Ok(PassStats {
        fragments: v.get("fragments")?.u64()?,
        instructions: v.get("instructions")?.u64()?,
        texel_fetches: v.get("texel_fetches")?.u64()?,
        cache_hits: v.get("cache_hits")?.u64()?,
        cache_misses: v.get("cache_misses")?.u64()?,
        bytes_written: v.get("bytes_written")?.u64()?,
        bytes_uploaded: v.get("bytes_uploaded")?.u64()?,
        bytes_downloaded: v.get("bytes_downloaded")?.u64()?,
        passes: v.get("passes")?.u64()?,
        tiles: v.get("tiles")?.u64()?,
    })
}

/// Parse a `BENCH_results.json` document back into a [`BenchRun`].
///
/// Fails with a descriptive error on malformed JSON, a missing key, or a
/// `schema_version` other than [`SCHEMA_VERSION`] — schema drift is a hard
/// error, never a silent default. Derived fields (`amc_wall_s`,
/// `modeled_*`, `wall_over_modeled`, `cache_hit_rates`) are not read; they
/// are recomputed from the parsed inputs on re-serialization.
pub fn from_json(text: &str) -> ParseResult<BenchRun> {
    let mut p = Parser::new(text);
    let doc = p.value()?;
    let version = doc
        .get("schema_version")
        .map_err(|e| format!("{e} — document predates schema versioning; regenerate it"))?
        .u64()?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}; \
             regenerate the document with this tree's `tables -- bench`"
        ));
    }
    let scene = doc.get("scene")?;
    let tail_obj = doc.get("cpu_tail_stages")?;
    let tail = TailBreakdown {
        selection_s: tail_obj.get("selection_s")?.num()?,
        unmix_s: tail_obj.get("unmix_s")?.num()?,
        classify_s: tail_obj.get("classify_s")?.num()?,
        argmax_s: tail_obj.get("argmax_s")?.num()?,
    };
    let mut stages = StageStats::default();
    let mut stage_wall = StageWall::default();
    for entry in doc.get("stages")?.arr()? {
        let name = entry.get("stage")?.str()?.to_owned();
        let stats = pass_stats_from(entry)?;
        let wall = entry.get("wall_s")?.num()?;
        let (slot, wall_slot) = match name.as_str() {
            "upload" => (&mut stages.upload, &mut stage_wall.upload_s),
            "normalize" => (&mut stages.normalize, &mut stage_wall.normalize_s),
            "distance" => (&mut stages.distance, &mut stage_wall.distance_s),
            "minmax" => (&mut stages.minmax, &mut stage_wall.minmax_s),
            "mei" => (&mut stages.mei, &mut stage_wall.mei_s),
            "download" => (&mut stages.download, &mut stage_wall.download_s),
            other => return Err(format!("unknown stage \"{other}\"")),
        };
        *slot = stats;
        *wall_slot = wall;
    }
    let caches = doc.get("gpu_caches")?;
    // Of the whole `opt` block only the measured microbench walls are
    // inputs; the rollup itself is recomputed by [`to_json`].
    let micro = doc.get("opt")?.get("isa_microbench")?;
    let fus = doc.get("fusion")?;
    let mut pairs = Vec::new();
    for p in fus.get("pairs")?.arr()? {
        pairs.push(FusionPairRow {
            producer_kernel: p.get("producer_kernel")?.str()?.to_owned(),
            consumer_kernel: p.get("consumer_kernel")?.str()?.to_owned(),
            mode: p.get("mode")?.str()?.to_owned(),
            count: p.get("count")?.u64()?,
            sites: p.get("sites")?.u64()?,
            fetches_before: p.get("fetches_before")?.u64()?,
            fetches_after: p.get("fetches_after")?.u64()?,
        });
    }
    let per_frag = fus.get("normalize_distance_fetches_per_fragment")?;
    let arm = fus.get("unfused_arm")?;
    let fusion = FusionReport {
        enabled: fus.get("enabled")?.bool()?,
        pairs,
        eliminated_passes: fus.get("eliminated_passes")?.u64()?,
        fused_passes: fus.get("fused_passes")?.u64()?,
        unfused_passes: fus.get("unfused_passes")?.u64()?,
        fused_fetches_per_fragment: per_frag.get("fused")?.u64()?,
        unfused_fetches_per_fragment: per_frag.get("unfused")?.u64()?,
        zero_fill_skips: fus.get("zero_fill_skips")?.u64()?,
        unfused_normalize_texel_fetches: arm.get("normalize_texel_fetches")?.u64()?,
        unfused_distance_texel_fetches: arm.get("distance_texel_fetches")?.u64()?,
        unfused_distance_wall_s: arm.get("distance_wall_s")?.num()?,
    };
    let fl = doc.get("fleet")?;
    let fl_chunking = fl.get("chunking")?;
    let mut fleet_shapes = Vec::new();
    for shape in fl.get("shapes")?.arr()? {
        let mut devices = Vec::new();
        for d in shape.get("devices")?.arr()? {
            let idx = |key: &str| -> ParseResult<Vec<u64>> {
                d.get(key)?.arr()?.iter().map(Json::u64).collect()
            };
            devices.push(FleetDeviceRow {
                device: d.get("device")?.str()?.to_owned(),
                planned: idx("planned")?,
                executed: idx("executed")?,
                steals: d.get("steals")?.u64()?,
                modeled_s: d.get("modeled_s")?.num()?,
                wall_s: d.get("wall_s")?.num()?,
            });
        }
        fleet_shapes.push(FleetShapeRun {
            name: shape.get("name")?.str()?.to_owned(),
            devices,
            chunks: shape.get("chunks")?.u64()?,
            steals: shape.get("steals")?.u64()?,
            modeled_makespan_s: shape.get("modeled_makespan_s")?.num()?,
            wall_s: shape.get("wall_s")?.num()?,
        });
    }
    let fleet = FleetReport {
        lines_per_chunk: fl_chunking.get("lines_per_chunk")?.u64()?,
        halo: fl_chunking.get("halo")?.u64()?,
        baseline_device: fl.get("baseline_device")?.str()?.to_owned(),
        baseline_modeled_s: fl.get("baseline_modeled_s")?.num()?,
        shapes: fleet_shapes,
    };
    let metrics_obj = doc.get("metrics")?;
    let mut counters = Vec::new();
    for c in metrics_obj.get("counters")?.arr()? {
        counters.push((c.get("name")?.str()?.to_owned(), c.get("value")?.u64()?));
    }
    let mut histograms = Vec::new();
    for h in metrics_obj.get("histograms")?.arr()? {
        let mut buckets = Vec::new();
        for b in h.get("buckets")?.arr()? {
            buckets.push(HistBucket {
                lo_ns: b.get("lo_ns")?.u64()?,
                hi_ns: b.get("hi_ns")?.u64()?,
                count: b.get("count")?.u64()?,
            });
        }
        histograms.push((
            h.get("name")?.str()?.to_owned(),
            HistSummary {
                count: h.get("count")?.u64()?,
                sum_ns: h.get("sum_ns")?.u64()?,
                p50_ns: h.get("p50_ns")?.u64()?,
                p95_ns: h.get("p95_ns")?.u64()?,
                p99_ns: h.get("p99_ns")?.u64()?,
                buckets,
            },
        ));
    }
    let mut analysis_arms = Vec::new();
    for a in doc.get("analysis")?.get("arms")?.arr()? {
        let mut cp_stages = Vec::new();
        for st in a.get("critical_path_stages")?.arr()? {
            cp_stages.push((st.get("stage")?.str()?.to_owned(), st.get("self_s")?.num()?));
        }
        let pack = a.get("pack")?;
        let bus = a.get("bus")?;
        let mut arm_threads = Vec::new();
        for t in a.get("threads")?.arr()? {
            arm_threads.push(AnalysisThread {
                name: t.get("name")?.str()?.to_owned(),
                busy_s: t.get("busy_s")?.num()?,
            });
        }
        let arm_fleet = match a.get("fleet")? {
            Json::Null => None,
            f => {
                let mut devices = Vec::new();
                for d in f.get("devices")?.arr()? {
                    devices.push(AnalysisDevice {
                        device: d.get("device")?.u64()?,
                        label: d.get("label")?.str()?.to_owned(),
                        chunks: d.get("chunks")?.u64()?,
                        stolen: d.get("stolen")?.u64()?,
                        busy_s: d.get("busy_s")?.num()?,
                    });
                }
                Some(AnalysisFleet {
                    makespan_s: f.get("makespan_s")?.num()?,
                    steals: f.get("steals")?.u64()?,
                    devices,
                })
            }
        };
        analysis_arms.push(AnalysisArm {
            name: a.get("name")?.str()?.to_owned(),
            wall_s: a.get("wall_s")?.num()?,
            critical_path_s: a.get("critical_path_s")?.num()?,
            critical_path_nodes: a.get("critical_path_nodes")?.u64()?,
            critical_path_stages: cp_stages,
            pack_total_s: pack.get("total_s")?.num()?,
            pack_hidden_s: pack.get("hidden_s")?.num()?,
            bus_busy_s: bus.get("busy_s")?.num()?,
            bus_contended_s: bus.get("contended_s")?.num()?,
            threads: arm_threads,
            fleet: arm_fleet,
        });
    }
    let analysis = AnalysisReport {
        arms: analysis_arms,
    };
    Ok(BenchRun {
        seed: doc.get("seed")?.u64()?,
        threads: doc.get("threads")?.u64()? as usize,
        dims: (
            scene.get("width")?.u64()? as usize,
            scene.get("height")?.u64()? as usize,
            scene.get("bands")?.u64()? as usize,
        ),
        scene_s: doc.get("scene_generation_s")?.num()?,
        gpu_pipeline_s: doc.get("gpu_pipeline_wall_s")?.num()?,
        cpu_tail_s: doc.get("cpu_tail_wall_s")?.num()?,
        tail,
        chunks: doc.get("chunks")?.u64()? as usize,
        endmembers: doc.get("endmembers")?.u64()? as usize,
        stages,
        stage_wall,
        gpu_caches: GpuCacheCounters {
            verify_runs: caches.get("verify_runs")?.u64()?,
            verify_cache_hits: caches.get("verify_cache_hits")?.u64()?,
            lower_runs: caches.get("lower_runs")?.u64()?,
            lower_cache_hits: caches.get("lower_cache_hits")?.u64()?,
            pool_hits: caches.get("pool_hits")?.u64()?,
            texture_allocs: caches.get("texture_allocs")?.u64()?,
        },
        metrics: Snapshot {
            counters,
            histograms,
        },
        opt_wall_raw_s: micro.get("wall_raw_s")?.num()?,
        opt_wall_opt_s: micro.get("wall_opt_s")?.num()?,
        kernel_mode: {
            let name = doc.get("kernel_mode")?.str()?.to_owned();
            KernelMode::from_name(&name).ok_or_else(|| format!("unknown kernel_mode \"{name}\""))?
        },
        fusion,
        fleet,
        analysis,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A fully-populated fixture shared with the `delta` module's tests.
    pub(crate) fn sample_run() -> BenchRun {
        let mut stages = StageStats::default();
        stages.normalize.passes = 4;
        stages.normalize.fragments = 1024;
        stages.normalize.instructions = 9000;
        stages.normalize.tiles = 8;
        stages.normalize.cache_hits = 700;
        stages.normalize.cache_misses = 44;
        stages.normalize.bytes_written = 1024 * 16;
        stages.upload.bytes_uploaded = 1 << 20;
        BenchRun {
            seed: 7,
            threads: 4,
            dims: (145, 145, 32),
            scene_s: 0.5,
            gpu_pipeline_s: 1.25,
            cpu_tail_s: 0.75,
            tail: TailBreakdown {
                selection_s: 0.4,
                unmix_s: 0.25,
                classify_s: 0.3,
                argmax_s: 0.05,
            },
            chunks: 3,
            endmembers: 30,
            stages,
            stage_wall: StageWall {
                upload_s: 0.011,
                normalize_s: 0.25,
                distance_s: 0.8,
                minmax_s: 0.1,
                mei_s: 0.08,
                download_s: 0.009,
            },
            gpu_caches: GpuCacheCounters {
                verify_runs: 7,
                verify_cache_hits: 1400,
                lower_runs: 7,
                lower_cache_hits: 1400,
                pool_hits: 90,
                texture_allocs: 30,
            },
            metrics: Snapshot {
                counters: vec![
                    ("gpu.pool.hits".into(), 90),
                    ("gpu.verify.cache_hits".into(), 1400),
                ],
                histograms: vec![(
                    "gpu.pass_wall".into(),
                    HistSummary {
                        count: 1407,
                        sum_ns: 2_000_000_000,
                        p50_ns: 1_572_863,
                        p95_ns: 3_145_727,
                        p99_ns: 6_291_455,
                        buckets: vec![
                            HistBucket {
                                lo_ns: 1_048_576,
                                hi_ns: 2_097_151,
                                count: 900,
                            },
                            HistBucket {
                                lo_ns: 4_194_304,
                                hi_ns: 8_388_607,
                                count: 507,
                            },
                        ],
                    },
                )],
            },
            opt_wall_raw_s: 0.041,
            opt_wall_opt_s: 0.034,
            kernel_mode: KernelMode::Isa,
            fusion: FusionReport {
                enabled: true,
                pairs: vec![
                    FusionPairRow {
                        producer_kernel: "normalize".into(),
                        consumer_kernel: "sid_partial".into(),
                        mode: "substitute-site-coord".into(),
                        count: 24,
                        sites: 48,
                        fetches_before: 672,
                        fetches_after: 462,
                    },
                    FusionPairRow {
                        producer_kernel: "band_sum".into(),
                        consumer_kernel: "band_sum".into(),
                        mode: "keep-producer-coords".into(),
                        count: 9,
                        sites: 9,
                        fetches_before: 54,
                        fetches_after: 45,
                    },
                ],
                eliminated_passes: 24,
                fused_passes: 17,
                unfused_passes: 53,
                fused_fetches_per_fragment: 462,
                unfused_fetches_per_fragment: 672,
                zero_fill_skips: 41,
                unfused_normalize_texel_fetches: 19_635,
                unfused_distance_texel_fetches: 52_000,
                unfused_distance_wall_s: 0.31,
            },
            fleet: FleetReport {
                lines_per_chunk: 16,
                halo: 2,
                baseline_device: "7800gtx".into(),
                baseline_modeled_s: 0.024,
                shapes: vec![
                    FleetShapeRun {
                        name: "7800gtx".into(),
                        devices: vec![FleetDeviceRow {
                            device: "7800gtx".into(),
                            planned: vec![0, 1, 2, 3],
                            executed: vec![0, 1, 2, 3],
                            steals: 0,
                            modeled_s: 0.024,
                            wall_s: 1.2,
                        }],
                        chunks: 4,
                        steals: 0,
                        modeled_makespan_s: 0.024,
                        wall_s: 1.2,
                    },
                    FleetShapeRun {
                        name: "7800gtx+7800gtx".into(),
                        devices: vec![
                            FleetDeviceRow {
                                device: "7800gtx".into(),
                                planned: vec![0, 1],
                                executed: vec![0, 1, 3],
                                steals: 1,
                                modeled_s: 0.0075,
                                wall_s: 0.7,
                            },
                            FleetDeviceRow {
                                device: "7800gtx".into(),
                                planned: vec![2, 3],
                                executed: vec![2],
                                steals: 0,
                                modeled_s: 0.005,
                                wall_s: 0.55,
                            },
                        ],
                        chunks: 4,
                        steals: 1,
                        modeled_makespan_s: 0.0125,
                        wall_s: 0.7,
                    },
                ],
            },
            analysis: AnalysisReport {
                arms: vec![
                    AnalysisArm {
                        name: "headline".into(),
                        wall_s: 1.25,
                        critical_path_s: 1.1,
                        critical_path_nodes: 5,
                        critical_path_stages: vec![
                            ("distance".into(), 0.6),
                            ("other".into(), 0.3),
                            ("pack".into(), 0.2),
                        ],
                        pack_total_s: 0.4,
                        pack_hidden_s: 0.3,
                        bus_busy_s: 0.2,
                        bus_contended_s: 0.05,
                        threads: vec![
                            AnalysisThread {
                                name: "main".into(),
                                busy_s: 1.2,
                            },
                            AnalysisThread {
                                name: "packer".into(),
                                busy_s: 0.4,
                            },
                        ],
                        fleet: None,
                    },
                    AnalysisArm {
                        name: "fleet:7800gtx+7800gtx".into(),
                        wall_s: 0.7,
                        critical_path_s: 0.65,
                        critical_path_nodes: 4,
                        critical_path_stages: vec![("other".into(), 0.65)],
                        pack_total_s: 0.1,
                        pack_hidden_s: 0.1,
                        bus_busy_s: 0.0,
                        bus_contended_s: 0.0,
                        threads: vec![
                            AnalysisThread {
                                name: "device0.7800gtx".into(),
                                busy_s: 0.6,
                            },
                            AnalysisThread {
                                name: "device1.7800gtx".into(),
                                busy_s: 0.45,
                            },
                        ],
                        fleet: Some(AnalysisFleet {
                            makespan_s: 0.66,
                            steals: 1,
                            devices: vec![
                                AnalysisDevice {
                                    device: 0,
                                    label: "device0.7800gtx".into(),
                                    chunks: 3,
                                    stolen: 1,
                                    busy_s: 0.6,
                                },
                                AnalysisDevice {
                                    device: 1,
                                    label: "device1.7800gtx".into(),
                                    chunks: 1,
                                    stolen: 0,
                                    busy_s: 0.45,
                                },
                            ],
                        }),
                    },
                ],
            },
        }
    }

    #[test]
    fn json_document_is_well_formed_and_complete() {
        let json = to_json(&sample_run());
        // Balanced braces/brackets and the stable key set.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"schema_version\": 7",
            "\"benchmark\"",
            "\"kernel_mode\": \"isa\"",
            "\"threads\": 4",
            "\"amc_wall_s\": 2.000000",
            "\"gpu_pipeline_wall_s\": 1.250000",
            "\"cpu_tail_stages\": {\"selection_s\": 0.400000",
            "\"unmix_s\": 0.250000",
            "\"classify_s\": 0.300000",
            "\"argmax_s\": 0.050000",
            "\"stages\": [",
            "\"stage\": \"upload\"",
            "\"stage\": \"download\"",
            "\"tiles\": 8",
            "\"cache_hits\": 700",
            "\"wall_s\": 0.250000",
            "\"wall_over_modeled\"",
            // Stages with zero modeled time (the zeroed distance stage in
            // this sample) report null skew, not a fake 0.0.
            "\"wall_over_modeled\": null",
            "\"modeled_kernel_ms_7800gtx\"",
            "\"opt\": {",
            "\"kernel\": \"band_sum\", \"raw_instructions\": 5, \"opt_instructions\": 4",
            "\"kernel\": \"mei_partial\", \"raw_instructions\": 22, \"opt_instructions\": 19",
            "\"dynamic_instructions_raw\"",
            "\"dynamic_reduction_pct\"",
            "\"eliminated\": {\"consts_folded\": ",
            "\"modeled_kernel_ms_raw_7800gtx\"",
            "\"modeled_kernel_ms_opt_7800gtx\"",
            "\"isa_microbench\": {\"wall_raw_s\": 0.041000, \"wall_opt_s\": 0.034000}",
            "\"fusion\": {",
            "\"producer_kernel\": \"normalize\"",
            "\"mode\": \"substitute-site-coord\"",
            "\"normalize_distance_fetches_per_fragment\": {\"fused\": 462, \"unfused\": 672}",
            "\"static_fetch_reduction_pct\": 31.250000",
            "\"zero_fill_skips\": 41",
            "\"unfused_arm\": {",
            "\"distance_wall_s\": 0.310000",
            "\"measured_fetch_reduction_pct\": 100.000000",
            "\"fleet\": {",
            "\"chunking\": {\"lines_per_chunk\": 16, \"halo\": 2}",
            "\"baseline_device\": \"7800gtx\"",
            "\"baseline_modeled_s\": 0.024000",
            "\"name\": \"7800gtx+7800gtx\"",
            // 0.024 / 0.0125 — derived from the rounded inputs.
            "\"modeled_speedup\": 1.920000",
            "\"planned\": [0, 1]",
            "\"executed\": [0, 1, 3]",
            "\"modeled_s\": 0.007500",
            "\"gpu_caches\": {\"verify_runs\": 7",
            "\"cache_hit_rates\": {\"verify\": 0.995025",
            "\"name\": \"gpu.pass_wall\", \"count\": 1407",
            "\"buckets\": [{\"lo_ns\": 1048576, \"hi_ns\": 2097151, \"count\": 900}, \
             {\"lo_ns\": 4194304, \"hi_ns\": 8388607, \"count\": 507}]",
            "\"analysis\": {",
            "\"name\": \"headline\"",
            // 1.1 / 1.25 and 0.3 / 0.4 — derived from the rounded inputs.
            "\"critical_path_share\": 0.880000",
            "\"critical_path_stages\": [{\"stage\": \"distance\", \"self_s\": 0.600000}",
            "\"pack\": {\"total_s\": 0.400000, \"hidden_s\": 0.300000, \
             \"overlap_efficiency\": 0.750000}",
            "\"bus\": {\"busy_s\": 0.200000, \"contended_s\": 0.050000}",
            // 1.2 / 1.25 — thread utilization is derived, never parsed.
            "\"name\": \"main\", \"busy_s\": 1.200000, \"utilization\": 0.960000",
            "\"fleet\": null",
            // mean(0.6, 0.45) / 0.6 — the trace-side balance metric.
            "\"load_balance\": 0.875000",
            "\"device\": 0, \"label\": \"device0.7800gtx\", \"chunks\": 3, \"stolen\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // 6 pipeline stages plus the 4 critical-path attribution buckets in
        // the sample's analysis arms.
        assert_eq!(json.matches("\"stage\": ").count(), 10);
        assert_eq!(json.matches("\"kernel\": ").count(), 6);
        assert!(
            !json.contains("\"wall_over_modeled\": 0.000000"),
            "zero-modeled stages must serialize null skew:\n{json}"
        );
    }

    #[test]
    fn round_trip_is_bit_stable() {
        // Parse → re-serialize must reproduce the document byte for byte;
        // anything less means derived fields drifted from their inputs.
        let doc = to_json(&sample_run());
        let parsed = from_json(&doc).expect("document parses");
        assert_eq!(to_json(&parsed), doc);
        // And a second round proves the fixed point.
        let doc2 = to_json(&from_json(&to_json(&parsed)).unwrap());
        assert_eq!(doc2, doc);
    }

    #[test]
    fn schema_drift_fails_loudly() {
        let doc = to_json(&sample_run());
        // Wrong version.
        let old = doc.replace("\"schema_version\": 7", "\"schema_version\": 3");
        let err = from_json(&old).expect_err("version 3 must be rejected");
        assert!(err.contains("schema_version 3"), "{err}");
        // Unversioned document (the pre-observability layout).
        let unversioned = doc.replacen("  \"schema_version\": 7,\n", "", 1);
        let err = from_json(&unversioned).expect_err("missing version must be rejected");
        assert!(err.contains("schema_version"), "{err}");
        // A missing input key is an error, not a default.
        let broken = doc.replacen("\"cpu_tail_wall_s\"", "\"renamed_key\"", 1);
        assert!(from_json(&broken).is_err());
    }

    #[test]
    fn opt_rollup_attributes_stage_counters_exactly() {
        // A physically consistent run: 2 chunks, 3 band groups (G=3), 5
        // minmax passes per chunk, 100 fragments per pass, closure arms
        // counting the optimized per-fragment costs.
        let mut run = sample_run();
        run.chunks = 2;
        let frags = 100u64;
        let s = &mut run.stages;
        s.normalize = PassStats::default();
        s.normalize.passes = 12; // 2 * G * chunks
        s.normalize.fragments = 12 * frags;
        s.normalize.instructions = 6 * frags * (kernels::BAND_SUM_COST + kernels::NORMALIZE_COST);
        s.distance.passes = 8;
        s.distance.fragments = 8 * frags;
        s.distance.instructions = 8 * frags * kernels::SID_PARTIAL_COST;
        s.minmax.passes = 10; // p_B = 5 per chunk
        s.minmax.fragments = 10 * frags;
        s.minmax.instructions =
            2 * frags * kernels::MINMAX_INIT_COST + 8 * frags * kernels::MINMAX_UPDATE_COST;
        s.mei.passes = 6;
        s.mei.fragments = 6 * frags;
        s.mei.instructions = 6 * frags * kernels::MEI_PARTIAL_COST;

        let rollup = opt_rollup(&run);
        let got: Vec<_> = rollup
            .kernels
            .iter()
            .map(|k| {
                (
                    k.name.as_str(),
                    k.raw_instructions,
                    k.opt_instructions,
                    k.passes,
                    k.fragments,
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("band_sum", 5, 4, 6, 600),
                ("normalize", 6, 5, 6, 600),
                ("sid_partial", 14, 12, 8, 800),
                ("minmax_init", 4, 3, 2, 200),
                ("minmax_update", 9, 8, 8, 800),
                ("mei_partial", 22, 19, 6, 600),
            ]
        );
        // The optimized dynamic total reproduces the shaded instruction
        // counters stage for stage — the attribution is exact, not a model.
        let shaded = run.stages.normalize.instructions
            + run.stages.distance.instructions
            + run.stages.minmax.instructions
            + run.stages.mei.instructions;
        assert_eq!(rollup.dynamic_opt(), shaded);
        assert_eq!(rollup.dynamic_raw(), 39_000);
        assert!(
            rollup.reduction_pct() >= 10.0,
            "headline reduction {:.2}% < 10%",
            rollup.reduction_pct()
        );
        // Something must have been eliminated in every category the six
        // kernels exercise.
        assert!(rollup.counters.copies_propagated > 0);
        assert!(rollup.counters.dots_fused > 0);
        assert!(rollup.counters.outputs_coalesced > 0);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let mut p = Parser::new(r#"{"a": [1, 2.5, -3e2], "s": "q\"\\\nA", "b": true}"#);
        let v = p.value().unwrap();
        assert_eq!(v.get("a").unwrap().arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().arr().unwrap()[2].num().unwrap(), -300.0);
        assert_eq!(v.get("s").unwrap().str().unwrap(), "q\"\\\nA");
        assert_eq!(v.get("b").unwrap(), &Json::Bool(true));
        assert!(v.get("missing").is_err());
    }
}
