//! One triggering fixture per verifier diagnostic kind, plus smoke tests
//! for the `shader_lint` binary.
//!
//! The `.fp` fixtures under `tests/fixtures/` are assembled and fed to
//! [`gpu_sim::verify::verify`]; the two kinds the assembler makes
//! unrepresentable (`RegisterOutOfRange`, `MalformedInstr`) are built as
//! in-code [`Program`]s the way closure-free callers of the `Gpu` API
//! could.

use gpu_sim::asm::assemble;
use gpu_sim::isa::{Dst, Instr, Opcode, Program, Reg, Src};
use gpu_sim::verify::{has_errors, verify, DiagKind, PassBindings, Severity};
use gpu_sim::GpuProfile;

fn fixture(name: &str) -> Program {
    let path = format!("{}/tests/fixtures/{name}.fp", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assemble(&source).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn kinds(diags: &[gpu_sim::verify::Diagnostic]) -> Vec<DiagKind> {
    diags.iter().map(|d| d.kind).collect()
}

/// Minimal pass: one texture, one coordinate set, no constants, O0 read.
fn tight_pass() -> PassBindings {
    PassBindings {
        samplers: 1,
        texcoord_sets: 1,
        constants: Vec::new(),
        outputs_read: [true, false, false, false],
    }
}

#[test]
fn clean_fixture_has_no_diagnostics() {
    let p = fixture("clean");
    let profile = GpuProfile::fx5950_ultra();
    assert!(verify(&p, &profile, None).is_empty());
    assert!(verify(&p, &profile, Some(&tight_pass())).is_empty());
}

#[test]
fn use_before_def_fixture() {
    let d = verify(
        &fixture("use-before-def"),
        &GpuProfile::fx5950_ultra(),
        None,
    );
    assert!(kinds(&d).contains(&DiagKind::UseBeforeDef), "{d:?}");
    assert!(has_errors(&d));
    // The offending ADD sits on source line 4 of the fixture.
    let ubd = d.iter().find(|d| d.kind == DiagKind::UseBeforeDef).unwrap();
    assert_eq!(ubd.line, 4);
    assert!(ubd.message.contains("R2"), "{}", ubd.message);
}

#[test]
fn unbound_sampler_fixture() {
    let p = fixture("unbound-sampler");
    let profile = GpuProfile::fx5950_ultra();
    // Lint mode assumes all samplers bound; only the pass context trips it.
    assert!(verify(&p, &profile, None).is_empty());
    let d = verify(&p, &profile, Some(&tight_pass()));
    assert_eq!(kinds(&d), vec![DiagKind::UnboundSampler]);
}

#[test]
fn unbound_texcoord_fixture() {
    let d = verify(
        &fixture("unbound-texcoord"),
        &GpuProfile::fx5950_ultra(),
        Some(&tight_pass()),
    );
    assert_eq!(kinds(&d), vec![DiagKind::UnboundTexCoord]);
}

#[test]
fn undefined_const_fixture() {
    let d = verify(
        &fixture("undefined-const"),
        &GpuProfile::fx5950_ultra(),
        Some(&tight_pass()),
    );
    assert_eq!(kinds(&d), vec![DiagKind::UndefinedConst]);
}

#[test]
fn output_not_written_fixture() {
    let d = verify(
        &fixture("output-not-written"),
        &GpuProfile::fx5950_ultra(),
        None,
    );
    assert!(kinds(&d).contains(&DiagKind::OutputNotWritten), "{d:?}");
    assert!(has_errors(&d));
}

#[test]
fn too_many_instructions_fixture() {
    let p = fixture("too-many-instructions");
    let mut tiny = GpuProfile::fx5950_ultra();
    tiny.max_program_instrs = 4;
    let d = verify(&p, &tiny, None);
    assert_eq!(kinds(&d), vec![DiagKind::TooManyInstructions]);
    // The real profiles accept it.
    assert!(verify(&p, &GpuProfile::fx5950_ultra(), None).is_empty());
}

#[test]
fn tex_chain_too_deep_fixture() {
    let p = fixture("tex-chain-too-deep");
    let d = verify(&p, &GpuProfile::fx5950_ultra(), None);
    assert_eq!(kinds(&d), vec![DiagKind::TexChainTooDeep]);
    // The 7800 GTX allows chains of eight.
    assert!(verify(&p, &GpuProfile::geforce_7800gtx(), None).is_empty());
}

#[test]
fn dead_write_fixture() {
    let d = verify(&fixture("dead-write"), &GpuProfile::fx5950_ultra(), None);
    assert_eq!(kinds(&d), vec![DiagKind::DeadWrite]);
    assert_eq!(d[0].severity, Severity::Warning);
    assert!(!has_errors(&d));
}

#[test]
fn unguarded_math_input_fixture() {
    let d = verify(
        &fixture("unguarded-math-input"),
        &GpuProfile::fx5950_ultra(),
        None,
    );
    assert_eq!(kinds(&d), vec![DiagKind::UnguardedMathInput]);
    assert_eq!(d[0].severity, Severity::Warning);
}

#[test]
fn unused_const_fixture() {
    let d = verify(&fixture("unused-const"), &GpuProfile::fx5950_ultra(), None);
    assert_eq!(kinds(&d), vec![DiagKind::UnusedConst]);
    assert_eq!(d[0].line, 2);
}

#[test]
fn const_conflict_fixture() {
    let p = fixture("const-conflict");
    let profile = GpuProfile::fx5950_ultra();
    // Lint mode treats "all constants bound" as an assumption, not a clash.
    assert!(verify(&p, &profile, None).is_empty());
    let mut pass = tight_pass();
    pass.constants = vec![0];
    let d = verify(&p, &profile, Some(&pass));
    assert_eq!(kinds(&d), vec![DiagKind::ConstConflict]);
}

#[test]
fn register_out_of_range_program() {
    // The assembler rejects `R20`, so build the program directly.
    let p = Program {
        name: "fix-register-out-of-range".into(),
        defs: Vec::new(),
        instrs: vec![
            Instr {
                op: Opcode::Mov,
                dst: Dst::new(Reg::Temp(20)),
                srcs: vec![Src::new(Reg::TexCoord(0))],
                sampler: None,
                line: 0,
            },
            Instr {
                op: Opcode::Mov,
                dst: Dst::new(Reg::Output(0)),
                srcs: vec![Src::new(Reg::TexCoord(0))],
                sampler: None,
                line: 0,
            },
        ],
    };
    let d = verify(&p, &GpuProfile::fx5950_ultra(), None);
    assert_eq!(kinds(&d), vec![DiagKind::RegisterOutOfRange]);
}

#[test]
fn malformed_instr_program() {
    // ADD with a single operand: impossible to assemble, caught here.
    let p = Program {
        name: "fix-malformed-instr".into(),
        defs: Vec::new(),
        instrs: vec![
            Instr {
                op: Opcode::Add,
                dst: Dst::new(Reg::Temp(0)),
                srcs: vec![Src::new(Reg::TexCoord(0))],
                sampler: None,
                line: 0,
            },
            Instr {
                op: Opcode::Mov,
                dst: Dst::new(Reg::Output(0)),
                srcs: vec![Src::new(Reg::TexCoord(0))],
                sampler: None,
                line: 0,
            },
        ],
    };
    let d = verify(&p, &GpuProfile::fx5950_ultra(), None);
    assert_eq!(kinds(&d), vec![DiagKind::MalformedInstr]);
}

// --- shader_lint CLI smoke tests -------------------------------------------

fn run_lint(args: &[&str]) -> (String, i32) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_shader_lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("shader_lint runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn cli_clean_program_exits_zero() {
    let (stdout, code) = run_lint(&["tests/fixtures/clean.fp"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.is_empty(), "{stdout}");
}

#[test]
fn cli_reports_errors_rustc_style() {
    let (stdout, code) = run_lint(&["tests/fixtures/use-before-def.fp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("error[use-before-def]"), "{stdout}");
    assert!(stdout.contains("use-before-def.fp:4"), "{stdout}");
    assert!(stdout.contains("ADD R1, R0, R2"), "{stdout}");
}

#[test]
fn cli_warnings_gate_on_deny_warnings() {
    let (stdout, code) = run_lint(&["tests/fixtures/dead-write.fp"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("warning[dead-write]"), "{stdout}");
    let (_, code) = run_lint(&["--deny-warnings", "tests/fixtures/dead-write.fp"]);
    assert_eq!(code, 1);
}

#[test]
fn cli_binding_flags_enable_pass_mode() {
    let (stdout, code) = run_lint(&["--samplers", "1", "tests/fixtures/unbound-sampler.fp"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("error[unbound-sampler]"), "{stdout}");
    // With enough samplers the same file is clean.
    let (_, code) = run_lint(&["--samplers", "4", "tests/fixtures/unbound-sampler.fp"]);
    assert_eq!(code, 0);
}

#[test]
fn cli_rejects_unknown_flags() {
    let (_, code) = run_lint(&["--frobnicate"]);
    assert_eq!(code, 2);
}
