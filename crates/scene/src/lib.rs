//! # `hsi-scene` — synthetic AVIRIS-like scene generation
//!
//! The paper evaluates on the AVIRIS Indian Pines scene (2166 × 614 samples,
//! 216 calibrated bands, ~500 MB, 30+ ground-truth land-cover classes). That
//! data cannot ship with this repository, so this crate synthesises scenes
//! with the properties the algorithms actually exercise:
//!
//! * [`spectra`] — parametric reflectance signatures (vegetation red edge,
//!   soil continuum, water absorption, man-made flats) over an AVIRIS-like
//!   0.4–2.5 µm band axis;
//! * [`library`] — the 32 ground-truth classes of the paper's Table 3 with
//!   their published accuracies, used both to parameterise per-class pixel
//!   purity and as the reference the experiment harness compares against;
//! * [`scene`] — field-patch scene synthesis: rectangular agricultural
//!   fields, per-pixel sub-pixel mixing (the mechanism behind the paper's
//!   "heavily mixed pixels" narrative), sensor noise, ground truth;
//! * [`envi`] — ENVI-format header + raw cube I/O;
//! * [`render`] — PGM/PPM renders of bands, MEI maps and class maps
//!   (Fig. 5 analogue).

#![warn(missing_docs)]

pub mod envi;
pub mod library;
pub mod render;
pub mod scene;
pub mod spectra;

pub use library::{indian_pines_classes, ClassSpec};
pub use scene::{SceneConfig, SyntheticScene};
