!!FP1.0 fix-unbound-texcoord
# Reads interpolant T2; the pass supplies a single coordinate set.
TEX R0, T2, tex0
MOV OC, R0
