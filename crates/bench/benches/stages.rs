//! Per-stage kernel benchmarks: wall-clock of each pipeline stage pass on
//! the simulator, closure vs ISA kernel forms.

use amc_core::kernels;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use gpu_sim::raster::TexCoordSet;
use std::time::Duration;

const SIDE: usize = 64;

fn setup() -> (
    Gpu,
    gpu_sim::gpu::TextureId,
    gpu_sim::gpu::TextureId,
    gpu_sim::gpu::TextureId,
) {
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let a = gpu.alloc_texture(SIDE, SIDE).unwrap();
    let b = gpu.alloc_texture(SIDE, SIDE).unwrap();
    let out = gpu.alloc_texture(SIDE, SIDE).unwrap();
    let data: Vec<f32> = (0..SIDE * SIDE * 4)
        .map(|i| 0.001 + ((i * 37) % 211) as f32 / 211.0)
        .collect();
    gpu.upload(a, &data).unwrap();
    gpu.upload(b, &data).unwrap();
    (gpu, a, b, out)
}

fn bench_stage_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_kernels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));

    let (mut gpu, a, b, out) = setup();

    group.bench_function("band_sum_isa", |bench| {
        let prog = kernels::band_sum_program();
        bench.iter(|| {
            gpu.run_pass(&prog, &[a, b], &[], &[TexCoordSet::identity()], out, None)
                .unwrap()
        })
    });
    group.bench_function("band_sum_closure", |bench| {
        bench.iter(|| {
            gpu.run_closure_pass(&[a, b], out, kernels::BAND_SUM_COST, None, |f, x, y| {
                let t0 = f.fetch(0, x as i64, y as i64);
                let t1 = f.fetch(1, x as i64, y as i64);
                let d = t0[0] + t0[1] + t0[2] + t0[3];
                [d + t1[0], d + t1[1], d + t1[2], d + t1[3]]
            })
            .unwrap()
        })
    });
    group.bench_function("sid_partial_isa", |bench| {
        let prog = kernels::sid_partial_program();
        let coords = [
            TexCoordSet::identity(),
            TexCoordSet::shifted_texels(1, 1, SIDE, SIDE),
        ];
        bench.iter(|| {
            gpu.run_pass(&prog, &[a, b], &[], &coords, out, None)
                .unwrap()
        })
    });
    group.bench_function("sid_partial_closure", |bench| {
        bench.iter(|| {
            gpu.run_closure_pass(&[a, b], out, kernels::SID_PARTIAL_COST, None, |f, x, y| {
                let p = f.fetch(0, x as i64, y as i64);
                let q = f.fetch(0, x as i64 + 1, y as i64 + 1);
                let prev = f.fetch(1, x as i64, y as i64);
                let acc = kernels::sid_partial_value(p, q);
                [prev[0] + acc, prev[1] + acc, prev[2] + acc, prev[3] + acc]
            })
            .unwrap()
        })
    });
    group.bench_function("minmax_update_isa", |bench| {
        let prog = kernels::minmax_update_program();
        let coords = [
            TexCoordSet::identity(),
            TexCoordSet::shifted_texels(-1, 0, SIDE, SIDE),
        ];
        bench.iter(|| {
            gpu.run_pass(&prog, &[a, b], &[(0, [3.0; 4])], &coords, out, None)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_cache_ablation(c: &mut Criterion) {
    // Cache model on/off: functional output identical, simulation overhead
    // and counter fidelity differ.
    let mut group = c.benchmark_group("cache_model");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for enabled in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("sid_partial", enabled),
            &enabled,
            |bench, &enabled| {
                let (mut gpu, a, b, out) = setup();
                gpu.set_cache_model(enabled);
                bench.iter(|| {
                    gpu.run_closure_pass(&[a, b], out, 13, None, |f, x, y| {
                        let p = f.fetch(0, x as i64, y as i64);
                        let q = f.fetch(0, x as i64 + 1, y as i64);
                        let prev = f.fetch(1, x as i64, y as i64);
                        let acc = kernels::sid_partial_value(p, q);
                        [prev[0] + acc, prev[1] + acc, prev[2] + acc, prev[3] + acc]
                    })
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stage_kernels, bench_cache_ablation);
criterion_main!(benches);
