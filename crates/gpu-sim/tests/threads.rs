//! Determinism of the tiled multi-threaded executor.
//!
//! The executor's contract: render targets AND aggregate [`PassStats`] are
//! bit-identical at every thread count, because each tile shades with its
//! own counters and texture cache and the per-tile results merge in tile
//! order — never in scheduling order.

use gpu_sim::asm::assemble;
use gpu_sim::counters::PassStats;
use gpu_sim::gpu::Gpu;
use gpu_sim::raster::{TexCoordSet, TILE_ROWS, TILE_W};
use gpu_sim::GpuProfile;

/// Ragged multi-tile target: 3 tile columns x 4 tile bands, both partial.
const W: usize = 2 * TILE_W + 7;
const H: usize = 3 * TILE_ROWS + 2;

fn source_data(w: usize, h: usize) -> Vec<f32> {
    (0..w * h * 4)
        .map(|i| ((i.wrapping_mul(2654435761)) % 97) as f32 * 0.25 - 6.0)
        .collect()
}

fn isa_pass(threads: usize) -> (Vec<u32>, PassStats) {
    rayon::with_threads(threads, || {
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let src = gpu.alloc_texture(W, H).unwrap();
        let dst = gpu.alloc_texture(W, H).unwrap();
        gpu.upload(src, &source_data(W, H)).unwrap();
        let prog = assemble(
            "!!mix\n\
             DEF C0, 0.5, -1.5, 2.0, 0.25\n\
             TEX R0, T0, tex0\n\
             TEX R1, T1, tex1\n\
             MAD R2, R0, C0.x, R1\n\
             MAX R3, R2, C0.w\n\
             RSQ R4, R3.w\n\
             MUL OC, R3, R4.x",
        )
        .unwrap();
        let sets = [
            TexCoordSet::identity(),
            TexCoordSet::shifted_texels(1, -1, W, H),
        ];
        let stats = gpu
            .run_pass(
                &prog,
                &[src, src],
                &[(1, [0.75, 0.5, 0.25, 1.0])],
                &sets,
                dst,
                None,
            )
            .unwrap();
        let texels = gpu.download(dst).unwrap();
        (texels.iter().map(|v| v.to_bits()).collect(), stats)
    })
}

fn closure_pass(threads: usize) -> (Vec<u32>, PassStats) {
    rayon::with_threads(threads, || {
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let src = gpu.alloc_texture(W, H).unwrap();
        let dst = gpu.alloc_texture(W, H).unwrap();
        gpu.upload(src, &source_data(W, H)).unwrap();
        let stats = gpu
            .run_closure_pass(&[src], dst, 5, None, |f, x, y| {
                let c = f.fetch(0, x as i64, y as i64);
                let e = f.fetch(0, x as i64 + 1, y as i64);
                let s = f.fetch(0, x as i64, y as i64 + 1);
                [
                    c[0] + e[0] + s[0],
                    c[1] * e[1],
                    c[2] - s[2],
                    c[3].max(e[3]).max(s[3]),
                ]
            })
            .unwrap();
        let texels = gpu.download(dst).unwrap();
        (texels.iter().map(|v| v.to_bits()).collect(), stats)
    })
}

#[test]
fn isa_pass_is_bit_identical_at_every_thread_count() {
    let (seq_tex, seq_stats) = isa_pass(1);
    assert!(
        seq_stats.tiles > 1,
        "test target must span multiple tiles, got {}",
        seq_stats.tiles
    );
    for threads in [2, 4, 7] {
        let (tex, stats) = isa_pass(threads);
        assert_eq!(tex, seq_tex, "texels diverged at {threads} threads");
        assert_eq!(stats, seq_stats, "counters diverged at {threads} threads");
    }
}

#[test]
fn closure_pass_is_bit_identical_at_every_thread_count() {
    let (seq_tex, seq_stats) = closure_pass(1);
    assert!(seq_stats.tiles > 1);
    // The cache model runs per tile, so hit/miss splits must also match.
    assert!(seq_stats.cache_hits + seq_stats.cache_misses > 0);
    for threads in [2, 4, 7] {
        let (tex, stats) = closure_pass(threads);
        assert_eq!(tex, seq_tex, "texels diverged at {threads} threads");
        assert_eq!(stats, seq_stats, "counters diverged at {threads} threads");
    }
}

#[test]
fn aggregate_gpu_stats_match_across_thread_counts() {
    // Whole-device accumulation (multiple passes, upload/download bytes)
    // is also scheduling-independent.
    let run = |threads: usize| {
        rayon::with_threads(threads, || {
            let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
            let src = gpu.alloc_texture(W, H).unwrap();
            let a = gpu.alloc_texture(W, H).unwrap();
            let b = gpu.alloc_texture(W, H).unwrap();
            gpu.upload(src, &source_data(W, H)).unwrap();
            let prog = assemble("TEX R0, T0, tex0\nADD OC, R0, R0").unwrap();
            gpu.run_pass(&prog, &[src], &[], &[TexCoordSet::identity()], a, None)
                .unwrap();
            gpu.run_pass(&prog, &[a], &[], &[TexCoordSet::identity()], b, None)
                .unwrap();
            gpu.download(b).unwrap();
            gpu.stats()
        })
    };
    let seq = run(1);
    assert_eq!(run(4), seq);
}
