//! End-to-end AMC pipeline wall-clock scaling: the simulator must scale
//! linearly in pixel count (the paper's Tables 4-5 shape, here measured as
//! real host time of the functional simulation).

use amc_core::pipeline::{GpuAmc, KernelMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use hsi::cube::{Cube, CubeDims, Interleave};
use hsi::morphology::StructuringElement;
use std::time::Duration;

fn cube(side: usize, bands: usize) -> Cube {
    Cube::from_fn(
        CubeDims::new(side, side, bands),
        Interleave::Bip,
        |x, y, b| 10.0 + ((x * 31 + y * 17 + b * 7) % 97) as f32,
    )
    .unwrap()
}

fn bench_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("amc_pipeline_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let se = StructuringElement::square(3).unwrap();
    for side in [16usize, 24, 32] {
        let cb = cube(side, 8);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |bench, _| {
            let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
            let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
            bench.iter(|| amc.run(&mut gpu, &cb).unwrap())
        });
    }
    group.finish();
}

fn bench_band_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("amc_pipeline_bands");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let se = StructuringElement::square(3).unwrap();
    for bands in [4usize, 8, 16] {
        let cb = cube(20, bands);
        group.throughput(Throughput::Elements(bands as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bands), &bands, |bench, _| {
            let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
            let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
            bench.iter(|| amc.run(&mut gpu, &cb).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_size_scaling, bench_band_scaling);
criterion_main!(benches);
