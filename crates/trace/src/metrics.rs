//! Always-on metrics registry: monotonic counters and log₂-bucket latency
//! histograms with p50/p95/p99 summaries.
//!
//! Unlike the timeline recorder in the crate root, the registry is not
//! gated on [`crate::enabled`]: it is fed at pass/stage granularity (tens
//! to thousands of updates per run), where one short mutex lock per update
//! is negligible, and its snapshot feeds `BENCH_results.json` even when no
//! trace is captured.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Number of log₂ buckets: index `i > 0` covers `[2^(i-1), 2^i - 1]` ns,
/// index 0 covers exactly 0 ns, and the last bucket is open-ended.
const BUCKETS: usize = 65;

#[derive(Clone)]
struct Hist {
    count: u64,
    sum_ns: u64,
    /// Largest observation recorded, nanoseconds. Reported percentiles are
    /// clamped to it: a bucket midpoint can exceed every sample the bucket
    /// holds (a 337 ms observation lands in the [268 ms, 537 ms) bucket,
    /// whose midpoint is ~402 ms), and an estimate above the observed
    /// maximum is a leak, not an estimate.
    max_ns: u64,
    buckets: [u64; BUCKETS],
}

impl Hist {
    const fn new() -> Self {
        Hist {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Percentile estimate: walk the cumulative bucket counts and return
    /// the midpoint of the bucket holding the q-th sample, clamped to the
    /// observed maximum so no quantile ever exceeds a real sample.
    fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_midpoint_ns(i).min(self.max_ns);
            }
        }
        bucket_midpoint_ns(BUCKETS - 1).min(self.max_ns)
    }
}

fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Representative (midpoint) latency for a bucket.
fn bucket_midpoint_ns(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let (low, high) = bucket_bounds_ns(i);
    low + (high - low) / 2
}

/// Inclusive `[lo, hi]` bounds of bucket `i`: bucket 0 holds exactly 0 ns,
/// bucket `i > 0` holds `[2^(i-1), 2^i - 1]`, and the last bucket is
/// open-ended (its `hi` saturates at `u64::MAX`).
pub fn bucket_bounds_ns(i: usize) -> (u64, u64) {
    if i == 0 {
        return (0, 0);
    }
    let i = i.min(BUCKETS - 1);
    let low = 1u64 << (i - 1);
    let high = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
    (low, high)
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

/// Add `by` to the named monotonic counter (created at zero on first use).
pub fn incr(name: &'static str, by: u64) {
    let mut reg = registry().lock().unwrap();
    *reg.counters.entry(name).or_insert(0) += by;
}

/// Record one latency observation, in nanoseconds, into the named
/// log₂-bucket histogram (created empty on first use).
pub fn observe_ns(name: &'static str, ns: u64) {
    let mut reg = registry().lock().unwrap();
    reg.hists.entry(name).or_insert_with(Hist::new).observe(ns);
}

/// Record one latency observation from a [`std::time::Duration`].
pub fn observe(name: &'static str, d: std::time::Duration) {
    observe_ns(name, d.as_nanos() as u64);
}

/// One populated log₂ bucket of a latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive lower bound of the bucket, nanoseconds.
    pub lo_ns: u64,
    /// Inclusive upper bound (`u64::MAX` for the open-ended last bucket).
    pub hi_ns: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Summary of one latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Median latency estimate (bucket midpoint), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency estimate, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency estimate, nanoseconds.
    pub p99_ns: u64,
    /// The populated buckets (zero-count buckets omitted), in latency order.
    pub buckets: Vec<HistBucket>,
}

/// Point-in-time copy of the registry, names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every monotonic counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` for every latency histogram.
    pub histograms: Vec<(String, HistSummary)>,
}

/// Snapshot every counter and histogram summary, sorted by name.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().unwrap();
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        histograms: reg
            .hists
            .iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    HistSummary {
                        count: h.count,
                        sum_ns: h.sum_ns,
                        p50_ns: h.percentile_ns(0.50),
                        p95_ns: h.percentile_ns(0.95),
                        p99_ns: h.percentile_ns(0.99),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(i, &count)| {
                                let (lo_ns, hi_ns) = bucket_bounds_ns(i);
                                HistBucket {
                                    lo_ns,
                                    hi_ns,
                                    count,
                                }
                            })
                            .collect(),
                    },
                )
            })
            .collect(),
    }
}

/// Clear every counter and histogram (for tests and repeated runs).
pub fn reset() {
    let mut reg = registry().lock().unwrap();
    reg.counters.clear();
    reg.hists.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; serialize tests that reset it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn bucket_edges_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Midpoint sits inside its own bucket.
        for i in 1..64 {
            assert_eq!(bucket_index(bucket_midpoint_ns(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        incr("b.second", 2);
        incr("a.first", 1);
        incr("b.second", 3);
        let snap = snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("b.second".to_string(), 5)]
        );
        reset();
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn histogram_percentiles_track_the_tail() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        // 95 fast observations (~1 µs) and 5 slow ones (~1 ms).
        for _ in 0..95 {
            observe_ns("lat", 1_000);
        }
        for _ in 0..5 {
            observe_ns("lat", 1_000_000);
        }
        let snap = snapshot();
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 100);
        assert_eq!(h.sum_ns, 95 * 1_000 + 5 * 1_000_000);
        // p50 lands in the 1 µs bucket, p99 in the 1 ms bucket.
        assert_eq!(bucket_index(h.p50_ns), bucket_index(1_000));
        assert_eq!(bucket_index(h.p95_ns), bucket_index(1_000));
        assert_eq!(bucket_index(h.p99_ns), bucket_index(1_000_000));
        assert!(h.p50_ns <= h.p95_ns && h.p95_ns <= h.p99_ns);
        reset();
    }

    #[test]
    fn snapshot_exports_populated_bucket_bounds() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        observe_ns("lat", 0);
        observe_ns("lat", 3);
        observe_ns("lat", 3);
        observe_ns("lat", 1_000);
        let snap = snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(
            h.buckets,
            vec![
                HistBucket {
                    lo_ns: 0,
                    hi_ns: 0,
                    count: 1
                },
                HistBucket {
                    lo_ns: 2,
                    hi_ns: 3,
                    count: 2
                },
                HistBucket {
                    lo_ns: 512,
                    hi_ns: 1023,
                    count: 1
                },
            ]
        );
        assert_eq!(h.buckets.iter().map(|b| b.count).sum::<u64>(), h.count);
        // Every sample's bucket bounds bracket the bucket's own index.
        for (i, (lo, hi)) in (0..BUCKETS).map(|i| (i, bucket_bounds_ns(i))) {
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
        reset();
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Hist::new();
        assert_eq!(h.percentile_ns(0.5), 0);
    }

    #[test]
    fn count_one_percentiles_equal_the_recorded_value() {
        // The pipeline.chunk_wall regression: one 337 ms observation lands
        // in the [268 ms, 537 ms) bucket, whose midpoint (~402 ms) exceeds
        // the only sample ever recorded. Every percentile of a count=1
        // histogram must report exactly that sample.
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        let recorded = 337_000_000u64; // 337 ms in ns
        observe_ns("chunk_wall", recorded);
        let snap = snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.count, 1);
        assert_eq!(h.p50_ns, recorded);
        assert_eq!(h.p95_ns, recorded);
        assert_eq!(h.p99_ns, recorded);
        reset();
        // A sample below its bucket midpoint is untouched by the clamp and
        // still reported via the midpoint — unless it IS the maximum, in
        // which case the clamp pins it exactly.
        let mut hist = Hist::new();
        hist.observe(300_000_000);
        assert_eq!(hist.percentile_ns(0.5), 300_000_000);
        assert_eq!(hist.percentile_ns(0.99), 300_000_000);
    }

    #[test]
    fn percentiles_never_exceed_observed_max() {
        let mut hist = Hist::new();
        for ns in [1_000u64, 2_500, 337_000_000] {
            hist.observe(ns);
        }
        for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
            assert!(hist.percentile_ns(q) <= 337_000_000, "q={q}");
        }
    }
}
