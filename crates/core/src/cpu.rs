//! CPU reference implementations of the AMC morphological stage.
//!
//! The paper's baselines are "hand-tuned to exploit data locality and
//! maximize computation reuse" and built two ways: gcc 4.0 (scalar code) and
//! icc 9.0 (autovectorised SSE). We model both *code shapes*:
//!
//! * [`run_scalar`] — straightforward scalar band loops (what gcc emits);
//! * [`run_simd4`] — the same computation blocked into 4-wide lanes exactly
//!   like the GPU's RGBA packing (the form icc's autovectoriser produces).
//!
//! Both return identical classifications (floating-point grouping differs
//! within tolerance) plus an exact operation count; the *compiler/platform*
//! distinction (how fast those operations retire on a Northwood vs Prescott,
//! gcc vs icc) is applied by `gpu_sim::timing::cpu_time_ms`.

use crate::kernels;
use crate::layout;
use gpu_sim::timing::CpuWork;
use hsi::cube::Cube;
use hsi::morphology::{self, MeiImage, MorphResult, StructuringElement};
use hsi::spectral::SpectralDistance;

/// Floating-point operations we charge per band per SID evaluation
/// (2 ε-guards, reciprocal, ratio multiply, log, ln-scale multiply,
/// difference, product, accumulate).
pub const FLOPS_PER_SID_BAND: u64 = 9;

/// Result of one CPU AMC morphological run.
#[derive(Debug, Clone)]
pub struct CpuAmcResult {
    /// The MEI score image.
    pub mei: MeiImage,
    /// Erosion/dilation selection per pixel.
    pub morph: MorphResult,
    /// Counted work for the timing model.
    pub work: CpuWork,
}

/// Analytic operation count of the morphological stage for a cube of the
/// given dimensions and a `p_b`-neighbour SE — the same formula for both
/// code shapes (they execute the same arithmetic).
pub fn amc_work(dims: hsi::cube::CubeDims, p_b: usize) -> CpuWork {
    let pixels = dims.pixels() as u64;
    let n = dims.bands as u64;
    let p_b = p_b as u64;
    // Normalization: N adds (band sum) + N multiplies per pixel.
    let normalize = 2 * n;
    // Cumulative field: (p_B − 1) non-null neighbours, one SID each.
    let field = (p_b - 1) * n * FLOPS_PER_SID_BAND;
    // Min/max: two comparisons per neighbour.
    let minmax = 2 * p_b;
    // MEI: one SID between the selected extrema.
    let mei = n * FLOPS_PER_SID_BAND;
    let flops = pixels * (normalize + field + minmax + mei);
    // Streaming traffic: read the cube, write/read the normalized copy,
    // plus the small field/score rasters (2 f32 reads + 3 f32 writes/pixel).
    let bytes = dims.samples() as u64 * 4 * 3 + pixels * 4 * 5;
    CpuWork { flops, bytes }
}

/// Scalar ("gcc-shaped") implementation: per-pixel band loops using the
/// natural-log SID of the `hsi` crate.
pub fn run_scalar(cube: &Cube, se: &StructuringElement) -> CpuAmcResult {
    let normalized = morphology::normalize_cube(cube);
    let (mei, morph) = morphology::mei(&normalized, se, SpectralDistance::Sid);
    CpuAmcResult {
        mei,
        morph,
        work: amc_work(cube.dims(), se.len()),
    }
}

/// SIMD4 ("icc-shaped") implementation: bands processed in groups of four
/// lanes with per-lane ε-guards and `log2·ln2`, exactly the arithmetic of
/// the GPU kernels.
pub fn run_simd4(cube: &Cube, se: &StructuringElement) -> CpuAmcResult {
    let dims = cube.dims();
    let (w, h) = (dims.width, dims.height);
    let groups = layout::band_groups(dims.bands);
    let offsets = se.offsets();

    // Normalization over packed 4-lane planes.
    let packed = layout::pack_cube(cube);
    let mut norm: Vec<Vec<f32>> = packed.clone();
    for y in 0..h {
        for x in 0..w {
            let base = (y * w + x) * 4;
            let mut sum = 0.0f32;
            for plane in &packed {
                sum += plane[base] + plane[base + 1] + plane[base + 2] + plane[base + 3];
            }
            let inv = 1.0 / sum.max(1e-30);
            for plane in norm.iter_mut() {
                for lane in 0..4 {
                    plane[base + lane] *= inv;
                }
            }
        }
    }

    let texel = |plane: &Vec<f32>, x: i64, y: i64| -> [f32; 4] {
        let cx = x.clamp(0, w as i64 - 1) as usize;
        let cy = y.clamp(0, h as i64 - 1) as usize;
        let base = (cy * w + cx) * 4;
        [
            plane[base],
            plane[base + 1],
            plane[base + 2],
            plane[base + 3],
        ]
    };

    let sid4 = |ax: i64, ay: i64, bx: i64, by: i64| -> f32 {
        let mut acc = 0.0f32;
        for plane in norm.iter().take(groups) {
            let p = texel(plane, ax, ay);
            let q = texel(plane, bx, by);
            acc += kernels::sid_partial_value(p, q);
        }
        acc
    };

    // Cumulative field.
    let mut field = vec![0.0f32; w * h];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut acc = 0.0f32;
            for &(dx, dy) in offsets.iter().filter(|&&o| o != (0, 0)) {
                acc += sid4(x, y, x + dx as i64, y + dy as i64);
            }
            field[y as usize * w + x as usize] = acc;
        }
    }

    let morph = morphology::erode_dilate_from_field(w, h, se, &field);

    // MEI between the selected extrema.
    let mut scores = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let (mindx, mindy) = offsets[morph.min_index[i] as usize];
            let (maxdx, maxdy) = offsets[morph.max_index[i] as usize];
            scores[i] = sid4(
                x as i64 + maxdx as i64,
                y as i64 + maxdy as i64,
                x as i64 + mindx as i64,
                y as i64 + mindy as i64,
            );
        }
    }

    CpuAmcResult {
        mei: MeiImage {
            width: w,
            height: h,
            scores,
        },
        morph,
        work: amc_work(dims, se.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::cube::{CubeDims, Interleave};

    fn test_cube(w: usize, h: usize, bands: usize) -> Cube {
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 16777216.0
        };
        Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |_, _, _| {
            10.0 + 100.0 * next()
        })
        .unwrap()
    }

    #[test]
    fn scalar_and_simd4_agree_within_tolerance() {
        let cube = test_cube(10, 8, 7);
        let se = StructuringElement::square(3).unwrap();
        let a = run_scalar(&cube, &se);
        let b = run_simd4(&cube, &se);
        assert_eq!(a.morph.min_index, b.morph.min_index);
        assert_eq!(a.morph.max_index, b.morph.max_index);
        for (x, y) in a.mei.scores.iter().zip(&b.mei.scores) {
            assert!((x - y).abs() < 1e-4 * (1.0 + x.abs()), "{x} vs {y}");
        }
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn work_formula_scales_linearly_in_pixels() {
        let d1 = CubeDims::new(100, 100, 216);
        let d2 = CubeDims::new(100, 200, 216);
        let w1 = amc_work(d1, 9);
        let w2 = amc_work(d2, 9);
        assert_eq!(w2.flops, 2 * w1.flops);
        assert_eq!(w2.bytes, 2 * w1.bytes);
    }

    #[test]
    fn work_formula_known_value() {
        // 1 pixel, 4 bands, 9 neighbours:
        // normalize 8 + field 8·4·9 = 288 + minmax 18 + mei 36 = 350.
        let w = amc_work(CubeDims::new(1, 1, 4), 9);
        assert_eq!(w.flops, 350);
    }

    #[test]
    fn simd4_handles_band_padding() {
        // 6 bands → 2 groups with 2 padded lanes.
        let cube = test_cube(6, 6, 6);
        let se = StructuringElement::square(3).unwrap();
        let a = run_scalar(&cube, &se);
        let b = run_simd4(&cube, &se);
        assert_eq!(a.morph.max_index, b.morph.max_index);
        for (x, y) in a.mei.scores.iter().zip(&b.mei.scores) {
            assert!((x - y).abs() < 1e-4 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn results_identify_boundary_structure() {
        // Two-material half-planes: MEI concentrates at the boundary for
        // both implementations.
        let a_mat = [100.0f32, 10.0, 10.0, 20.0];
        let b_mat = [10.0f32, 10.0, 100.0, 20.0];
        let cube = Cube::from_fn(CubeDims::new(8, 4, 4), Interleave::Bip, |x, _, b| {
            if x < 4 {
                a_mat[b]
            } else {
                b_mat[b]
            }
        })
        .unwrap();
        let se = StructuringElement::square(3).unwrap();
        for result in [run_scalar(&cube, &se), run_simd4(&cube, &se)] {
            // The window at x=4 spans both materials; tie-breaking makes it
            // the first column whose erosion/dilation pixels differ.
            assert!(result.mei.get(4, 2) > 1e-3);
            assert!(result.mei.get(0, 2) < 1e-6);
            assert!(result.mei.get(7, 2) < 1e-6);
        }
    }
}
