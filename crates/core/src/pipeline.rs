//! The stream-based AMC pipeline (Fig. 4 of the paper).
//!
//! Per spatial chunk the stages are:
//!
//! 1. **Stream uploading** — band-group planes ([`crate::layout`]) become
//!    textures on the device.
//! 2. **Normalization** — band sums accumulate over the group stack
//!    (ping-pong), then each group is divided by the total (eqs. 3–4).
//! 3. **Cumulative distance** — the `D_B` field of eq. 1 accumulates one
//!    partial SID per (SE offset, band group) pass; neighbour access is a
//!    δ-shifted texture-coordinate set.
//! 4. **Maximum and minimum** — a running `(minval, minidx, maxval, maxidx)`
//!    state stream folds in each neighbour's cumulative distance (eqs. 5–6).
//! 5. **Compute SID** — dependent texture reads fetch the erosion and
//!    dilation pixels selected by stage 4 and accumulate their SID over the
//!    band groups: the MEI score.
//! 6. **Stream downloading** — the MEI stream (and the min/max index
//!    stream) return to the host.
//!
//! Chunking follows the paper: when the working set exceeds video memory
//! the image is split into runs of entire lines ("chunks made up of entire
//! pixel vectors"), with enough halo lines (2× the SE radius — the field at
//! a neighbour looks one radius further) for chunked output to be exactly
//! chunk-free.

use crate::kernels::{self, KERNEL_SET};
use crate::layout;
use gpu_sim::counters::PassStats;
use gpu_sim::gpu::{Gpu, TextureId};
use gpu_sim::raster::TexCoordSet;
use hsi::cube::{Chunking, Cube};
use hsi::morphology::{MeiImage, StructuringElement};
use std::fmt;

/// Which kernel implementation executes the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Assembled fp30-style programs through the ISA interpreter (faithful,
    /// slower to simulate).
    Isa,
    /// Closure twins with identical arithmetic (fast path). Declared
    /// instruction costs match the ISA programs, so counters agree.
    #[default]
    Closure,
}

/// Pipeline errors: device errors plus host-side validation.
#[derive(Debug)]
pub enum AmcError {
    /// Error from the simulated device.
    Gpu(gpu_sim::GpuError),
    /// Error from the hyperspectral substrate.
    Hsi(hsi::HsiError),
}

impl fmt::Display for AmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmcError::Gpu(e) => write!(f, "gpu: {e}"),
            AmcError::Hsi(e) => write!(f, "hsi: {e}"),
        }
    }
}

impl std::error::Error for AmcError {}

impl From<gpu_sim::GpuError> for AmcError {
    fn from(e: gpu_sim::GpuError) -> Self {
        AmcError::Gpu(e)
    }
}

impl From<hsi::HsiError> for AmcError {
    fn from(e: hsi::HsiError) -> Self {
        AmcError::Hsi(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, AmcError>;

/// Output of one pipeline run over a full image.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The MEI score image (stage 5 output).
    pub mei: MeiImage,
    /// Per-pixel SE-offset index of the erosion pixel.
    pub min_index: Vec<u32>,
    /// Per-pixel SE-offset index of the dilation pixel.
    pub max_index: Vec<u32>,
    /// Work counted across all passes and chunks.
    pub stats: PassStats,
    /// Number of chunks processed.
    pub chunks: usize,
}

/// The GPU AMC pipeline driver.
#[derive(Debug, Clone)]
pub struct GpuAmc {
    se: StructuringElement,
    mode: KernelMode,
}

impl GpuAmc {
    /// Create a driver for the given structuring element and kernel mode.
    pub fn new(se: StructuringElement, mode: KernelMode) -> Self {
        Self { se, mode }
    }

    /// The structuring element.
    pub fn se(&self) -> &StructuringElement {
        &self.se
    }

    /// Kernel mode in use.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Video-memory bytes one chunk of `lines` lines needs: band planes +
    /// normalized planes (transiently both resident) + field/state/MEI
    /// ping-pongs + the offset LUT.
    pub fn chunk_bytes(&self, width: usize, lines: usize, bands: usize) -> usize {
        let plane = layout::plane_bytes(width, lines);
        let groups = layout::band_groups(bands);
        // band[g] and norm[g] coexist only pairwise (bands freed as
        // normalization consumes them), so peak is G + 1 planes for data,
        // plus 2 sum + 2 field + 2 state + 2 MEI ping-pong planes.
        (groups + 1 + 8) * plane + self.se.len() * 16
    }

    /// Pick a chunking that fits the device's free memory.
    pub fn plan_chunking(&self, gpu: &Gpu, cube: &Cube) -> Chunking {
        let dims = cube.dims();
        let halo = 2 * self.se.radius_y();
        let budget = gpu.profile().video_memory_bytes();
        // Find the largest line count whose chunk fits.
        let mut lines = dims.height;
        while lines > 1 && self.chunk_bytes(dims.width, lines + 2 * halo, dims.bands) > budget {
            lines /= 2;
        }
        Chunking::new(lines.max(1), halo)
    }

    /// Run the full pipeline over a cube, chunking as needed.
    pub fn run(&self, gpu: &mut Gpu, cube: &Cube) -> Result<PipelineOutput> {
        let dims = cube.dims();
        let chunking = self.plan_chunking(gpu, cube);
        let start_stats = gpu.stats();
        let mut mei_scores = vec![0.0f32; dims.pixels()];
        let mut min_index = vec![0u32; dims.pixels()];
        let mut max_index = vec![0u32; dims.pixels()];
        let mut chunks = 0usize;
        for chunk in cube.chunks(chunking) {
            let out = self.run_chunk(gpu, &chunk.cube)?;
            let cw = chunk.cube.dims().width;
            for local_y in chunk.body_range() {
                let global_y = chunk.y_start + (local_y - chunk.halo_top);
                let src = local_y * cw;
                let dst = global_y * dims.width;
                mei_scores[dst..dst + cw].copy_from_slice(&out.mei.scores[src..src + cw]);
                min_index[dst..dst + cw].copy_from_slice(&out.min_index[src..src + cw]);
                max_index[dst..dst + cw].copy_from_slice(&out.max_index[src..src + cw]);
            }
            chunks += 1;
        }
        let mut total = gpu.stats();
        // Report only this run's work.
        total = subtract(total, start_stats);
        Ok(PipelineOutput {
            mei: MeiImage {
                width: dims.width,
                height: dims.height,
                scores: mei_scores,
            },
            min_index,
            max_index,
            stats: total,
            chunks,
        })
    }

    /// Run stages 1–6 on one resident chunk (no further splitting).
    pub fn run_chunk(&self, gpu: &mut Gpu, cube: &Cube) -> Result<PipelineOutput> {
        let dims = cube.dims();
        let (w, h) = (dims.width, dims.height);
        let groups = layout::band_groups(dims.bands);
        let offsets = self.se.offsets();
        let p_b = offsets.len();
        let start_stats = gpu.stats();

        // -- Stage 1: stream uploading ------------------------------------
        let mut band_tex: Vec<TextureId> = Vec::with_capacity(groups);
        for g in 0..groups {
            let t = gpu.alloc_texture(w, h)?;
            gpu.upload(t, &layout::pack_band_group(cube, g))?;
            band_tex.push(t);
        }
        let lut = gpu.alloc_texture(p_b, 1)?;
        gpu.upload(lut, &kernels::offset_lut(&offsets, w, h))?;

        // -- Stage 2: normalization ---------------------------------------
        let mut sum_a = gpu.alloc_texture(w, h)?; // zero-initialised
        let mut sum_b = gpu.alloc_texture(w, h)?;
        for &bt in &band_tex {
            self.pass_band_sum(gpu, bt, sum_a, sum_b)?;
            std::mem::swap(&mut sum_a, &mut sum_b);
        }
        // `sum_a` now holds the total band sum.
        let mut norm_tex: Vec<TextureId> = Vec::with_capacity(groups);
        for &bt in &band_tex {
            let nt = gpu.alloc_texture(w, h)?;
            self.pass_normalize(gpu, bt, sum_a, nt)?;
            gpu.free_texture(bt)?;
            norm_tex.push(nt);
        }
        gpu.free_texture(sum_b)?;

        // -- Stage 3: cumulative distance (the D_B field) ------------------
        let mut d_a = gpu.alloc_texture(w, h)?;
        let mut d_b = gpu.alloc_texture(w, h)?;
        for &(dx, dy) in offsets.iter().filter(|&&o| o != (0, 0)) {
            for &nt in &norm_tex {
                self.pass_sid_partial(gpu, nt, d_a, d_b, dx, dy, w, h)?;
                std::mem::swap(&mut d_a, &mut d_b);
            }
        }
        // `d_a` holds the field.

        // -- Stage 4: maximum and minimum ----------------------------------
        let mut st_a = gpu.alloc_texture(w, h)?;
        let mut st_b = gpu.alloc_texture(w, h)?;
        self.pass_minmax_init(gpu, d_a, st_a, offsets[0], w, h)?;
        for (k, &(dx, dy)) in offsets.iter().enumerate().skip(1) {
            self.pass_minmax_update(gpu, st_a, d_a, st_b, k as f32, (dx, dy), w, h)?;
            std::mem::swap(&mut st_a, &mut st_b);
        }
        // `st_a` holds (minval, minidx, maxval, maxidx).

        // -- Stage 5: compute SID (MEI accumulation) -----------------------
        let mut mei_a = gpu.alloc_texture(w, h)?;
        let mut mei_b = gpu.alloc_texture(w, h)?;
        for &nt in &norm_tex {
            self.pass_mei_partial(gpu, nt, st_a, mei_a, lut, mei_b, p_b, &offsets)?;
            std::mem::swap(&mut mei_a, &mut mei_b);
        }

        // -- Stage 6: stream downloading ------------------------------------
        let mei_flat = gpu.download(mei_a)?;
        let state_flat = gpu.download(st_a)?;
        let mut scores = Vec::with_capacity(w * h);
        let mut min_index = Vec::with_capacity(w * h);
        let mut max_index = Vec::with_capacity(w * h);
        for texel in mei_flat.chunks_exact(4) {
            scores.push(texel[0]);
        }
        for texel in state_flat.chunks_exact(4) {
            min_index.push(texel[1].round() as u32);
            max_index.push(texel[3].round() as u32);
        }

        // Cleanup.
        for nt in norm_tex {
            gpu.free_texture(nt)?;
        }
        for t in [sum_a, d_a, d_b, st_a, st_b, mei_a, mei_b, lut] {
            gpu.free_texture(t)?;
        }

        let stats = subtract(gpu.stats(), start_stats);
        Ok(PipelineOutput {
            mei: MeiImage {
                width: w,
                height: h,
                scores,
            },
            min_index,
            max_index,
            stats,
            chunks: 1,
        })
    }

    // -- individual passes ------------------------------------------------

    fn pass_band_sum(
        &self,
        gpu: &mut Gpu,
        band: TextureId,
        sum_prev: TextureId,
        sum_next: TextureId,
    ) -> Result<()> {
        match self.mode {
            KernelMode::Isa => {
                gpu.run_pass(
                    &KERNEL_SET.band_sum,
                    &[band, sum_prev],
                    &[],
                    &[TexCoordSet::identity()],
                    sum_next,
                    None,
                )?;
            }
            KernelMode::Closure => {
                gpu.run_closure_pass(
                    &[band, sum_prev],
                    sum_next,
                    kernels::BAND_SUM_COST,
                    None,
                    |f, x, y| {
                        let t0 = f.fetch(0, x as i64, y as i64);
                        let t1 = f.fetch(1, x as i64, y as i64);
                        let d = t0[0] * 1.0 + t0[1] * 1.0 + t0[2] * 1.0 + t0[3] * 1.0;
                        [d + t1[0], d + t1[1], d + t1[2], d + t1[3]]
                    },
                )?;
            }
        }
        Ok(())
    }

    fn pass_normalize(
        &self,
        gpu: &mut Gpu,
        band: TextureId,
        sum: TextureId,
        out: TextureId,
    ) -> Result<()> {
        match self.mode {
            KernelMode::Isa => {
                gpu.run_pass(
                    &KERNEL_SET.normalize,
                    &[band, sum],
                    &[],
                    &[TexCoordSet::identity()],
                    out,
                    None,
                )?;
            }
            KernelMode::Closure => {
                gpu.run_closure_pass(
                    &[band, sum],
                    out,
                    kernels::NORMALIZE_COST,
                    None,
                    |f, x, y| {
                        let t0 = f.fetch(0, x as i64, y as i64);
                        let t1 = f.fetch(1, x as i64, y as i64);
                        let s = t1[0].max(1e-30);
                        let r = 1.0 / s;
                        [t0[0] * r, t0[1] * r, t0[2] * r, t0[3] * r]
                    },
                )?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn pass_sid_partial(
        &self,
        gpu: &mut Gpu,
        norm: TextureId,
        d_prev: TextureId,
        d_next: TextureId,
        dx: i32,
        dy: i32,
        w: usize,
        h: usize,
    ) -> Result<()> {
        match self.mode {
            KernelMode::Isa => {
                gpu.run_pass(
                    &KERNEL_SET.sid_partial,
                    &[norm, d_prev],
                    &[],
                    &[
                        TexCoordSet::identity(),
                        TexCoordSet::shifted_texels(dx, dy, w, h),
                    ],
                    d_next,
                    None,
                )?;
            }
            KernelMode::Closure => {
                gpu.run_closure_pass(
                    &[norm, d_prev],
                    d_next,
                    kernels::SID_PARTIAL_COST,
                    None,
                    move |f, x, y| {
                        let p = f.fetch(0, x as i64, y as i64);
                        let q = f.fetch(0, x as i64 + dx as i64, y as i64 + dy as i64);
                        let prev = f.fetch(1, x as i64, y as i64);
                        let acc = kernels::sid_partial_value(p, q);
                        [prev[0] + acc, prev[1] + acc, prev[2] + acc, prev[3] + acc]
                    },
                )?;
            }
        }
        Ok(())
    }

    fn pass_minmax_init(
        &self,
        gpu: &mut Gpu,
        field: TextureId,
        state: TextureId,
        delta0: (i32, i32),
        w: usize,
        h: usize,
    ) -> Result<()> {
        let (dx, dy) = delta0;
        match self.mode {
            KernelMode::Isa => {
                gpu.run_pass(
                    &KERNEL_SET.minmax_init,
                    &[field],
                    &[],
                    &[TexCoordSet::shifted_texels(dx, dy, w, h)],
                    state,
                    None,
                )?;
            }
            KernelMode::Closure => {
                gpu.run_closure_pass(
                    &[field],
                    state,
                    kernels::MINMAX_INIT_COST,
                    None,
                    move |f, x, y| {
                        let d = f.fetch(0, x as i64 + dx as i64, y as i64 + dy as i64);
                        [d[0], 0.0, d[0], 0.0]
                    },
                )?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn pass_minmax_update(
        &self,
        gpu: &mut Gpu,
        state_prev: TextureId,
        field: TextureId,
        state_next: TextureId,
        k: f32,
        delta: (i32, i32),
        w: usize,
        h: usize,
    ) -> Result<()> {
        let (dx, dy) = delta;
        match self.mode {
            KernelMode::Isa => {
                gpu.run_pass(
                    &KERNEL_SET.minmax_update,
                    &[state_prev, field],
                    &[(0, [k; 4])],
                    &[
                        TexCoordSet::identity(),
                        TexCoordSet::shifted_texels(dx, dy, w, h),
                    ],
                    state_next,
                    None,
                )?;
            }
            KernelMode::Closure => {
                gpu.run_closure_pass(
                    &[state_prev, field],
                    state_next,
                    kernels::MINMAX_UPDATE_COST,
                    None,
                    move |f, x, y| {
                        let st = f.fetch(0, x as i64, y as i64);
                        let d = f.fetch(1, x as i64 + dx as i64, y as i64 + dy as i64);
                        kernels::minmax_update_value(st, d[0], k)
                    },
                )?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn pass_mei_partial(
        &self,
        gpu: &mut Gpu,
        norm: TextureId,
        state: TextureId,
        mei_prev: TextureId,
        lut: TextureId,
        mei_next: TextureId,
        p_b: usize,
        offsets: &[(i32, i32)],
    ) -> Result<()> {
        match self.mode {
            KernelMode::Isa => {
                gpu.run_pass(
                    &KERNEL_SET.mei_partial,
                    &[norm, state, mei_prev, lut],
                    &[(2, [1.0 / p_b as f32, 0.5 / p_b as f32, 0.5, 0.0])],
                    &[TexCoordSet::identity()],
                    mei_next,
                    None,
                )?;
            }
            KernelMode::Closure => {
                let offsets = offsets.to_vec();
                gpu.run_closure_pass(
                    &[norm, state, mei_prev, lut],
                    mei_next,
                    kernels::MEI_PARTIAL_COST,
                    None,
                    move |f, x, y| {
                        let st = f.fetch(1, x as i64, y as i64);
                        let kmin = st[1].round() as usize;
                        let kmax = st[3].round() as usize;
                        // LUT fetches kept for counter parity with the ISA
                        // path (which resolves offsets via dependent reads).
                        let _ = f.fetch(3, kmin as i64, 0);
                        let _ = f.fetch(3, kmax as i64, 0);
                        let (mindx, mindy) = offsets[kmin.min(offsets.len() - 1)];
                        let (maxdx, maxdy) = offsets[kmax.min(offsets.len() - 1)];
                        let pmin = f.fetch(0, x as i64 + mindx as i64, y as i64 + mindy as i64);
                        let pmax = f.fetch(0, x as i64 + maxdx as i64, y as i64 + maxdy as i64);
                        let prev = f.fetch(2, x as i64, y as i64);
                        let acc = kernels::sid_partial_value(pmax, pmin);
                        [prev[0] + acc, prev[1] + acc, prev[2] + acc, prev[3] + acc]
                    },
                )?;
            }
        }
        Ok(())
    }
}

fn subtract(total: PassStats, start: PassStats) -> PassStats {
    PassStats {
        fragments: total.fragments - start.fragments,
        instructions: total.instructions - start.instructions,
        texel_fetches: total.texel_fetches - start.texel_fetches,
        cache_hits: total.cache_hits - start.cache_hits,
        cache_misses: total.cache_misses - start.cache_misses,
        bytes_written: total.bytes_written - start.bytes_written,
        bytes_uploaded: total.bytes_uploaded - start.bytes_uploaded,
        bytes_downloaded: total.bytes_downloaded - start.bytes_downloaded,
        passes: total.passes - start.passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::GpuProfile;
    use hsi::cube::{CubeDims, Interleave};
    use hsi::morphology::{self, StructuringElement};
    use hsi::spectral::SpectralDistance;

    fn test_cube(w: usize, h: usize, bands: usize, seed: u64) -> Cube {
        // Deterministic pseudo-random positive radiances.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 16777216.0 // [0, 1)
        };
        Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |_, _, _| {
            50.0 + 200.0 * next()
        })
        .unwrap()
    }

    fn reference_mei(cube: &Cube, se: &StructuringElement) -> (MeiImage, Vec<u32>, Vec<u32>) {
        let norm = morphology::normalize_cube(cube);
        let (mei, morph) = morphology::mei(&norm, se, SpectralDistance::Sid);
        (mei, morph.min_index, morph.max_index)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn closure_pipeline_matches_cpu_reference() {
        let cube = test_cube(12, 9, 10, 7);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
        let out = amc.run(&mut gpu, &cube).unwrap();
        let (ref_mei, ref_min, ref_max) = reference_mei(&cube, &se);
        assert_close(&out.mei.scores, &ref_mei.scores, 1e-4, "mei");
        assert_eq!(out.min_index, ref_min);
        assert_eq!(out.max_index, ref_max);
        assert_eq!(out.chunks, 1);
        assert!(
            gpu.allocated_bytes() == 0,
            "pipeline must free its textures"
        );
    }

    #[test]
    fn isa_pipeline_matches_closure_pipeline_exactly() {
        let cube = test_cube(8, 6, 6, 3);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
        let isa = GpuAmc::new(se.clone(), KernelMode::Isa)
            .run(&mut gpu, &cube)
            .unwrap();
        let clo = GpuAmc::new(se, KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        assert_eq!(isa.mei.scores, clo.mei.scores, "bit-equal MEI streams");
        assert_eq!(isa.min_index, clo.min_index);
        assert_eq!(isa.max_index, clo.max_index);
        // Work counts agree between the two kernel forms.
        assert_eq!(isa.stats.instructions, clo.stats.instructions);
        assert_eq!(isa.stats.texel_fetches, clo.stats.texel_fetches);
        assert_eq!(isa.stats.fragments, clo.stats.fragments);
        assert_eq!(isa.stats.passes, clo.stats.passes);
    }

    #[test]
    fn pass_counts_match_stage_structure() {
        let cube = test_cube(6, 5, 9, 1); // 9 bands → 3 groups
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se, KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        let groups = 3u64;
        let p_b = 9u64;
        // sums G + normalize G + sid (p_B−1)·G + minmax p_B + mei G.
        let expected = groups + groups + (p_b - 1) * groups + p_b + groups;
        assert_eq!(out.stats.passes, expected);
        // Upload: G planes + LUT; download: MEI + state.
        let plane = 6 * 5 * 16;
        assert_eq!(out.stats.bytes_uploaded as usize, 3 * plane + 9 * 16);
        assert_eq!(out.stats.bytes_downloaded as usize, 2 * plane);
    }

    #[test]
    fn chunked_equals_unchunked() {
        let cube = test_cube(10, 16, 8, 11);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let amc = GpuAmc::new(se, KernelMode::Closure);
        let whole = amc.run_chunk(&mut gpu, &cube).unwrap();
        // Force small chunks by processing via explicit chunking.
        let chunking = Chunking::new(3, 2 * amc.se().radius_y());
        let dims = cube.dims();
        let mut stitched = vec![0.0f32; dims.pixels()];
        let mut stitched_min = vec![0u32; dims.pixels()];
        for chunk in cube.chunks(chunking) {
            let out = amc.run_chunk(&mut gpu, &chunk.cube).unwrap();
            for local_y in chunk.body_range() {
                let gy = chunk.y_start + (local_y - chunk.halo_top);
                for x in 0..dims.width {
                    stitched[gy * dims.width + x] = out.mei.scores[local_y * dims.width + x];
                    stitched_min[gy * dims.width + x] = out.min_index[local_y * dims.width + x];
                }
            }
        }
        // MEI is identical in every body row; indices too.
        assert_eq!(stitched, whole.mei.scores);
        assert_eq!(stitched_min, whole.min_index);
    }

    #[test]
    fn plan_chunking_fits_video_memory() {
        let se = StructuringElement::square(3).unwrap();
        let amc = GpuAmc::new(se, KernelMode::Closure);
        let gpu = Gpu::new(GpuProfile::fx5950_ultra());
        // Full AVIRIS frame: 2166 wide, 216 bands — must chunk.
        let cube_dims_bytes = amc.chunk_bytes(2166, 614, 216);
        assert!(cube_dims_bytes > gpu.profile().video_memory_bytes());
        let cube = test_cube(64, 32, 8, 5);
        let chunking = amc.plan_chunking(&gpu, &cube);
        assert!(chunking.lines_per_chunk >= 1);
        assert_eq!(chunking.halo, 2);
    }

    #[test]
    fn five_by_five_se_works() {
        let cube = test_cube(11, 11, 5, 23);
        let se = StructuringElement::square(5).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se.clone(), KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        let (ref_mei, ref_min, ref_max) = reference_mei(&cube, &se);
        assert_close(&out.mei.scores, &ref_mei.scores, 1e-4, "mei5");
        assert_eq!(out.min_index, ref_min);
        assert_eq!(out.max_index, ref_max);
    }
}
