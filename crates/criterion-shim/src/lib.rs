//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no registry access, so this in-tree shim
//! implements the API subset the workspace's benches use: `Criterion`,
//! `benchmark_group` (with `sample_size` / `measurement_time` /
//! `throughput`), `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Documented deviations from real criterion: no statistical analysis,
//! outlier detection, HTML reports, or baseline comparison. Each benchmark
//! runs a short warm-up, then `sample_size` timed samples within the
//! `measurement_time` budget, and prints the median wall-clock time per
//! iteration (plus throughput if configured).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments. The shim accepts and ignores criterion's flags
    /// (`--bench`, filters, …) so `cargo bench` invocations still work.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Run all registered groups (no-op: groups run eagerly).
    pub fn final_summary(&mut self) {}
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Configure throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Finish the group (all benchmarks already ran eagerly).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        let mut line = format!(
            "  {}/{id}: median {median:?}/iter over {} sample(s)",
            self.name,
            bencher.samples.len()
        );
        if let Some(t) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(", {:.3e} elem/s", n as f64 / secs));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(", {:.3e} B/s", n as f64 / secs));
                    }
                }
            }
        }
        eprintln!("{line}");
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, collecting up to `sample_size` samples within the
    /// group's measurement budget (always at least one).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine()); // warm-up, untimed
        let deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
            if i > 0 && Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($group), "` benchmark group.")]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // warm-up + up to 3 samples
        assert!((2..=4).contains(&runs), "ran {runs} times");
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &v| {
            b.iter(|| black_box(v * 2))
        });
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("mei", 64).to_string(), "mei/64");
        assert_eq!(BenchmarkId::from_parameter(512).to_string(), "512");
    }

    criterion_group!(demo_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.sample_size(1).measurement_time(Duration::from_millis(1));
        g.bench_function("nothing", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn macro_generated_group_runs() {
        demo_group();
    }
}
