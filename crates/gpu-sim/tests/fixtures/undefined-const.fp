!!FP1.0 fix-undefined-const
# C7 is neither DEFed here nor bound by the pass.
TEX R0, T0, tex0
MUL R1, R0, C7
MOV OC, R1
