//! Texture-cache model.
//!
//! GPUs of the NV3x/G7x era hid texture latency with small set-associative
//! caches filled by 2D blocks of texels (Hakura & Gupta, ISCA'97 — the
//! paper's reference \[7\]). The simulator models one such cache **per
//! fragment pipe** (as in hardware): fetches are classified as hits or
//! misses, and the timing model charges memory bandwidth only for miss
//! traffic.
//!
//! Blocks are `BLOCK_W x BLOCK_H` texel tiles, so the 2D locality of the
//! morphological window (every fragment touches its 3×3 neighbourhood in
//! several band textures) turns into the high hit rates that made the
//! technique work.

/// Block width in texels.
pub const BLOCK_W: usize = 4;
/// Block height in texels.
pub const BLOCK_H: usize = 4;
/// Bytes per block (RGBA32F texels).
pub const BLOCK_BYTES: usize = BLOCK_W * BLOCK_H * 16;

/// A set-associative texture cache with LRU replacement.
///
/// Each set's ways are kept ordered most- to least-recently used, so LRU
/// needs no timestamps: a hit rotates the line to the front, a miss evicts
/// the last way. This is exactly the stamp-based formulation (same hit/miss
/// classification for every access sequence — way order within a set is not
/// observable), but the common case — a fetch landing in the same block as
/// the set's most recent one — is a single tag compare.
#[derive(Debug, Clone)]
pub struct TextureCache {
    sets: usize,
    ways: usize,
    /// `sets * ways` tags, each set's ways MRU-first; `u64::MAX` = invalid.
    /// Tag encodes (texture, block_x, block_y).
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl TextureCache {
    /// A cache with the given geometry.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways >= 1);
        Self {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// The per-pipe cache geometry used for the paper's GPUs: 8 KiB,
    /// 4-way (32 sets x 4 ways x 256 B blocks / 4 = 8 KiB of texels).
    pub fn per_pipe_default() -> Self {
        Self::new(32, 4)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * BLOCK_BYTES / 4
    }

    /// Record a fetch of texel `(x, y)` from texture `texture`; returns
    /// `true` on hit.
    #[inline]
    pub fn access(&mut self, texture: u32, x: usize, y: usize) -> bool {
        let bx = (x / BLOCK_W) as u64;
        let by = (y / BLOCK_H) as u64;
        let tag = ((texture as u64) << 40) | (by << 20) | bx;
        // Simple XOR index so adjacent blocks of different textures spread.
        let set = ((bx ^ by.wrapping_mul(7) ^ (texture as u64).wrapping_mul(13)) as usize)
            & (self.sets - 1);
        let base = set * self.ways;
        let lines = &mut self.tags[base..base + self.ways];
        // MRU fast path: the raster scan mostly re-touches the block it
        // touched last in this set.
        if lines[0] == tag {
            self.hits += 1;
            return true;
        }
        if let Some(w) = lines[1..].iter().position(|&t| t == tag) {
            // Hit in a colder way: promote to MRU (the rotate carries the
            // matching tag, at `lines[w + 1]`, to the front).
            lines[..w + 2].rotate_right(1);
            self.hits += 1;
            return true;
        }
        // Miss: the last way is the LRU line; shift everything down and
        // fill the front.
        lines.rotate_right(1);
        lines[0] = tag;
        self.misses += 1;
        false
    }

    /// Replay an ordered sequence of resolved texel touches — equivalent
    /// to calling [`TextureCache::access`] once per `(texture, x, y)` item
    /// in iteration order. The batched fragment executor records touches
    /// instruction-major and replays them through this in the scalar
    /// executor's fragment-major order, so hit/miss counters stay
    /// bit-identical between the two paths.
    pub fn access_all<I: IntoIterator<Item = (u32, usize, usize)>>(&mut self, touches: I) {
        for (texture, x, y) in touches {
            self.access(texture, x, y);
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset contents and counters.
    pub fn clear(&mut self) {
        self.tags.fill(u64::MAX);
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = TextureCache::new(16, 2);
        assert!(!c.access(0, 0, 0)); // cold miss
        assert!(c.access(0, 0, 0)); // hit
        assert!(c.access(0, 1, 1)); // same 4x4 block → hit
        assert!(c.access(0, 3, 3)); // same block → hit
        assert!(!c.access(0, 4, 0)); // next block → miss
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn different_textures_do_not_alias() {
        let mut c = TextureCache::new(16, 4);
        c.access(0, 0, 0);
        c.access(1, 0, 0);
        // Both stay resident (different tags).
        assert!(c.access(0, 0, 0));
        assert!(c.access(1, 0, 0));
    }

    #[test]
    fn lru_evicts_oldest() {
        // One set, two ways: third distinct block evicts the LRU.
        let mut c = TextureCache::new(1, 2);
        c.access(0, 0, 0); // block A
        c.access(0, 4, 0); // block B
        c.access(0, 0, 0); // touch A (B becomes LRU)
        c.access(0, 8, 0); // block C evicts B
        assert!(c.access(0, 0, 0), "A should still be resident");
        assert!(!c.access(0, 4, 0), "B should have been evicted");
    }

    #[test]
    fn raster_scan_with_window_has_high_hit_rate() {
        // A 3x3 window sliding over a 64x64 texture: the blocked cache
        // should capture most of the overlap between adjacent windows.
        let mut c = TextureCache::per_pipe_default();
        for y in 0..64i64 {
            for x in 0..64i64 {
                for dy in -1..=1i64 {
                    for dx in -1..=1i64 {
                        let sx = (x + dx).clamp(0, 63) as usize;
                        let sy = (y + dy).clamp(0, 63) as usize;
                        c.access(0, sx, sy);
                    }
                }
            }
        }
        assert!(c.hit_rate() > 0.9, "hit rate = {}", c.hit_rate());
    }

    #[test]
    fn access_all_matches_individual_accesses() {
        let touches = [(0u32, 0usize, 0usize), (1, 4, 0), (0, 1, 1), (2, 8, 8)];
        let mut a = TextureCache::new(1, 2);
        let mut b = TextureCache::new(1, 2);
        a.access_all(touches);
        for (t, x, y) in touches {
            b.access(t, x, y);
        }
        assert_eq!(a.hits(), b.hits());
        assert_eq!(a.misses(), b.misses());
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = TextureCache::new(4, 1);
        c.access(0, 0, 0);
        c.clear();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_rate(), 1.0);
        assert!(!c.access(0, 0, 0), "cache must be cold after clear");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn sets_must_be_power_of_two() {
        TextureCache::new(3, 2);
    }

    #[test]
    fn order_encoded_lru_matches_stamp_reference() {
        // The recency-ordered ways must classify exactly like the textbook
        // stamp-based LRU they replaced: replay a pseudo-random touch
        // stream through both and compare every single hit/miss verdict.
        struct StampLru {
            sets: usize,
            ways: usize,
            tags: Vec<u64>,
            stamps: Vec<u64>,
            clock: u64,
        }
        impl StampLru {
            fn access(&mut self, texture: u32, x: usize, y: usize) -> bool {
                let bx = (x / BLOCK_W) as u64;
                let by = (y / BLOCK_H) as u64;
                let tag = ((texture as u64) << 40) | (by << 20) | bx;
                let set = ((bx ^ by.wrapping_mul(7) ^ (texture as u64).wrapping_mul(13)) as usize)
                    & (self.sets - 1);
                self.clock += 1;
                let base = set * self.ways;
                let lines = &mut self.tags[base..base + self.ways];
                if let Some(w) = lines.iter().position(|&t| t == tag) {
                    self.stamps[base + w] = self.clock;
                    return true;
                }
                let lru = (0..self.ways)
                    .min_by_key(|&w| self.stamps[base + w])
                    .expect("ways >= 1");
                self.tags[base + lru] = tag;
                self.stamps[base + lru] = self.clock;
                false
            }
        }
        for (sets, ways) in [(1, 1), (1, 4), (8, 2), (32, 4)] {
            let mut cache = TextureCache::new(sets, ways);
            let mut reference = StampLru {
                sets,
                ways,
                tags: vec![u64::MAX; sets * ways],
                stamps: vec![0; sets * ways],
                clock: 0,
            };
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for i in 0..20_000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let texture = (state % 3) as u32;
                let x = ((state >> 8) % 40) as usize;
                let y = ((state >> 16) % 40) as usize;
                assert_eq!(
                    cache.access(texture, x, y),
                    reference.access(texture, x, y),
                    "{sets}x{ways} diverged at touch {i}: ({texture}, {x}, {y})"
                );
            }
            assert!(cache.hits() > 0 && cache.misses() > 0, "stream too tame");
        }
    }

    #[test]
    fn capacity_accounts_geometry() {
        let c = TextureCache::new(32, 4);
        assert_eq!(c.capacity_bytes(), 32 * 4 * BLOCK_BYTES / 4);
    }
}
