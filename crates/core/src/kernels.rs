//! Fragment kernels for every AMC pipeline stage.
//!
//! Each stage exists in two forms with identical arithmetic:
//!
//! * an **ISA program** (fp30-style assembly, assembled once and executed by
//!   the `gpu-sim` interpreter) — faithful to what the paper's Cg kernels
//!   compiled to, with exact per-fragment instruction counts; and
//! * a **closure twin** used as the fast execution path for large inputs.
//!
//! The assembly below is written the way the Cg frontend emits it —
//! compiler-temp copies, a separate multiply feeding the reduction `DP4`,
//! results staged through a temp before the final output move. The
//! `gpu_sim::opt` pass pipeline (on by default, `GPU_SIM_OPT=0` to disable)
//! recovers the tight forms at lowering time; the `*_COST` constants below
//! are the **optimized** per-fragment instruction counts the device actually
//! shades, while `*_RAW_COST` are the as-assembled lengths.
//!
//! The twins mirror the optimized ISA instruction sequence
//! operation-for-operation (`log2(x)·ln2` instead of `ln`, ε-guards via
//! `max`, identical summation order), so `KernelMode::Isa` and
//! `KernelMode::Closure` produce bit-equal streams — a property the
//! integration tests assert. Every optimizer rewrite is exact-preserving,
//! so `GPU_SIM_OPT=0` produces the same bits too.

use gpu_sim::asm::assemble;
use gpu_sim::isa::Program;

/// ε guard inside the SID kernels; equals [`hsi::spectral::SID_EPSILON`].
pub const SID_EPS: f32 = 1e-12;
/// ln(2) as f32, converting `LG2` output to natural log.
pub const LN2: f32 = std::f32::consts::LN_2;

/// Shaded (optimized) instruction cost of the band-sum kernel per fragment.
pub const BAND_SUM_COST: u64 = 4;
/// Shaded (optimized) instruction cost of the normalize kernel.
pub const NORMALIZE_COST: u64 = 5;
/// Shaded (optimized) instruction cost of the partial-SID kernel.
pub const SID_PARTIAL_COST: u64 = 12;
/// Shaded (optimized) instruction cost of the min/max init kernel.
pub const MINMAX_INIT_COST: u64 = 3;
/// Shaded (optimized) instruction cost of the min/max update kernel.
pub const MINMAX_UPDATE_COST: u64 = 8;
/// Shaded (optimized) instruction cost of the MEI partial kernel.
pub const MEI_PARTIAL_COST: u64 = 19;

/// As-assembled length of [`band_sum_program`] before optimization.
pub const BAND_SUM_RAW_COST: u64 = 5;
/// As-assembled length of [`normalize_program`] before optimization.
pub const NORMALIZE_RAW_COST: u64 = 6;
/// As-assembled length of [`sid_partial_program`] before optimization.
pub const SID_PARTIAL_RAW_COST: u64 = 14;
/// As-assembled length of [`minmax_init_program`] before optimization.
pub const MINMAX_INIT_RAW_COST: u64 = 4;
/// As-assembled length of [`minmax_update_program`] before optimization.
pub const MINMAX_UPDATE_RAW_COST: u64 = 9;
/// As-assembled length of [`mei_partial_program`] before optimization.
pub const MEI_PARTIAL_RAW_COST: u64 = 22;

/// Band-sum accumulation: `sum' = sum + dot(bandgroup, 1)`.
///
/// Inputs: `tex0` = band-group plane (coord set `T0`), `tex1` = previous sum.
///
/// The frontend stages the dot product through a compiler temp (`R3`); copy
/// propagation and DCE collapse it to four instructions.
pub fn band_sum_program() -> Program {
    assemble(
        "!!band_sum\n\
         DEF C1, 1, 1, 1, 1\n\
         TEX R0, T0, tex0\n\
         TEX R1, T0, tex1\n\
         DP4 R2, R0, C1\n\
         MOV R3, R2\n\
         ADD OC, R3, R1",
    )
    .expect("band_sum assembles")
}

/// Normalization (eqs. 3–4): `out = bandgroup / sum.x`.
///
/// Inputs: `tex0` = band-group plane, `tex1` = total band sum.
///
/// The frontend lands the quotient in a temp and emits a final output move;
/// output coalescing folds the move into the `MUL`.
pub fn normalize_program() -> Program {
    assemble(
        "!!normalize\n\
         DEF C0, 1e-30, 0, 0, 0\n\
         TEX R0, T0, tex0\n\
         TEX R1, T0, tex1\n\
         MAX R2, R1.x, C0.x\n\
         RCP R3, R2\n\
         MUL R4, R0, R3\n\
         MOV OC, R4",
    )
    .expect("normalize assembles")
}

/// Partial SID accumulation (eq. 2 over one 4-band group):
/// `accum' = accum + Σ_lanes (p − q)·ln(p/q)` with `p` sampled at `T0`
/// (centre) and `q` at `T1` (the δ-shifted coordinate set).
///
/// Inputs: `tex0` = normalized band-group plane, `tex1` = previous accum.
///
/// The frontend copies the difference vector before the lanewise multiply
/// and reduces through an explicit all-ones `DP4`; copy propagation deletes
/// the copy and the `MUL`+`DP4` pair fuses into a direct dot product
/// (exact: `x·1.0` is the identity on every f32 bit pattern).
pub fn sid_partial_program() -> Program {
    assemble(
        "!!sid_partial\n\
         DEF C0, 1e-12, 0.6931472, 0, 0\n\
         DEF C1, 1, 1, 1, 1\n\
         TEX R0, T0, tex0\n\
         TEX R1, T1, tex0\n\
         TEX R4, T0, tex1\n\
         MAX R0, R0, C0.x\n\
         MAX R1, R1, C0.x\n\
         RCP R2, R1\n\
         MUL R2, R0, R2\n\
         LG2 R2, R2\n\
         MUL R2, R2, C0.y\n\
         SUB R3, R0, R1\n\
         MOV R5, R3\n\
         MUL R5, R5, R2\n\
         DP4 R5, R5, C1\n\
         ADD OC, R4, R5",
    )
    .expect("sid_partial assembles")
}

/// Min/max state initialisation from neighbour 0's cumulative distance:
/// `state = (D₀, 0, D₀, 0)`.
///
/// Inputs: `tex0` = cumulative-distance field, sampled through the shifted
/// coordinate set `T0` (= identity + δ₀).
///
/// Output coalescing retargets the two `R1` builds at `OC` directly and
/// drops the final move.
pub fn minmax_init_program() -> Program {
    assemble(
        "!!minmax_init\n\
         DEF C1, 0, 0, 0, 0\n\
         TEX R0, T0, tex0\n\
         MOV R1, R0.x\n\
         MOV R1.yw, C1\n\
         MOV OC, R1",
    )
    .expect("minmax_init assembles")
}

/// Min/max state update with neighbour `k` (paper's Maximum/Minimum stage):
/// strict comparisons keep the first extremum on ties, matching the CPU
/// reference.
///
/// Inputs: `tex0` = previous state (`T0` identity), `tex1` = cumulative
/// field (`T1` shifted by δₖ). Constant `C0` = `(k, k, k, k)`.
///
/// Output coalescing retargets the four lane builds of `R4` at `OC` and
/// drops the final move.
pub fn minmax_update_program() -> Program {
    assemble(
        "!!minmax_update\n\
         TEX R0, T0, tex0\n\
         TEX R1, T1, tex1\n\
         SLT R2, R1.x, R0.x\n\
         SLT R3, R0.z, R1.x\n\
         MIN R4.x, R0, R1.x\n\
         LRP R4.y, R2, C0, R0\n\
         MAX R4.z, R0, R1.x\n\
         LRP R4.w, R3, C0, R0\n\
         MOV OC, R4",
    )
    .expect("minmax_update assembles")
}

/// MEI partial accumulation (paper's SID Compute stage): dependent texture
/// reads fetch the erosion/dilation pixels selected by the min/max state and
/// accumulate their SID over one band group.
///
/// Inputs: `tex0` = normalized band-group plane, `tex1` = min/max state,
/// `tex2` = previous MEI accum, `tex3` = the neighbour-offset lookup texture
/// ([`offset_lut`]). Constant `C2` = `(1/p_B, 0.5/p_B, 0.5, 0)`.
///
/// Three rewrites fire here: the `R3` coordinate copy propagates (with its
/// swizzle) straight into the dependent `TEX`, the staged accumulator copy
/// (`R11`) propagates into the final `ADD`, and the all-ones `DP4` fuses
/// with the preceding `MUL`.
pub fn mei_partial_program() -> Program {
    assemble(
        "!!mei_partial\n\
         DEF C0, 1e-12, 0.6931472, 0, 0\n\
         DEF C1, 1, 1, 1, 1\n\
         TEX R0, T0, tex1\n\
         MAD R1, R0.yyww, C2.x, C2.y\n\
         MOV R1.yw, C2.zzzz\n\
         TEX R2, R1, tex3\n\
         MOV R3, R1.zwzw\n\
         TEX R4, R3, tex3\n\
         ADD R2, R2, T0\n\
         ADD R4, R4, T0\n\
         TEX R5, R2, tex0\n\
         TEX R6, R4, tex0\n\
         MAX R5, R5, C0.x\n\
         MAX R6, R6, C0.x\n\
         RCP R7, R5\n\
         MUL R7, R6, R7\n\
         LG2 R7, R7\n\
         MUL R7, R7, C0.y\n\
         SUB R8, R6, R5\n\
         MUL R8, R8, R7\n\
         DP4 R10, R8, C1\n\
         TEX R9, T0, tex2\n\
         MOV R11, R10\n\
         ADD OC, R9, R11",
    )
    .expect("mei_partial assembles")
}

/// Build the neighbour-offset lookup texture contents: `p_B x 1` texels,
/// texel `k` = `(δxₖ/w, δyₖ/h, 0, 0)` in normalized texture coordinates.
pub fn offset_lut(offsets: &[(i32, i32)], width: usize, height: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(offsets.len() * 4);
    for &(dx, dy) in offsets {
        out.push(dx as f32 / width as f32);
        out.push(dy as f32 / height as f32);
        out.push(0.0);
        out.push(0.0);
    }
    out
}

/// All stage programs, assembled once.
pub struct KernelSet {
    /// Band-sum accumulation program.
    pub band_sum: Program,
    /// Normalization program.
    pub normalize: Program,
    /// Partial-SID accumulation program.
    pub sid_partial: Program,
    /// Min/max init program.
    pub minmax_init: Program,
    /// Min/max update program.
    pub minmax_update: Program,
    /// MEI partial program.
    pub mei_partial: Program,
}

/// The lazily-assembled kernel set shared by every pipeline instance.
pub static KERNEL_SET: std::sync::LazyLock<KernelSet> = std::sync::LazyLock::new(|| KernelSet {
    band_sum: band_sum_program(),
    normalize: normalize_program(),
    sid_partial: sid_partial_program(),
    minmax_init: minmax_init_program(),
    minmax_update: minmax_update_program(),
    mei_partial: mei_partial_program(),
});

/// One row of the stage-resource table: everything static about how the
/// pipeline runs a kernel — the program, its exact [`PassBindings`], the
/// pipeline stage it belongs to, and the abstract resources it samples and
/// produces. This is the single source of truth the pipeline contract
/// checker ([`crate::pipeline::amc_stage_contracts`]), the optimizer cases
/// ([`stage_cases`]), and the render-graph builder all derive from.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// The assembled program.
    pub program: Program,
    /// Exact bindings the pipeline runs it under.
    pub bindings: gpu_sim::verify::PassBindings,
    /// Pipeline stage tag (trace-span / stats-bucket name).
    pub stage: &'static str,
    /// One `(resource name, required address mode)` per sampler, in
    /// sampler order. Resources fetched through δ-shifted coordinate sets
    /// or dependent reads require `ClampToEdge` — that is what makes halo
    /// sampling at chunk edges exact.
    pub inputs: &'static [(&'static str, Option<gpu_sim::texture::AddressMode>)],
    /// The abstract resource the kernel renders into.
    pub output: &'static str,
}

/// The stage-resource table, in pipeline order: band-sum, normalize,
/// partial SID, min/max init, min/max update, MEI.
pub fn stage_specs() -> Vec<StageSpec> {
    use gpu_sim::texture::AddressMode;
    const CLAMP: Option<AddressMode> = Some(AddressMode::ClampToEdge);
    let ctx = |samplers, texcoord_sets, constants: Vec<u8>| gpu_sim::verify::PassBindings {
        samplers,
        texcoord_sets,
        constants,
        outputs_read: [true, false, false, false],
    };
    let spec = |program, bindings, stage, inputs, output| StageSpec {
        program,
        bindings,
        stage,
        inputs,
        output,
    };
    vec![
        spec(
            band_sum_program(),
            ctx(2, 1, vec![]),
            "normalize",
            &[("band", None), ("sum_prev", None)],
            "sum",
        ),
        spec(
            normalize_program(),
            ctx(2, 1, vec![]),
            "normalize",
            &[("band", None), ("sum", None)],
            "norm",
        ),
        spec(
            sid_partial_program(),
            ctx(2, 2, vec![]),
            "distance",
            &[("norm", CLAMP), ("sid_prev", None)],
            "sid",
        ),
        spec(
            minmax_init_program(),
            ctx(1, 1, vec![]),
            "minmax",
            &[("sid", CLAMP)],
            "state",
        ),
        spec(
            minmax_update_program(),
            ctx(2, 2, vec![0]),
            "minmax",
            &[("state", None), ("sid", CLAMP)],
            "state2",
        ),
        spec(
            mei_partial_program(),
            ctx(4, 1, vec![2]),
            "mei",
            &[
                ("norm", CLAMP),
                ("state2", None),
                ("mei_prev", None),
                ("lut", CLAMP),
            ],
            "mei",
        ),
    ]
}

/// Every stage kernel paired with the exact [`PassBindings`] the pipeline
/// runs it under, in pipeline order (derived from [`stage_specs`]). This is
/// what the optimizer keys its lowering-cache entries on, and what the
/// bench opt table is computed from.
pub fn stage_cases() -> Vec<(Program, gpu_sim::verify::PassBindings)> {
    stage_specs()
        .into_iter()
        .map(|s| (s.program, s.bindings))
        .collect()
}

// ---------------------------------------------------------------------------
// Closure twins: scalar helpers mirroring the ISA arithmetic exactly.
// ---------------------------------------------------------------------------

/// The partial SID of one 4-band group, computed with the exact operation
/// sequence of [`sid_partial_program`] (ε-guard, reciprocal multiply,
/// `log2·ln2`, lane-ordered `DP4` summation).
#[inline]
pub fn sid_partial_value(p: [f32; 4], q: [f32; 4]) -> f32 {
    let mut acc = 0.0f32;
    let mut terms = [0.0f32; 4];
    for lane in 0..4 {
        let pl = p[lane].max(SID_EPS);
        let ql = q[lane].max(SID_EPS);
        let r = 1.0 / ql;
        let ratio = pl * r;
        let l = gpu_sim::interp::lg2(ratio.max(f32::MIN_POSITIVE)) * LN2;
        terms[lane] = (pl - ql) * l;
    }
    // DP4 with the all-ones vector: sequential lane order.
    for t in terms {
        acc += t;
    }
    acc
}

/// The min/max state update of [`minmax_update_program`] in closure form.
#[inline]
pub fn minmax_update_value(state: [f32; 4], cand: f32, k: f32) -> [f32; 4] {
    let s_min = if cand < state[0] { 1.0f32 } else { 0.0 };
    let s_max = if state[2] < cand { 1.0f32 } else { 0.0 };
    [
        state[0].min(cand),
        s_min * k + (1.0 - s_min) * state[1],
        state[2].max(cand),
        s_max * k + (1.0 - s_max) * state[3],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_assemble_with_expected_costs() {
        assert_eq!(band_sum_program().len() as u64, BAND_SUM_RAW_COST);
        assert_eq!(normalize_program().len() as u64, NORMALIZE_RAW_COST);
        assert_eq!(sid_partial_program().len() as u64, SID_PARTIAL_RAW_COST);
        assert_eq!(minmax_init_program().len() as u64, MINMAX_INIT_RAW_COST);
        assert_eq!(minmax_update_program().len() as u64, MINMAX_UPDATE_RAW_COST);
        assert_eq!(mei_partial_program().len() as u64, MEI_PARTIAL_RAW_COST);
    }

    #[test]
    fn optimizer_recovers_the_shaded_costs() {
        // The `*_COST` constants the closure path charges must equal what
        // the device actually shades: the optimized program lengths.
        let expected = [
            BAND_SUM_COST,
            NORMALIZE_COST,
            SID_PARTIAL_COST,
            MINMAX_INIT_COST,
            MINMAX_UPDATE_COST,
            MEI_PARTIAL_COST,
        ];
        for ((prog, bindings), want) in stage_cases().into_iter().zip(expected) {
            let (opt, report) = gpu_sim::optimize(&prog, &bindings);
            assert_eq!(
                opt.len() as u64,
                want,
                "`{}` optimized to:\n{}",
                prog.name,
                opt.to_asm()
            );
            assert_eq!(report.before, prog.len());
            assert_eq!(report.after, opt.len());
            // No texture fetch may ever be optimized away: texel traffic
            // (and the cache model it feeds) must match the closure path.
            assert_eq!(opt.tex_count(), prog.tex_count(), "`{}`", prog.name);
        }
    }

    #[test]
    fn program_names_and_tex_counts() {
        assert_eq!(band_sum_program().name, "band_sum");
        assert_eq!(band_sum_program().tex_count(), 2);
        assert_eq!(normalize_program().tex_count(), 2);
        assert_eq!(sid_partial_program().tex_count(), 3);
        assert_eq!(minmax_init_program().tex_count(), 1);
        assert_eq!(minmax_update_program().tex_count(), 2);
        assert_eq!(mei_partial_program().tex_count(), 6);
    }

    #[test]
    fn all_kernels_verify_clean_raw_and_optimized() {
        use gpu_sim::verify::verify;
        use gpu_sim::GpuProfile;
        for profile in GpuProfile::paper_gpus() {
            for (prog, bindings) in &stage_cases() {
                let (opt, _) = gpu_sim::optimize(prog, bindings);
                for p in [prog, &opt] {
                    let d = verify(p, &profile, Some(bindings));
                    assert!(d.is_empty(), "`{}` on {}: {d:?}", p.name, profile.name);
                    let d = verify(p, &profile, None);
                    assert!(d.is_empty(), "lint `{}`: {d:?}", p.name);
                }
            }
        }
    }

    #[test]
    fn kernels_round_trip_through_the_disassembler() {
        // asm → disasm → asm is the identity on every AMC kernel, raw and
        // optimized (instruction/def equality ignores source lines).
        for (prog, bindings) in stage_cases() {
            let again = assemble(&prog.to_string())
                .unwrap_or_else(|e| panic!("`{}` re-assembles: {e}", prog.name));
            assert_eq!(again, prog, "raw `{}`:\n{prog}", prog.name);
            let (opt, _) = gpu_sim::optimize(&prog, &bindings);
            let again = assemble(&opt.to_string())
                .unwrap_or_else(|e| panic!("optimized `{}` re-assembles: {e}", prog.name));
            assert_eq!(again, opt, "optimized `{}`:\n{opt}", prog.name);
        }
    }

    #[test]
    fn sid_partial_value_matches_reference_sid() {
        // Against hsi's ln-based SID (tolerance: log2·ln2 vs ln rounding).
        let p = [0.1f32, 0.2, 0.3, 0.4];
        let q = [0.4f32, 0.3, 0.2, 0.1];
        let kernel = sid_partial_value(p, q);
        let reference = hsi::spectral::sid_normalized(&p, &q);
        assert!(
            (kernel - reference).abs() < 1e-6,
            "kernel {kernel} vs reference {reference}"
        );
    }

    #[test]
    fn sid_partial_value_zero_for_identical() {
        let p = [0.25f32; 4];
        assert_eq!(sid_partial_value(p, p), 0.0);
    }

    #[test]
    fn sid_partial_value_handles_padded_lanes() {
        // Zero-padded lanes (last band group) must contribute nothing.
        let p = [0.5f32, 0.5, 0.0, 0.0];
        let q = [0.5f32, 0.5, 0.0, 0.0];
        assert_eq!(sid_partial_value(p, q), 0.0);
        // And mixed zero lanes stay finite.
        let q = [0.3f32, 0.7, 0.0, 0.0];
        assert!(sid_partial_value(p, q).is_finite());
    }

    #[test]
    fn minmax_update_tracks_extrema_and_ties() {
        let s0 = [5.0, 0.0, 5.0, 0.0];
        // Smaller candidate updates the min side.
        let s1 = minmax_update_value(s0, 3.0, 1.0);
        assert_eq!(s1, [3.0, 1.0, 5.0, 0.0]);
        // Larger candidate updates the max side.
        let s2 = minmax_update_value(s1, 7.0, 2.0);
        assert_eq!(s2, [3.0, 1.0, 7.0, 2.0]);
        // Equal candidate keeps the earlier index (strict comparisons).
        let s3 = minmax_update_value(s2, 3.0, 3.0);
        assert_eq!(s3[1], 1.0);
        let s4 = minmax_update_value(s3, 7.0, 4.0);
        assert_eq!(s4[3], 2.0);
    }

    #[test]
    fn offset_lut_encodes_normalized_offsets() {
        let offsets = [(-1, -1), (0, 0), (1, 2)];
        let lut = offset_lut(&offsets, 10, 20);
        assert_eq!(lut.len(), 12);
        assert_eq!(lut[0], -0.1);
        assert_eq!(lut[1], -0.05);
        assert_eq!(lut[4], 0.0);
        assert_eq!(lut[8], 0.1);
        assert_eq!(lut[9], 0.1);
    }
}
