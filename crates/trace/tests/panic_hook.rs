//! The flight recorder: a panic with tracing enabled dumps the captured
//! timeline so a failed run still ships a trace artifact. Lives in its own
//! test binary because it installs a process-global panic hook and panics a
//! thread on purpose.

use std::path::PathBuf;

#[test]
fn panic_dumps_buffered_spans_to_the_flight_recorder_path() {
    let path = PathBuf::from(format!(
        "{}/trace-panic-test-{}.json",
        std::env::temp_dir().display(),
        std::process::id()
    ));
    std::env::set_var("GPU_SIM_TRACE_PANIC", &path);
    let _ = std::fs::remove_file(&path);

    trace::enable();
    trace::reset();
    let result = std::thread::spawn(|| {
        trace::set_thread_name("doomed-worker");
        let _span = trace::span("test", "doomed-span");
        panic!("synthetic failure under tracing");
    })
    .join();
    assert!(result.is_err(), "the worker must have panicked");
    trace::disable();

    let dumped = std::fs::read_to_string(&path).expect("flight recorder wrote the trace");
    assert!(dumped.contains("doomed-span"), "span missing from dump");
    assert!(
        dumped.contains("doomed-worker"),
        "thread name missing from dump"
    );
    // The dump is a loadable Chrome trace: the analyzer can import it.
    let snap = trace::analyze::import_chrome_trace(&dumped).expect("dump parses");
    assert!(snap
        .events
        .iter()
        .any(|e| e.name == "doomed-span" && e.phase == trace::Phase::Begin));
    let _ = std::fs::remove_file(&path);
    trace::reset();
}
