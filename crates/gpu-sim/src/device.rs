//! Hardware profiles of the paper's experimental platforms.
//!
//! Tables 1 and 2 of the paper list the parameters reproduced here; the
//! timing model in [`crate::timing`] converts counted work into modeled
//! milliseconds using nothing but these published figures (plus documented
//! efficiency factors).

use crate::bus::BusModel;

/// A GPU hardware profile (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Release year (the paper's generation axis, Fig. 6).
    pub year: u32,
    /// Architecture family.
    pub architecture: &'static str,
    /// Number of pixel-shader (fragment) processors.
    pub fragment_pipes: usize,
    /// Core clock, MHz.
    pub core_clock_mhz: f64,
    /// Memory clock, MHz (effective).
    pub memory_clock_mhz: f64,
    /// Memory interface width, bits.
    pub memory_bus_bits: usize,
    /// Peak memory bandwidth, GB/s.
    pub memory_bandwidth_gbs: f64,
    /// On-board video memory, MiB.
    pub video_memory_mib: usize,
    /// Texture fill rate, mega-texels per second.
    pub texture_fill_mtexels: f64,
    /// Host bus.
    pub bus: BusModel,
    /// Arithmetic (non-TEX) instructions each fragment pipe can issue per
    /// cycle. NV3x pipes co-issue through their legacy combiner datapaths;
    /// G7x pipes carry two ALUs. Documented calibration constant chosen so
    /// the sustained-throughput ratio between the two generations matches
    /// the paper's observed ~4.4x (Tables 4-5).
    pub alu_issue_per_pipe: f64,
    /// Fraction of peak shader issue the pipeline sustains on real GPGPU
    /// workloads (scheduling bubbles, register pressure). Documented
    /// calibration constant, identical for both GPU generations.
    pub shader_efficiency: f64,
    /// Maximum texture side length, texels.
    pub max_texture_side: usize,
    /// Maximum static instructions per fragment program (fp30 exposed 1024
    /// slots; fp40 raised the ceiling).
    pub max_program_instrs: usize,
    /// Maximum dependent-texture-read chain depth: how many `TEX` results
    /// may feed, transitively, into another `TEX`'s coordinates.
    pub max_tex_indirections: usize,
}

impl GpuProfile {
    /// Bytes of video memory.
    pub fn video_memory_bytes(&self) -> usize {
        self.video_memory_mib * 1024 * 1024
    }

    /// Peak vector (SIMD4) arithmetic instructions per second.
    pub fn peak_instr_per_s(&self) -> f64 {
        self.fragment_pipes as f64 * self.core_clock_mhz * 1e6 * self.alu_issue_per_pipe
    }

    /// Sustained shader instruction rate after the efficiency factor.
    pub fn sustained_instr_per_s(&self) -> f64 {
        self.peak_instr_per_s() * self.shader_efficiency
    }

    /// Peak texel fetch rate per second.
    pub fn peak_texels_per_s(&self) -> f64 {
        self.texture_fill_mtexels * 1e6
    }

    /// Fraction of this profile's fragment pipes kept busy when
    /// `tiles_per_pass` equal-cost shading tiles are dispatched round-robin
    /// across the pipes: full waves run all pipes, the final partial wave
    /// leaves some idle. 1.0 when no tiles were counted (hand-built stats
    /// from older call sites predate the tile counter).
    pub fn pipe_occupancy(&self, tiles_per_pass: f64) -> f64 {
        if tiles_per_pass <= 0.0 {
            return 1.0;
        }
        let pipes = self.fragment_pipes as f64;
        let waves = (tiles_per_pass / pipes).ceil();
        (tiles_per_pass / (waves * pipes)).min(1.0)
    }

    /// GeForce FX5950 Ultra (NV38, 2003) — the paper's "three-years-old"
    /// platform.
    pub fn fx5950_ultra() -> Self {
        Self {
            name: "GeForce FX5950 Ultra",
            year: 2003,
            architecture: "NV38",
            fragment_pipes: 4,
            core_clock_mhz: 475.0,
            memory_clock_mhz: 950.0,
            memory_bus_bits: 256,
            memory_bandwidth_gbs: 30.4,
            video_memory_mib: 256,
            texture_fill_mtexels: 3800.0,
            bus: BusModel::agp8x(),
            alu_issue_per_pipe: 2.5,
            shader_efficiency: 0.55,
            max_texture_side: 4096,
            max_program_instrs: 1024,
            max_tex_indirections: 4,
        }
    }

    /// GeForce 7800GTX (G70, 2005) — the paper's latest-generation platform.
    pub fn geforce_7800gtx() -> Self {
        Self {
            name: "GeForce 7800GTX",
            year: 2005,
            architecture: "G70",
            fragment_pipes: 24,
            core_clock_mhz: 430.0,
            memory_clock_mhz: 1200.0,
            memory_bus_bits: 256,
            memory_bandwidth_gbs: 38.4,
            video_memory_mib: 256,
            texture_fill_mtexels: 10320.0,
            bus: BusModel::pcie16(),
            alu_issue_per_pipe: 2.0,
            shader_efficiency: 0.55,
            max_texture_side: 4096,
            max_program_instrs: 4096,
            max_tex_indirections: 8,
        }
    }

    /// Short CLI names of every known GPU profile, in paper order. These
    /// are the strings `tables -- bench --devices` accepts and the single
    /// source the lookup and [`Self::paper_gpus`] share.
    pub fn known_device_names() -> &'static [&'static str] {
        &["fx5950", "7800gtx"]
    }

    /// The short CLI name of this profile (inverse of [`Self::by_name`]).
    pub fn short_name(&self) -> &'static str {
        match self.name {
            "GeForce FX5950 Ultra" => "fx5950",
            _ => "7800gtx",
        }
    }

    /// Look up a profile by its short CLI name (case-insensitive).
    pub fn by_name(name: &str) -> Option<GpuProfile> {
        match name.to_ascii_lowercase().as_str() {
            "fx5950" => Some(Self::fx5950_ultra()),
            "7800gtx" => Some(Self::geforce_7800gtx()),
            _ => None,
        }
    }

    /// Both GPU profiles, in paper order — resolved through
    /// [`Self::by_name`] over [`Self::known_device_names`], so the list and
    /// the lookup can never disagree.
    pub fn paper_gpus() -> Vec<GpuProfile> {
        Self::known_device_names()
            .iter()
            .map(|n| Self::by_name(n).expect("known device name resolves"))
            .collect()
    }
}

/// Compiler model for the CPU baselines (the paper compares gcc 4.0 against
/// the autovectorising Intel compiler 9.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compiler {
    /// GNU C/C++ 4.0, `-O3 -msse`: scalar x87/SSE-scalar code generation.
    Gcc,
    /// Intel C/C++ 9.0, `-O3 -tpp7 -xP`: autovectorised SSE (4-wide).
    Icc,
}

impl Compiler {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Compiler::Gcc => "gcc-4.0",
            Compiler::Icc => "icc-9.0",
        }
    }
}

/// A CPU hardware profile (paper Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Release year.
    pub year: u32,
    /// Core clock, MHz.
    pub clock_mhz: f64,
    /// Front-side bus bandwidth, GB/s.
    pub fsb_gbs: f64,
    /// L2 cache, KiB.
    pub l2_kib: usize,
    /// Main memory, MiB.
    pub memory_mib: usize,
    /// Sustained scalar floating ops per cycle (gcc-style code). NetBurst
    /// sustained far under 1 flop/cycle on multi-hundred-MB working sets
    /// (x87 code, L2 misses, long replay pipeline); documented calibration
    /// constant.
    pub scalar_flops_per_cycle: f64,
    /// SIMD width the vectorising compiler can use (SSE = 4 x f32).
    pub simd_width: usize,
    /// Fraction of ideal SIMD speedup the autovectoriser achieves (the paper
    /// observes icc ≈ 1.65–1.8× over gcc, not 4×).
    pub simd_efficiency: f64,
}

impl CpuProfile {
    /// Sustained flop rate for the given compiler model, flops/second.
    pub fn sustained_flops(&self, compiler: Compiler) -> f64 {
        let scalar = self.clock_mhz * 1e6 * self.scalar_flops_per_cycle;
        match compiler {
            Compiler::Gcc => scalar,
            Compiler::Icc => scalar * self.simd_width as f64 * self.simd_efficiency,
        }
    }

    /// Pentium 4 Northwood M0, 2.8 GHz (2003).
    pub fn pentium4_northwood() -> Self {
        Self {
            name: "Pentium 4 (Northwood M0)",
            year: 2003,
            clock_mhz: 2800.0,
            fsb_gbs: 6.4,
            l2_kib: 512,
            memory_mib: 1024,
            scalar_flops_per_cycle: 0.25,
            simd_width: 4,
            simd_efficiency: 0.41,
        }
    }

    /// Pentium 4 Prescott 6x2, 3.4 GHz (2005). Higher clock but a longer
    /// pipeline: the paper measures it under 10 % faster than Northwood.
    pub fn pentium4_prescott() -> Self {
        Self {
            name: "Prescott (6x2)",
            year: 2005,
            clock_mhz: 3400.0,
            fsb_gbs: 6.4,
            l2_kib: 2048,
            memory_mib: 2048,
            scalar_flops_per_cycle: 0.225,
            simd_width: 4,
            simd_efficiency: 0.45,
        }
    }

    /// Both CPU profiles, in paper order.
    pub fn paper_cpus() -> Vec<CpuProfile> {
        vec![Self::pentium4_northwood(), Self::pentium4_prescott()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_figures_match_paper() {
        let fx = GpuProfile::fx5950_ultra();
        assert_eq!(fx.year, 2003);
        assert_eq!(fx.fragment_pipes, 4);
        assert_eq!(fx.core_clock_mhz, 475.0);
        assert_eq!(fx.memory_bandwidth_gbs, 30.4);
        assert_eq!(fx.video_memory_mib, 256);

        let g70 = GpuProfile::geforce_7800gtx();
        assert_eq!(g70.year, 2005);
        assert_eq!(g70.fragment_pipes, 24);
        assert_eq!(g70.core_clock_mhz, 430.0);
        assert_eq!(g70.memory_bandwidth_gbs, 38.4);
        assert_eq!(g70.texture_fill_mtexels, 10320.0);
    }

    #[test]
    fn generation_scaling_matches_paper_narrative() {
        // "NVidia GPUs have multiplied by six the number of fragment
        // processors" between the two generations.
        let fx = GpuProfile::fx5950_ultra();
        let g70 = GpuProfile::geforce_7800gtx();
        assert_eq!(g70.fragment_pipes / fx.fragment_pipes, 6);
        // Sustained instruction rate ratio lands in the paper's 4.4–5.5x
        // observed speedup window.
        let ratio = g70.sustained_instr_per_s() / fx.sustained_instr_per_s();
        assert!(ratio > 4.0 && ratio < 5.0, "ratio = {ratio}");
    }

    #[test]
    fn table2_figures_match_paper() {
        let p4 = CpuProfile::pentium4_northwood();
        assert_eq!(p4.clock_mhz, 2800.0);
        assert_eq!(p4.l2_kib, 512);
        let pr = CpuProfile::pentium4_prescott();
        assert_eq!(pr.clock_mhz, 3400.0);
        assert_eq!(pr.l2_kib, 2048);
        assert_eq!(pr.memory_mib, 2048);
    }

    #[test]
    fn prescott_gains_under_ten_percent_scalar() {
        // The paper: "only ... marginal performance improvement (below 10%)".
        let p4 = CpuProfile::pentium4_northwood();
        let pr = CpuProfile::pentium4_prescott();
        let gain = pr.sustained_flops(Compiler::Gcc) / p4.sustained_flops(Compiler::Gcc);
        assert!(gain > 1.0 && gain < 1.10, "gain = {gain}");
    }

    #[test]
    fn icc_speedup_matches_paper_window() {
        // Paper Tables 4 vs 5: icc is ~1.65x (Northwood) and ~1.8x (Prescott)
        // faster than gcc.
        let p4 = CpuProfile::pentium4_northwood();
        let r = p4.sustained_flops(Compiler::Icc) / p4.sustained_flops(Compiler::Gcc);
        assert!(r > 1.5 && r < 1.8, "northwood icc ratio = {r}");
        let pr = CpuProfile::pentium4_prescott();
        let r = pr.sustained_flops(Compiler::Icc) / pr.sustained_flops(Compiler::Gcc);
        assert!(r > 1.6 && r < 2.0, "prescott icc ratio = {r}");
    }

    #[test]
    fn pipe_occupancy_quantizes_to_waves() {
        let fx = GpuProfile::fx5950_ultra();
        assert_eq!(fx.pipe_occupancy(0.0), 1.0, "no tile counts: neutral");
        assert_eq!(fx.pipe_occupancy(4.0), 1.0, "one full wave");
        assert_eq!(fx.pipe_occupancy(8.0), 1.0, "two full waves");
        assert_eq!(fx.pipe_occupancy(5.0), 5.0 / 8.0, "partial second wave");
        let g70 = GpuProfile::geforce_7800gtx();
        assert_eq!(g70.pipe_occupancy(7.0), 7.0 / 24.0);
        assert_eq!(g70.pipe_occupancy(24.0), 1.0);
        // Plenty of tiles: occupancy approaches 1 on both generations.
        assert!(g70.pipe_occupancy(1054.0) > 0.95);
        assert!(fx.pipe_occupancy(1054.0) > 0.95);
    }

    #[test]
    fn by_name_round_trips_every_known_device() {
        for &name in GpuProfile::known_device_names() {
            let p = GpuProfile::by_name(name).expect("known name resolves");
            assert_eq!(p.short_name(), name);
        }
        // Case-insensitive, and paper order is preserved through the
        // shared name list.
        assert_eq!(
            GpuProfile::by_name("7800GTX").unwrap(),
            GpuProfile::geforce_7800gtx()
        );
        assert_eq!(
            GpuProfile::by_name("FX5950").unwrap(),
            GpuProfile::fx5950_ultra()
        );
        assert!(GpuProfile::by_name("voodoo2").is_none());
        let gpus = GpuProfile::paper_gpus();
        assert_eq!(gpus[0], GpuProfile::fx5950_ultra());
        assert_eq!(gpus[1], GpuProfile::geforce_7800gtx());
    }

    #[test]
    fn memory_accessors() {
        let fx = GpuProfile::fx5950_ultra();
        assert_eq!(fx.video_memory_bytes(), 256 * 1024 * 1024);
        assert!(fx.peak_texels_per_s() > 3.7e9);
        assert_eq!(Compiler::Gcc.name(), "gcc-4.0");
        assert_eq!(GpuProfile::paper_gpus().len(), 2);
        assert_eq!(CpuProfile::paper_cpus().len(), 2);
    }
}
