//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p hsi-bench --bin tables -- all
//! cargo run --release -p hsi-bench --bin tables -- table3
//! cargo run --release -p hsi-bench --bin tables -- fig5 out/
//! cargo run --release -p hsi-bench --bin tables -- bench --trace out/trace.json
//! cargo run --release -p hsi-bench --bin tables -- graph json --unfused
//! cargo run --release -p hsi-bench --bin tables -- analyze --trace out/trace.json
//! cargo run --release -p hsi-bench --bin tables -- bench-delta BENCH_results.json bench_current.json
//! ```

use gpu_sim::device::Compiler;
use hsi_bench::*;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "table1" => print!("{}", format_table1()),
        "table2" => print!("{}", format_table2()),
        "table3" => run_table3(),
        "table4" => print!(
            "{}",
            format_time_table(Compiler::Gcc, &time_rows(Compiler::Gcc))
        ),
        "table5" => print!(
            "{}",
            format_time_table(Compiler::Icc, &time_rows(Compiler::Icc))
        ),
        "fig5" => run_fig5(args.get(1).map(String::as_str).unwrap_or("out")),
        "bench" => {
            let usage = || -> ! {
                eprintln!(
                    "usage: tables bench [path] [--trace <trace.json>] \
                     [--devices <name,name,...>]"
                );
                std::process::exit(2);
            };
            let mut path = "BENCH_results.json";
            let mut trace_path = None;
            let mut devices = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--trace" {
                    match rest.next() {
                        Some(p) => trace_path = Some(p.as_str()),
                        None => usage(),
                    }
                } else if a == "--devices" {
                    let Some(list) = rest.next() else { usage() };
                    match amc_core::fleet::parse_device_list(list) {
                        Ok(p) => devices = Some(p),
                        Err(e) => {
                            eprintln!("error: {e}");
                            std::process::exit(2);
                        }
                    }
                } else {
                    path = a.as_str();
                }
            }
            run_bench(path, trace_path, devices);
        }
        "graph" => {
            let mut format = "dot";
            let mut fuse = true;
            for a in &args[1..] {
                match a.as_str() {
                    "dot" | "json" => format = a.as_str(),
                    "--unfused" => fuse = false,
                    other => {
                        eprintln!("unknown graph option `{other}`");
                        eprintln!("usage: tables graph [dot|json] [--unfused]");
                        std::process::exit(2);
                    }
                }
            }
            run_graph(format, fuse);
        }
        "analyze" => {
            let mut trace_path = None;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--trace" {
                    match rest.next() {
                        Some(p) => trace_path = Some(p.as_str()),
                        None => {
                            eprintln!("usage: tables analyze [--trace <trace.json>]");
                            std::process::exit(2);
                        }
                    }
                } else {
                    eprintln!("unknown analyze option `{a}`");
                    eprintln!("usage: tables analyze [--trace <trace.json>]");
                    std::process::exit(2);
                }
            }
            run_analyze(trace_path);
        }
        "bench-delta" => {
            let mut thr = hsi_bench::delta::Thresholds::default();
            let mut paths = Vec::new();
            let usage = || -> ! {
                eprintln!(
                    "usage: tables bench-delta <baseline.json> <current.json> \
                     [--max-stage-regress-pct X] [--min-stage-wall-s X] \
                     [--min-pack-overlap X] [--min-fleet-load-balance X]"
                );
                std::process::exit(2);
            };
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                let mut flag = |slot: &mut f64| match rest.next().and_then(|s| s.parse().ok()) {
                    Some(x) => *slot = x,
                    None => usage(),
                };
                match a.as_str() {
                    "--max-stage-regress-pct" => flag(&mut thr.max_stage_regress_pct),
                    "--min-stage-wall-s" => flag(&mut thr.min_stage_wall_s),
                    "--min-pack-overlap" => flag(&mut thr.min_pack_overlap),
                    "--min-fleet-load-balance" => flag(&mut thr.min_fleet_load_balance),
                    other if other.starts_with("--") => usage(),
                    path => paths.push(path.to_owned()),
                }
            }
            let [baseline, current] = paths.as_slice() else {
                usage()
            };
            run_bench_delta(baseline, current, &thr);
        }
        "fig6" => print!("{}", format_fig6(&time_rows(Compiler::Gcc))),
        "ablations" => print!("{}", format_ablations()),
        "all" => {
            print!("{}", format_table1());
            println!();
            print!("{}", format_table2());
            println!();
            print!(
                "{}",
                format_time_table(Compiler::Gcc, &time_rows(Compiler::Gcc))
            );
            println!();
            print!(
                "{}",
                format_time_table(Compiler::Icc, &time_rows(Compiler::Icc))
            );
            println!();
            print!("{}", format_fig6(&time_rows(Compiler::Gcc)));
            println!();
            print!("{}", format_ablations());
            println!();
            run_table3();
            run_fig5("out");
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: tables [table1|table2|table3|table4|table5|fig5|fig6|ablations|bench|graph|analyze|bench-delta|all]"
            );
            std::process::exit(2);
        }
    }
}

fn run_bench(
    path: &str,
    trace_path: Option<&str>,
    devices: Option<Vec<gpu_sim::device::GpuProfile>>,
) {
    if trace_path.is_some() {
        trace::enable();
    }
    eprintln!(
        "[bench] timing the end-to-end AMC run ({} worker threads)...",
        rayon::max_threads()
    );
    let run = results::run_benchmark_with_devices(2026, devices.as_deref());
    let json = results::to_json(&run);
    std::fs::write(path, &json).expect("write benchmark results");
    if let Some(tp) = trace_path {
        trace::write_chrome_trace(Path::new(tp)).expect("write trace");
        eprintln!("[bench] chrome trace (load in Perfetto or chrome://tracing) -> {tp}");
    }
    eprintln!(
        "[bench] AMC wall {:.2}s (gpu pipeline {:.2}s + cpu tail {:.2}s) -> {path}",
        run.amc_wall_s(),
        run.gpu_pipeline_s,
        run.cpu_tail_s
    );
    eprintln!(
        "[bench] tail stages: selection {:.2}s, unmix {:.2}s (cpu), \
         classify {:.2}s, argmax {:.2}s (cpu)",
        run.tail.selection_s, run.tail.unmix_s, run.tail.classify_s, run.tail.argmax_s
    );
    let rollup = results::opt_rollup(&run);
    eprintln!("[bench] shader optimizer (per-kernel, dynamic = fragments x instructions):");
    for k in &rollup.kernels {
        eprintln!(
            "[bench]   {:<14} {:>2} -> {:>2} instrs | {:>4} passes | {:>9} frags | \
             dynamic {:>9} -> {:>9}  (-{:.1}%)",
            k.name,
            k.raw_instructions,
            k.opt_instructions,
            k.passes,
            k.fragments,
            k.dynamic_raw(),
            k.dynamic_opt(),
            k.reduction_pct()
        );
    }
    eprintln!(
        "[bench]   total dynamic shaded instructions {} -> {} (-{:.1}%), \
         isa microbench wall {:.3}s -> {:.3}s",
        rollup.dynamic_raw(),
        rollup.dynamic_opt(),
        rollup.reduction_pct(),
        run.opt_wall_raw_s,
        run.opt_wall_opt_s
    );
    let fl = &run.fleet;
    eprintln!(
        "[bench] fleet scaling over {} chunks ({} lines + {} halo), \
         baseline 1x{} modeled {:.6}s:",
        fl.shapes.first().map_or(0, |s| s.chunks),
        fl.lines_per_chunk,
        fl.halo,
        fl.baseline_device,
        fl.baseline_modeled_s
    );
    eprintln!(
        "[bench]   {:<24} {:>6} {:>6} {:>11} {:>8} {:>9}",
        "shape", "chunks", "steals", "modeled_s", "speedup", "wall_s"
    );
    for shape in &fl.shapes {
        eprintln!(
            "[bench]   {:<24} {:>6} {:>6} {:>11.6} {:>7.2}x {:>9.3}",
            shape.name,
            shape.chunks,
            shape.steals,
            shape.modeled_makespan_s,
            shape.modeled_speedup(fl.baseline_modeled_s),
            shape.wall_s
        );
        for (i, d) in shape.devices.iter().enumerate() {
            eprintln!(
                "[bench]     dev{} {:<18} planned {:>2} -> executed {:>2} \
                 ({} stolen) | modeled {:.6}s | wall {:.3}s",
                i,
                d.device,
                d.planned.len(),
                d.executed.len(),
                d.steals,
                d.modeled_s,
                d.wall_s
            );
        }
    }
}

/// Analyze a captured Chrome trace, or — with no `--trace` — run a reduced
/// traced workload (a shrunk-memory single-device arm so the pipeline must
/// chunk and double-buffer, plus a dual-7800 GTX fleet arm) and report its
/// critical path, utilization and overlap.
fn run_analyze(trace_path: Option<&str>) {
    if let Some(tp) = trace_path {
        let text = match std::fs::read_to_string(tp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {tp}: {e}");
                std::process::exit(2);
            }
        };
        let snap = match trace::analyze::import_chrome_trace(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {tp} is not a loadable Chrome trace: {e}");
                std::process::exit(2);
            }
        };
        print!(
            "{}",
            trace::analyze::render_text(&trace::analyze::analyze(&snap))
        );
        return;
    }

    use amc_core::fleet::DeviceFleet;
    use amc_core::pipeline::{GpuAmc, KernelMode};
    use gpu_sim::device::GpuProfile;
    use gpu_sim::gpu::Gpu;
    use hsi::classify::AmcConfig;
    use hsi_scene::library::indian_pines_classes;
    use hsi_scene::scene::{generate, SceneConfig};

    trace::enable();
    trace::reset();
    eprintln!("[analyze] running the reduced traced workload (no --trace given)...");
    let classes = indian_pines_classes();
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(2026));
    let amc = GpuAmc::new(
        AmcConfig::paper_default(classes.len()).se.clone(),
        KernelMode::Closure,
    );
    {
        // Shrink video memory so the cube cannot be resident at once: the
        // run then chunks and the packer-overlap metrics are non-trivial.
        let _arm = trace::span("bench.arm", "single_device");
        let mut profile = GpuProfile::geforce_7800gtx();
        profile.video_memory_mib = 8;
        let mut gpu = Gpu::new(profile);
        amc.run(&mut gpu, &scene.cube).expect("single-device run");
    }
    {
        let _arm = trace::span("bench.arm", "fleet:7800gtx+7800gtx");
        DeviceFleet::new(vec![
            GpuProfile::geforce_7800gtx(),
            GpuProfile::geforce_7800gtx(),
        ])
        .run(&amc, &scene.cube)
        .expect("fleet run");
    }
    let analysis = trace::analyze::analyze(&trace::snapshot_events());
    print!("{}", trace::analyze::render_text(&analysis));
}

/// Compare two benchmark documents and exit 1 on any failed gate.
fn run_bench_delta(baseline: &str, current: &str, thr: &hsi_bench::delta::Thresholds) {
    let load = |path: &str| -> results::BenchRun {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match results::from_json(&text) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline_run = load(baseline);
    let current_run = load(current);
    let violations = hsi_bench::delta::compare(&baseline_run, &current_run, thr);
    print!("{}", hsi_bench::delta::render(&violations));
    if !violations.is_empty() {
        std::process::exit(1);
    }
}

fn run_graph(format: &str, fuse: bool) {
    use amc_core::pipeline::{GpuAmc, KernelMode};
    use gpu_sim::device::GpuProfile;
    use hsi::classify::AmcConfig;
    use hsi_scene::scene::SceneConfig;

    // The benchmark scene geometry: the graph's shape depends only on the
    // band count and structuring element, so no cube needs generating.
    let cfg = SceneConfig::reduced_indian_pines(0);
    let config = AmcConfig::paper_default(1);
    let amc = GpuAmc::new(config.se.clone(), KernelMode::Isa);
    let graph = amc
        .compile_graph(
            &GpuProfile::geforce_7800gtx(),
            cfg.width,
            cfg.height,
            cfg.bands,
            fuse,
        )
        .expect("compile AMC render graph");
    eprintln!(
        "[graph] {}x{}x{} AMC graph, fusion {}: {} passes, {} fusions committed, {} eliminated",
        cfg.width,
        cfg.height,
        cfg.bands,
        if fuse { "on" } else { "off" },
        graph.passes.len(),
        graph.fusions.len(),
        graph.eliminated.len(),
    );
    match format {
        "json" => print!("{}", graph.to_json()),
        _ => print!("{}", graph.to_dot()),
    }
}

fn run_table3() {
    eprintln!(
        "[table3] generating the synthetic Indian Pines scene and running AMC (3x3 SE, c=32)..."
    );
    let result = accuracy_experiment(2026);
    print!("{}", format_table3(&result));
}

fn run_fig5(dir: &str) {
    use hsi_scene::library::indian_pines_classes;
    use hsi_scene::render;
    use hsi_scene::scene::{generate, SceneConfig};

    eprintln!(
        "[fig5] rendering scene band, ground truth, MEI and classification maps to {dir}/ ..."
    );
    let classes = indian_pines_classes();
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(2026));
    let dims = scene.cube.dims();
    // The paper shows the 587nm band: that wavelength lands at ~9% of the
    // 0.4–2.5um range.
    let band = dims.bands * 9 / 100;
    let out = Path::new(dir);
    render::write_file(
        &out.join("fig5a_band.pgm"),
        &render::band_to_pgm(&scene.cube, band),
    )
    .expect("write fig5a");
    render::write_file(
        &out.join("fig5b_ground_truth.ppm"),
        &render::labels_to_ppm(&scene.ground_truth, dims.width, dims.height),
    )
    .expect("write fig5b");

    let amc =
        hsi::classify::AmcClassifier::new(hsi::classify::AmcConfig::paper_default(classes.len()));
    let result = amc.classify(&scene.cube).expect("AMC");
    render::write_file(
        &out.join("mei.pgm"),
        &render::scores_to_pgm(&result.mei.scores, dims.width, dims.height),
    )
    .expect("write mei");
    let mapped = hsi::metrics::map_clusters_to_truth(
        &scene.ground_truth,
        &result.labels,
        result.class_count(),
        classes.len(),
    )
    .expect("mapping");
    render::write_file(
        &out.join("classification.ppm"),
        &render::labels_to_ppm(&mapped, dims.width, dims.height),
    )
    .expect("write classification");
    eprintln!("[fig5] wrote fig5a_band.pgm, fig5b_ground_truth.ppm, mei.pgm, classification.ppm");
}
