//! Label parity between the batched unmixing tail and the per-pixel oracle
//! on an Indian-Pines-style synthetic scene, at several worker-thread counts.

use hyperspec::prelude::*;
use hyperspec::scene::library::indian_pines_classes;

/// A fast scene: 8 classes on a small grid (same shape as the end-to-end
/// classification tests).
fn small_scene(seed: u64) -> SyntheticScene {
    let classes: Vec<_> = indian_pines_classes().into_iter().take(8).collect();
    let cfg = SceneConfig {
        width: 64,
        height: 48,
        bands: 24,
        field_width: 12,
        field_height: 12,
        seed,
        noise_fraction: 0.002,
        mixing_halfwidth: 0.3,
        sensor_scale: 4000.0,
        purity_boost: 0.10,
    };
    generate(&classes, &cfg)
}

/// Fit a mixture model to pixels sampled on a stride across the scene —
/// the parity test only needs a representative endmember matrix, not a
/// full selection pass.
fn sample_model(cube: &Cube, count: usize) -> LinearMixtureModel {
    let dims = cube.dims();
    let stride = (dims.pixels() / count).max(1);
    let spectra: Vec<Vec<f32>> = (0..count)
        .map(|i| {
            let p = (i * stride).min(dims.pixels() - 1);
            cube.pixel_slice(p % dims.width, p / dims.width)
                .unwrap()
                .to_vec()
        })
        .collect();
    let refs: Vec<&[f32]> = spectra.iter().map(Vec::as_slice).collect();
    LinearMixtureModel::new(&refs).unwrap()
}

#[test]
fn batched_labels_match_per_pixel_oracle_on_scene() {
    let scene = small_scene(17);
    let model = sample_model(&scene.cube, 8);
    for constraint in [
        AbundanceConstraint::None,
        AbundanceConstraint::SumToOne,
        AbundanceConstraint::SumToOneNonNeg,
    ] {
        let oracle = model.classify_cube(&scene.cube, constraint).unwrap();
        let batched = model
            .classify_cube_batched(&scene.cube, constraint)
            .unwrap();
        assert_eq!(oracle, batched, "labels diverge under {constraint:?}");
    }
}

#[test]
fn batched_labels_identical_across_thread_counts() {
    let scene = small_scene(29);
    let model = sample_model(&scene.cube, 8);
    let constraint = AbundanceConstraint::SumToOneNonNeg;
    let single = rayon::with_threads(1, || {
        model
            .classify_cube_batched(&scene.cube, constraint)
            .unwrap()
    });
    // Default worker pool (GPU_SIM_THREADS or the core count), plus a few
    // explicit counts: the fixed tile decomposition must make the labels
    // bit-identical regardless of parallelism.
    let default = model
        .classify_cube_batched(&scene.cube, constraint)
        .unwrap();
    assert_eq!(single, default);
    for n in [2, 5] {
        let got = rayon::with_threads(n, || {
            model
                .classify_cube_batched(&scene.cube, constraint)
                .unwrap()
        });
        assert_eq!(single, got, "labels diverge at {n} threads");
    }
}

#[test]
fn full_amc_classifier_is_thread_count_invariant() {
    // The whole tail (selection + batched unmixing + refinement) must also
    // be deterministic across worker pools, since every parallel stage
    // decomposes over fixed tiles.
    let scene = small_scene(5);
    let amc = AmcClassifier::new(AmcConfig::paper_default(8));
    let single = rayon::with_threads(1, || amc.classify(&scene.cube).unwrap());
    let multi = rayon::with_threads(4, || amc.classify(&scene.cube).unwrap());
    assert_eq!(single.labels, multi.labels);
    assert_eq!(single.class_count(), multi.class_count());
}
