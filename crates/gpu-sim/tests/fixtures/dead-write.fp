!!FP1.0 fix-dead-write
# R1 is written and then never read.
TEX R0, T0, tex0
MOV R1, R0
MOV OC, R0
