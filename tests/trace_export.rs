//! Golden validation of the Chrome trace exporter on a real two-chunk
//! pipeline run, plus the observability contract that matters most:
//! tracing is an *observer* — enabling it must not change a single output
//! bit.
//!
//! Everything lives in one `#[test]` because the trace switch is
//! process-global; integration-test binaries run their tests on separate
//! threads and interleaved enable/disable would race.

use hyperspec::amc::pipeline::{GpuAmc, KernelMode, PipelineOutput};
use hyperspec::prelude::*;
use hyperspec::trace;

fn pseudo_random_cube(w: usize, h: usize, bands: usize, seed: u64) -> Cube {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / 16_777_216.0
    };
    Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |_, _, _| {
        25.0 + 175.0 * next()
    })
    .unwrap()
}

/// Extract a `"key":"string"` field from a single-line JSON event.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract a `"key":number` field from a single-line JSON event.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_pipeline(gpu: &mut Gpu, amc: &GpuAmc, cube: &Cube) -> PipelineOutput {
    amc.run(gpu, cube).expect("pipeline run")
}

#[test]
fn chrome_export_is_golden_and_tracing_is_pure_observation() {
    // A device small enough that this cube must split into >= 2 chunks.
    let cube = pseudo_random_cube(64, 96, 12, 0xA11CE);
    let mut profile = GpuProfile::geforce_7800gtx();
    profile.video_memory_mib = 1;
    let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);

    // --- Baseline with tracing off: nothing may be recorded. ---
    trace::disable();
    trace::reset();
    let off = run_pipeline(&mut Gpu::new(profile.clone()), &amc, &cube);
    assert!(
        off.chunks >= 2,
        "test scenario must chunk, got {}",
        off.chunks
    );
    assert!(
        trace::drain_events().is_empty(),
        "disabled tracing recorded events"
    );

    // --- Same run with tracing on: outputs must be bit-identical. ---
    trace::enable();
    let on = run_pipeline(&mut Gpu::new(profile), &amc, &cube);
    trace::disable();
    assert_eq!(off.chunks, on.chunks);
    assert_eq!(off.mei.scores, on.mei.scores, "MEI texels changed");
    assert_eq!(off.min_index, on.min_index, "min labels changed");
    assert_eq!(off.max_index, on.max_index, "max labels changed");
    assert_eq!(off.stats, on.stats, "simulator counters changed");

    // --- Golden checks on the exported Chrome trace. ---
    let json = trace::chrome_trace_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with('}'));

    let events: Vec<&str> = json
        .lines()
        .filter(|l| l.starts_with('{') && l.contains("\"ph\":"))
        .collect();
    assert!(!events.is_empty(), "no events exported");

    let mut named_tids = std::collections::BTreeSet::new();
    let mut used_tids = std::collections::BTreeSet::new();
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts = f64::MIN;
    let mut chunk_spans = 0usize;
    let mut pack_spans = 0usize;
    let mut stage_spans: std::collections::BTreeMap<String, usize> = Default::default();

    for line in &events {
        let ph = str_field(line, "ph").expect("every event has ph");
        assert_eq!(num_field(line, "pid"), Some(1.0), "stable pid: {line}");
        let tid = num_field(line, "tid").expect("every event has tid") as u64;
        if ph == "M" {
            // Metadata: process_name on tid 0, thread_name elsewhere.
            if str_field(line, "name") == Some("thread_name") {
                named_tids.insert(tid);
            }
            continue;
        }
        used_tids.insert(tid);
        let ts = num_field(line, "ts").expect("timed event has ts");
        assert!(ts >= last_ts, "timestamps not sorted: {ts} after {last_ts}");
        last_ts = ts;
        let name = str_field(line, "name").unwrap().to_owned();
        let cat = str_field(line, "cat").unwrap_or_default().to_owned();
        match ph {
            "B" => {
                if cat == "pipeline.chunk" {
                    chunk_spans += 1;
                }
                if cat == "pipeline.pack" {
                    pack_spans += 1;
                }
                if cat == "pipeline.stage" {
                    *stage_spans.entry(name.clone()).or_default() += 1;
                }
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let open = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without B on tid {tid}: {line}"));
                assert_eq!(open, name, "mismatched B/E pair on tid {tid}");
            }
            "i" => assert!(
                line.contains("\"s\":\"t\""),
                "instant missing scope: {line}"
            ),
            "C" => {}
            other => panic!("unexpected phase {other:?}: {line}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    for tid in &used_tids {
        assert!(named_tids.contains(tid), "tid {tid} has no thread_name");
    }

    // Per-chunk stage structure: all six stages appear once per chunk, and
    // the packer overlapped every chunk after the first.
    assert_eq!(chunk_spans, on.chunks, "one chunk span per chunk");
    for stage in [
        "upload",
        "normalize",
        "distance",
        "minmax",
        "mei",
        "download",
    ] {
        assert_eq!(
            stage_spans.get(stage).copied().unwrap_or(0),
            on.chunks,
            "stage {stage} spans != chunks"
        );
    }
    assert_eq!(pack_spans, on.chunks - 1, "double-buffer pack spans");
    trace::reset();
}
