//! The hyperspectral data cube.
//!
//! A cube is a `width x height` raster of pixel vectors, each with `bands`
//! spectral samples. AVIRIS-style sensors deliver the cube in one of three
//! interleaves, all of which are supported as storage orders:
//!
//! * **BSQ** (band sequential): band-major, `data[b][y][x]`.
//! * **BIL** (band interleaved by line): `data[y][b][x]`.
//! * **BIP** (band interleaved by pixel): pixel-major, `data[y][x][b]`.
//!
//! The AMC pipeline operates on entire pixel vectors, so BIP is the friendly
//! layout for CPU processing, while the GPU stream mapping (four bands per
//! RGBA texel, see `amc-core::layout`) starts from BSQ band planes.

use crate::error::{HsiError, Result};

/// Dimensions of a hyperspectral cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CubeDims {
    /// Number of samples per line (x extent).
    pub width: usize,
    /// Number of lines (y extent).
    pub height: usize,
    /// Number of spectral bands.
    pub bands: usize,
}

impl CubeDims {
    /// Create dimensions.
    pub const fn new(width: usize, height: usize, bands: usize) -> Self {
        Self {
            width,
            height,
            bands,
        }
    }

    /// Total number of samples (`width * height * bands`).
    pub const fn samples(&self) -> usize {
        self.width * self.height * self.bands
    }

    /// Number of pixel vectors (`width * height`).
    pub const fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Size of the cube in bytes as stored by the sensor (16-bit samples).
    ///
    /// The paper quotes scene sizes (68..547 MB) assuming AVIRIS's 2-byte
    /// integer samples; this method reproduces those figures.
    pub const fn sensor_bytes(&self) -> usize {
        self.samples() * 2
    }

    /// Sensor size in MiB (the paper's "Size (MB)" column).
    pub fn sensor_mib(&self) -> f64 {
        self.sensor_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Validate that no dimension is zero.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 {
            return Err(HsiError::EmptyDimension { which: "width" });
        }
        if self.height == 0 {
            return Err(HsiError::EmptyDimension { which: "height" });
        }
        if self.bands == 0 {
            return Err(HsiError::EmptyDimension { which: "bands" });
        }
        Ok(())
    }
}

/// Sample interleave (storage order) of a cube buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interleave {
    /// Band sequential: `[band][line][sample]`.
    Bsq,
    /// Band interleaved by line: `[line][band][sample]`.
    Bil,
    /// Band interleaved by pixel: `[line][sample][band]`.
    Bip,
}

impl Interleave {
    /// Linear index of `(x, y, band)` under this interleave.
    #[inline(always)]
    pub fn index(&self, dims: CubeDims, x: usize, y: usize, band: usize) -> usize {
        debug_assert!(x < dims.width && y < dims.height && band < dims.bands);
        match self {
            Interleave::Bsq => (band * dims.height + y) * dims.width + x,
            Interleave::Bil => (y * dims.bands + band) * dims.width + x,
            Interleave::Bip => (y * dims.width + x) * dims.bands + band,
        }
    }

    /// All interleaves, for exhaustive tests.
    pub const ALL: [Interleave; 3] = [Interleave::Bsq, Interleave::Bil, Interleave::Bip];

    /// The canonical ENVI header name (`bsq`/`bil`/`bip`).
    pub fn envi_name(&self) -> &'static str {
        match self {
            Interleave::Bsq => "bsq",
            Interleave::Bil => "bil",
            Interleave::Bip => "bip",
        }
    }

    /// Parse an ENVI header name.
    pub fn from_envi_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "bsq" => Some(Interleave::Bsq),
            "bil" => Some(Interleave::Bil),
            "bip" => Some(Interleave::Bip),
            _ => None,
        }
    }
}

/// An owned hyperspectral image cube of `f32` samples.
///
/// Radiance values are kept as `f32` in memory (the GPU pipeline works on
/// 32-bit float textures); [`CubeDims::sensor_bytes`] still reports the
/// on-sensor 16-bit size used for the paper's size axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Cube {
    dims: CubeDims,
    interleave: Interleave,
    data: Vec<f32>,
}

impl Cube {
    /// Create a cube from a raw sample buffer.
    pub fn from_vec(dims: CubeDims, interleave: Interleave, data: Vec<f32>) -> Result<Self> {
        dims.validate()?;
        if data.len() != dims.samples() {
            return Err(HsiError::DimensionMismatch {
                expected: dims.samples(),
                actual: data.len(),
            });
        }
        Ok(Self {
            dims,
            interleave,
            data,
        })
    }

    /// Create a zero-filled cube.
    pub fn zeros(dims: CubeDims, interleave: Interleave) -> Result<Self> {
        dims.validate()?;
        Ok(Self {
            dims,
            interleave,
            data: vec![0.0; dims.samples()],
        })
    }

    /// Create a cube by evaluating `f(x, y, band)` at every sample.
    pub fn from_fn<F>(dims: CubeDims, interleave: Interleave, mut f: F) -> Result<Self>
    where
        F: FnMut(usize, usize, usize) -> f32,
    {
        let mut cube = Self::zeros(dims, interleave)?;
        for y in 0..dims.height {
            for x in 0..dims.width {
                for b in 0..dims.bands {
                    let idx = interleave.index(dims, x, y, b);
                    cube.data[idx] = f(x, y, b);
                }
            }
        }
        Ok(cube)
    }

    /// Cube dimensions.
    pub fn dims(&self) -> CubeDims {
        self.dims
    }

    /// Storage interleave.
    pub fn interleave(&self) -> Interleave {
        self.interleave
    }

    /// Raw sample buffer in storage order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw sample buffer in storage order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the cube, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Sample at `(x, y, band)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, band: usize) -> f32 {
        self.data[self.interleave.index(self.dims, x, y, band)]
    }

    /// Set the sample at `(x, y, band)`.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, band: usize, value: f32) {
        let idx = self.interleave.index(self.dims, x, y, band);
        self.data[idx] = value;
    }

    /// Copy the pixel vector at `(x, y)` into `out` (`out.len() == bands`).
    pub fn pixel_into(&self, x: usize, y: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dims.bands, "pixel buffer length");
        match self.interleave {
            Interleave::Bip => {
                let start = (y * self.dims.width + x) * self.dims.bands;
                out.copy_from_slice(&self.data[start..start + self.dims.bands]);
            }
            _ => {
                for (b, slot) in out.iter_mut().enumerate() {
                    *slot = self.get(x, y, b);
                }
            }
        }
    }

    /// Allocate and return the pixel vector at `(x, y)`.
    pub fn pixel(&self, x: usize, y: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dims.bands];
        self.pixel_into(x, y, &mut out);
        out
    }

    /// Borrow the pixel vector at `(x, y)` without copying.
    ///
    /// Only possible in BIP layout, where a pixel's bands are contiguous.
    pub fn pixel_slice(&self, x: usize, y: usize) -> Option<&[f32]> {
        match self.interleave {
            Interleave::Bip => {
                let start = (y * self.dims.width + x) * self.dims.bands;
                Some(&self.data[start..start + self.dims.bands])
            }
            _ => None,
        }
    }

    /// Borrow a whole band plane (`width * height` samples, line-major).
    ///
    /// Only possible in BSQ layout, where a band's raster is contiguous.
    pub fn band_plane(&self, band: usize) -> Option<&[f32]> {
        match self.interleave {
            Interleave::Bsq => {
                let plane = self.dims.width * self.dims.height;
                Some(&self.data[band * plane..(band + 1) * plane])
            }
            _ => None,
        }
    }

    /// Re-encode the cube into a different interleave.
    ///
    /// Returns `Cow::Borrowed(self)` when the cube is already stored in the
    /// target interleave, so callers that normalize to BIP before a hot loop
    /// pay nothing when the data is already pixel-major. Call `.into_owned()`
    /// when an owned `Cube` is required.
    pub fn to_interleave(&self, target: Interleave) -> std::borrow::Cow<'_, Cube> {
        if target == self.interleave {
            return std::borrow::Cow::Borrowed(self);
        }
        let dims = self.dims;
        let mut data = vec![0.0f32; dims.samples()];
        for y in 0..dims.height {
            for x in 0..dims.width {
                for b in 0..dims.bands {
                    data[target.index(dims, x, y, b)] =
                        self.data[self.interleave.index(dims, x, y, b)];
                }
            }
        }
        std::borrow::Cow::Owned(Cube {
            dims,
            interleave: target,
            data,
        })
    }

    /// Extract the spatial window `[x0, x0+w) x [y0, y0+h)` (all bands).
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Result<Cube> {
        if w == 0 || h == 0 {
            return Err(HsiError::EmptyDimension { which: "crop" });
        }
        if x0 + w > self.dims.width || y0 + h > self.dims.height {
            return Err(HsiError::OutOfBounds {
                what: format!(
                    "crop {}x{} at ({}, {}) of {}x{} cube",
                    w, h, x0, y0, self.dims.width, self.dims.height
                ),
            });
        }
        let dims = CubeDims::new(w, h, self.dims.bands);
        let mut out = Cube::zeros(dims, self.interleave)?;
        for y in 0..h {
            for x in 0..w {
                for b in 0..dims.bands {
                    out.set(x, y, b, self.get(x0 + x, y0 + y, b));
                }
            }
        }
        Ok(out)
    }

    /// Take only the first `n` lines (the paper's cropped evaluation sizes).
    pub fn take_lines(&self, n: usize) -> Result<Cube> {
        self.crop(0, 0, self.dims.width, n)
    }

    /// Split the cube into spatial chunks per the chunking policy.
    pub fn chunks(&self, chunking: Chunking) -> ChunkIter<'_> {
        ChunkIter {
            cube: self,
            chunking,
            next_y: 0,
            index: 0,
        }
    }
}

/// Spatial chunking policy.
///
/// The paper splits an image that exceeds GPU memory "into multiple chunks
/// made up of entire pixel vectors": each chunk carries full spectral depth
/// for a contiguous run of lines. The morphological window needs `halo` extra
/// lines on each side so chunked processing matches unchunked output exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunking {
    /// Number of *output* lines per chunk (excluding halo lines).
    pub lines_per_chunk: usize,
    /// Halo lines replicated above and below each chunk (SE radius).
    pub halo: usize,
}

impl Chunking {
    /// A chunking with the given body size and halo.
    pub fn new(lines_per_chunk: usize, halo: usize) -> Self {
        Self {
            lines_per_chunk: lines_per_chunk.max(1),
            halo,
        }
    }

    /// Chunking that fits a memory budget of `bytes` for an `f32` cube of
    /// width `w` and `bands` bands (plus halo lines).
    pub fn for_memory_budget(bytes: usize, dims: CubeDims, halo: usize) -> Self {
        let line_bytes = dims.width * dims.bands * std::mem::size_of::<f32>();
        let max_lines = (bytes / line_bytes.max(1)).max(2 * halo + 1);
        Self::new(max_lines.saturating_sub(2 * halo).max(1), halo)
    }
}

/// One spatial chunk: a sub-cube plus bookkeeping mapping it back to the
/// parent image.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Chunk ordinal (0-based).
    pub index: usize,
    /// Sub-cube including halo lines.
    pub cube: Cube,
    /// First output line of this chunk in the parent image.
    pub y_start: usize,
    /// Number of output lines (excluding halo).
    pub body_lines: usize,
    /// Halo lines present above the body in `cube`.
    pub halo_top: usize,
    /// Halo lines present below the body in `cube`.
    pub halo_bottom: usize,
}

impl Chunk {
    /// Line range of the body within the chunk-local cube.
    pub fn body_range(&self) -> std::ops::Range<usize> {
        self.halo_top..self.halo_top + self.body_lines
    }
}

/// Iterator over spatial chunks of a cube.
pub struct ChunkIter<'a> {
    cube: &'a Cube,
    chunking: Chunking,
    next_y: usize,
    index: usize,
}

impl Iterator for ChunkIter<'_> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        let dims = self.cube.dims();
        if self.next_y >= dims.height {
            return None;
        }
        let y_start = self.next_y;
        let body_lines = self.chunking.lines_per_chunk.min(dims.height - y_start);
        let halo_top = self.chunking.halo.min(y_start);
        let halo_bottom = self.chunking.halo.min(dims.height - (y_start + body_lines));
        let y0 = y_start - halo_top;
        let h = halo_top + body_lines + halo_bottom;
        let cube = self
            .cube
            .crop(0, y0, dims.width, h)
            .expect("chunk crop is in bounds by construction");
        let chunk = Chunk {
            index: self.index,
            cube,
            y_start,
            body_lines,
            halo_top,
            halo_bottom,
        };
        self.next_y += body_lines;
        self.index += 1;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_cube(interleave: Interleave) -> Cube {
        let dims = CubeDims::new(4, 3, 5);
        Cube::from_fn(dims, interleave, |x, y, b| (x * 100 + y * 10 + b) as f32).unwrap()
    }

    #[test]
    fn dims_arithmetic() {
        let d = CubeDims::new(2166, 614, 216);
        assert_eq!(d.pixels(), 2166 * 614);
        assert_eq!(d.samples(), 2166 * 614 * 216);
        // The paper's "547 MB" full Indian Pines scene.
        assert!((d.sensor_mib() - 547.9).abs() < 1.0, "{}", d.sensor_mib());
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(matches!(
            Cube::zeros(CubeDims::new(0, 3, 5), Interleave::Bip),
            Err(HsiError::EmptyDimension { which: "width" })
        ));
        assert!(matches!(
            Cube::zeros(CubeDims::new(3, 0, 5), Interleave::Bip),
            Err(HsiError::EmptyDimension { which: "height" })
        ));
        assert!(matches!(
            Cube::zeros(CubeDims::new(3, 3, 0), Interleave::Bip),
            Err(HsiError::EmptyDimension { which: "bands" })
        ));
    }

    #[test]
    fn from_vec_checks_length() {
        let dims = CubeDims::new(2, 2, 2);
        assert!(Cube::from_vec(dims, Interleave::Bsq, vec![0.0; 7]).is_err());
        assert!(Cube::from_vec(dims, Interleave::Bsq, vec![0.0; 8]).is_ok());
    }

    #[test]
    fn get_set_round_trip_all_interleaves() {
        for il in Interleave::ALL {
            let mut cube = Cube::zeros(CubeDims::new(3, 4, 6), il).unwrap();
            cube.set(2, 3, 5, 42.5);
            cube.set(0, 0, 0, -1.0);
            assert_eq!(cube.get(2, 3, 5), 42.5);
            assert_eq!(cube.get(0, 0, 0), -1.0);
            assert_eq!(cube.get(1, 1, 1), 0.0);
        }
    }

    #[test]
    fn interleave_indices_are_bijective() {
        let dims = CubeDims::new(3, 4, 5);
        for il in Interleave::ALL {
            let mut seen = vec![false; dims.samples()];
            for x in 0..dims.width {
                for y in 0..dims.height {
                    for b in 0..dims.bands {
                        let idx = il.index(dims, x, y, b);
                        assert!(!seen[idx], "duplicate index for {il:?}");
                        seen[idx] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn interleave_conversion_preserves_samples() {
        let bip = ramp_cube(Interleave::Bip);
        for target in Interleave::ALL {
            let conv = bip.to_interleave(target).into_owned();
            assert_eq!(conv.interleave(), target);
            for x in 0..4 {
                for y in 0..3 {
                    for b in 0..5 {
                        assert_eq!(conv.get(x, y, b), bip.get(x, y, b));
                    }
                }
            }
            // And back.
            let back = conv.to_interleave(Interleave::Bip);
            assert_eq!(*back, bip);
        }
    }

    #[test]
    fn to_interleave_borrows_when_already_in_target_layout() {
        use std::borrow::Cow;
        for il in Interleave::ALL {
            let cube = ramp_cube(il);
            let same = cube.to_interleave(il);
            // No copy: the returned view aliases the original buffer.
            assert!(matches!(same, Cow::Borrowed(_)));
            assert!(std::ptr::eq(same.data().as_ptr(), cube.data().as_ptr()));
            // A genuine conversion still produces an owned re-encoding.
            let other = match il {
                Interleave::Bip => Interleave::Bsq,
                _ => Interleave::Bip,
            };
            let conv = cube.to_interleave(other);
            assert!(matches!(conv, Cow::Owned(_)));
            assert!(!std::ptr::eq(conv.data().as_ptr(), cube.data().as_ptr()));
        }
    }

    #[test]
    fn pixel_accessors_agree() {
        for il in Interleave::ALL {
            let cube = ramp_cube(il);
            let p = cube.pixel(2, 1);
            assert_eq!(p, vec![210.0, 211.0, 212.0, 213.0, 214.0]);
            let mut buf = vec![0.0; 5];
            cube.pixel_into(2, 1, &mut buf);
            assert_eq!(buf, p);
        }
    }

    #[test]
    fn pixel_slice_only_for_bip() {
        let bip = ramp_cube(Interleave::Bip);
        assert_eq!(bip.pixel_slice(1, 2).unwrap(), &bip.pixel(1, 2)[..]);
        let bsq = ramp_cube(Interleave::Bsq);
        assert!(bsq.pixel_slice(1, 2).is_none());
    }

    #[test]
    fn band_plane_only_for_bsq() {
        let bsq = ramp_cube(Interleave::Bsq);
        let plane = bsq.band_plane(3).unwrap();
        assert_eq!(plane.len(), 12);
        assert_eq!(plane[0], 3.0); // (0,0,3)
        assert_eq!(plane[1], 103.0); // (1,0,3)
        assert_eq!(plane[4], 13.0); // (0,1,3)
        assert!(ramp_cube(Interleave::Bip).band_plane(0).is_none());
    }

    #[test]
    fn envi_names_round_trip() {
        for il in Interleave::ALL {
            assert_eq!(Interleave::from_envi_name(il.envi_name()), Some(il));
        }
        assert_eq!(Interleave::from_envi_name(" BSQ "), Some(Interleave::Bsq));
        assert_eq!(Interleave::from_envi_name("nope"), None);
    }

    #[test]
    fn crop_extracts_expected_window() {
        let cube = ramp_cube(Interleave::Bip);
        let crop = cube.crop(1, 1, 2, 2).unwrap();
        assert_eq!(crop.dims(), CubeDims::new(2, 2, 5));
        for x in 0..2 {
            for y in 0..2 {
                for b in 0..5 {
                    assert_eq!(crop.get(x, y, b), cube.get(x + 1, y + 1, b));
                }
            }
        }
    }

    #[test]
    fn crop_rejects_out_of_bounds() {
        let cube = ramp_cube(Interleave::Bip);
        assert!(cube.crop(3, 0, 2, 1).is_err());
        assert!(cube.crop(0, 2, 1, 2).is_err());
        assert!(cube.crop(0, 0, 0, 1).is_err());
    }

    #[test]
    fn take_lines_matches_crop() {
        let cube = ramp_cube(Interleave::Bsq);
        let two = cube.take_lines(2).unwrap();
        assert_eq!(two.dims().height, 2);
        assert_eq!(two, cube.crop(0, 0, 4, 2).unwrap());
    }

    #[test]
    fn chunks_cover_image_exactly_once() {
        let cube = Cube::from_fn(CubeDims::new(3, 10, 2), Interleave::Bip, |x, y, b| {
            (y * 100 + x * 10 + b) as f32
        })
        .unwrap();
        for lines in [1, 2, 3, 4, 10, 99] {
            for halo in [0, 1, 2] {
                let chunks: Vec<_> = cube.chunks(Chunking::new(lines, halo)).collect();
                let mut covered = [0usize; 10];
                for c in &chunks {
                    assert_eq!(c.cube.dims().width, 3);
                    assert_eq!(
                        c.cube.dims().height,
                        c.halo_top + c.body_lines + c.halo_bottom
                    );
                    for dy in 0..c.body_lines {
                        covered[c.y_start + dy] += 1;
                    }
                    // Chunk content matches the parent image.
                    for y in 0..c.cube.dims().height {
                        let parent_y = c.y_start - c.halo_top + y;
                        for x in 0..3 {
                            for b in 0..2 {
                                assert_eq!(c.cube.get(x, y, b), cube.get(x, parent_y, b));
                            }
                        }
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "lines={lines} halo={halo}");
            }
        }
    }

    #[test]
    fn chunk_halos_clamped_at_edges() {
        let cube = Cube::zeros(CubeDims::new(2, 6, 1), Interleave::Bip).unwrap();
        let chunks: Vec<_> = cube.chunks(Chunking::new(2, 1)).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].halo_top, 0);
        assert_eq!(chunks[0].halo_bottom, 1);
        assert_eq!(chunks[1].halo_top, 1);
        assert_eq!(chunks[1].halo_bottom, 1);
        assert_eq!(chunks[2].halo_top, 1);
        assert_eq!(chunks[2].halo_bottom, 0);
    }

    #[test]
    fn chunking_memory_budget_reserves_halo() {
        let dims = CubeDims::new(100, 1000, 50);
        let line_bytes = 100 * 50 * 4;
        let c = Chunking::for_memory_budget(line_bytes * 10, dims, 2);
        assert_eq!(c.halo, 2);
        assert_eq!(c.lines_per_chunk, 6); // 10 lines minus 2*2 halo
                                          // Degenerate budget still yields a usable chunking.
        let tiny = Chunking::for_memory_budget(1, dims, 2);
        assert!(tiny.lines_per_chunk >= 1);
    }
}
