//! Analyzer integration tests: synthetic span-stream fixtures (ragged
//! overlap, stolen fleet chunks, zero-length spans), an exporter→importer
//! round trip over the live recorder, and property tests asserting the
//! analyzer's core invariants on random well-formed streams.

use proptest::prelude::*;
use trace::analyze::{analyze, import_chrome_trace};
use trace::{ArgValue, Event, Phase, TraceSnapshot};

fn ev(ts_ns: u64, tid: u64, phase: Phase, cat: &'static str, name: &str) -> Event {
    Event {
        ts_ns,
        tid,
        phase,
        cat,
        name: name.to_owned(),
        args: Vec::new(),
    }
}

fn ev_args(
    ts_ns: u64,
    tid: u64,
    phase: Phase,
    cat: &'static str,
    name: &str,
    args: &[(&'static str, u64)],
) -> Event {
    Event {
        args: args.iter().map(|&(k, v)| (k, ArgValue::U64(v))).collect(),
        ..ev(ts_ns, tid, phase, cat, name)
    }
}

/// A chunked pipeline with nested stage spans and a packer thread whose pack
/// raggedly half-overlaps the chunk it hides under.
#[test]
fn stage_attribution_and_ragged_pack_overlap() {
    let events = vec![
        // chunk 0 on tid 1: [0, 1000), stages upload [0,200) distance [200,900).
        ev_args(
            0,
            1,
            Phase::Begin,
            "pipeline.chunk",
            "chunk",
            &[("index", 0)],
        ),
        ev(0, 1, Phase::Begin, "pipeline.stage", "upload"),
        ev(200, 1, Phase::End, "pipeline.stage", "upload"),
        ev(200, 1, Phase::Begin, "pipeline.stage", "distance"),
        ev(900, 1, Phase::End, "pipeline.stage", "distance"),
        ev(1000, 1, Phase::End, "pipeline.chunk", "chunk"),
        // pack for chunk 1 on tid 2: [800, 1200) — 200 hidden, 200 exposed.
        ev_args(
            800,
            2,
            Phase::Begin,
            "pipeline.pack",
            "pack",
            &[("chunk", 1)],
        ),
        ev(1200, 2, Phase::End, "pipeline.pack", "pack"),
        // chunk 1 on tid 1: [1200, 1600), one distance stage [1250, 1550).
        ev_args(
            1200,
            1,
            Phase::Begin,
            "pipeline.chunk",
            "chunk",
            &[("index", 1)],
        ),
        ev(1250, 1, Phase::Begin, "pipeline.stage", "distance"),
        ev(1550, 1, Phase::End, "pipeline.stage", "distance"),
        ev(1600, 1, Phase::End, "pipeline.chunk", "chunk"),
    ];
    let snap = TraceSnapshot {
        events,
        threads: vec![(1, "main".into()), (2, "packer".into())],
    };
    let arm = &analyze(&snap).arms[0];

    assert!((arm.wall_s - 1600e-9).abs() < 1e-15);
    assert!((arm.overlap.pack_total_s - 400e-9).abs() < 1e-15);
    assert!((arm.overlap.pack_hidden_s - 200e-9).abs() < 1e-15);
    assert!((arm.overlap.pack_overlap_efficiency() - 0.5).abs() < 1e-12);

    // Critical path: chunk0 (1000) → chunk1 (400) = 1400 beats pack→chunk1.
    assert_eq!(arm.critical_path.nodes, 2);
    assert!((arm.critical_path.total_s - 1400e-9).abs() < 1e-15);
    let stage = |name: &str| -> f64 {
        arm.critical_path
            .stages
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    assert!((stage("upload") - 200e-9).abs() < 1e-15);
    assert!((stage("distance") - 1000e-9).abs() < 1e-15);
    // Chunk time not under any stage span: 100 (chunk 0) + 100 (chunk 1).
    assert!((stage("other") - 200e-9).abs() < 1e-15);
    let total: f64 = arm.critical_path.stages.iter().map(|(_, v)| v).sum();
    assert!((total - arm.critical_path.total_s).abs() < 1e-12);

    // Utilization: tid 1 busy 1400/1600, tid 2 busy 400/1600.
    let t1 = arm.threads.iter().find(|t| t.tid == 1).unwrap();
    let t2 = arm.threads.iter().find(|t| t.tid == 2).unwrap();
    assert!((t1.utilization - 0.875).abs() < 1e-12);
    assert!((t2.utilization - 0.25).abs() < 1e-12);
}

/// A two-device fleet where device 1 steals one of device 0's chunks.
#[test]
fn fleet_balance_counts_steals_and_utilization() {
    let mut events = Vec::new();
    // device 0 (tid 1): chunks 0 [0,400) and 1 [400,800).
    for (i, (a, b)) in [(0u64, (0u64, 400u64)), (1, (400, 800))] {
        events.push(ev_args(
            a,
            1,
            Phase::Begin,
            "fleet.chunk",
            "chunk",
            &[("device", 0), ("index", i), ("stolen", 0)],
        ));
        events.push(ev(b, 1, Phase::End, "fleet.chunk", "chunk"));
    }
    // device 1 (tid 2): chunk 2 [0,500), then steals chunk 3 [500,600).
    events.push(ev_args(
        0,
        2,
        Phase::Begin,
        "fleet.chunk",
        "chunk",
        &[("device", 1), ("index", 2), ("stolen", 0)],
    ));
    events.push(ev(500, 2, Phase::End, "fleet.chunk", "chunk"));
    events.push(ev_args(
        500,
        2,
        Phase::Begin,
        "fleet.chunk",
        "chunk",
        &[("device", 1), ("index", 3), ("stolen", 1)],
    ));
    events.push(ev(600, 2, Phase::End, "fleet.chunk", "chunk"));
    let snap = TraceSnapshot {
        events,
        threads: vec![
            (1, "device0.7800gtx".into()),
            (2, "device1.6800ultra".into()),
        ],
    };
    let arm = &analyze(&snap).arms[0];
    let fleet = arm.fleet.as_ref().expect("fleet arm");

    assert!((fleet.makespan_s - 800e-9).abs() < 1e-15);
    assert_eq!(fleet.steals, 1);
    assert_eq!(fleet.devices.len(), 2);
    let d0 = &fleet.devices[0];
    let d1 = &fleet.devices[1];
    assert_eq!((d0.device, d0.chunks, d0.stolen), (0, 2, 0));
    assert_eq!((d1.device, d1.chunks, d1.stolen), (1, 2, 1));
    assert_eq!(d0.label, "device0.7800gtx");
    assert!((d0.utilization - 1.0).abs() < 1e-12);
    assert!((d1.utilization - 0.75).abs() < 1e-12);
    // mean(800, 600) / max(800, 600) = 0.875.
    assert!((fleet.load_balance() - 0.875).abs() < 1e-12);
}

/// Zero-length spans (all events at one instant) must not divide by zero.
#[test]
fn zero_length_streams_are_finite() {
    let events = vec![
        ev_args(
            50,
            1,
            Phase::Begin,
            "pipeline.chunk",
            "chunk",
            &[("index", 0)],
        ),
        ev(50, 1, Phase::End, "pipeline.chunk", "chunk"),
        ev_args(
            50,
            2,
            Phase::Begin,
            "pipeline.pack",
            "pack",
            &[("chunk", 1)],
        ),
        ev(50, 2, Phase::End, "pipeline.pack", "pack"),
        ev(50, 3, Phase::Begin, "gpu.xfer", "upload"),
        ev(50, 3, Phase::End, "gpu.xfer", "upload"),
    ];
    let snap = TraceSnapshot {
        events,
        threads: Vec::new(),
    };
    let arm = &analyze(&snap).arms[0];
    assert_eq!(arm.wall_s, 0.0);
    assert_eq!(arm.critical_path.total_s, 0.0);
    assert!(arm.critical_path.nodes >= 1);
    for t in &arm.threads {
        assert!(t.utilization.is_finite() && (0.0..=1.0).contains(&t.utilization));
    }
    assert!((arm.overlap.pack_overlap_efficiency() - 1.0).abs() < 1e-12);
    assert!(arm.overlap.bus_busy_s == 0.0 && arm.overlap.bus_contended_s == 0.0);
}

/// Record through the live recorder, export Chrome JSON, import it back,
/// and check both snapshots analyze identically. (The only test in this
/// binary touching the global recorder.)
#[test]
fn export_import_analyzes_identically() {
    trace::enable();
    trace::reset();
    {
        let _arm = trace::span("bench.arm", "roundtrip");
        {
            let _c = trace::span_with(
                "pipeline.chunk",
                "chunk",
                &[("index", ArgValue::U64(0)), ("lines", ArgValue::U64(64))],
            );
            let _s = trace::span("pipeline.stage", "distance");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let json = trace::chrome_trace_json();
    let live = trace::snapshot_events();
    trace::disable();
    trace::reset();

    let imported = import_chrome_trace(&json).expect("import");
    let a = analyze(&live);
    let b = analyze(&imported);
    assert_eq!(a.arms.len(), 1);
    assert_eq!(b.arms.len(), 1);
    assert_eq!(a.arms[0].name, "roundtrip");
    assert_eq!(b.arms[0].name, "roundtrip");
    assert_eq!(a.arms[0].critical_path.nodes, b.arms[0].critical_path.nodes);
    // Timestamps survive the µs-precision JSON round trip exactly (the
    // exporter keeps three decimals of microseconds = integer nanoseconds).
    assert!((a.arms[0].wall_s - b.arms[0].wall_s).abs() < 1e-12);
    assert!((a.arms[0].critical_path.total_s - b.arms[0].critical_path.total_s).abs() < 1e-12);
}

/// One generated work item: a root span, possibly with a nested child.
#[derive(Debug, Clone)]
struct GenSpan {
    tid: u64,
    cat_pick: usize,
    gap_ns: u64,
    dur_ns: u64,
    nested: bool,
}

fn gen_span_strategy() -> impl Strategy<Value = GenSpan> {
    (0u64..4, 0usize..4, 0u64..500, 0u64..1000, any::<bool>()).prop_map(
        |(tid, cat_pick, gap_ns, dur_ns, nested)| GenSpan {
            tid,
            cat_pick,
            gap_ns,
            dur_ns,
            nested,
        },
    )
}

/// Build a well-formed stream: per-thread clocks advance monotonically, and
/// every begin gets a matching end. Threads interleave raggedly because
/// each advances its own clock independently.
fn build_stream(items: &[GenSpan]) -> Vec<Event> {
    const CATS: [&str; 4] = ["pipeline.chunk", "pipeline.pack", "gpu.xfer", "tail.block"];
    let mut clock = [0u64; 4];
    let mut chunk_seq = [0u64; 4];
    let mut events = Vec::new();
    for item in items {
        let tid = item.tid;
        let t = &mut clock[tid as usize];
        *t += item.gap_ns;
        let cat = CATS[item.cat_pick];
        let start = *t;
        let args: &[(&'static str, u64)] = &match cat {
            "pipeline.chunk" => {
                let i = chunk_seq[tid as usize];
                chunk_seq[tid as usize] += 1;
                [("index", i)]
            }
            "pipeline.pack" => [("chunk", chunk_seq[tid as usize])],
            _ => [("bytes", item.dur_ns)],
        };
        events.push(ev_args(start, tid, Phase::Begin, cat, "span", args));
        if item.nested && item.dur_ns >= 2 {
            let quarter = item.dur_ns / 4;
            events.push(ev(
                start + quarter,
                tid,
                Phase::Begin,
                "pipeline.stage",
                "distance",
            ));
            events.push(ev(
                start + 3 * quarter,
                tid,
                Phase::End,
                "pipeline.stage",
                "distance",
            ));
        }
        *t += item.dur_ns;
        events.push(ev(*t, tid, Phase::End, cat, "span"));
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn analyzer_invariants_hold_on_random_streams(
        items in prop::collection::vec(gen_span_strategy(), 0..40),
    ) {
        let events = build_stream(&items);
        let snap = TraceSnapshot { events, threads: Vec::new() };
        let analysis = analyze(&snap);
        for arm in &analysis.arms {
            // Utilization is a fraction for every thread.
            for t in &arm.threads {
                prop_assert!(t.utilization.is_finite());
                prop_assert!((0.0..=1.0).contains(&t.utilization), "util {}", t.utilization);
                prop_assert!(t.busy_s <= arm.wall_s + 1e-12);
            }
            // The critical path is a chain of non-overlapping spans, so it
            // can never exceed the wall.
            prop_assert!(arm.critical_path.total_s <= arm.wall_s + 1e-12,
                "cp {} > wall {}", arm.critical_path.total_s, arm.wall_s);
            let attributed: f64 = arm.critical_path.stages.iter().map(|(_, v)| v).sum();
            prop_assert!((attributed - arm.critical_path.total_s).abs() < 1e-9);
            // Overlap accounting stays within bounds.
            let ov = &arm.overlap;
            prop_assert!(ov.pack_hidden_s <= ov.pack_total_s + 1e-12);
            prop_assert!((0.0..=1.0).contains(&ov.pack_overlap_efficiency()));
            prop_assert!(ov.bus_contended_s <= ov.bus_busy_s + 1e-12);
            prop_assert!(ov.bus_busy_s <= arm.wall_s + 1e-12);
        }
    }
}
