//! 2D RGBA32F textures — the streams of the stream programming model.
//!
//! The paper maps every group of four consecutive spectral channels onto the
//! RGBA components of a 2D texture (Fig. 3), so a single texel carries four
//! bands and the fragment processors' SIMD4 ALUs process four bands per
//! instruction. All simulator textures are RGBA32F: float textures were the
//! GPGPU workhorse format on both NV3x and G7x.

/// One RGBA texel.
pub type Texel = [f32; 4];

/// Texture coordinate addressing mode (GL wrap modes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AddressMode {
    /// Coordinates clamp to the edge texel (GPGPU default; gives the
    /// morphological window its border-replication semantics).
    ClampToEdge,
    /// Coordinates wrap around (tiling).
    Repeat,
    /// Coordinates reflect at each edge.
    MirroredRepeat,
    /// Out-of-range fetches return the border color.
    ClampToBorder(Texel),
}

/// A 2D texture of RGBA32F texels, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Texture2D {
    width: usize,
    height: usize,
    address_mode: AddressMode,
    texels: Vec<Texel>,
}

impl Texture2D {
    /// A zero-initialised texture.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            address_mode: AddressMode::ClampToEdge,
            texels: vec![[0.0; 4]; width * height],
        }
    }

    /// Build from texel data (length must be `width * height`).
    pub fn from_texels(width: usize, height: usize, texels: Vec<Texel>) -> Self {
        assert_eq!(texels.len(), width * height, "texel buffer length");
        Self {
            width,
            height,
            address_mode: AddressMode::ClampToEdge,
            texels,
        }
    }

    /// Build from a flat f32 slice (4 floats per texel).
    pub fn from_flat(width: usize, height: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), width * height * 4, "flat buffer length");
        let texels = data
            .chunks_exact(4)
            .map(|c| [c[0], c[1], c[2], c[3]])
            .collect();
        Self::from_texels(width, height, texels)
    }

    /// Width in texels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in texels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Set the addressing mode used by out-of-range fetches.
    pub fn set_address_mode(&mut self, mode: AddressMode) {
        self.address_mode = mode;
    }

    /// Current addressing mode.
    pub fn address_mode(&self) -> AddressMode {
        self.address_mode
    }

    /// Video-memory footprint in bytes (16 B per texel).
    pub fn bytes(&self) -> usize {
        self.texels.len() * std::mem::size_of::<Texel>()
    }

    /// Borrow all texels row-major.
    pub fn texels(&self) -> &[Texel] {
        &self.texels
    }

    /// Mutably borrow all texels row-major.
    pub fn texels_mut(&mut self) -> &mut [Texel] {
        &mut self.texels
    }

    /// Flatten to an f32 vector (4 per texel).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.texels.len() * 4);
        for t in &self.texels {
            out.extend_from_slice(t);
        }
        out
    }

    /// Direct texel read with integer coordinates (must be in range).
    #[inline(always)]
    pub fn texel(&self, x: usize, y: usize) -> Texel {
        self.texels[y * self.width + x]
    }

    /// Direct texel write with integer coordinates (must be in range).
    #[inline(always)]
    pub fn set_texel(&mut self, x: usize, y: usize, value: Texel) {
        self.texels[y * self.width + x] = value;
    }

    /// Resolve a (possibly out-of-range) integer coordinate along one axis.
    fn resolve(coord: i64, size: usize, mode: &AddressMode) -> Option<usize> {
        let n = size as i64;
        match mode {
            AddressMode::ClampToEdge => Some(coord.clamp(0, n - 1) as usize),
            AddressMode::Repeat => Some(coord.rem_euclid(n) as usize),
            AddressMode::MirroredRepeat => {
                let period = 2 * n;
                let m = coord.rem_euclid(period);
                let idx = if m < n { m } else { period - 1 - m };
                Some(idx as usize)
            }
            AddressMode::ClampToBorder(_) => {
                if coord < 0 || coord >= n {
                    None
                } else {
                    Some(coord as usize)
                }
            }
        }
    }

    /// Nearest-neighbour sample at normalized coordinates `(u, v)` in `[0,1]²`
    /// (texel centres at `(x + 0.5) / width`), honouring the address mode.
    pub fn sample(&self, u: f32, v: f32) -> Texel {
        let x = (u * self.width as f32).floor() as i64;
        let y = (v * self.height as f32).floor() as i64;
        self.fetch(x, y)
    }

    /// Resolve integer coordinates through the address mode to the texel a
    /// fetch would actually touch, or `None` when a `ClampToBorder` fetch
    /// falls outside the texture and touches no texel at all. Cache models
    /// must tag accesses with *these* coordinates, not naively clamped ones.
    pub fn resolve_coords(&self, x: i64, y: i64) -> Option<(usize, usize)> {
        let rx = Self::resolve(x, self.width, &self.address_mode)?;
        let ry = Self::resolve(y, self.height, &self.address_mode)?;
        Some((rx, ry))
    }

    /// Integer fetch honouring the address mode.
    pub fn fetch(&self, x: i64, y: i64) -> Texel {
        match self.resolve_coords(x, y) {
            Some((x, y)) => self.texel(x, y),
            None => self.border_texel(),
        }
    }

    /// The texel an unresolvable fetch returns. Only reachable under
    /// [`AddressMode::ClampToBorder`] — every other mode resolves every
    /// coordinate.
    #[inline(always)]
    pub fn border_texel(&self) -> Texel {
        match self.address_mode {
            AddressMode::ClampToBorder(border) => border,
            _ => unreachable!("non-border modes always resolve"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient() -> Texture2D {
        // 4x3, texel (x,y) = [x, y, x+y, 1].
        let mut t = Texture2D::new(4, 3);
        for y in 0..3 {
            for x in 0..4 {
                t.set_texel(x, y, [x as f32, y as f32, (x + y) as f32, 1.0]);
            }
        }
        t
    }

    #[test]
    fn constructors_and_accessors() {
        let t = Texture2D::new(8, 4);
        assert_eq!(t.width(), 8);
        assert_eq!(t.height(), 4);
        assert_eq!(t.bytes(), 8 * 4 * 16);
        assert_eq!(t.texel(7, 3), [0.0; 4]);

        let flat: Vec<f32> = (0..2 * 2 * 4).map(|i| i as f32).collect();
        let t = Texture2D::from_flat(2, 2, &flat);
        assert_eq!(t.texel(1, 1), [12.0, 13.0, 14.0, 15.0]);
        assert_eq!(t.to_flat(), flat);
    }

    #[test]
    #[should_panic(expected = "texel buffer length")]
    fn from_texels_validates_length() {
        Texture2D::from_texels(2, 2, vec![[0.0; 4]; 3]);
    }

    #[test]
    fn sample_hits_texel_centres() {
        let t = gradient();
        // Centre of texel (2, 1) is ((2+0.5)/4, (1+0.5)/3).
        let s = t.sample(2.5 / 4.0, 1.5 / 3.0);
        assert_eq!(s, [2.0, 1.0, 3.0, 1.0]);
        // u = 0 is texel 0, u → 1 is the last texel.
        assert_eq!(t.sample(0.0, 0.0), [0.0, 0.0, 0.0, 1.0]);
        assert_eq!(t.sample(0.999, 0.999), [3.0, 2.0, 5.0, 1.0]);
    }

    #[test]
    fn clamp_to_edge_replicates_border() {
        let t = gradient();
        assert_eq!(t.fetch(-5, 1), t.texel(0, 1));
        assert_eq!(t.fetch(10, 1), t.texel(3, 1));
        assert_eq!(t.fetch(2, -1), t.texel(2, 0));
        assert_eq!(t.fetch(2, 99), t.texel(2, 2));
    }

    #[test]
    fn repeat_wraps() {
        let mut t = gradient();
        t.set_address_mode(AddressMode::Repeat);
        assert_eq!(t.fetch(4, 0), t.texel(0, 0));
        assert_eq!(t.fetch(-1, 0), t.texel(3, 0));
        assert_eq!(t.fetch(0, 3), t.texel(0, 0));
        assert_eq!(t.fetch(0, -3), t.texel(0, 0));
    }

    #[test]
    fn mirrored_repeat_reflects() {
        let mut t = gradient();
        t.set_address_mode(AddressMode::MirroredRepeat);
        // x = -1 reflects to 0, x = 4 reflects to 3, x = 5 to 2.
        assert_eq!(t.fetch(-1, 0), t.texel(0, 0));
        assert_eq!(t.fetch(4, 0), t.texel(3, 0));
        assert_eq!(t.fetch(5, 0), t.texel(2, 0));
    }

    #[test]
    fn clamp_to_border_returns_border() {
        let mut t = gradient();
        let border = [9.0, 9.0, 9.0, 9.0];
        t.set_address_mode(AddressMode::ClampToBorder(border));
        assert_eq!(t.fetch(-1, 0), border);
        assert_eq!(t.fetch(0, 5), border);
        assert_eq!(t.fetch(1, 1), t.texel(1, 1));
    }

    #[test]
    fn default_mode_is_clamp_to_edge() {
        let t = Texture2D::new(1, 1);
        assert_eq!(t.address_mode(), AddressMode::ClampToEdge);
    }

    #[test]
    fn resolve_coords_follows_address_mode() {
        let mut t = gradient(); // 4x3
        assert_eq!(t.resolve_coords(-5, 1), Some((0, 1)));
        assert_eq!(t.resolve_coords(10, 2), Some((3, 2)));
        t.set_address_mode(AddressMode::Repeat);
        assert_eq!(t.resolve_coords(4, 0), Some((0, 0)));
        assert_eq!(t.resolve_coords(-1, 3), Some((3, 0)));
        t.set_address_mode(AddressMode::MirroredRepeat);
        assert_eq!(t.resolve_coords(4, 0), Some((3, 0)));
        t.set_address_mode(AddressMode::ClampToBorder([0.0; 4]));
        assert_eq!(t.resolve_coords(-1, 0), None);
        assert_eq!(t.resolve_coords(0, 3), None);
        assert_eq!(t.resolve_coords(1, 2), Some((1, 2)));
    }
}
