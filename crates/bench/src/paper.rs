//! The paper's published evaluation numbers, embedded verbatim so every
//! harness prints measured-vs-paper side by side.

/// Table 4 rows: `[size_mb, P4_ms, Prescott_ms, FX5950U_ms, 7800GTX_ms]`
/// (gcc 4.0 builds).
pub const TABLE4: &[[f64; 5]] = &[
    [68.0, 91.7453, 84.0052, 6.79324, 1.55211],
    [136.0, 183.32, 167.852, 19.572, 3.067],
    [205.0, 274.818, 251.427, 29.2864, 4.57477],
    [273.0, 367.485, 336.239, 39.0221, 6.0956],
    [410.0, 550.158, 502.935, 40.4066, 9.16738],
    [547.0, 734.243, 671.157, 53.9204, 12.1771],
];

/// Table 5 rows: same platforms, Intel C/C++ 9.0 builds (GPU columns are
/// identical to Table 4 — the GPU code does not depend on the host
/// compiler).
pub const TABLE5: &[[f64; 5]] = &[
    [68.0, 55.5, 46.7, 6.79324, 1.55211],
    [136.0, 110.7, 93.2, 19.572, 3.067],
    [205.0, 166.2, 139.7, 29.2864, 4.57477],
    [273.0, 222.2, 186.4, 39.0221, 6.0956],
    [410.0, 332.6, 279.4, 40.4066, 9.16738],
    [547.0, 444.1, 372.8, 53.9204, 12.1771],
];

/// Paper speedup claims: "Using the GNU C/C++ compiler, the speedup remains
/// close to 55 for all the image sizes. [...] the Intel compiler reduces
/// this value to 20."
pub const PAPER_SPEEDUP_GCC: f64 = 55.0;
/// See [`PAPER_SPEEDUP_GCC`].
pub const PAPER_SPEEDUP_ICC: f64 = 20.0;

/// Mean observed FX5950 → 7800GTX gain in Tables 4–5.
pub fn paper_gpu_generation_gain() -> f64 {
    let mut acc = 0.0;
    for row in TABLE4 {
        acc += row[3] / row[4];
    }
    acc / TABLE4.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_six_sizes_each() {
        assert_eq!(TABLE4.len(), 6);
        assert_eq!(TABLE5.len(), 6);
        for (a, b) in TABLE4.iter().zip(TABLE5) {
            assert_eq!(a[0], b[0]); // same size axis
            assert_eq!(a[3], b[3]); // same GPU numbers
            assert_eq!(a[4], b[4]);
            assert!(a[1] > b[1]); // gcc slower than icc
        }
    }

    #[test]
    fn paper_speedups_follow_from_tables() {
        // gcc speedup ≈ 55 on most sizes (the 410MB row is an outlier in
        // the paper's own data).
        let s: Vec<f64> = TABLE4.iter().map(|r| r[1] / r[4]).collect();
        assert!(s.iter().filter(|&&v| (v - 55.0).abs() < 8.0).count() >= 5);
        // icc speedup ≈ 20+.
        let s: Vec<f64> = TABLE5.iter().map(|r| r[1] / r[4]).collect();
        assert!(s.iter().all(|&v| v > 20.0 && v < 40.0));
    }

    #[test]
    fn generation_gain_is_about_4x() {
        let g = paper_gpu_generation_gain();
        assert!(g > 4.0 && g < 6.5, "gain {g}");
    }
}
