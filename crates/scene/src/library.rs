//! The Indian Pines ground-truth class library (paper Table 3).
//!
//! Each class carries the accuracy the paper reports for it; the scene
//! generator converts that accuracy into a per-class pixel *purity* so the
//! synthetic scene reproduces the paper's difficulty pattern (early-season
//! corn variants and Buildings heavily mixed, BareSoil/Woods nearly pure).
//! The experiment harness then compares measured accuracies against these
//! same reference values.

use crate::spectra::Family;

/// One ground-truth class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name exactly as printed in Table 3.
    pub name: &'static str,
    /// Accuracy (%) the paper reports for this class.
    pub paper_accuracy: f64,
    /// Spectral family the class belongs to.
    pub family: Family,
    /// Deterministic perturbation seed making the signature unique.
    pub seed: u64,
}

impl ClassSpec {
    /// Per-pixel purity `α` midpoint for the scene generator: with mixing
    /// fraction drawn from `U(α − w, α + w)` and a decision boundary at 0.5,
    /// expected accuracy `a` requires `α = 0.5 − w + 2wa` (see
    /// `scene::MIXING_HALFWIDTH`).
    pub fn purity(&self, halfwidth: f64) -> f64 {
        let a = self.paper_accuracy / 100.0;
        (0.5 - halfwidth + 2.0 * halfwidth * a).clamp(0.05, 1.0)
    }

    /// Synthesise this class's endmember signature.
    pub fn signature(&self, bands: usize, scale: f32) -> Vec<f32> {
        self.family.sample(bands, scale, self.seed)
    }
}

/// All 32 rows of Table 3, in table order.
///
/// (The paper's prose says "30 mutually-exclusive classes" while its Table 3
/// lists 32 per-class rows — we reproduce the table.)
pub fn indian_pines_classes() -> Vec<ClassSpec> {
    fn veg(v: f64, c: f64) -> Family {
        Family::Vegetation {
            vigor: v,
            canopy: c,
        }
    }
    vec![
        ClassSpec {
            name: "BareSoil",
            paper_accuracy: 98.05,
            family: Family::Soil { brightness: 0.75 },
            seed: 1,
        },
        ClassSpec {
            name: "Buildings",
            paper_accuracy: 30.43,
            family: Family::ManMade { albedo: 0.55 },
            seed: 2,
        },
        ClassSpec {
            name: "Concrete/Asphalt",
            paper_accuracy: 96.24,
            family: Family::ManMade { albedo: 0.80 },
            seed: 3,
        },
        ClassSpec {
            name: "Corn",
            paper_accuracy: 99.37,
            family: veg(0.30, 0.30),
            seed: 4,
        },
        ClassSpec {
            name: "Corn?",
            paper_accuracy: 86.77,
            family: veg(0.75, 0.35),
            seed: 5,
        },
        ClassSpec {
            name: "Corn-EW",
            paper_accuracy: 37.01,
            family: veg(0.25, 0.42),
            seed: 6,
        },
        ClassSpec {
            name: "Corn-NS",
            paper_accuracy: 91.50,
            family: veg(0.80, 0.46),
            seed: 7,
        },
        ClassSpec {
            name: "Corn-CleanTill",
            paper_accuracy: 65.39,
            family: veg(0.35, 0.52),
            seed: 8,
        },
        ClassSpec {
            name: "Corn-CleanTill-EW",
            paper_accuracy: 69.88,
            family: veg(0.85, 0.55),
            seed: 9,
        },
        ClassSpec {
            name: "Corn-CleanTill-NS",
            paper_accuracy: 71.64,
            family: veg(0.30, 0.60),
            seed: 10,
        },
        ClassSpec {
            name: "Corn-CleanTill-NS-Irrigated",
            paper_accuracy: 60.91,
            family: veg(0.90, 0.63),
            seed: 11,
        },
        ClassSpec {
            name: "Corn-CleanTilled-NS?",
            paper_accuracy: 70.27,
            family: veg(0.40, 0.68),
            seed: 12,
        },
        ClassSpec {
            name: "Corn-MinTill",
            paper_accuracy: 79.71,
            family: veg(0.95, 0.71),
            seed: 13,
        },
        ClassSpec {
            name: "Corn-MinTill-EW",
            paper_accuracy: 65.51,
            family: veg(0.45, 0.76),
            seed: 14,
        },
        ClassSpec {
            name: "Corn-MinTill-NS",
            paper_accuracy: 69.57,
            family: veg(1.00, 0.79),
            seed: 15,
        },
        ClassSpec {
            name: "Corn-NoTill",
            paper_accuracy: 87.20,
            family: veg(0.50, 0.84),
            seed: 16,
        },
        ClassSpec {
            name: "Corn-NoTill-EW",
            paper_accuracy: 91.25,
            family: veg(0.60, 0.88),
            seed: 17,
        },
        ClassSpec {
            name: "Corn-NoTill-NS",
            paper_accuracy: 44.64,
            family: veg(0.20, 0.92),
            seed: 18,
        },
        ClassSpec {
            name: "Fescue",
            paper_accuracy: 42.37,
            family: Family::DryVegetation { brightness: 0.45 },
            seed: 19,
        },
        ClassSpec {
            name: "Grass",
            paper_accuracy: 70.15,
            family: veg(0.85, 0.97),
            seed: 20,
        },
        ClassSpec {
            name: "Grass/Trees",
            paper_accuracy: 51.30,
            family: veg(0.95, 0.90),
            seed: 21,
        },
        ClassSpec {
            name: "Grass/Pasture-mowed",
            paper_accuracy: 79.87,
            family: veg(0.78, 0.82),
            seed: 22,
        },
        ClassSpec {
            name: "Grass/Pasture",
            paper_accuracy: 66.40,
            family: veg(0.88, 0.74),
            seed: 23,
        },
        ClassSpec {
            name: "Grass-runway",
            paper_accuracy: 60.53,
            family: veg(0.55, 0.66),
            seed: 24,
        },
        ClassSpec {
            name: "Hay",
            paper_accuracy: 62.13,
            family: Family::DryVegetation { brightness: 0.62 },
            seed: 25,
        },
        ClassSpec {
            name: "Hay?",
            paper_accuracy: 61.98,
            family: Family::DryVegetation { brightness: 0.68 },
            seed: 26,
        },
        ClassSpec {
            name: "Hay-Alfalfa",
            paper_accuracy: 83.35,
            family: Family::DryVegetation { brightness: 0.55 },
            seed: 27,
        },
        ClassSpec {
            name: "Lake",
            paper_accuracy: 83.41,
            family: Family::Water,
            seed: 28,
        },
        ClassSpec {
            name: "NotCropped",
            paper_accuracy: 99.20,
            family: Family::Soil { brightness: 0.45 },
            seed: 29,
        },
        ClassSpec {
            name: "Oats",
            paper_accuracy: 78.04,
            family: veg(0.24, 0.58),
            seed: 30,
        },
        ClassSpec {
            name: "Road",
            paper_accuracy: 86.60,
            family: Family::ManMade { albedo: 0.35 },
            seed: 31,
        },
        ClassSpec {
            name: "Woods",
            paper_accuracy: 88.89,
            family: veg(1.00, 1.00),
            seed: 32,
        },
    ]
}

/// The paper's overall accuracy (Table 3 last row).
pub const PAPER_OVERALL_ACCURACY: f64 = 72.35;

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::spectral::sid;

    #[test]
    fn table3_rows_and_anchors() {
        let classes = indian_pines_classes();
        assert_eq!(classes.len(), 32);
        assert_eq!(classes[0].name, "BareSoil");
        assert_eq!(classes[0].paper_accuracy, 98.05);
        assert_eq!(classes[1].name, "Buildings");
        assert_eq!(classes[1].paper_accuracy, 30.43);
        assert_eq!(classes[31].name, "Woods");
        assert_eq!(classes[31].paper_accuracy, 88.89);
    }

    #[test]
    fn paper_overall_consistent_with_difficulty_pattern() {
        let classes = indian_pines_classes();
        let mean: f64 =
            classes.iter().map(|c| c.paper_accuracy).sum::<f64>() / classes.len() as f64;
        // Table 3's per-class mean sits near the overall accuracy.
        assert!((mean - PAPER_OVERALL_ACCURACY).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn purity_maps_accuracy_monotonically() {
        let classes = indian_pines_classes();
        let w = 0.3;
        let bare_soil = classes[0].purity(w);
        let buildings = classes[1].purity(w);
        assert!(bare_soil > buildings);
        // Formula check: a = 100% → purity = 0.5 + w.
        let perfect = ClassSpec {
            name: "x",
            paper_accuracy: 100.0,
            family: Family::Water,
            seed: 0,
        };
        assert!((perfect.purity(w) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn all_signatures_pairwise_distinct() {
        let classes = indian_pines_classes();
        let sigs: Vec<Vec<f32>> = classes.iter().map(|c| c.signature(216, 4000.0)).collect();
        let mut min_sid = f32::INFINITY;
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                let d = sid(&sigs[i], &sigs[j]);
                min_sid = min_sid.min(d);
                assert!(
                    d > 2e-5,
                    "classes {} and {} too similar (SID {d})",
                    classes[i].name,
                    classes[j].name
                );
            }
        }
        assert!(min_sid.is_finite());
    }

    #[test]
    fn seeds_are_unique() {
        let classes = indian_pines_classes();
        let mut seeds: Vec<u64> = classes.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), classes.len());
    }
}
