//! Performance counters.
//!
//! The simulator's functional execution produces exact work counts; the
//! timing model turns them into modeled milliseconds. Counters accumulate
//! per render pass and can be summed over a whole pipeline run.

/// Work counted during one render pass (or accumulated over many).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PassStats {
    /// Fragments shaded.
    pub fragments: u64,
    /// SIMD4 shader instructions executed (TEX included).
    pub instructions: u64,
    /// Texel fetches issued (each 16 B for RGBA32F).
    pub texel_fetches: u64,
    /// Texture-cache hits (when the cache model is enabled).
    pub cache_hits: u64,
    /// Texture-cache misses.
    pub cache_misses: u64,
    /// Bytes written to render targets.
    pub bytes_written: u64,
    /// Bytes uploaded host → device.
    pub bytes_uploaded: u64,
    /// Bytes downloaded device → host.
    pub bytes_downloaded: u64,
    /// Render passes summed into this value.
    pub passes: u64,
    /// Shading tiles dispatched (the executor's unit of fragment-pipe
    /// parallelism; see `raster::TILE_W`/`TILE_ROWS`).
    pub tiles: u64,
}

impl PassStats {
    /// Zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate another pass into this total.
    pub fn add(&mut self, other: &PassStats) {
        self.fragments += other.fragments;
        self.instructions += other.instructions;
        self.texel_fetches += other.texel_fetches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bytes_written += other.bytes_written;
        self.bytes_uploaded += other.bytes_uploaded;
        self.bytes_downloaded += other.bytes_downloaded;
        self.passes += other.passes;
        self.tiles += other.tiles;
    }

    /// Remove another total from this one, field by field. The exact inverse
    /// of [`PassStats::add`] whenever `other` was previously added —
    /// pipelines use it to report "work since this snapshot" deltas.
    ///
    /// `other` must be component-wise ≤ `self`: subtracting something that
    /// was never added is a snapshot-delta bug. Debug builds assert on every
    /// field so the bug surfaces in tests; release builds saturate to zero
    /// rather than wrap.
    pub fn sub(&mut self, other: &PassStats) {
        debug_assert!(
            other.fragments <= self.fragments,
            "PassStats::sub underflow: fragments {} < {}",
            self.fragments,
            other.fragments
        );
        debug_assert!(
            other.instructions <= self.instructions,
            "PassStats::sub underflow: instructions {} < {}",
            self.instructions,
            other.instructions
        );
        debug_assert!(
            other.texel_fetches <= self.texel_fetches,
            "PassStats::sub underflow: texel_fetches {} < {}",
            self.texel_fetches,
            other.texel_fetches
        );
        debug_assert!(
            other.cache_hits <= self.cache_hits,
            "PassStats::sub underflow: cache_hits {} < {}",
            self.cache_hits,
            other.cache_hits
        );
        debug_assert!(
            other.cache_misses <= self.cache_misses,
            "PassStats::sub underflow: cache_misses {} < {}",
            self.cache_misses,
            other.cache_misses
        );
        debug_assert!(
            other.bytes_written <= self.bytes_written,
            "PassStats::sub underflow: bytes_written {} < {}",
            self.bytes_written,
            other.bytes_written
        );
        debug_assert!(
            other.bytes_uploaded <= self.bytes_uploaded,
            "PassStats::sub underflow: bytes_uploaded {} < {}",
            self.bytes_uploaded,
            other.bytes_uploaded
        );
        debug_assert!(
            other.bytes_downloaded <= self.bytes_downloaded,
            "PassStats::sub underflow: bytes_downloaded {} < {}",
            self.bytes_downloaded,
            other.bytes_downloaded
        );
        debug_assert!(
            other.passes <= self.passes,
            "PassStats::sub underflow: passes {} < {}",
            self.passes,
            other.passes
        );
        debug_assert!(
            other.tiles <= self.tiles,
            "PassStats::sub underflow: tiles {} < {}",
            self.tiles,
            other.tiles
        );
        self.fragments = self.fragments.saturating_sub(other.fragments);
        self.instructions = self.instructions.saturating_sub(other.instructions);
        self.texel_fetches = self.texel_fetches.saturating_sub(other.texel_fetches);
        self.cache_hits = self.cache_hits.saturating_sub(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_sub(other.cache_misses);
        self.bytes_written = self.bytes_written.saturating_sub(other.bytes_written);
        self.bytes_uploaded = self.bytes_uploaded.saturating_sub(other.bytes_uploaded);
        self.bytes_downloaded = self.bytes_downloaded.saturating_sub(other.bytes_downloaded);
        self.passes = self.passes.saturating_sub(other.passes);
        self.tiles = self.tiles.saturating_sub(other.tiles);
    }

    /// Mean shader instructions per fragment.
    pub fn instructions_per_fragment(&self) -> f64 {
        if self.fragments == 0 {
            0.0
        } else {
            self.instructions as f64 / self.fragments as f64
        }
    }

    /// Texture-cache hit rate in `[0, 1]` (1.0 when no fetches were modeled).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Bytes fetched from texture memory (16 B per RGBA32F texel).
    pub fn texel_bytes(&self) -> u64 {
        self.texel_fetches * 16
    }
}

/// Counters one shading tile produced. The executor dispatches tiles in
/// parallel but merges their counters **in tile order** (see
/// [`TileCounts::merge_into`] call sites), so aggregate [`PassStats`] are
/// independent of scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct TileCounts {
    /// SIMD4 shader instructions the tile executed.
    pub instructions: u64,
    /// Texel fetches the tile issued.
    pub texel_fetches: u64,
    /// Texture-cache hits in the tile's private cache model.
    pub cache_hits: u64,
    /// Texture-cache misses in the tile's private cache model.
    pub cache_misses: u64,
}

impl TileCounts {
    /// Accumulate this tile's counters into a pass total.
    pub fn merge_into(&self, pass: &mut PassStats) {
        pass.instructions += self.instructions;
        pass.texel_fetches += self.texel_fetches;
        pass.cache_hits += self.cache_hits;
        pass.cache_misses += self.cache_misses;
    }
}

impl std::ops::Add for PassStats {
    type Output = PassStats;
    fn add(mut self, rhs: PassStats) -> PassStats {
        PassStats::add(&mut self, &rhs);
        self
    }
}

impl std::iter::Sum for PassStats {
    fn sum<I: Iterator<Item = PassStats>>(iter: I) -> PassStats {
        iter.fold(PassStats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_sums_fields() {
        let a = PassStats {
            fragments: 10,
            instructions: 100,
            texel_fetches: 20,
            cache_hits: 15,
            cache_misses: 5,
            bytes_written: 160,
            bytes_uploaded: 1,
            bytes_downloaded: 2,
            passes: 1,
            tiles: 4,
        };
        let b = a;
        let c = a + b;
        assert_eq!(c.fragments, 20);
        assert_eq!(c.instructions, 200);
        assert_eq!(c.passes, 2);
        assert_eq!(c.tiles, 8);
        let summed: PassStats = vec![a, b].into_iter().sum();
        assert_eq!(summed, c);
    }

    #[test]
    fn add_sub_round_trip_is_identity() {
        let a = PassStats {
            fragments: 10,
            instructions: 100,
            texel_fetches: 20,
            cache_hits: 15,
            cache_misses: 5,
            bytes_written: 160,
            bytes_uploaded: 1,
            bytes_downloaded: 2,
            passes: 1,
            tiles: 4,
        };
        let b = PassStats {
            fragments: 3,
            instructions: 7,
            texel_fetches: 11,
            cache_hits: 2,
            cache_misses: 9,
            bytes_written: 31,
            bytes_uploaded: 4,
            bytes_downloaded: 8,
            passes: 2,
            tiles: 6,
        };
        let mut t = a;
        t.add(&b);
        t.sub(&b);
        assert_eq!(t, a, "add then sub must round-trip every field");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "PassStats::sub underflow")]
    fn sub_underflow_panics_in_debug() {
        let big = PassStats {
            fragments: 10,
            ..Default::default()
        };
        let mut small = PassStats {
            fragments: 3,
            ..Default::default()
        };
        small.sub(&big);
    }

    #[test]
    fn tile_counts_merge_only_shading_fields() {
        let tile = TileCounts {
            instructions: 5,
            texel_fetches: 3,
            cache_hits: 2,
            cache_misses: 1,
        };
        let mut pass = PassStats {
            fragments: 7,
            passes: 1,
            ..Default::default()
        };
        tile.merge_into(&mut pass);
        tile.merge_into(&mut pass);
        assert_eq!(pass.instructions, 10);
        assert_eq!(pass.texel_fetches, 6);
        assert_eq!(pass.cache_hits, 4);
        assert_eq!(pass.cache_misses, 2);
        // Pass-level fields are untouched by tile merges.
        assert_eq!(pass.fragments, 7);
        assert_eq!(pass.passes, 1);
    }

    #[test]
    fn derived_rates() {
        let s = PassStats {
            fragments: 4,
            instructions: 12,
            texel_fetches: 8,
            cache_hits: 6,
            cache_misses: 2,
            ..Default::default()
        };
        assert_eq!(s.instructions_per_fragment(), 3.0);
        assert_eq!(s.cache_hit_rate(), 0.75);
        assert_eq!(s.texel_bytes(), 128);
        // Degenerate cases are NaN-free.
        let z = PassStats::new();
        assert_eq!(z.instructions_per_fragment(), 0.0);
        assert_eq!(z.cache_hit_rate(), 1.0);
    }
}
