//! Machine-readable benchmark results (`BENCH_results.json`).
//!
//! `tables -- bench [path]` runs the AMC pipeline end to end on the reduced
//! synthetic Indian Pines scene, wall-clocks each phase, and writes a JSON
//! record: host wall-clock seconds for scene generation, the GPU stream
//! pipeline and the CPU classification tail, plus the six-stage counter and
//! modeled-time breakdown the simulator produced. The JSON is hand-rolled
//! (the workspace carries no serde); keys are stable so successive baselines
//! diff cleanly.

use amc_core::pipeline::{GpuAmc, KernelMode, StageStats};
use gpu_sim::counters::PassStats;
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use gpu_sim::timing;
use hsi::classify::{AmcClassifier, AmcConfig, TailBreakdown};
use hsi_scene::library::indian_pines_classes;
use hsi_scene::scene::{generate, SceneConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed benchmark run.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Scene seed.
    pub seed: u64,
    /// Worker threads the executor used ([`rayon::max_threads`]).
    pub threads: usize,
    /// Scene dimensions `(width, height, bands)`.
    pub dims: (usize, usize, usize),
    /// Wall-clock seconds generating the synthetic scene.
    pub scene_s: f64,
    /// Wall-clock seconds for the GPU stream pipeline (MEI computation).
    pub gpu_pipeline_s: f64,
    /// Wall-clock seconds for the CPU tail (endmembers + classification).
    pub cpu_tail_s: f64,
    /// Stage breakdown of the CPU tail (selection/unmix/classify/argmax).
    pub tail: TailBreakdown,
    /// Chunks the pipeline split the scene into.
    pub chunks: usize,
    /// Endmembers extracted.
    pub endmembers: usize,
    /// Per-stage simulator counters.
    pub stages: StageStats,
}

impl BenchRun {
    /// End-to-end wall-clock (scene generation excluded — it is input
    /// preparation, not AMC).
    pub fn amc_wall_s(&self) -> f64 {
        self.gpu_pipeline_s + self.cpu_tail_s
    }
}

/// Execute the end-to-end benchmark once.
pub fn run_benchmark(seed: u64) -> BenchRun {
    let classes = indian_pines_classes();
    let t = Instant::now();
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(seed));
    let scene_s = t.elapsed().as_secs_f64();
    let dims = scene.cube.dims();

    let config = AmcConfig::paper_default(classes.len());
    let amc = GpuAmc::new(config.se.clone(), KernelMode::Closure);
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let classifier = AmcClassifier::new(config);
    let hybrid = amc
        .run_and_classify(&mut gpu, &scene.cube, &classifier)
        .expect("hybrid AMC run");

    BenchRun {
        seed,
        threads: rayon::max_threads(),
        dims: (dims.width, dims.height, dims.bands),
        scene_s,
        gpu_pipeline_s: hybrid.gpu_wall_s,
        cpu_tail_s: hybrid.tail_wall_s,
        tail: hybrid.tail,
        chunks: hybrid.pipeline.chunks,
        endmembers: hybrid.classification.class_count(),
        stages: hybrid.pipeline.stages,
    }
}

fn stage_json(name: &str, s: &PassStats, profile: &GpuProfile) -> String {
    let modeled = timing::gpu_time(s, profile);
    format!(
        "    {{\"stage\": \"{name}\", \"passes\": {}, \"fragments\": {}, \
         \"instructions\": {}, \"texel_fetches\": {}, \"tiles\": {}, \
         \"bytes_uploaded\": {}, \"bytes_downloaded\": {}, \
         \"modeled_ms\": {:.6}}}",
        s.passes,
        s.fragments,
        s.instructions,
        s.texel_fetches,
        s.tiles,
        s.bytes_uploaded,
        s.bytes_downloaded,
        modeled.total_ms()
    )
}

/// Render a [`BenchRun`] as the `BENCH_results.json` document.
pub fn to_json(run: &BenchRun) -> String {
    let profile = GpuProfile::geforce_7800gtx();
    let total = run.stages.total();
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"benchmark\": \"amc_end_to_end\",");
    let _ = writeln!(s, "  \"seed\": {},", run.seed);
    let _ = writeln!(s, "  \"threads\": {},", run.threads);
    let _ = writeln!(
        s,
        "  \"scene\": {{\"width\": {}, \"height\": {}, \"bands\": {}}},",
        run.dims.0, run.dims.1, run.dims.2
    );
    let _ = writeln!(s, "  \"scene_generation_s\": {:.6},", run.scene_s);
    let _ = writeln!(s, "  \"gpu_pipeline_wall_s\": {:.6},", run.gpu_pipeline_s);
    let _ = writeln!(s, "  \"cpu_tail_wall_s\": {:.6},", run.cpu_tail_s);
    // Tail stage breakdown mirroring the GPU `stages` array. selection_s and
    // classify_s are wall clock; unmix_s and argmax_s are worker-summed CPU
    // seconds from the batched kernels (equal to wall at threads=1).
    let _ = writeln!(
        s,
        "  \"cpu_tail_stages\": {{\"selection_s\": {:.6}, \"unmix_s\": {:.6}, \
         \"classify_s\": {:.6}, \"argmax_s\": {:.6}}},",
        run.tail.selection_s, run.tail.unmix_s, run.tail.classify_s, run.tail.argmax_s
    );
    let _ = writeln!(s, "  \"amc_wall_s\": {:.6},", run.amc_wall_s());
    let _ = writeln!(s, "  \"chunks\": {},", run.chunks);
    let _ = writeln!(s, "  \"endmembers\": {},", run.endmembers);
    let _ = writeln!(
        s,
        "  \"modeled_kernel_ms_7800gtx\": {:.6},",
        timing::gpu_time(&total, &profile).kernel_ms()
    );
    s.push_str("  \"stages\": [\n");
    let stages: [(&str, &PassStats); 6] = [
        ("upload", &run.stages.upload),
        ("normalize", &run.stages.normalize),
        ("distance", &run.stages.distance),
        ("minmax", &run.stages.minmax),
        ("mei", &run.stages.mei),
        ("download", &run.stages.download),
    ];
    for (i, (name, stats)) in stages.iter().enumerate() {
        s.push_str(&stage_json(name, stats, &profile));
        s.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_and_complete() {
        // A synthetic run: no need to execute the pipeline to test the
        // serializer.
        let mut stages = StageStats::default();
        stages.normalize.passes = 4;
        stages.normalize.fragments = 1024;
        stages.normalize.instructions = 9000;
        stages.normalize.tiles = 8;
        stages.upload.bytes_uploaded = 1 << 20;
        let run = BenchRun {
            seed: 7,
            threads: 4,
            dims: (145, 145, 32),
            scene_s: 0.5,
            gpu_pipeline_s: 1.25,
            cpu_tail_s: 0.75,
            tail: TailBreakdown {
                selection_s: 0.4,
                unmix_s: 0.25,
                classify_s: 0.3,
                argmax_s: 0.05,
            },
            chunks: 3,
            endmembers: 30,
            stages,
        };
        let json = to_json(&run);
        // Balanced braces/brackets and the stable key set.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"benchmark\"",
            "\"threads\": 4",
            "\"amc_wall_s\": 2.000000",
            "\"gpu_pipeline_wall_s\": 1.250000",
            "\"cpu_tail_stages\": {\"selection_s\": 0.400000",
            "\"unmix_s\": 0.250000",
            "\"classify_s\": 0.300000",
            "\"argmax_s\": 0.050000",
            "\"stages\": [",
            "\"stage\": \"upload\"",
            "\"stage\": \"download\"",
            "\"tiles\": 8",
            "\"modeled_kernel_ms_7800gtx\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches("\"stage\": ").count(), 6);
    }
}
