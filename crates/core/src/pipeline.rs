//! The stream-based AMC pipeline (Fig. 4 of the paper).
//!
//! Per spatial chunk the stages are:
//!
//! 1. **Stream uploading** — band-group planes ([`crate::layout`]) become
//!    textures on the device.
//! 2. **Normalization** — band sums accumulate over the group stack
//!    (ping-pong), then each group is divided by the total (eqs. 3–4).
//! 3. **Cumulative distance** — the `D_B` field of eq. 1 accumulates one
//!    partial SID per (SE offset, band group) pass; neighbour access is a
//!    δ-shifted texture-coordinate set.
//! 4. **Maximum and minimum** — a running `(minval, minidx, maxval, maxidx)`
//!    state stream folds in each neighbour's cumulative distance (eqs. 5–6).
//! 5. **Compute SID** — dependent texture reads fetch the erosion and
//!    dilation pixels selected by stage 4 and accumulate their SID over the
//!    band groups: the MEI score.
//! 6. **Stream downloading** — the MEI stream (and the min/max index
//!    stream) return to the host.
//!
//! Chunking follows the paper: when the working set exceeds video memory
//! the image is split into runs of entire lines ("chunks made up of entire
//! pixel vectors"), with enough halo lines (2× the SE radius — the field at
//! a neighbour looks one radius further) for chunked output to be exactly
//! chunk-free.

use crate::graph::{self, CompiledGraph, PassDecl, RenderGraph, TexHandle, TexKind};
use crate::kernels::{self, KERNEL_SET};
use crate::layout;
use gpu_sim::counters::PassStats;
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::{Gpu, TextureId};
use gpu_sim::opt;
use gpu_sim::raster::TexCoordSet;
use hsi::cube::{Chunking, Cube};
use hsi::morphology::{MeiImage, StructuringElement};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;
use trace::ArgValue;

/// Which kernel implementation executes the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Assembled fp30-style programs through the ISA interpreter (faithful,
    /// slower to simulate).
    Isa,
    /// Closure twins with identical arithmetic (fast path). Declared
    /// instruction costs match the ISA programs, so counters agree.
    #[default]
    Closure,
}

impl KernelMode {
    /// Stable lowercase name, as reported in benchmark JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelMode::Isa => "isa",
            KernelMode::Closure => "closure",
        }
    }

    /// Parse a name produced by [`KernelMode::as_str`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "isa" => Some(KernelMode::Isa),
            "closure" => Some(KernelMode::Closure),
            _ => None,
        }
    }
}

impl fmt::Display for KernelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Pipeline errors: device errors plus host-side validation.
#[derive(Debug)]
pub enum AmcError {
    /// Error from the simulated device.
    Gpu(gpu_sim::GpuError),
    /// Error from the hyperspectral substrate.
    Hsi(hsi::HsiError),
    /// The declarative render graph was rejected at compile time.
    Graph(graph::CompileError),
    /// No chunking fits the device: even a single image line (with its
    /// halo) needs more video memory than the budget provides.
    ChunkingInfeasible {
        /// Image width in pixels.
        width: usize,
        /// Spectral band count.
        bands: usize,
        /// Bytes the smallest possible chunk would need.
        required: usize,
        /// Video-memory budget the plan had to fit, in bytes.
        budget: usize,
    },
}

impl fmt::Display for AmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmcError::Gpu(e) => write!(f, "gpu: {e}"),
            AmcError::Hsi(e) => write!(f, "hsi: {e}"),
            AmcError::Graph(e) => write!(f, "graph: {e}"),
            AmcError::ChunkingInfeasible {
                width,
                bands,
                required,
                budget,
            } => write!(
                f,
                "chunking infeasible: one line of a {width}x{bands}-band cube \
                 needs {required} B of video memory, budget is {budget} B"
            ),
        }
    }
}

impl std::error::Error for AmcError {}

impl From<gpu_sim::GpuError> for AmcError {
    fn from(e: gpu_sim::GpuError) -> Self {
        AmcError::Gpu(e)
    }
}

impl From<hsi::HsiError> for AmcError {
    fn from(e: hsi::HsiError) -> Self {
        AmcError::Hsi(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, AmcError>;

/// Work counted per pipeline stage (Fig. 4's six boxes). Stage 2's two
/// kernels (band sum + normalize) share the `normalize` bucket; the sum of
/// all six buckets equals [`PipelineOutput::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Stage 1: stream uploading (band planes + offset LUT).
    pub upload: PassStats,
    /// Stage 2: band-sum and normalize passes.
    pub normalize: PassStats,
    /// Stage 3: cumulative-distance (SID partial) passes.
    pub distance: PassStats,
    /// Stage 4: min/max init and update passes.
    pub minmax: PassStats,
    /// Stage 5: MEI accumulation passes.
    pub mei: PassStats,
    /// Stage 6: stream downloading (MEI + state streams).
    pub download: PassStats,
}

impl StageStats {
    /// Accumulate another breakdown into this one, stage by stage.
    pub fn add(&mut self, other: &StageStats) {
        self.upload.add(&other.upload);
        self.normalize.add(&other.normalize);
        self.distance.add(&other.distance);
        self.minmax.add(&other.minmax);
        self.mei.add(&other.mei);
        self.download.add(&other.download);
    }

    /// Sum of all six stages.
    pub fn total(&self) -> PassStats {
        let mut t = self.upload;
        t.add(&self.normalize);
        t.add(&self.distance);
        t.add(&self.minmax);
        t.add(&self.mei);
        t.add(&self.download);
        t
    }
}

/// Host wall-clock seconds per pipeline stage, summed over chunks.
///
/// Complements [`StageStats`]: the counters feed the *modeled* GPU
/// milliseconds of `gpu_sim::timing`, while these are *measured* host
/// seconds for the same stage sections — their ratio is the
/// modeled-vs-wall skew the bench harness reports per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageWall {
    /// Stage 1: stream uploading.
    pub upload_s: f64,
    /// Stage 2: band-sum and normalize passes.
    pub normalize_s: f64,
    /// Stage 3: cumulative-distance passes.
    pub distance_s: f64,
    /// Stage 4: min/max passes.
    pub minmax_s: f64,
    /// Stage 5: MEI accumulation passes.
    pub mei_s: f64,
    /// Stage 6: stream downloading.
    pub download_s: f64,
}

impl StageWall {
    /// Accumulate another breakdown into this one, stage by stage.
    pub fn add(&mut self, other: &StageWall) {
        self.upload_s += other.upload_s;
        self.normalize_s += other.normalize_s;
        self.distance_s += other.distance_s;
        self.minmax_s += other.minmax_s;
        self.mei_s += other.mei_s;
        self.download_s += other.download_s;
    }

    /// Sum of all six stages, seconds.
    pub fn total_s(&self) -> f64 {
        self.upload_s
            + self.normalize_s
            + self.distance_s
            + self.minmax_s
            + self.mei_s
            + self.download_s
    }

    /// `(stage name, seconds)` in pipeline order, for serialization.
    pub fn as_named(&self) -> [(&'static str, f64); 6] {
        [
            ("upload", self.upload_s),
            ("normalize", self.normalize_s),
            ("distance", self.distance_s),
            ("minmax", self.minmax_s),
            ("mei", self.mei_s),
            ("download", self.download_s),
        ]
    }
}

/// Host-side readback buffers reused across chunks (stage 6 lands here
/// instead of allocating fresh vectors per chunk).
#[derive(Debug, Default)]
pub(crate) struct ChunkScratch {
    mei_flat: Vec<f32>,
    state_flat: Vec<f32>,
}

/// Output of one pipeline run over a full image.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The MEI score image (stage 5 output).
    pub mei: MeiImage,
    /// Per-pixel SE-offset index of the erosion pixel.
    pub min_index: Vec<u32>,
    /// Per-pixel SE-offset index of the dilation pixel.
    pub max_index: Vec<u32>,
    /// Work counted across all passes and chunks.
    pub stats: PassStats,
    /// The same work broken down by pipeline stage.
    pub stages: StageStats,
    /// Measured host wall-clock per stage section (all chunks summed).
    pub stage_wall: StageWall,
    /// Number of chunks processed.
    pub chunks: usize,
}

/// Output of a full hybrid AMC run: the GPU stream pipeline (steps 1–2)
/// followed by the batched CPU classification tail (steps 3–4).
#[derive(Debug, Clone)]
pub struct HybridOutput {
    /// GPU pipeline output (MEI image, counters, chunk count).
    pub pipeline: PipelineOutput,
    /// CPU-tail classification result.
    pub classification: hsi::classify::AmcOutput,
    /// Stage breakdown of the CPU tail (selection/unmix/classify/argmax).
    pub tail: hsi::classify::TailBreakdown,
    /// Host wall-clock seconds of the GPU pipeline phase.
    pub gpu_wall_s: f64,
    /// Host wall-clock seconds of the CPU tail phase.
    pub tail_wall_s: f64,
}

/// The 6-stage AMC pipeline as a static producer→consumer contract: one
/// representative pass per stage (one band group, one SE neighbour), with
/// the exact programs and [`gpu_sim::verify::PassBindings`] the driver uses.
///
/// Resources the pipeline samples through δ-shifted coordinate sets or
/// dependent reads declare a `ClampToEdge` requirement — that is what makes
/// halo sampling at chunk edges exact, so a mismatched mode is a pipeline
/// bug even though each pass would verify in isolation.
pub fn amc_stage_contracts() -> (Vec<opt::ResourceDecl>, Vec<opt::StageContract>) {
    let clamp = gpu_sim::texture::AddressMode::ClampToEdge;
    let specs = kernels::stage_specs();
    // Resources in first-mention order across the stage-resource table.
    let mut resources: Vec<opt::ResourceDecl> = Vec::new();
    let mut declare = |name: &str| {
        if !resources.iter().any(|r| r.name == name) {
            resources.push(opt::ResourceDecl {
                name: name.into(),
                mode: clamp,
            });
        }
    };
    for spec in &specs {
        for &(name, _) in spec.inputs {
            declare(name);
        }
        declare(spec.output);
    }
    let stages = specs
        .into_iter()
        .map(|spec| opt::StageContract {
            name: spec.program.name.clone(),
            program: spec.program,
            bindings: spec.bindings,
            inputs: spec
                .inputs
                .iter()
                .map(|&(n, m)| (n.to_string(), m))
                .collect(),
            output: spec.output.into(),
        })
        .collect();
    (resources, stages)
}

/// Run the cross-pass static checker over the full AMC stage chain for one
/// device profile. Empty means every producer→consumer contract holds.
pub fn check_amc_pipeline(profile: &gpu_sim::GpuProfile) -> Vec<String> {
    let (resources, stages) = amc_stage_contracts();
    opt::check_pipeline(profile, &resources, &stages)
}

/// Cache key for compiled AMC graphs: device profile + chunk geometry.
type GraphKey = (&'static str, usize, usize, usize);

/// A compiled AMC chunk graph plus the handles the pipeline needs to feed
/// and drain it.
#[derive(Debug, Clone)]
struct AmcGraph {
    compiled: CompiledGraph,
    bands: Vec<TexHandle>,
    lut: TexHandle,
    mei: TexHandle,
    state: TexHandle,
}

/// The GPU AMC pipeline driver.
#[derive(Debug, Clone)]
pub struct GpuAmc {
    se: StructuringElement,
    mode: KernelMode,
    fuse: bool,
    /// Compiled graphs cached per (device, chunk geometry): every full
    /// chunk of a run shares one compile, the ragged last chunk gets its
    /// own, and repeat runs reuse both.
    graphs: RefCell<HashMap<GraphKey, Rc<AmcGraph>>>,
}

impl GpuAmc {
    /// Create a driver for the given structuring element and kernel mode.
    ///
    /// Pass fusion for the ISA path follows `GPU_SIM_FUSE` (on unless
    /// `"0"`, same pattern as `GPU_SIM_OPT`/`GPU_SIM_BATCH`); override per
    /// instance with [`GpuAmc::set_fusion`].
    pub fn new(se: StructuringElement, mode: KernelMode) -> Self {
        let fuse = std::env::var("GPU_SIM_FUSE").map_or(true, |v| v != "0");
        Self {
            se,
            mode,
            fuse,
            graphs: RefCell::new(HashMap::new()),
        }
    }

    /// The structuring element.
    pub fn se(&self) -> &StructuringElement {
        &self.se
    }

    /// Kernel mode in use.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Whether the ISA path runs the fused graph (`true`) or the unfused
    /// pass-per-kernel oracle (`false`).
    pub fn fusion(&self) -> bool {
        self.fuse
    }

    /// Force fusion on or off, overriding `GPU_SIM_FUSE`. Clears the
    /// compiled-graph cache.
    pub fn set_fusion(&mut self, fuse: bool) {
        self.fuse = fuse;
        self.graphs.borrow_mut().clear();
    }

    /// Compile the AMC render graph for one chunk geometry, for
    /// introspection (the bench fusion attribution and `tables -- graph`):
    /// declares the same graph the executor runs and compiles it fresh —
    /// no cache — with fusion per `fuse`, independent of [`Self::fusion`].
    pub fn compile_graph(
        &self,
        profile: &GpuProfile,
        width: usize,
        height: usize,
        bands: usize,
        fuse: bool,
    ) -> Result<graph::CompiledGraph> {
        let (g, _, _, _, _) = self.declare_amc_graph(width, height, bands);
        graph::compile(&g, profile, fuse).map_err(AmcError::Graph)
    }

    /// Video-memory bytes one chunk of `lines` lines needs.
    ///
    /// The bound covers both executors: unfused, band and normalized
    /// planes coexist only pairwise (G + 1 data planes) plus 2 sum + 2
    /// field + 2 state + 2 MEI ping-pong planes; fused, the band planes
    /// stay resident through the distance and MEI stages (their fetches
    /// are inlined there) alongside the surviving sum/field/state/MEI
    /// planes. `G + 12` planes dominates both, plus the offset LUT.
    pub fn chunk_bytes(&self, width: usize, lines: usize, bands: usize) -> usize {
        let plane = layout::plane_bytes(width, lines);
        let groups = layout::band_groups(bands);
        (groups + 12) * plane + self.se.len() * 16
    }

    /// Declare the AMC chunk pipeline as a [`RenderGraph`]: the SSA form
    /// of the hand-wired pass chain (each ping-pong buffer becomes a chain
    /// of single-writer logical textures), with every program, coordinate
    /// set, and pass constant drawn from [`kernels::stage_specs`].
    fn declare_amc_graph(
        &self,
        w: usize,
        h: usize,
        bands: usize,
    ) -> (RenderGraph, Vec<TexHandle>, TexHandle, TexHandle, TexHandle) {
        let groups = layout::band_groups(bands);
        let offsets = self.se.offsets();
        let p_b = offsets.len();
        let specs = kernels::stage_specs();
        let [band_sum, normalize, sid, minmax_init, minmax_update, mei] = &specs[..] else {
            unreachable!("stage_specs is the 6-kernel table");
        };
        let mut g = RenderGraph::new();
        let transient = TexKind::Transient { zeroed: false };
        let bands_h: Vec<TexHandle> = (0..groups)
            .map(|i| g.texture(format!("band{i}"), w, h, TexKind::Imported))
            .collect();
        let lut = g.texture("lut", p_b, 1, TexKind::Imported);
        // Normalization: band-sum accumulator chain, then one normalize
        // pass per group.
        let mut sum = g.texture("sum_seed", w, h, TexKind::Transient { zeroed: true });
        for (i, &bt) in bands_h.iter().enumerate() {
            let next = g.texture(format!("sum{i}"), w, h, transient);
            g.add_pass(PassDecl {
                name: format!("band_sum{i}"),
                stage: band_sum.stage,
                program: band_sum.program.clone(),
                inputs: vec![(bt, band_sum.inputs[0].1), (sum, band_sum.inputs[1].1)],
                texcoords: vec![TexCoordSet::identity()],
                constants: vec![],
                output: next,
            });
            sum = next;
        }
        let norms: Vec<TexHandle> = (0..groups)
            .map(|i| g.texture(format!("norm{i}"), w, h, transient))
            .collect();
        for (i, (&bt, &nt)) in bands_h.iter().zip(&norms).enumerate() {
            g.add_pass(PassDecl {
                name: format!("normalize{i}"),
                stage: normalize.stage,
                program: normalize.program.clone(),
                inputs: vec![(bt, normalize.inputs[0].1), (sum, normalize.inputs[1].1)],
                texcoords: vec![TexCoordSet::identity()],
                constants: vec![],
                output: nt,
            });
        }
        // Cumulative distance: one accumulator chain over (δ, group).
        let mut d = g.texture("d_seed", w, h, TexKind::Transient { zeroed: true });
        for (di, &(dx, dy)) in offsets.iter().filter(|&&o| o != (0, 0)).enumerate() {
            for (i, &nt) in norms.iter().enumerate() {
                let next = g.texture(format!("d{di}_{i}"), w, h, transient);
                g.add_pass(PassDecl {
                    name: format!("sid{di}_{i}"),
                    stage: sid.stage,
                    program: sid.program.clone(),
                    inputs: vec![(nt, sid.inputs[0].1), (d, sid.inputs[1].1)],
                    texcoords: vec![
                        TexCoordSet::identity(),
                        TexCoordSet::shifted_texels(dx, dy, w, h),
                    ],
                    constants: vec![],
                    output: next,
                });
                d = next;
            }
        }
        // Min/max fold over the SE neighbourhood.
        let mut state = g.texture("state0", w, h, transient);
        {
            let (dx, dy) = offsets[0];
            g.add_pass(PassDecl {
                name: "minmax_init".into(),
                stage: minmax_init.stage,
                program: minmax_init.program.clone(),
                inputs: vec![(d, minmax_init.inputs[0].1)],
                texcoords: vec![TexCoordSet::shifted_texels(dx, dy, w, h)],
                constants: vec![],
                output: state,
            });
        }
        for (k, &(dx, dy)) in offsets.iter().enumerate().skip(1) {
            let next = if k + 1 == p_b {
                g.texture("state_out", w, h, TexKind::Output)
            } else {
                g.texture(format!("state{k}"), w, h, transient)
            };
            g.add_pass(PassDecl {
                name: format!("minmax_update{k}"),
                stage: minmax_update.stage,
                program: minmax_update.program.clone(),
                inputs: vec![
                    (state, minmax_update.inputs[0].1),
                    (d, minmax_update.inputs[1].1),
                ],
                texcoords: vec![
                    TexCoordSet::identity(),
                    TexCoordSet::shifted_texels(dx, dy, w, h),
                ],
                constants: vec![(0, [k as f32; 4])],
                output: next,
            });
            state = next;
        }
        // MEI accumulation over the band groups.
        let mut mei_acc = g.texture("mei_seed", w, h, TexKind::Transient { zeroed: true });
        let mei_const = [1.0 / p_b as f32, 0.5 / p_b as f32, 0.5, 0.0];
        for (i, &nt) in norms.iter().enumerate() {
            let next = if i + 1 == groups {
                g.texture("mei_out", w, h, TexKind::Output)
            } else {
                g.texture(format!("mei{i}"), w, h, transient)
            };
            g.add_pass(PassDecl {
                name: format!("mei{i}"),
                stage: mei.stage,
                program: mei.program.clone(),
                inputs: vec![
                    (nt, mei.inputs[0].1),
                    (state, mei.inputs[1].1),
                    (mei_acc, mei.inputs[2].1),
                    (lut, mei.inputs[3].1),
                ],
                texcoords: vec![TexCoordSet::identity()],
                constants: vec![(2, mei_const)],
                output: next,
            });
            mei_acc = next;
        }
        (g, bands_h, lut, mei_acc, state)
    }

    /// Fetch (or compile and cache) the AMC graph for one device profile
    /// and chunk geometry.
    fn compiled_graph_for(
        &self,
        profile: &GpuProfile,
        w: usize,
        h: usize,
        bands: usize,
    ) -> Result<Rc<AmcGraph>> {
        let key: GraphKey = (profile.name, w, h, bands);
        if let Some(cached) = self.graphs.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let _span = trace::span("pipeline.graph_compile", profile.name);
        let (g, bands_h, lut, mei, state) = self.declare_amc_graph(w, h, bands);
        let compiled = graph::compile(&g, profile, self.fuse).map_err(AmcError::Graph)?;
        let amc = Rc::new(AmcGraph {
            compiled,
            bands: bands_h,
            lut,
            mei,
            state,
        });
        self.graphs.borrow_mut().insert(key, amc.clone());
        Ok(amc)
    }

    /// Pick a chunking that fits the device's video memory, or report that
    /// none exists.
    pub fn plan_chunking(&self, gpu: &Gpu, cube: &Cube) -> Result<Chunking> {
        let dims = cube.dims();
        self.plan_chunking_for_budget(
            gpu.profile().video_memory_bytes(),
            dims.width,
            dims.height,
            dims.bands,
        )
    }

    /// Pick the largest chunking whose every chunk fits `budget` bytes.
    ///
    /// A chunk of `lines` body lines is at most `lines + 2·halo` lines tall
    /// (edge chunks carry one halo, and no chunk exceeds the image), and
    /// [`GpuAmc::chunk_bytes`] is monotone in chunk height, so the fit
    /// predicate is monotone and a binary search finds the exact boundary —
    /// unlike a halving probe, which can skip feasible sizes and never
    /// re-checks that its final candidate actually fits.
    pub fn plan_chunking_for_budget(
        &self,
        budget: usize,
        width: usize,
        height: usize,
        bands: usize,
    ) -> Result<Chunking> {
        let _span = trace::span("pipeline.plan", "plan");
        let halo = 2 * self.se.radius_y();
        let height = height.max(1);
        let chunk_height = |lines: usize| (lines + 2 * halo).min(height);
        let fits = |lines: usize| self.chunk_bytes(width, chunk_height(lines), bands) <= budget;
        if !fits(1) {
            return Err(AmcError::ChunkingInfeasible {
                width,
                bands,
                required: self.chunk_bytes(width, chunk_height(1), bands),
                budget,
            });
        }
        // Largest feasible line count in [1, height].
        let (mut lo, mut hi) = (1usize, height);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Ok(Chunking::new(lo, halo))
    }

    /// Run the full pipeline over a cube, chunking as needed.
    pub fn run(&self, gpu: &mut Gpu, cube: &Cube) -> Result<PipelineOutput> {
        let chunking = self.plan_chunking(gpu, cube)?;
        self.run_with_chunking(gpu, cube, chunking)
    }

    /// The paper's hybrid partitioning end to end: the chunked GPU stream
    /// pipeline produces the MEI image (steps 1–2), then the classifier's
    /// batched CPU tail selects endmembers, unmixes and labels (steps 3–4).
    ///
    /// The classifier's structuring element and the driver's should agree for
    /// the run to be meaningful; the MEI handoff itself is shape-checked.
    pub fn run_and_classify(
        &self,
        gpu: &mut Gpu,
        cube: &Cube,
        classifier: &hsi::classify::AmcClassifier,
    ) -> Result<HybridOutput> {
        let t = std::time::Instant::now();
        let pipeline = {
            let _phase = trace::span("pipeline.phase", "gpu_pipeline");
            self.run(gpu, cube)?
        };
        let gpu_wall_s = t.elapsed().as_secs_f64();
        let t = std::time::Instant::now();
        let (classification, tail) = {
            let _phase = trace::span("pipeline.phase", "cpu_tail");
            classifier.classify_with_mei_timed(cube, pipeline.mei.clone())?
        };
        let tail_wall_s = t.elapsed().as_secs_f64();
        Ok(HybridOutput {
            pipeline,
            classification,
            tail,
            gpu_wall_s,
            tail_wall_s,
        })
    }

    /// Run the full pipeline with an explicit chunking.
    ///
    /// The executor splits planning from execution: chunk descriptors are
    /// laid out first, then each chunk's band groups are packed on a worker
    /// thread while the previous chunk shades (double-buffered upload
    /// staging). Device textures come from the pool, so a multi-chunk run
    /// performs the same number of real allocations as its first chunk.
    pub fn run_with_chunking(
        &self,
        gpu: &mut Gpu,
        cube: &Cube,
        chunking: Chunking,
    ) -> Result<PipelineOutput> {
        let dims = cube.dims();
        let chunks: Vec<_> = cube.chunks(chunking).collect();
        // Wall anchor for the analyzer: one span bracketing the whole
        // chunked run, carrying the plan shape the chunk DAG hangs off.
        let _run_span = trace::span_with(
            "pipeline.run",
            "run",
            &[
                ("chunks", ArgValue::U64(chunks.len() as u64)),
                ("lines", ArgValue::U64(chunking.lines_per_chunk as u64)),
            ],
        );
        let mut mei_scores = vec![0.0f32; dims.pixels()];
        let mut min_index = vec![0u32; dims.pixels()];
        let mut max_index = vec![0u32; dims.pixels()];
        let mut stages = StageStats::default();
        let mut stage_wall = StageWall::default();
        let mut scratch = ChunkScratch::default();

        // Double-buffered staging: `packed` holds the current chunk's band
        // groups; `spare` is the buffer set the packer thread fills for the
        // next chunk while the device shades this one.
        let mut packed: Vec<Vec<f32>> = Vec::new();
        let mut spare: Vec<Vec<f32>> = Vec::new();
        if let Some(first) = chunks.first() {
            layout::pack_cube_into(&first.cube, &mut packed);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let chunk_span = trace::span_with(
                "pipeline.chunk",
                "chunk",
                &[
                    ("index", ArgValue::U64(i as u64)),
                    ("lines", ArgValue::U64(chunk.cube.dims().height as u64)),
                ],
            );
            let chunk_start = Instant::now();
            let next_cube = chunks.get(i + 1).map(|c| &c.cube);
            let prepack = std::mem::take(&mut spare);
            let (result, prepacked) = std::thread::scope(|s| {
                let packer = next_cube.map(|next| {
                    let mut buf = prepack;
                    s.spawn(move || {
                        if trace::enabled() {
                            // One stable row: the scope joins each packer
                            // before the next spawns, so lifetimes never
                            // overlap.
                            trace::set_thread_name("packer");
                        }
                        let _pack = trace::span_with(
                            "pipeline.pack",
                            "pack",
                            &[("chunk", ArgValue::U64((i + 1) as u64))],
                        );
                        layout::pack_cube_into(next, &mut buf);
                        buf
                    })
                });
                // The packer owns a core while it runs, so shade this chunk
                // with one fewer pool worker — the pipeline never runs more
                // threads than the host advertises.
                let _packer_core = packer.as_ref().map(|_| rayon::reserve_thread());
                let cd = chunk.cube.dims();
                let result = self.run_chunk_packed(
                    gpu,
                    cd.width,
                    cd.height,
                    cd.bands,
                    &packed,
                    &mut scratch,
                );
                let prepacked = packer.map(|h| h.join().expect("packer thread panicked"));
                (result, prepacked)
            });
            let out = result?;
            if let Some(next) = prepacked {
                spare = std::mem::replace(&mut packed, next);
            }
            let cw = chunk.cube.dims().width;
            for local_y in chunk.body_range() {
                let global_y = chunk.y_start + (local_y - chunk.halo_top);
                let src = local_y * cw;
                let dst = global_y * dims.width;
                mei_scores[dst..dst + cw].copy_from_slice(&out.mei.scores[src..src + cw]);
                min_index[dst..dst + cw].copy_from_slice(&out.min_index[src..src + cw]);
                max_index[dst..dst + cw].copy_from_slice(&out.max_index[src..src + cw]);
            }
            stages.add(&out.stages);
            stage_wall.add(&out.stage_wall);
            trace::metrics::observe("pipeline.chunk_wall", chunk_start.elapsed());
            drop(chunk_span);
        }
        gpu.drain_pool();
        Ok(PipelineOutput {
            mei: MeiImage {
                width: dims.width,
                height: dims.height,
                scores: mei_scores,
            },
            min_index,
            max_index,
            stats: stages.total(),
            stages,
            stage_wall,
            chunks: chunks.len(),
        })
    }

    /// Run stages 1–6 on one resident chunk (no further splitting).
    pub fn run_chunk(&self, gpu: &mut Gpu, cube: &Cube) -> Result<PipelineOutput> {
        let dims = cube.dims();
        let mut packed = Vec::new();
        layout::pack_cube_into(cube, &mut packed);
        let out = self.run_chunk_packed(
            gpu,
            dims.width,
            dims.height,
            dims.bands,
            &packed,
            &mut ChunkScratch::default(),
        );
        gpu.drain_pool();
        out
    }

    /// Execute the six stages on pre-packed band groups of a `w x h x bands`
    /// chunk. Textures are drawn from (and returned to) the device pool;
    /// readbacks land in `scratch` so repeat chunks allocate nothing on the
    /// host either.
    pub(crate) fn run_chunk_packed(
        &self,
        gpu: &mut Gpu,
        w: usize,
        h: usize,
        bands: usize,
        packed: &[Vec<f32>],
        scratch: &mut ChunkScratch,
    ) -> Result<PipelineOutput> {
        match self.mode {
            // The ISA path compiles and runs the declarative render graph
            // (fused unless `GPU_SIM_FUSE=0`).
            KernelMode::Isa => self.run_chunk_graph(gpu, w, h, bands, packed, scratch),
            // Closure twins have no fp30 IR to fuse; they keep the
            // hand-wired pass chain.
            KernelMode::Closure => self.run_chunk_passes(gpu, w, h, bands, packed, scratch),
        }
    }

    /// Run one chunk through the compiled render graph: upload, execute
    /// the graph (normalize/distance/minmax/mei stages), download.
    fn run_chunk_graph(
        &self,
        gpu: &mut Gpu,
        w: usize,
        h: usize,
        bands: usize,
        packed: &[Vec<f32>],
        scratch: &mut ChunkScratch,
    ) -> Result<PipelineOutput> {
        let groups = layout::band_groups(bands);
        debug_assert_eq!(packed.len(), groups, "pre-packed group count");
        let offsets = self.se.offsets();
        let p_b = offsets.len();
        let mut stages = StageStats::default();
        let mut wall = StageWall::default();

        // -- Stage 1: stream uploading ------------------------------------
        let stage_span = trace::span("pipeline.stage", "upload");
        let stage_start = Instant::now();
        let before_upload = gpu.stats();
        let mut band_tex: Vec<TextureId> = Vec::with_capacity(groups);
        for plane in packed {
            let t = gpu.alloc_pooled(w, h)?;
            gpu.upload(t, plane)?;
            band_tex.push(t);
        }
        let lut = gpu.alloc_pooled(p_b, 1)?;
        gpu.upload(lut, &kernels::offset_lut(&offsets, w, h))?;
        stages.upload = gpu.stats();
        stages.upload.sub(&before_upload);
        wall.upload_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        // -- Stages 2-5: the compiled graph --------------------------------
        let profile = gpu.profile().clone();
        let amc = self.compiled_graph_for(&profile, w, h, bands)?;
        let mut imports: Vec<(TexHandle, TextureId)> = amc
            .bands
            .iter()
            .copied()
            .zip(band_tex.iter().copied())
            .collect();
        imports.push((amc.lut, lut));
        let report = amc.compiled.execute(gpu, &imports)?;
        for run in &report.stages {
            match run.name {
                "normalize" => {
                    stages.normalize.add(&run.stats);
                    wall.normalize_s += run.wall_s;
                }
                "distance" => {
                    stages.distance.add(&run.stats);
                    wall.distance_s += run.wall_s;
                }
                "minmax" => {
                    stages.minmax.add(&run.stats);
                    wall.minmax_s += run.wall_s;
                }
                "mei" => {
                    stages.mei.add(&run.stats);
                    wall.mei_s += run.wall_s;
                }
                other => debug_assert!(false, "unknown graph stage `{other}`"),
            }
        }

        // -- Stage 6: stream downloading ------------------------------------
        let stage_span = trace::span("pipeline.stage", "download");
        let stage_start = Instant::now();
        let before_download = gpu.stats();
        let output_id = |h: TexHandle| {
            report
                .outputs
                .iter()
                .find(|&&(oh, _)| oh == h)
                .map(|&(_, id)| id)
                .expect("graph output rendered")
        };
        let (mei_id, state_id) = (output_id(amc.mei), output_id(amc.state));
        gpu.download_into(mei_id, &mut scratch.mei_flat)?;
        gpu.download_into(state_id, &mut scratch.state_flat)?;
        stages.download = gpu.stats();
        stages.download.sub(&before_download);
        let mut scores = Vec::with_capacity(w * h);
        let mut min_index = Vec::with_capacity(w * h);
        let mut max_index = Vec::with_capacity(w * h);
        for texel in scratch.mei_flat.chunks_exact(4) {
            scores.push(texel[0]);
        }
        for texel in scratch.state_flat.chunks_exact(4) {
            min_index.push(texel[1].round() as u32);
            max_index.push(texel[3].round() as u32);
        }
        for (_, id) in report.outputs {
            gpu.release_pooled(id)?;
        }
        for t in band_tex {
            gpu.release_pooled(t)?;
        }
        gpu.release_pooled(lut)?;
        wall.download_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        Ok(PipelineOutput {
            mei: MeiImage {
                width: w,
                height: h,
                scores,
            },
            min_index,
            max_index,
            stats: stages.total(),
            stages,
            stage_wall: wall,
            chunks: 1,
        })
    }

    /// The hand-wired pass-chain executor (closure twins).
    fn run_chunk_passes(
        &self,
        gpu: &mut Gpu,
        w: usize,
        h: usize,
        bands: usize,
        packed: &[Vec<f32>],
        scratch: &mut ChunkScratch,
    ) -> Result<PipelineOutput> {
        let groups = layout::band_groups(bands);
        debug_assert_eq!(packed.len(), groups, "pre-packed group count");
        let offsets = self.se.offsets();
        let p_b = offsets.len();
        let mut stages = StageStats::default();
        let mut wall = StageWall::default();

        // -- Stage 1: stream uploading ------------------------------------
        let stage_span = trace::span("pipeline.stage", "upload");
        let stage_start = Instant::now();
        let before_upload = gpu.stats();
        let mut band_tex: Vec<TextureId> = Vec::with_capacity(groups);
        for plane in packed {
            let t = gpu.alloc_pooled(w, h)?;
            gpu.upload(t, plane)?;
            band_tex.push(t);
        }
        let lut = gpu.alloc_pooled(p_b, 1)?;
        gpu.upload(lut, &kernels::offset_lut(&offsets, w, h))?;
        stages.upload = gpu.stats();
        stages.upload.sub(&before_upload);
        wall.upload_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        // -- Stage 2: normalization ---------------------------------------
        let stage_span = trace::span("pipeline.stage", "normalize");
        let stage_start = Instant::now();
        let mut sum_a = gpu.alloc_pooled(w, h)?; // zero-initialised
        let mut sum_b = gpu.alloc_pooled(w, h)?;
        for &bt in &band_tex {
            stages
                .normalize
                .add(&self.pass_band_sum(gpu, bt, sum_a, sum_b)?);
            std::mem::swap(&mut sum_a, &mut sum_b);
        }
        // `sum_a` now holds the total band sum.
        let mut norm_tex: Vec<TextureId> = Vec::with_capacity(groups);
        for &bt in &band_tex {
            let nt = gpu.alloc_pooled(w, h)?;
            stages
                .normalize
                .add(&self.pass_normalize(gpu, bt, sum_a, nt)?);
            gpu.release_pooled(bt)?;
            norm_tex.push(nt);
        }
        gpu.release_pooled(sum_b)?;
        wall.normalize_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        // -- Stage 3: cumulative distance (the D_B field) ------------------
        let stage_span = trace::span("pipeline.stage", "distance");
        let stage_start = Instant::now();
        let mut d_a = gpu.alloc_pooled(w, h)?;
        let mut d_b = gpu.alloc_pooled(w, h)?;
        for &(dx, dy) in offsets.iter().filter(|&&o| o != (0, 0)) {
            for &nt in &norm_tex {
                stages
                    .distance
                    .add(&self.pass_sid_partial(gpu, nt, d_a, d_b, dx, dy, w, h)?);
                std::mem::swap(&mut d_a, &mut d_b);
            }
        }
        // `d_a` holds the field.
        wall.distance_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        // -- Stage 4: maximum and minimum ----------------------------------
        let stage_span = trace::span("pipeline.stage", "minmax");
        let stage_start = Instant::now();
        let mut st_a = gpu.alloc_pooled(w, h)?;
        let mut st_b = gpu.alloc_pooled(w, h)?;
        stages
            .minmax
            .add(&self.pass_minmax_init(gpu, d_a, st_a, offsets[0], w, h)?);
        for (k, &(dx, dy)) in offsets.iter().enumerate().skip(1) {
            stages.minmax.add(&self.pass_minmax_update(
                gpu,
                st_a,
                d_a,
                st_b,
                k as f32,
                (dx, dy),
                w,
                h,
            )?);
            std::mem::swap(&mut st_a, &mut st_b);
        }
        // `st_a` holds (minval, minidx, maxval, maxidx).
        wall.minmax_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        // -- Stage 5: compute SID (MEI accumulation) -----------------------
        let stage_span = trace::span("pipeline.stage", "mei");
        let stage_start = Instant::now();
        let mut mei_a = gpu.alloc_pooled(w, h)?;
        let mut mei_b = gpu.alloc_pooled(w, h)?;
        for &nt in &norm_tex {
            stages
                .mei
                .add(&self.pass_mei_partial(gpu, nt, st_a, mei_a, lut, mei_b, p_b, &offsets)?);
            std::mem::swap(&mut mei_a, &mut mei_b);
        }
        wall.mei_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        // -- Stage 6: stream downloading ------------------------------------
        let stage_span = trace::span("pipeline.stage", "download");
        let stage_start = Instant::now();
        let before_download = gpu.stats();
        gpu.download_into(mei_a, &mut scratch.mei_flat)?;
        gpu.download_into(st_a, &mut scratch.state_flat)?;
        stages.download = gpu.stats();
        stages.download.sub(&before_download);
        let mut scores = Vec::with_capacity(w * h);
        let mut min_index = Vec::with_capacity(w * h);
        let mut max_index = Vec::with_capacity(w * h);
        for texel in scratch.mei_flat.chunks_exact(4) {
            scores.push(texel[0]);
        }
        for texel in scratch.state_flat.chunks_exact(4) {
            min_index.push(texel[1].round() as u32);
            max_index.push(texel[3].round() as u32);
        }

        // Return every texture to the pool for the next chunk.
        for nt in norm_tex {
            gpu.release_pooled(nt)?;
        }
        for t in [sum_a, d_a, d_b, st_a, st_b, mei_a, mei_b, lut] {
            gpu.release_pooled(t)?;
        }
        wall.download_s = stage_start.elapsed().as_secs_f64();
        drop(stage_span);

        Ok(PipelineOutput {
            mei: MeiImage {
                width: w,
                height: h,
                scores,
            },
            min_index,
            max_index,
            stats: stages.total(),
            stages,
            stage_wall: wall,
            chunks: 1,
        })
    }

    // -- individual passes ------------------------------------------------

    fn pass_band_sum(
        &self,
        gpu: &mut Gpu,
        band: TextureId,
        sum_prev: TextureId,
        sum_next: TextureId,
    ) -> Result<PassStats> {
        let stats = match self.mode {
            KernelMode::Isa => gpu.run_pass(
                &KERNEL_SET.band_sum,
                &[band, sum_prev],
                &[],
                &[TexCoordSet::identity()],
                sum_next,
                None,
            )?,
            KernelMode::Closure => gpu.run_closure_pass(
                &[band, sum_prev],
                sum_next,
                kernels::BAND_SUM_COST,
                None,
                |f, x, y| {
                    let t0 = f.fetch(0, x as i64, y as i64);
                    let t1 = f.fetch(1, x as i64, y as i64);
                    let d = t0[0] * 1.0 + t0[1] * 1.0 + t0[2] * 1.0 + t0[3] * 1.0;
                    [d + t1[0], d + t1[1], d + t1[2], d + t1[3]]
                },
            )?,
        };
        Ok(stats)
    }

    fn pass_normalize(
        &self,
        gpu: &mut Gpu,
        band: TextureId,
        sum: TextureId,
        out: TextureId,
    ) -> Result<PassStats> {
        let stats = match self.mode {
            KernelMode::Isa => gpu.run_pass(
                &KERNEL_SET.normalize,
                &[band, sum],
                &[],
                &[TexCoordSet::identity()],
                out,
                None,
            )?,
            KernelMode::Closure => gpu.run_closure_pass(
                &[band, sum],
                out,
                kernels::NORMALIZE_COST,
                None,
                |f, x, y| {
                    let t0 = f.fetch(0, x as i64, y as i64);
                    let t1 = f.fetch(1, x as i64, y as i64);
                    let s = t1[0].max(1e-30);
                    let r = 1.0 / s;
                    [t0[0] * r, t0[1] * r, t0[2] * r, t0[3] * r]
                },
            )?,
        };
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn pass_sid_partial(
        &self,
        gpu: &mut Gpu,
        norm: TextureId,
        d_prev: TextureId,
        d_next: TextureId,
        dx: i32,
        dy: i32,
        w: usize,
        h: usize,
    ) -> Result<PassStats> {
        let stats = match self.mode {
            KernelMode::Isa => gpu.run_pass(
                &KERNEL_SET.sid_partial,
                &[norm, d_prev],
                &[],
                &[
                    TexCoordSet::identity(),
                    TexCoordSet::shifted_texels(dx, dy, w, h),
                ],
                d_next,
                None,
            )?,
            KernelMode::Closure => gpu.run_closure_pass(
                &[norm, d_prev],
                d_next,
                kernels::SID_PARTIAL_COST,
                None,
                move |f, x, y| {
                    let p = f.fetch(0, x as i64, y as i64);
                    let q = f.fetch(0, x as i64 + dx as i64, y as i64 + dy as i64);
                    let prev = f.fetch(1, x as i64, y as i64);
                    let acc = kernels::sid_partial_value(p, q);
                    [prev[0] + acc, prev[1] + acc, prev[2] + acc, prev[3] + acc]
                },
            )?,
        };
        Ok(stats)
    }

    fn pass_minmax_init(
        &self,
        gpu: &mut Gpu,
        field: TextureId,
        state: TextureId,
        delta0: (i32, i32),
        w: usize,
        h: usize,
    ) -> Result<PassStats> {
        let (dx, dy) = delta0;
        let stats = match self.mode {
            KernelMode::Isa => gpu.run_pass(
                &KERNEL_SET.minmax_init,
                &[field],
                &[],
                &[TexCoordSet::shifted_texels(dx, dy, w, h)],
                state,
                None,
            )?,
            KernelMode::Closure => gpu.run_closure_pass(
                &[field],
                state,
                kernels::MINMAX_INIT_COST,
                None,
                move |f, x, y| {
                    let d = f.fetch(0, x as i64 + dx as i64, y as i64 + dy as i64);
                    [d[0], 0.0, d[0], 0.0]
                },
            )?,
        };
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn pass_minmax_update(
        &self,
        gpu: &mut Gpu,
        state_prev: TextureId,
        field: TextureId,
        state_next: TextureId,
        k: f32,
        delta: (i32, i32),
        w: usize,
        h: usize,
    ) -> Result<PassStats> {
        let (dx, dy) = delta;
        let stats = match self.mode {
            KernelMode::Isa => gpu.run_pass(
                &KERNEL_SET.minmax_update,
                &[state_prev, field],
                &[(0, [k; 4])],
                &[
                    TexCoordSet::identity(),
                    TexCoordSet::shifted_texels(dx, dy, w, h),
                ],
                state_next,
                None,
            )?,
            KernelMode::Closure => gpu.run_closure_pass(
                &[state_prev, field],
                state_next,
                kernels::MINMAX_UPDATE_COST,
                None,
                move |f, x, y| {
                    let st = f.fetch(0, x as i64, y as i64);
                    let d = f.fetch(1, x as i64 + dx as i64, y as i64 + dy as i64);
                    kernels::minmax_update_value(st, d[0], k)
                },
            )?,
        };
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn pass_mei_partial(
        &self,
        gpu: &mut Gpu,
        norm: TextureId,
        state: TextureId,
        mei_prev: TextureId,
        lut: TextureId,
        mei_next: TextureId,
        p_b: usize,
        offsets: &[(i32, i32)],
    ) -> Result<PassStats> {
        let stats = match self.mode {
            KernelMode::Isa => gpu.run_pass(
                &KERNEL_SET.mei_partial,
                &[norm, state, mei_prev, lut],
                &[(2, [1.0 / p_b as f32, 0.5 / p_b as f32, 0.5, 0.0])],
                &[TexCoordSet::identity()],
                mei_next,
                None,
            )?,
            KernelMode::Closure => {
                let offsets = offsets.to_vec();
                gpu.run_closure_pass(
                    &[norm, state, mei_prev, lut],
                    mei_next,
                    kernels::MEI_PARTIAL_COST,
                    None,
                    move |f, x, y| {
                        let st = f.fetch(1, x as i64, y as i64);
                        let kmin = st[1].round() as usize;
                        let kmax = st[3].round() as usize;
                        // LUT fetches kept for counter parity with the ISA
                        // path (which resolves offsets via dependent reads).
                        let _ = f.fetch(3, kmin as i64, 0);
                        let _ = f.fetch(3, kmax as i64, 0);
                        let (mindx, mindy) = offsets[kmin.min(offsets.len() - 1)];
                        let (maxdx, maxdy) = offsets[kmax.min(offsets.len() - 1)];
                        let pmin = f.fetch(0, x as i64 + mindx as i64, y as i64 + mindy as i64);
                        let pmax = f.fetch(0, x as i64 + maxdx as i64, y as i64 + maxdy as i64);
                        let prev = f.fetch(2, x as i64, y as i64);
                        let acc = kernels::sid_partial_value(pmax, pmin);
                        [prev[0] + acc, prev[1] + acc, prev[2] + acc, prev[3] + acc]
                    },
                )?
            }
        };
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::device::GpuProfile;
    use hsi::cube::{CubeDims, Interleave};
    use hsi::morphology::{self, StructuringElement};
    use hsi::spectral::SpectralDistance;

    fn test_cube(w: usize, h: usize, bands: usize, seed: u64) -> Cube {
        // Deterministic pseudo-random positive radiances.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / 16777216.0 // [0, 1)
        };
        Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |_, _, _| {
            50.0 + 200.0 * next()
        })
        .unwrap()
    }

    fn reference_mei(cube: &Cube, se: &StructuringElement) -> (MeiImage, Vec<u32>, Vec<u32>) {
        let norm = morphology::normalize_cube(cube);
        let (mei, morph) = morphology::mei(&norm, se, SpectralDistance::Sid);
        (mei, morph.min_index, morph.max_index)
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}[{i}]: {x} vs {y}"
            );
        }
    }

    #[test]
    fn closure_pipeline_matches_cpu_reference() {
        let cube = test_cube(12, 9, 10, 7);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
        let out = amc.run(&mut gpu, &cube).unwrap();
        let (ref_mei, ref_min, ref_max) = reference_mei(&cube, &se);
        assert_close(&out.mei.scores, &ref_mei.scores, 1e-4, "mei");
        assert_eq!(out.min_index, ref_min);
        assert_eq!(out.max_index, ref_max);
        assert_eq!(out.chunks, 1);
        assert!(
            gpu.allocated_bytes() == 0,
            "pipeline must free its textures"
        );
    }

    #[test]
    fn run_and_classify_matches_separate_phases() {
        let cube = test_cube(12, 9, 8, 23);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let amc = GpuAmc::new(se, KernelMode::Closure);
        let classifier =
            hsi::classify::AmcClassifier::new(hsi::classify::AmcConfig::paper_default(3));
        let hybrid = amc.run_and_classify(&mut gpu, &cube, &classifier).unwrap();
        // Same labels as handing the MEI over manually.
        let manual = classifier
            .classify_with_mei(&cube, hybrid.pipeline.mei.clone())
            .unwrap();
        assert_eq!(hybrid.classification.labels, manual.labels);
        assert_eq!(hybrid.classification.labels.len(), cube.dims().pixels());
        // Wall clocks and the tail breakdown are populated and plausible.
        assert!(hybrid.gpu_wall_s >= 0.0 && hybrid.tail_wall_s >= 0.0);
        let t = hybrid.tail;
        assert!(t.selection_s >= 0.0 && t.unmix_s >= 0.0);
        assert!(t.classify_s >= 0.0 && t.argmax_s >= 0.0);
        assert!(t.selection_s + t.classify_s <= hybrid.tail_wall_s + 1.0);
    }

    #[test]
    fn isa_pipeline_matches_closure_pipeline_exactly() {
        let cube = test_cube(8, 6, 6, 3);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
        // Pin fusion off: pass-for-pass work-count parity with the closure
        // chain only holds for the unfused oracle schedule.
        let mut isa_amc = GpuAmc::new(se.clone(), KernelMode::Isa);
        isa_amc.set_fusion(false);
        let isa = isa_amc.run(&mut gpu, &cube).unwrap();
        let clo = GpuAmc::new(se, KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        assert_eq!(isa.mei.scores, clo.mei.scores, "bit-equal MEI streams");
        assert_eq!(isa.min_index, clo.min_index);
        assert_eq!(isa.max_index, clo.max_index);
        // Work counts agree between the two kernel forms.
        assert_eq!(isa.stats.instructions, clo.stats.instructions);
        assert_eq!(isa.stats.texel_fetches, clo.stats.texel_fetches);
        assert_eq!(isa.stats.fragments, clo.stats.fragments);
        assert_eq!(isa.stats.passes, clo.stats.passes);
    }

    #[test]
    fn batched_isa_pipeline_matches_scalar_at_every_thread_count() {
        // Full ISA classification (GPU pipeline + CPU tail) with the
        // batched SoA executor vs the per-fragment oracle
        // (`GPU_SIM_BATCH=0`), at one worker thread and at the default
        // count: MEI scores, labels, and every PassStats field must be
        // bit-identical.
        let cube = test_cube(21, 11, 6, 7); // ragged vs 64x4 tiles
        let se = StructuringElement::square(3).unwrap();
        let classifier =
            hsi::classify::AmcClassifier::new(hsi::classify::AmcConfig::paper_default(3));
        let run = |batch: bool| {
            let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
            gpu.set_batch_execution(batch);
            GpuAmc::new(se.clone(), KernelMode::Isa)
                .run_and_classify(&mut gpu, &cube, &classifier)
                .unwrap()
        };
        let baseline = run(false);
        for threads in [Some(1), None] {
            let batched = match threads {
                Some(n) => rayon::with_threads(n, || run(true)),
                None => run(true),
            };
            let score_bits =
                |m: &MeiImage| m.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                score_bits(&batched.pipeline.mei),
                score_bits(&baseline.pipeline.mei),
                "MEI diverged (threads {threads:?})"
            );
            assert_eq!(batched.pipeline.min_index, baseline.pipeline.min_index);
            assert_eq!(batched.pipeline.max_index, baseline.pipeline.max_index);
            assert_eq!(
                batched.classification.labels, baseline.classification.labels,
                "labels diverged (threads {threads:?})"
            );
            assert_eq!(
                batched.pipeline.stats, baseline.pipeline.stats,
                "PassStats diverged (threads {threads:?})"
            );
        }
    }

    #[test]
    fn fused_pipeline_matches_unfused_at_every_thread_count() {
        // The fused graph schedule vs the unfused oracle (`GPU_SIM_FUSE=0`):
        // MEI scores and the min/max index maps must be bit-identical at one
        // worker thread and at the default count, while fusion strictly
        // reduces both passes and texel fetches.
        let cube = test_cube(21, 11, 6, 7); // ragged vs 64x4 tiles
        let se = StructuringElement::square(3).unwrap();
        let run = |fuse: bool| {
            let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
            let mut amc = GpuAmc::new(se.clone(), KernelMode::Isa);
            amc.set_fusion(fuse);
            amc.run(&mut gpu, &cube).unwrap()
        };
        let oracle = run(false);
        for threads in [Some(1), None] {
            let fused = match threads {
                Some(n) => rayon::with_threads(n, || run(true)),
                None => run(true),
            };
            let score_bits =
                |m: &MeiImage| m.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                score_bits(&fused.mei),
                score_bits(&oracle.mei),
                "MEI diverged (threads {threads:?})"
            );
            assert_eq!(fused.min_index, oracle.min_index);
            assert_eq!(fused.max_index, oracle.max_index);
            assert!(
                fused.stats.passes < oracle.stats.passes,
                "fusion must remove passes ({} vs {})",
                fused.stats.passes,
                oracle.stats.passes
            );
            assert!(
                fused.stats.texel_fetches < oracle.stats.texel_fetches,
                "fusion must cut fetches ({} vs {})",
                fused.stats.texel_fetches,
                oracle.stats.texel_fetches
            );
        }
    }

    #[test]
    fn fused_ragged_last_chunk_matches_unfused() {
        // height 17 with 5-line chunks: 5+5+5+2 — the ragged tail compiles
        // a second graph geometry; both must stitch bit-identically.
        let cube = test_cube(9, 17, 6, 19);
        let se = StructuringElement::square(3).unwrap();
        let chunking = Chunking::new(5, 2 * se.radius_y());
        let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
        let mut fused_amc = GpuAmc::new(se.clone(), KernelMode::Isa);
        fused_amc.set_fusion(true);
        let fused = fused_amc
            .run_with_chunking(&mut gpu, &cube, chunking)
            .unwrap();
        let mut oracle_amc = GpuAmc::new(se, KernelMode::Isa);
        oracle_amc.set_fusion(false);
        let oracle = oracle_amc
            .run_with_chunking(&mut gpu, &cube, chunking)
            .unwrap();
        assert_eq!(fused.chunks, 4);
        let bits = |s: &[f32]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fused.mei.scores), bits(&oracle.mei.scores));
        assert_eq!(fused.min_index, oracle.min_index);
        assert_eq!(fused.max_index, oracle.max_index);
        assert_eq!(gpu.allocated_bytes(), 0);
        assert_eq!(gpu.pooled_bytes(), 0, "run drains the pool");
    }

    #[test]
    fn fusion_cuts_normalize_distance_fetches_by_thirty_percent() {
        // Static form of the bench gate: at AVIRIS-like depth the fused
        // schedule fetches ≥ 30% fewer texels per fragment across the
        // normalize and distance stages combined.
        let se = StructuringElement::square(3).unwrap();
        let amc = GpuAmc::new(se, KernelMode::Isa);
        let (g, _, _, _, _) = amc.declare_amc_graph(8, 4, 96);
        let profile = GpuProfile::fx5950_ultra();
        let fused = graph::compile(&g, &profile, true).unwrap();
        let unfused = graph::compile(&g, &profile, false).unwrap();
        let per_frag = |c: &graph::CompiledGraph| {
            c.stage_fetches_per_fragment("normalize") + c.stage_fetches_per_fragment("distance")
        };
        let (f, u) = (per_frag(&fused), per_frag(&unfused));
        assert!(
            f * 10 <= u * 7,
            "normalize+distance fetches/fragment: fused {f} vs unfused {u} (< 30% cut)"
        );
        assert!(!fused.fusions.is_empty());
        // The normalize field producers are inlined away entirely.
        assert!(fused.eliminated.iter().any(|n| n.starts_with("normalize")));
        // Normalize inlining plus band-sum chain folding collapse the stage
        // to a couple of segmented passes.
        assert!(fused.stage_passes("normalize") < unfused.stage_passes("normalize") / 4);
    }

    #[test]
    fn kernel_mode_names_round_trip() {
        for mode in [KernelMode::Isa, KernelMode::Closure] {
            assert_eq!(KernelMode::from_name(mode.as_str()), Some(mode));
            assert_eq!(format!("{mode}"), mode.as_str());
        }
        assert_eq!(KernelMode::from_name("simd"), None);
    }

    #[test]
    fn pass_counts_match_stage_structure() {
        let cube = test_cube(6, 5, 9, 1); // 9 bands → 3 groups
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se, KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        let groups = 3u64;
        let p_b = 9u64;
        // sums G + normalize G + sid (p_B−1)·G + minmax p_B + mei G.
        let expected = groups + groups + (p_b - 1) * groups + p_b + groups;
        assert_eq!(out.stats.passes, expected);
        // Upload: G planes + LUT; download: MEI + state.
        let plane = 6 * 5 * 16;
        assert_eq!(out.stats.bytes_uploaded as usize, 3 * plane + 9 * 16);
        assert_eq!(out.stats.bytes_downloaded as usize, 2 * plane);
    }

    #[test]
    fn chunked_equals_unchunked() {
        let cube = test_cube(10, 16, 8, 11);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let amc = GpuAmc::new(se, KernelMode::Closure);
        let whole = amc.run_chunk(&mut gpu, &cube).unwrap();
        // Force small chunks by processing via explicit chunking.
        let chunking = Chunking::new(3, 2 * amc.se().radius_y());
        let dims = cube.dims();
        let mut stitched = vec![0.0f32; dims.pixels()];
        let mut stitched_min = vec![0u32; dims.pixels()];
        for chunk in cube.chunks(chunking) {
            let out = amc.run_chunk(&mut gpu, &chunk.cube).unwrap();
            for local_y in chunk.body_range() {
                let gy = chunk.y_start + (local_y - chunk.halo_top);
                for x in 0..dims.width {
                    stitched[gy * dims.width + x] = out.mei.scores[local_y * dims.width + x];
                    stitched_min[gy * dims.width + x] = out.min_index[local_y * dims.width + x];
                }
            }
        }
        // MEI is identical in every body row; indices too.
        assert_eq!(stitched, whole.mei.scores);
        assert_eq!(stitched_min, whole.min_index);
    }

    #[test]
    fn ragged_last_chunk_is_stitched_exactly() {
        // height 17 with 5-line chunks: 5+5+5+2 — the last chunk is ragged.
        let cube = test_cube(9, 17, 6, 19);
        let se = StructuringElement::square(3).unwrap();
        let amc = GpuAmc::new(se, KernelMode::Closure);
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let whole = amc.run_chunk(&mut gpu, &cube).unwrap();
        let chunked = amc
            .run_with_chunking(&mut gpu, &cube, Chunking::new(5, 2 * amc.se().radius_y()))
            .unwrap();
        assert_eq!(chunked.chunks, 4);
        assert_eq!(chunked.mei.scores, whole.mei.scores);
        assert_eq!(chunked.min_index, whole.min_index);
        assert_eq!(chunked.max_index, whole.max_index);
        assert_eq!(gpu.allocated_bytes(), 0);
        assert_eq!(gpu.pooled_bytes(), 0, "run drains the pool");
    }

    #[test]
    fn isa_equals_closure_through_chunking() {
        let cube = test_cube(8, 10, 6, 29);
        let se = StructuringElement::square(3).unwrap();
        let chunking = Chunking::new(4, 2);
        let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
        // Unfused oracle schedule, for pass-count parity with the closures.
        let mut isa_amc = GpuAmc::new(se.clone(), KernelMode::Isa);
        isa_amc.set_fusion(false);
        let isa = isa_amc
            .run_with_chunking(&mut gpu, &cube, chunking)
            .unwrap();
        let clo = GpuAmc::new(se, KernelMode::Closure)
            .run_with_chunking(&mut gpu, &cube, chunking)
            .unwrap();
        assert!(isa.chunks > 1, "test must actually chunk");
        assert_eq!(isa.mei.scores, clo.mei.scores, "bit-equal MEI streams");
        assert_eq!(isa.min_index, clo.min_index);
        assert_eq!(isa.max_index, clo.max_index);
        assert_eq!(isa.stats.passes, clo.stats.passes);
        assert_eq!(isa.stats.instructions, clo.stats.instructions);
    }

    #[test]
    fn pooled_chunks_do_not_multiply_allocations() {
        // height 12, 6-line chunks, halo 2 → two symmetric 8-line chunks:
        // the second chunk's textures all come from the pool.
        let cube = test_cube(10, 12, 8, 13);
        let se = StructuringElement::square(3).unwrap();
        let amc = GpuAmc::new(se, KernelMode::Closure);

        let mut gpu_one = Gpu::new(GpuProfile::geforce_7800gtx());
        let one = amc
            .run_with_chunking(&mut gpu_one, &cube, Chunking::new(12, 2))
            .unwrap();
        assert_eq!(one.chunks, 1);

        let mut gpu_two = Gpu::new(GpuProfile::geforce_7800gtx());
        let two = amc
            .run_with_chunking(&mut gpu_two, &cube, Chunking::new(6, 2))
            .unwrap();
        assert_eq!(two.chunks, 2);
        assert_eq!(two.mei.scores, one.mei.scores);

        assert!(
            gpu_two.texture_allocs() <= gpu_one.texture_allocs(),
            "two-chunk run allocated {} textures, one-chunk {}",
            gpu_two.texture_allocs(),
            gpu_one.texture_allocs()
        );
        assert!(gpu_two.pool_hits() > 0, "second chunk must reuse the pool");
    }

    #[test]
    fn isa_kernels_verify_once_across_chunks() {
        let cube = test_cube(8, 10, 6, 31);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
        // Unfused: the fused schedule runs distinct per-geometry programs,
        // so only the oracle has exactly six unique kernels.
        let mut amc = GpuAmc::new(se, KernelMode::Isa);
        amc.set_fusion(false);
        let out = amc
            .run_with_chunking(&mut gpu, &cube, Chunking::new(4, 2))
            .unwrap();
        assert!(out.chunks > 1);
        // Six kernels, each dataflow-verified exactly once per device; every
        // further pass in every chunk hits the verification cache.
        assert_eq!(gpu.verifications(), 6);
        assert_eq!(
            gpu.verify_cache_hits(),
            out.stats.passes - 6,
            "all remaining passes must be cache hits"
        );
    }

    #[test]
    fn stage_breakdown_is_consistent_with_totals() {
        let cube = test_cube(6, 9, 9, 17);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se, KernelMode::Closure)
            .run_with_chunking(&mut gpu, &cube, Chunking::new(4, 2))
            .unwrap();
        let st = &out.stages;
        assert_eq!(st.total(), out.stats, "stage buckets must sum to totals");
        // Transfers live only in the transfer stages.
        assert_eq!(st.upload.bytes_uploaded, out.stats.bytes_uploaded);
        assert_eq!(st.download.bytes_downloaded, out.stats.bytes_downloaded);
        assert_eq!(st.upload.passes + st.download.passes, 0);
        // Shading lives only in the kernel stages, in the Fig. 4 structure:
        // groups=3, p_B=9 per chunk.
        let chunks = out.chunks as u64;
        assert_eq!(st.normalize.passes, chunks * (3 + 3));
        assert_eq!(st.distance.passes, chunks * 8 * 3);
        assert_eq!(st.minmax.passes, chunks * 9);
        assert_eq!(st.mei.passes, chunks * 3);
        assert!(st.normalize.fragments > 0 && st.mei.instructions > 0);
    }

    #[test]
    fn plan_chunking_fits_video_memory() {
        let se = StructuringElement::square(3).unwrap();
        let amc = GpuAmc::new(se, KernelMode::Closure);
        let gpu = Gpu::new(GpuProfile::fx5950_ultra());
        // Full AVIRIS frame: 2166 wide, 216 bands — must chunk.
        let cube_dims_bytes = amc.chunk_bytes(2166, 614, 216);
        assert!(cube_dims_bytes > gpu.profile().video_memory_bytes());
        let cube = test_cube(64, 32, 8, 5);
        let chunking = amc.plan_chunking(&gpu, &cube).unwrap();
        assert!(chunking.lines_per_chunk >= 1);
        assert_eq!(chunking.halo, 2);
    }

    #[test]
    fn plan_chunking_verifies_final_fit_and_reports_infeasible() {
        let se = StructuringElement::square(3).unwrap();
        let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
        // A profile so tiny even one line (plus its 4 halo lines) of a wide
        // cube cannot fit: structured error, not a bogus chunking. The old
        // halving probe would have returned lines=1 without re-checking.
        let mut profile = GpuProfile::fx5950_ultra();
        profile.video_memory_mib = 1;
        let gpu = Gpu::new(profile);
        let cube = test_cube(2048, 8, 64, 3);
        let err = amc.plan_chunking(&gpu, &cube).unwrap_err();
        match err {
            AmcError::ChunkingInfeasible {
                width,
                bands,
                required,
                budget,
            } => {
                assert_eq!(width, 2048);
                assert_eq!(bands, 64);
                assert_eq!(budget, 1 << 20);
                assert!(required > budget);
            }
            other => panic!("expected ChunkingInfeasible, got {other}"),
        }
        assert!(format!("{err}").contains("chunking infeasible"));

        // A budget that admits only small chunks: the plan must fit exactly,
        // and planning for a bigger budget never shrinks the chunk.
        let small = amc
            .plan_chunking_for_budget(amc.chunk_bytes(64, 9, 8), 64, 32, 8)
            .unwrap();
        let h = (small.lines_per_chunk + 2 * small.halo).min(32);
        assert!(amc.chunk_bytes(64, h, 8) <= amc.chunk_bytes(64, 9, 8));
        assert!(
            amc.chunk_bytes(64, h + 1, 8) > amc.chunk_bytes(64, 9, 8),
            "planned chunk must be the largest that fits"
        );
        let big = amc.plan_chunking_for_budget(usize::MAX, 64, 32, 8).unwrap();
        assert_eq!(big.lines_per_chunk, 32, "ample budget → one chunk");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(64))]
        #[test]
        fn plan_chunking_never_exceeds_budget(
            width in 1usize..96,
            height in 1usize..48,
            bands in 1usize..24,
            budget_kib in 1usize..512,
            se_side in 1usize..3,
        ) {
            let se = StructuringElement::square(2 * se_side + 1).unwrap();
            let amc = GpuAmc::new(se, KernelMode::Closure);
            let budget = budget_kib << 10;
            match amc.plan_chunking_for_budget(budget, width, height, bands) {
                Ok(chunking) => {
                    // Every chunk the plan produces must fit the budget.
                    let cube = Cube::zeros(
                        CubeDims::new(width, height, bands),
                        Interleave::Bip,
                    ).unwrap();
                    for chunk in cube.chunks(chunking) {
                        let ch = chunk.cube.dims().height;
                        proptest::prop_assert!(
                            amc.chunk_bytes(width, ch, bands) <= budget,
                            "chunk of {ch} lines exceeds budget {budget}"
                        );
                    }
                }
                Err(AmcError::ChunkingInfeasible { required, .. }) => {
                    // Infeasible must mean even one line cannot fit.
                    let min_h = (1 + 2 * amc.se().radius_y() * 2).min(height);
                    proptest::prop_assert!(required > budget);
                    proptest::prop_assert!(
                        amc.chunk_bytes(width, min_h, bands) > budget
                    );
                }
                Err(other) => return Err(proptest::test_runner::TestCaseError::Fail(
                    format!("unexpected error {other}"),
                )),
            }
        }
    }

    #[test]
    fn amc_contract_is_accepted_on_both_paper_gpus() {
        for profile in GpuProfile::paper_gpus() {
            let errors = check_amc_pipeline(&profile);
            assert!(errors.is_empty(), "on {}: {errors:?}", profile.name);
        }
    }

    #[test]
    fn amc_contract_rejects_deliberate_mismatches() {
        use gpu_sim::texture::AddressMode;
        let profile = GpuProfile::fx5950_ultra();

        // Wrong address mode on a halo-sampled resource.
        let (mut resources, stages) = amc_stage_contracts();
        resources
            .iter_mut()
            .find(|r| r.name == "norm")
            .unwrap()
            .mode = AddressMode::Repeat;
        let errors = opt::check_pipeline(&profile, &resources, &stages);
        assert!(
            errors.iter().any(|e| e.contains("requires address mode")),
            "{errors:?}"
        );

        // Feedback: a stage sampling its own render target.
        let (resources, mut stages) = amc_stage_contracts();
        stages[5].inputs[2].0 = "mei".into();
        let errors = opt::check_pipeline(&profile, &resources, &stages);
        assert!(
            errors.iter().any(|e| e.contains("renders into")),
            "{errors:?}"
        );

        // Misordered stages: normalize consumes `sum` before it exists.
        let (resources, mut stages) = amc_stage_contracts();
        stages.swap(0, 1);
        let errors = opt::check_pipeline(&profile, &resources, &stages);
        assert!(
            errors.iter().any(|e| e.contains("later stage")),
            "{errors:?}"
        );

        // Sampler-count drift between bindings and declared inputs.
        let (resources, mut stages) = amc_stage_contracts();
        stages[0].inputs.pop();
        let errors = opt::check_pipeline(&profile, &resources, &stages);
        assert!(
            errors.iter().any(|e| e.contains("sampler(s)")),
            "{errors:?}"
        );
    }

    #[test]
    fn five_by_five_se_works() {
        let cube = test_cube(11, 11, 5, 23);
        let se = StructuringElement::square(5).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let out = GpuAmc::new(se.clone(), KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        let (ref_mei, ref_min, ref_max) = reference_mei(&cube, &se);
        assert_close(&out.mei.scores, &ref_mei.scores, 1e-4, "mei5");
        assert_eq!(out.min_index, ref_min);
        assert_eq!(out.max_index, ref_max);
    }
}
