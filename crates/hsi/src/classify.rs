//! The complete Automated Morphological Classification (AMC) algorithm —
//! reference CPU implementation.
//!
//! This is the four-step unsupervised classifier of Section 3.1 of the paper:
//!
//! 1. initialize the MEI score image;
//! 2. slide the structuring element over every pixel, compute extended
//!    erosion/dilation and update MEI with the SID between the dilation and
//!    erosion pixels;
//! 3. select the `c` highest-MEI pixel vectors as endmembers and estimate
//!    per-pixel sub-pixel abundances with the standard linear mixture model;
//! 4. label each pixel with the class of its largest abundance fraction.
//!
//! The GPU stream implementation in `amc-core` accelerates steps 1–2 (the
//! O(p_f · p_B · N) morphological part, which dominates); this module is the
//! oracle its outputs are validated against.

use crate::cube::{Cube, Interleave};
use crate::endmember::{
    residual_ranking, select_endmembers, select_endmembers_atgp, spectra, Endmember,
    SelectionConfig,
};
use crate::error::Result;
use crate::morphology::{mei, normalize_cube, MeiImage, StructuringElement};
use crate::spectral::SpectralDistance;
use crate::unmix::{AbundanceConstraint, LinearMixtureModel};

/// How step 3 picks its `c` endmember pixels from the MEI image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMethod {
    /// Descending MEI with greedy pairwise-SID separation — the literal
    /// reading of the paper's step 3. Fragile when one material boundary
    /// dominates the MEI ranking (kept as an ablation).
    MeiGreedy,
    /// MEI-seeded residual-driven selection (ATGP, Chang 2003 — the paper's
    /// reference \[2\]); robust default.
    #[default]
    MeiAtgp,
}

/// AMC configuration.
#[derive(Debug, Clone)]
pub struct AmcConfig {
    /// Structuring element (the paper evaluates with 3×3).
    pub se: StructuringElement,
    /// Number of classes `c` to extract.
    pub classes: usize,
    /// Spectral distance driving the morphological ordering (paper: SID).
    pub distance: SpectralDistance,
    /// Abundance constraint for the mixture model.
    pub constraint: AbundanceConstraint,
    /// Minimum pairwise SID between selected endmembers
    /// ([`SelectionMethod::MeiGreedy`] only).
    pub min_endmember_sid: f32,
    /// Endmember selection strategy.
    pub selection: SelectionMethod,
    /// Iterations of class-mean endmember refinement after the initial
    /// classification (0 = the plain single-pass algorithm).
    pub refine_iterations: usize,
    /// Clusters smaller than this are considered starved during refinement
    /// and reseeded at high-residual pixels.
    pub min_cluster_pixels: usize,
}

impl AmcConfig {
    /// The paper's evaluation configuration: 3×3 SE, SID ordering.
    pub fn paper_default(classes: usize) -> Self {
        Self {
            se: StructuringElement::square(3).expect("3x3 SE is valid"),
            classes,
            distance: SpectralDistance::Sid,
            constraint: AbundanceConstraint::SumToOneNonNeg,
            min_endmember_sid: 1e-4,
            selection: SelectionMethod::MeiAtgp,
            refine_iterations: 5,
            min_cluster_pixels: 20,
        }
    }
}

/// Output of one AMC run.
#[derive(Debug, Clone)]
pub struct AmcOutput {
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// Row-major class label per pixel (index into `endmembers`).
    pub labels: Vec<u16>,
    /// The MEI score image of step 2.
    pub mei: MeiImage,
    /// Selected endmembers (step 3). May be fewer than requested when the
    /// scene lacks that many distinct signatures.
    pub endmembers: Vec<Endmember>,
}

impl AmcOutput {
    /// Label at `(x, y)`.
    pub fn label(&self, x: usize, y: usize) -> u16 {
        self.labels[y * self.width + x]
    }

    /// Number of classes actually used.
    pub fn class_count(&self) -> usize {
        self.endmembers.len()
    }
}

/// Timing breakdown of the CPU tail (steps 3–4), as reported by
/// [`AmcClassifier::classify_with_mei_timed`].
///
/// `selection_s` and `classify_s` are wall-clock seconds. `unmix_s` and
/// `argmax_s` come from the batched kernels' per-worker timers
/// ([`crate::unmix::BatchTimings`]) and are summed across worker threads: at
/// one worker `unmix_s + argmax_s ≈ classify_s`, at `n` workers the sum can
/// exceed the wall figure because it counts total CPU work.
#[derive(Debug, Clone, Copy, Default)]
pub struct TailBreakdown {
    /// Endmember selection, refinement bookkeeping and reseeding (wall).
    pub selection_s: f64,
    /// Model fitting plus the abundance GEMM + constraint fix-up (CPU, summed
    /// across workers).
    pub unmix_s: f64,
    /// The batched classification calls end to end (wall).
    pub classify_s: f64,
    /// Per-pixel argmax label assignment (CPU, summed across workers).
    pub argmax_s: f64,
}

/// The reference AMC classifier.
#[derive(Debug, Clone)]
pub struct AmcClassifier {
    config: AmcConfig,
}

impl AmcClassifier {
    /// Create a classifier with the given configuration.
    pub fn new(config: AmcConfig) -> Self {
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &AmcConfig {
        &self.config
    }

    /// Run the full AMC pipeline on a cube.
    pub fn classify(&self, cube: &Cube) -> Result<AmcOutput> {
        let normalized = normalize_cube(cube);
        let (mei_img, _morph) = mei(&normalized, &self.config.se, self.config.distance);
        self.classify_with_mei(cube, mei_img)
    }

    /// Run steps 3–4 given a precomputed MEI image (e.g. produced by the GPU
    /// pipeline). This is the CPU tail of the hybrid CPU/GPU partitioning.
    pub fn classify_with_mei(&self, cube: &Cube, mei_img: MeiImage) -> Result<AmcOutput> {
        self.classify_with_mei_timed(cube, mei_img)
            .map(|(out, _)| out)
    }

    /// [`AmcClassifier::classify_with_mei`] plus a [`TailBreakdown`] of where
    /// the tail time went.
    pub fn classify_with_mei_timed(
        &self,
        cube: &Cube,
        mei_img: MeiImage,
    ) -> Result<(AmcOutput, TailBreakdown)> {
        use std::time::Instant;
        let mut tail = TailBreakdown::default();

        let span = trace::span("tail", "selection");
        let t = Instant::now();
        let mut endmembers = match self.config.selection {
            SelectionMethod::MeiGreedy => select_endmembers(
                cube,
                &mei_img,
                SelectionConfig {
                    count: self.config.classes,
                    min_sid: self.config.min_endmember_sid,
                },
            )?,
            SelectionMethod::MeiAtgp => {
                select_endmembers_atgp(cube, &mei_img, self.config.classes)?
            }
        };
        tail.selection_s += t.elapsed().as_secs_f64();
        drop(span);

        let dims = cube.dims();
        let bip = cube.to_interleave(Interleave::Bip);
        let span = trace::span("tail", "unmix");
        let t = Instant::now();
        let mut model = LinearMixtureModel::new(&spectra(&endmembers))?;
        tail.unmix_s += t.elapsed().as_secs_f64();
        drop(span);
        let span = trace::span("tail", "classify");
        let t = Instant::now();
        let (mut labels, timings) =
            model.classify_cube_batched_timed(&bip, self.config.constraint)?;
        let d = t.elapsed();
        tail.classify_s += d.as_secs_f64();
        trace::metrics::observe("tail.classify_wall", d);
        drop(span);
        tail.unmix_s += timings.unmix_s;
        tail.argmax_s += timings.argmax_s;

        // Endmember refinement: replace each populated cluster's endmember
        // with its class-mean spectrum (averaging out per-pixel mixing and
        // noise); reseed starved clusters at the least-explained pixels.
        for _ in 0..self.config.refine_iterations {
            let span = trace::span("tail", "selection");
            let t = Instant::now();
            let c = endmembers.len();
            let mut sums = vec![vec![0.0f64; dims.bands]; c];
            let mut counts = vec![0u64; c];
            for (i, px) in bip.data().chunks_exact(dims.bands).enumerate() {
                let l = labels[i] as usize;
                for (s, &v) in sums[l].iter_mut().zip(px) {
                    *s += v as f64;
                }
                counts[l] += 1;
            }
            let mut starved = Vec::new();
            for k in 0..c {
                if counts[k] >= self.config.min_cluster_pixels as u64 {
                    endmembers[k].spectrum = sums[k]
                        .iter()
                        .map(|v| (*v / counts[k] as f64) as f32)
                        .collect();
                } else {
                    starved.push(k);
                }
            }
            if !starved.is_empty() {
                let interim = LinearMixtureModel::new(&spectra(&endmembers))?;
                let ranked = residual_ranking(&bip, &interim);
                // Spread reseeds across distinct high-residual sites.
                let stride = (ranked.len() / (starved.len() * 8)).clamp(1, 50);
                for (j, &k) in starved.iter().enumerate() {
                    let (_, x, y) = ranked[(j * stride).min(ranked.len() - 1)];
                    endmembers[k].x = x;
                    endmembers[k].y = y;
                    endmembers[k].score = mei_img.get(x, y);
                    endmembers[k].spectrum = cube.pixel(x, y);
                }
            }
            tail.selection_s += t.elapsed().as_secs_f64();
            drop(span);
            let span = trace::span("tail", "unmix");
            let t = Instant::now();
            model = LinearMixtureModel::new(&spectra(&endmembers))?;
            tail.unmix_s += t.elapsed().as_secs_f64();
            drop(span);
            let span = trace::span("tail", "classify");
            let t = Instant::now();
            let (new_labels, timings) =
                model.classify_cube_batched_timed(&bip, self.config.constraint)?;
            let d = t.elapsed();
            tail.classify_s += d.as_secs_f64();
            trace::metrics::observe("tail.classify_wall", d);
            drop(span);
            tail.unmix_s += timings.unmix_s;
            tail.argmax_s += timings.argmax_s;
            labels = new_labels;
        }

        let out = AmcOutput {
            width: dims.width,
            height: dims.height,
            labels,
            mei: mei_img,
            endmembers,
        };
        Ok((out, tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{CubeDims, Interleave};

    /// A scene of two vertical half-planes of distinct materials with a
    /// boundary in the middle.
    fn half_plane_cube() -> Cube {
        let a = [100.0f32, 10.0, 10.0];
        let b = [10.0f32, 10.0, 100.0];
        Cube::from_fn(CubeDims::new(10, 6, 3), Interleave::Bip, |x, _, band| {
            if x < 5 {
                a[band]
            } else {
                b[band]
            }
        })
        .unwrap()
    }

    #[test]
    fn paper_default_config() {
        let cfg = AmcConfig::paper_default(30);
        assert_eq!(cfg.classes, 30);
        assert_eq!(cfg.se.extent(), (3, 3));
        assert_eq!(cfg.distance, SpectralDistance::Sid);
    }

    #[test]
    fn amc_separates_two_materials() {
        let cube = half_plane_cube();
        let amc = AmcClassifier::new(AmcConfig::paper_default(2));
        let out = amc.classify(&cube).unwrap();
        assert_eq!(out.class_count(), 2);
        assert_eq!(out.width, 10);
        assert_eq!(out.height, 6);
        // All pixels on the same side share a label, and the two sides differ.
        let left = out.label(0, 0);
        let right = out.label(9, 0);
        assert_ne!(left, right);
        for y in 0..6 {
            for x in 0..4 {
                assert_eq!(out.label(x, y), left, "({x},{y})");
            }
            for x in 6..10 {
                assert_eq!(out.label(x, y), right, "({x},{y})");
            }
        }
    }

    #[test]
    fn mei_concentrates_on_material_boundary() {
        let cube = half_plane_cube();
        let amc = AmcClassifier::new(AmcConfig::paper_default(2));
        let out = amc.classify(&cube).unwrap();
        // Boundary windows (x in 4..=5) have high MEI; interiors near zero.
        let boundary = out.mei.get(4, 3).max(out.mei.get(5, 3));
        assert!(boundary > 1e-3);
        assert!(out.mei.get(0, 3) < 1e-6);
        assert!(out.mei.get(9, 3) < 1e-6);
    }

    #[test]
    fn endmembers_come_from_opposite_materials() {
        let cube = half_plane_cube();
        let amc = AmcClassifier::new(AmcConfig::paper_default(2));
        let out = amc.classify(&cube).unwrap();
        let sides: Vec<bool> = out.endmembers.iter().map(|e| e.x < 5).collect();
        assert_ne!(sides[0], sides[1], "endmembers should span both materials");
    }

    #[test]
    fn classify_with_external_mei_matches_full_run() {
        let cube = half_plane_cube();
        let amc = AmcClassifier::new(AmcConfig::paper_default(2));
        let full = amc.classify(&cube).unwrap();
        let normalized = normalize_cube(&cube);
        let (mei_img, _) = mei(&normalized, &amc.config().se, SpectralDistance::Sid);
        let hybrid = amc.classify_with_mei(&cube, mei_img).unwrap();
        assert_eq!(full.labels, hybrid.labels);
    }

    #[test]
    fn degenerate_scene_still_classifies() {
        // One material only: AMC degrades to a single class.
        let cube = Cube::from_fn(CubeDims::new(5, 5, 3), Interleave::Bip, |_, _, b| {
            (10 * (b + 1)) as f32
        })
        .unwrap();
        let amc = AmcClassifier::new(AmcConfig::paper_default(3));
        let out = amc.classify(&cube).unwrap();
        assert_eq!(out.class_count(), 1);
        assert!(out.labels.iter().all(|&l| l == 0));
    }
}
