!!FP1.0 fix-const-conflict
# The pass also binds C0, so this DEF value is shadowed at draw time.
DEF C0, 0.5, 0.5, 0.5, 0.5
TEX R0, T0, tex0
MUL R1, R0, C0
MOV OC, R1
