//! Property tests for the verifier/interpreter contract.
//!
//! The load-bearing property: any program [`verify`] accepts for a pass
//! context must run through [`interp::execute`] without panicking — the
//! interpreter indexes register files and sampler slots directly, so the
//! verifier's structural and binding errors are exactly what stands
//! between a bad program and an out-of-bounds index.

use gpu_sim::interp::{
    execute, execute_lowered, execute_lowered_batch, lower, resolve_constants, FragmentInput,
};
use gpu_sim::isa::{ConstDef, Dst, Instr, Opcode, Program, Reg, Src, Swizzle, NUM_OUTPUTS};
use gpu_sim::texcache::TextureCache;
use gpu_sim::texture::Texture2D;
use gpu_sim::verify::{has_errors, verify, PassBindings};
use gpu_sim::GpuProfile;
use proptest::prelude::*;

const OPS: [Opcode; 21] = [
    Opcode::Mov,
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Mad,
    Opcode::Min,
    Opcode::Max,
    Opcode::Rcp,
    Opcode::Rsq,
    Opcode::Ex2,
    Opcode::Lg2,
    Opcode::Frc,
    Opcode::Flr,
    Opcode::Abs,
    Opcode::Slt,
    Opcode::Sge,
    Opcode::Cmp,
    Opcode::Lrp,
    Opcode::Dp3,
    Opcode::Dp4,
    Opcode::Tex,
];

/// Raw generated form of one instruction; decoded by [`decode_instr`].
type RawInstr = ((usize, u8, u8), (u16, u16, u16), u32, u8, bool);

/// Source register universe: mixes valid and invalid indices so the
/// verifier's rejection paths are exercised alongside its accept path.
fn src_reg(code: u16) -> Reg {
    let idx = code / 4;
    match code % 4 {
        0 => Reg::Temp((idx % 8) as u8),
        1 => Reg::Const((idx % 4) as u8),
        2 => Reg::TexCoord((idx % 4) as u8),
        _ => Reg::Output((idx % 4) as u8),
    }
}

fn decode_instr(raw: &RawInstr) -> Instr {
    let ((op_idx, dst_code, mask), (s0, s1, s2), swz, sampler_code, negate) = *raw;
    let op = OPS[op_idx % OPS.len()];
    let dst_reg = if dst_code < 18 {
        Reg::Temp(dst_code) // 16 and 17 are out of range on purpose
    } else {
        Reg::Output(dst_code - 18) // 22..23 map past O3
    };
    let srcs = [s0, s1, s2][..op.arity()]
        .iter()
        .enumerate()
        .map(|(si, &code)| Src {
            reg: src_reg(code),
            swizzle: Swizzle([
                ((swz >> (8 * si)) & 3) as u8,
                ((swz >> (8 * si + 2)) & 3) as u8,
                ((swz >> (8 * si + 4)) & 3) as u8,
                ((swz >> (8 * si + 6)) & 3) as u8,
            ]),
            negate: negate && si == 0,
        })
        .collect();
    let sampler = if op == Opcode::Tex {
        // 9 encodes a TEX with no sampler at all (malformed).
        (sampler_code != 9).then_some(sampler_code)
    } else {
        None
    };
    Instr {
        op,
        dst: Dst {
            reg: dst_reg,
            mask: [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0, mask & 8 != 0],
            saturate: mask == 0,
        },
        srcs,
        sampler,
        line: 0,
    }
}

/// The pass context every generated program is checked and executed under:
/// two textures, two coordinate sets, `C1` pass-bound, `O0` read back.
fn pass() -> PassBindings {
    PassBindings {
        samplers: 2,
        texcoord_sets: 2,
        constants: vec![1],
        outputs_read: [true, false, false, false],
    }
}

fn build_program(body: Vec<Instr>, with_prologue: bool) -> Program {
    let mut instrs = Vec::new();
    if with_prologue {
        // Define R0..R3 and guarantee an output write, so a useful share of
        // generated programs survives verification.
        let prologue = "TEX R0, T0, tex0\nMOV R1, T1\nMOV R2, R0\nMOV R3, T0\n";
        instrs.extend(gpu_sim::asm::assemble(prologue).unwrap().instrs);
    }
    instrs.extend(body);
    if with_prologue {
        instrs.extend(gpu_sim::asm::assemble("MOV OC, R0\n").unwrap().instrs);
    }
    for i in &mut instrs {
        i.line = 0;
    }
    Program {
        name: "prop".into(),
        defs: vec![ConstDef {
            index: 0,
            value: [0.5, 0.25, 1.0, 2.0],
            line: 0,
        }],
        instrs,
    }
}

fn raw_instr_strategy() -> impl Strategy<Value = RawInstr> {
    (
        (0usize..OPS.len(), 0u8..24, 0u8..16),
        (0u16..256, 0u16..256, 0u16..256),
        0u32..(1 << 24),
        0u8..10,
        any::<bool>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn verify_accepted_programs_execute_without_panicking(
        body in prop::collection::vec(raw_instr_strategy(), 0..10),
    ) {
        let program = build_program(body.iter().map(decode_instr).collect(), true);
        let profile = GpuProfile::fx5950_ultra();
        let bindings = pass();
        let diags = verify(&program, &profile, Some(&bindings));
        if has_errors(&diags) {
            return Ok(()); // rejected before execution, as run_pass would do
        }
        let t0 = Texture2D::from_flat(4, 4, &vec![0.25f32; 64]);
        let t1 = Texture2D::from_flat(4, 4, &vec![0.0f32; 64]);
        let constants = resolve_constants(&program, &[(1, [0.75, 0.5, 0.25, 1.0])]);
        let out = execute(
            &program,
            &FragmentInput::zero(),
            &constants,
            &[&t0, &t1],
            None,
        );
        prop_assert_eq!(out.instructions, program.len() as u64);
    }

    #[test]
    fn lowering_is_bit_identical_to_interpretation(
        body in prop::collection::vec(raw_instr_strategy(), 0..10),
        uv in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0), 4),
    ) {
        // The pre-lowered form (folded constants, resolved swizzle tables,
        // lane masks) must reproduce the decode-per-fragment interpreter
        // bit for bit on every program the verifier accepts.
        let program = build_program(body.iter().map(decode_instr).collect(), true);
        let bindings = pass();
        if has_errors(&verify(&program, &GpuProfile::fx5950_ultra(), Some(&bindings))) {
            return Ok(());
        }
        let t0_data: Vec<f32> = (0..64).map(|i| i as f32 * 0.125 - 2.0).collect();
        let t1_data: Vec<f32> = (0..64).map(|i| (i * 7 % 13) as f32 * 0.5).collect();
        let t0 = Texture2D::from_flat(4, 4, &t0_data);
        let t1 = Texture2D::from_flat(4, 4, &t1_data);
        let constants = resolve_constants(&program, &[(1, [0.75, -0.5, 0.25, 3.0])]);
        let lowered = lower(&program, &constants);
        for &(u, v) in &uv {
            let mut input = FragmentInput::zero();
            input.texcoords[0] = [u, v, 0.0, 1.0];
            input.texcoords[1] = [v, u, 0.0, 1.0];
            let a = execute(&program, &input, &constants, &[&t0, &t1], None);
            let b = execute_lowered(&lowered, &input, &[&t0, &t1], None);
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert_eq!(a.texel_fetches, b.texel_fetches);
            for (ca, cb) in a.colors.iter().zip(b.colors.iter()) {
                // Bit equality, so NaN payloads and signed zeros count too.
                prop_assert_eq!(ca.map(f32::to_bits), cb.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn optimized_programs_are_bit_identical_and_verify_clean(
        body in prop::collection::vec(raw_instr_strategy(), 0..10),
        uv in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0), 4),
    ) {
        // The whole pass pipeline (constant folding, copy/swizzle
        // propagation, CSE, fusion, DCE, output coalescing) must be
        // exact-preserving on every verifier-accepted program: the
        // optimized program's read-back colors equal the unoptimized
        // interpreter's bit for bit, and the result still verifies with
        // no errors under the same pass context.
        let program = build_program(body.iter().map(decode_instr).collect(), true);
        let bindings = pass();
        let profile = GpuProfile::fx5950_ultra();
        if has_errors(&verify(&program, &profile, Some(&bindings))) {
            return Ok(());
        }
        let (optimized, report) = gpu_sim::optimize(&program, &bindings);
        prop_assert!(optimized.len() <= program.len());
        prop_assert_eq!(report.before, program.len());
        prop_assert_eq!(report.after, optimized.len());
        let diags = verify(&optimized, &profile, Some(&bindings));
        prop_assert!(
            !has_errors(&diags),
            "optimized program fails verify: {:?}\nraw:\n{}\noptimized:\n{}",
            diags, program.to_asm(), optimized.to_asm()
        );
        let t0_data: Vec<f32> = (0..64).map(|i| i as f32 * 0.125 - 2.0).collect();
        let t1_data: Vec<f32> = (0..64).map(|i| (i * 7 % 13) as f32 * 0.5).collect();
        let t0 = Texture2D::from_flat(4, 4, &t0_data);
        let t1 = Texture2D::from_flat(4, 4, &t1_data);
        let pass_consts = [(1, [0.75f32, -0.5, 0.25, 3.0])];
        let raw_consts = resolve_constants(&program, &pass_consts);
        let opt_consts = resolve_constants(&optimized, &pass_consts);
        for &(u, v) in &uv {
            let mut input = FragmentInput::zero();
            input.texcoords[0] = [u, v, 0.0, 1.0];
            input.texcoords[1] = [v, u, 0.0, 1.0];
            let a = execute(&program, &input, &raw_consts, &[&t0, &t1], None);
            let b = execute(&optimized, &input, &opt_consts, &[&t0, &t1], None);
            // Only the colors the pass reads back are contractual — dead
            // outputs are exactly what the optimizer deletes.
            for (o, read) in bindings.outputs_read.iter().enumerate() {
                if *read {
                    prop_assert!(
                        a.colors[o].map(f32::to_bits) == b.colors[o].map(f32::to_bits),
                        "O{} diverges at uv ({}, {})\nraw:\n{}\noptimized:\n{}",
                        o, u, v, program.to_asm(), optimized.to_asm()
                    );
                }
            }
        }
    }

    #[test]
    fn batched_execution_is_bit_identical_to_scalar(
        body in prop::collection::vec(raw_instr_strategy(), 0..10),
        uv in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0), 11),
    ) {
        // The batched SoA executor must reproduce the per-fragment oracle
        // bit for bit on every verifier-accepted program: colors,
        // instruction and fetch totals, AND the texture-cache hit/miss
        // counters (the batch path records TEX touches instruction-major
        // and replays them fragment-major). 11 fragments = one full 8-lane
        // chunk plus a ragged tail.
        let program = build_program(body.iter().map(decode_instr).collect(), true);
        let bindings = pass();
        if has_errors(&verify(&program, &GpuProfile::fx5950_ultra(), Some(&bindings))) {
            return Ok(());
        }
        let t0_data: Vec<f32> = (0..64).map(|i| i as f32 * 0.125 - 2.0).collect();
        let t1_data: Vec<f32> = (0..64).map(|i| (i * 7 % 13) as f32 * 0.5).collect();
        let t0 = Texture2D::from_flat(4, 4, &t0_data);
        let t1 = Texture2D::from_flat(4, 4, &t1_data);
        let constants = resolve_constants(&program, &[(1, [0.75, -0.5, 0.25, 3.0])]);
        // Batch-schedule the program the way the device does before
        // lowering, so the proptest covers the scheduler's reordering too.
        let scheduled = gpu_sim::schedule_for_batch(&program);
        prop_assert_eq!(scheduled.len(), program.len());
        let lowered = lower(&scheduled, &constants);
        let inputs: Vec<FragmentInput> = uv.iter().map(|&(u, v)| {
            let mut input = FragmentInput::zero();
            input.texcoords[0] = [u, v, 0.0, 1.0];
            input.texcoords[1] = [v, u, 0.0, 1.0];
            input
        }).collect();
        // A tiny cache geometry so replay-order mistakes actually change
        // hit/miss counts instead of hiding in a large cache.
        let mut scalar_cache = TextureCache::new(1, 2);
        let mut batch_cache = TextureCache::new(1, 2);
        let mut scalar_instr = 0u64;
        let mut scalar_fetches = 0u64;
        let mut scalar_colors = Vec::with_capacity(inputs.len());
        for input in &inputs {
            let r = execute_lowered(&lowered, input, &[&t0, &t1], Some(&mut scalar_cache));
            scalar_instr += r.instructions;
            scalar_fetches += r.texel_fetches;
            scalar_colors.push(r.colors);
        }
        let mut batch_colors = vec![[[0.0f32; 4]; NUM_OUTPUTS]; inputs.len()];
        let (instr, fetches) = execute_lowered_batch(
            &lowered, &inputs, &[&t0, &t1], Some(&mut batch_cache), &mut batch_colors,
        );
        prop_assert_eq!(instr, scalar_instr);
        prop_assert_eq!(fetches, scalar_fetches);
        prop_assert!(
            (batch_cache.hits(), batch_cache.misses())
                == (scalar_cache.hits(), scalar_cache.misses()),
            "cache replay diverged:\n{}", scheduled.to_asm()
        );
        for (a, b) in scalar_colors.iter().zip(&batch_colors) {
            for (ca, cb) in a.iter().zip(b.iter()) {
                prop_assert_eq!(ca.map(f32::to_bits), cb.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn batch_scheduling_is_exact_and_pins_tex_order(
        body in prop::collection::vec(raw_instr_strategy(), 0..10),
        uv in prop::collection::vec((0.0f32..1.0, 0.0f32..1.0), 4),
    ) {
        // schedule_for_batch must be count-preserving, keep the TEX chain
        // in program order (the fetch-order contract), and leave every
        // observable of scalar execution — all four output registers and
        // the cache traffic — bit-identical.
        let program = build_program(body.iter().map(decode_instr).collect(), true);
        let bindings = pass();
        if has_errors(&verify(&program, &GpuProfile::fx5950_ultra(), Some(&bindings))) {
            return Ok(());
        }
        let scheduled = gpu_sim::schedule_for_batch(&program);
        prop_assert_eq!(scheduled.len(), program.len());
        let tex_chain = |p: &Program| p.instrs.iter()
            .filter(|i| i.op == Opcode::Tex)
            .map(|i| format!("{i}"))
            .collect::<Vec<_>>();
        prop_assert_eq!(tex_chain(&scheduled), tex_chain(&program));
        let t0 = Texture2D::from_flat(4, 4, &(0..64).map(|i| i as f32 * 0.125 - 2.0).collect::<Vec<_>>());
        let t1 = Texture2D::from_flat(4, 4, &(0..64).map(|i| (i * 7 % 13) as f32 * 0.5).collect::<Vec<_>>());
        let constants = resolve_constants(&program, &[(1, [0.75, -0.5, 0.25, 3.0])]);
        let sched_consts = resolve_constants(&scheduled, &[(1, [0.75, -0.5, 0.25, 3.0])]);
        let mut ca = TextureCache::new(1, 2);
        let mut cb = TextureCache::new(1, 2);
        for &(u, v) in &uv {
            let mut input = FragmentInput::zero();
            input.texcoords[0] = [u, v, 0.0, 1.0];
            input.texcoords[1] = [v, u, 0.0, 1.0];
            let a = execute(&program, &input, &constants, &[&t0, &t1], Some(&mut ca));
            let b = execute(&scheduled, &input, &sched_consts, &[&t0, &t1], Some(&mut cb));
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert_eq!(a.texel_fetches, b.texel_fetches);
            for (x, y) in a.colors.iter().zip(b.colors.iter()) {
                prop_assert!(
                    x.map(f32::to_bits) == y.map(f32::to_bits),
                    "scheduling changed results\nraw:\n{}\nscheduled:\n{}",
                    program.to_asm(), scheduled.to_asm()
                );
            }
        }
        prop_assert_eq!((ca.hits(), ca.misses()), (cb.hits(), cb.misses()));
    }

    #[test]
    fn verify_never_panics_and_is_deterministic(
        body in prop::collection::vec(raw_instr_strategy(), 0..12),
    ) {
        // No prologue: wild programs, including structurally broken ones.
        let program = build_program(body.iter().map(decode_instr).collect(), false);
        for profile in GpuProfile::paper_gpus() {
            let a = verify(&program, &profile, Some(&pass()));
            let b = verify(&program, &profile, Some(&pass()));
            prop_assert_eq!(&a, &b);
            let lint = verify(&program, &profile, None);
            let relint = verify(&program, &profile, None);
            prop_assert_eq!(&lint, &relint);
        }
    }
}

#[test]
fn generated_accept_rate_is_nonzero() {
    // Make sure the main property is not vacuous: the fixed prologue alone
    // (an empty body) must be accepted under the pass context.
    let program = build_program(Vec::new(), true);
    let diags = verify(&program, &GpuProfile::fx5950_ultra(), Some(&pass()));
    assert!(!has_errors(&diags), "{diags:?}");
}
