//! Principal-component analysis over the spectral dimension.
//!
//! The morphological-classification literature the paper builds on (its
//! reference \[11\]) pairs extended morphology with dimensionality
//! reduction; PCA is the standard instrument. This module computes the band
//! covariance matrix of a cube, eigendecomposes it with a cyclic Jacobi
//! sweep (self-contained, adequate for the ≤ a-few-hundred-band matrices
//! hyperspectral work needs), and projects cubes onto the leading
//! components.

use crate::cube::{Cube, CubeDims, Interleave};
use crate::error::{HsiError, Result};
use crate::linalg::Matrix;

/// Band mean vector of a cube.
pub fn band_means(cube: &Cube) -> Vec<f64> {
    let dims = cube.dims();
    let mut means = vec![0.0f64; dims.bands];
    let bip = cube.to_interleave(Interleave::Bip);
    for px in bip.data().chunks_exact(dims.bands) {
        for (m, &v) in means.iter_mut().zip(px) {
            *m += v as f64;
        }
    }
    let n = dims.pixels() as f64;
    means.iter_mut().for_each(|m| *m /= n);
    means
}

/// Band covariance matrix (bands × bands, symmetric PSD).
pub fn band_covariance(cube: &Cube) -> Matrix {
    let dims = cube.dims();
    let means = band_means(cube);
    let bip = cube.to_interleave(Interleave::Bip);
    let b = dims.bands;
    let mut cov = Matrix::zeros(b, b);
    let mut centred = vec![0.0f64; b];
    for px in bip.data().chunks_exact(b) {
        for ((c, &v), &m) in centred.iter_mut().zip(px).zip(&means) {
            *c = v as f64 - m;
        }
        for i in 0..b {
            let ci = centred[i];
            for j in i..b {
                cov[(i, j)] += ci * centred[j];
            }
        }
    }
    let n = dims.pixels().max(2) as f64 - 1.0;
    for i in 0..b {
        for j in i..b {
            let v = cov[(i, j)] / n;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvector `k` is column `k` of the returned matrix.
pub fn symmetric_eigen(a: &Matrix) -> Result<(Vec<f64>, Matrix)> {
    if a.rows() != a.cols() {
        return Err(HsiError::ShapeMismatch {
            left: a.shape(),
            right: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
        }
        s
    };
    let scale: f64 = (0..n).map(|i| a[(i, i)].abs()).fold(1.0, f64::max);
    let tol = 1e-22 * scale * scale * (n * n) as f64;
    for _sweep in 0..100 {
        if off(&m) <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ): M ← GᵀMG, V ← VG.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Extract and sort.
    let mut order: Vec<usize> = (0..n).collect();
    let eig: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| {
        eig[j]
            .partial_cmp(&eig[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values: Vec<f64> = order.iter().map(|&i| eig[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok((values, vectors))
}

/// A fitted PCA transform over the spectral dimension.
#[derive(Debug, Clone)]
pub struct Pca {
    means: Vec<f64>,
    /// bands × components projection basis (leading eigenvectors).
    basis: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fit a PCA with `components` leading principal components.
    pub fn fit(cube: &Cube, components: usize) -> Result<Pca> {
        let bands = cube.dims().bands;
        if components == 0 || components > bands {
            return Err(HsiError::InvalidClassCount {
                requested: components,
                available: bands,
            });
        }
        let cov = band_covariance(cube);
        let (values, vectors) = symmetric_eigen(&cov)?;
        let mut basis = Matrix::zeros(bands, components);
        for c in 0..components {
            for r in 0..bands {
                basis[(r, c)] = vectors[(r, c)];
            }
        }
        Ok(Pca {
            means: band_means(cube),
            basis,
            eigenvalues: values,
        })
    }

    /// Number of retained components.
    pub fn components(&self) -> usize {
        self.basis.cols()
    }

    /// All eigenvalues of the band covariance (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_variance(&self) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|v| v.max(0.0)).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues[..self.components()]
            .iter()
            .map(|v| v.max(0.0))
            .sum::<f64>()
            / total
    }

    /// Project one pixel onto the retained components.
    pub fn project_pixel(&self, pixel: &[f32]) -> Result<Vec<f32>> {
        if pixel.len() != self.means.len() {
            return Err(HsiError::DimensionMismatch {
                expected: self.means.len(),
                actual: pixel.len(),
            });
        }
        let mut out = vec![0.0f32; self.components()];
        for (c, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for (b, (&v, &m)) in pixel.iter().zip(&self.means).enumerate() {
                acc += (v as f64 - m) * self.basis[(b, c)];
            }
            *slot = acc as f32;
        }
        Ok(out)
    }

    /// Project a whole cube, producing a `components`-band cube.
    pub fn project_cube(&self, cube: &Cube) -> Result<Cube> {
        let dims = cube.dims();
        if dims.bands != self.means.len() {
            return Err(HsiError::DimensionMismatch {
                expected: self.means.len(),
                actual: dims.bands,
            });
        }
        let bip = cube.to_interleave(Interleave::Bip);
        let k = self.components();
        let mut data = Vec::with_capacity(dims.pixels() * k);
        for px in bip.data().chunks_exact(dims.bands) {
            data.extend(self.project_pixel(px)?);
        }
        Cube::from_vec(
            CubeDims::new(dims.width, dims.height, k),
            Interleave::Bip,
            data,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_direction_cube() -> Cube {
        // Pixels vary along two orthogonal spectral directions with very
        // different variances; a third direction carries none.
        let d1 = [1.0f64, 1.0, 0.0, 0.0];
        let d2 = [0.0f64, 0.0, 1.0, -1.0];
        let base = [100.0f64, 100.0, 100.0, 100.0];
        Cube::from_fn(CubeDims::new(16, 16, 4), Interleave::Bip, |x, y, b| {
            let a = (x as f64 - 7.5) * 10.0; // strong direction
            let c = (y as f64 - 7.5) * 1.0; // weak direction
            (base[b] + a * d1[b] + c * d2[b]) as f32
        })
        .unwrap()
    }

    #[test]
    fn band_means_and_covariance_basics() {
        let cube = two_direction_cube();
        let means = band_means(&cube);
        for m in &means {
            assert!((m - 100.0).abs() < 1e-6, "{means:?}");
        }
        let cov = band_covariance(&cube);
        // Bands 0 and 1 move together; 2 and 3 oppose each other.
        assert!(cov[(0, 1)] > 0.0);
        assert!(cov[(2, 3)] < 0.0);
        assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-12, "symmetric");
    }

    #[test]
    fn jacobi_recovers_known_eigensystem() {
        // A = diag(4, 1) rotated by 45°: eigenvalues 4 and 1.
        let a = Matrix::from_rows(2, 2, &[2.5, 1.5, 1.5, 2.5]).unwrap();
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert!((vals[0] - 4.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Leading eigenvector is (1,1)/√2 up to sign.
        let (v0, v1) = (vecs[(0, 0)], vecs[(1, 0)]);
        assert!((v0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!(
            (v0 - v1).abs() < 1e-9,
            "components equal for (1,1) direction"
        );
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let a =
            Matrix::from_rows(3, 3, &[4.0, 1.0, 0.5, 1.0, 3.0, -0.25, 0.5, -0.25, 2.0]).unwrap();
        let (vals, vecs) = symmetric_eigen(&a).unwrap();
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
        // VᵀV = I.
        let vtv = vecs.transpose().matmul(&vecs).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-9, "({i},{j})");
            }
        }
        // A v = λ v for the leading pair.
        let v0: Vec<f64> = (0..3).map(|r| vecs[(r, 0)]).collect();
        let av = a.matvec(&v0).unwrap();
        for r in 0..3 {
            assert!((av[r] - vals[0] * v0[r]).abs() < 1e-8);
        }
    }

    #[test]
    fn pca_orders_components_by_variance() {
        let cube = two_direction_cube();
        let pca = Pca::fit(&cube, 2).unwrap();
        let vals = pca.eigenvalues();
        assert!(vals[0] > 50.0 * vals[1], "strong ≫ weak: {vals:?}");
        assert!(vals[2].abs() < 1e-6, "third direction carries no variance");
        assert!(pca.explained_variance() > 0.999);
    }

    #[test]
    fn projection_reduces_bands_and_preserves_structure() {
        let cube = two_direction_cube();
        let pca = Pca::fit(&cube, 1).unwrap();
        let reduced = pca.project_cube(&cube).unwrap();
        assert_eq!(reduced.dims().bands, 1);
        assert_eq!(reduced.dims().width, 16);
        // PC1 scores vary along x (the strong direction), constant along y.
        let p = |x: usize, y: usize| reduced.get(x, y, 0);
        assert!((p(0, 3) - p(0, 12)).abs() < 1e-3);
        assert!((p(0, 8) - p(15, 8)).abs() > 50.0);
    }

    #[test]
    fn projection_is_mean_centred() {
        let cube = two_direction_cube();
        let pca = Pca::fit(&cube, 2).unwrap();
        let reduced = pca.project_cube(&cube).unwrap();
        let mean0 = crate::stats::band_stats(&reduced, 0).mean;
        assert!(mean0.abs() < 1e-3, "PC scores centre on zero: {mean0}");
    }

    #[test]
    fn pca_validates_arguments() {
        let cube = two_direction_cube();
        assert!(Pca::fit(&cube, 0).is_err());
        assert!(Pca::fit(&cube, 5).is_err());
        let pca = Pca::fit(&cube, 2).unwrap();
        assert!(pca.project_pixel(&[1.0, 2.0]).is_err());
        let wrong = Cube::zeros(CubeDims::new(2, 2, 3), Interleave::Bip).unwrap();
        assert!(pca.project_cube(&wrong).is_err());
    }

    #[test]
    fn classification_survives_pca_reduction() {
        // AMC on a PCA-reduced two-material scene still separates the
        // materials — the dimensionality-reduction + morphology pipeline of
        // the paper's reference [11].
        let a = [100.0f32, 10.0, 10.0, 20.0, 40.0, 30.0];
        let b = [10.0f32, 10.0, 100.0, 20.0, 10.0, 60.0];
        let cube = Cube::from_fn(CubeDims::new(10, 6, 6), Interleave::Bip, |x, _, band| {
            if x < 5 {
                a[band]
            } else {
                b[band]
            }
        })
        .unwrap();
        let pca = Pca::fit(&cube, 3).unwrap();
        let reduced = pca.project_cube(&cube).unwrap();
        // Shift positive: AMC normalisation expects non-negative radiances.
        let min = reduced.data().iter().cloned().fold(f32::INFINITY, f32::min);
        let shifted = Cube::from_vec(
            reduced.dims(),
            Interleave::Bip,
            reduced.data().iter().map(|v| v - min + 1.0).collect(),
        )
        .unwrap();
        let amc = crate::classify::AmcClassifier::new(crate::classify::AmcConfig::paper_default(2));
        let out = amc.classify(&shifted).unwrap();
        assert_ne!(out.label(0, 3), out.label(9, 3));
    }
}
