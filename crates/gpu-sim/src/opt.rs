//! Lane-precise optimizing dataflow framework for the straight-line fp30 IR.
//!
//! The verifier ([`crate::verify`]) already computes lane-precise use/def
//! facts to diagnose programs; this module reuses the same per-lane machinery
//! ([`verify::read_lanes`], [`verify::dst_mask`]) to *transform* them. The
//! framework provides the classic straight-line analyses — backward
//! [`liveness`], forward [`reaching_defs`], and (internally) copy/constant
//! lattices and texture-fetch availability — plus a fixpoint pipeline of
//! **exact-preserving** rewrites driven by [`optimize`]:
//!
//! * constant folding/propagation into fresh `DEF`s,
//! * copy + swizzle propagation through non-saturating `MOV`s,
//! * common-subexpression elimination, including redundant `TEX` fetches
//!   with identical coordinate and unit,
//! * `MUL`+`ADD`→`MAD` and `MUL`+`DP4`(ones)→`DP4` fusion where
//!   bit-exactness is provable,
//! * dead-write-lane narrowing and dead-instruction elimination,
//! * coalescing a trailing `MOV O, R` by renaming `R`'s def range onto `O`,
//! * pruning `DEF`s left unread.
//!
//! Every rewrite preserves results *bit for bit* on the interpreter in
//! [`crate::interp`]: folding evaluates through the interpreter's own
//! [`interp::alu`]; `MAD` fusion is exact because the interpreter's `MAD` is
//! the unfused two-rounding `a*b + c`; dot fusion only fires against a
//! provable all-ones constant, and `x * 1.0` is the identity for every
//! finite, infinite, and NaN input the interpreter produces. Rewrites that
//! would *not* be exact (e.g. `x + 0.0`, which breaks `-0.0`) are never
//! attempted. See DESIGN.md §13 for the full exactness argument.
//!
//! The module also hosts the cross-pass static checker
//! ([`check_pipeline`]): a declarative producer→consumer contract over a
//! sequence of render passes, validating binding counts, address-mode
//! expectations, target-not-input, and stage ordering — groundwork for
//! render-graph fusion.

use crate::interp;
use crate::isa::{
    ConstDef, Dst, Instr, Opcode, Program, Reg, Src, Swizzle, NUM_CONSTS, NUM_OUTPUTS, NUM_TEMPS,
    NUM_TEXCOORDS,
};
use crate::texture::AddressMode;
use crate::verify::{self, PassBindings};
use crate::GpuProfile;
use std::fmt;

/// Fold a constant source operand against its resolved register value:
/// apply the swizzle, then the negate — exactly the order the interpreter
/// uses at runtime, so folded immediates are bit-identical to a live read.
///
/// This is the single definition of constant folding in the crate;
/// [`crate::interp::lower`] routes its `DEF`+pass-constant folding through
/// it as well.
pub fn fold_const_src(src: &Src, value: [f32; 4]) -> [f32; 4] {
    interp::swizzle_negate(src.swizzle, src.negate, value)
}

/// Positions (indices into each operand's swizzle) that `instr` reads, as a
/// 4-bit mask. Dot products and `TEX` read fixed positions; componentwise
/// ops read position `l` exactly when destination lane `l` is written.
fn read_position_mask(instr: &Instr) -> u8 {
    match instr.op {
        Opcode::Dp3 => 0b0111,
        Opcode::Dp4 => 0b1111,
        Opcode::Tex => 0b0011,
        _ => verify::dst_mask(instr),
    }
}

fn reg_in_range(reg: Reg) -> bool {
    match reg {
        Reg::Temp(i) => (i as usize) < NUM_TEMPS,
        Reg::Const(i) => (i as usize) < NUM_CONSTS,
        Reg::TexCoord(i) => (i as usize) < NUM_TEXCOORDS,
        Reg::Output(i) => (i as usize) < NUM_OUTPUTS,
    }
}

/// True when the program violates a structural invariant the passes assume
/// (operand arity, register ranges, writable destinations, `TEX` samplers).
/// [`optimize`] returns such programs unchanged; [`crate::verify`] reports
/// the actual errors.
fn malformed(program: &Program) -> bool {
    program.instrs.iter().any(|i| {
        i.srcs.len() != i.op.arity()
            || !matches!(i.dst.reg, Reg::Temp(_) | Reg::Output(_))
            || !reg_in_range(i.dst.reg)
            || i.srcs.iter().any(|s| !reg_in_range(s.reg))
            || i.srcs.iter().any(|s| s.swizzle.0.iter().any(|&l| l > 3))
            || (i.op == Opcode::Tex && i.sampler.is_none())
    }) || program
        .defs
        .iter()
        .any(|d| (d.index as usize) >= NUM_CONSTS)
}

// ---------------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------------

/// Lane-precise liveness facts for a straight-line program, computed
/// backward from the pass's read-back outputs by [`liveness`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// `temps_after[i][r]` = 4-bit mask of `Rr` lanes live *after* instr `i`.
    pub temps_after: Vec<[u8; NUM_TEMPS]>,
    /// `outputs_after[i][o]` = 4-bit mask of `Oo` lanes live after instr `i`.
    pub outputs_after: Vec<[u8; NUM_OUTPUTS]>,
}

/// Backward lane-precise liveness. A lane is live when some later
/// instruction (or the pass read-back, per `outputs_read`) observes it
/// before it is overwritten. Read lanes come from [`verify::read_lanes`],
/// so the optimizer and verifier can never disagree about what is dead.
pub fn liveness(instrs: &[Instr], outputs_read: [bool; NUM_OUTPUTS]) -> Liveness {
    let n = instrs.len();
    let mut temps_after = vec![[0u8; NUM_TEMPS]; n];
    let mut outputs_after = vec![[0u8; NUM_OUTPUTS]; n];
    let mut live_t = [0u8; NUM_TEMPS];
    let mut live_o = [0u8; NUM_OUTPUTS];
    for (o, lanes) in live_o.iter_mut().zip(outputs_read) {
        *o = if lanes { 0b1111 } else { 0 };
    }
    for i in (0..n).rev() {
        temps_after[i] = live_t;
        outputs_after[i] = live_o;
        let instr = &instrs[i];
        let written = verify::dst_mask(instr);
        match instr.dst.reg {
            Reg::Temp(r) => live_t[r as usize] &= !written,
            Reg::Output(o) => live_o[o as usize] &= !written,
            _ => {}
        }
        for si in 0..instr.srcs.len() {
            let lanes = verify::read_lanes(instr, si);
            match instr.srcs[si].reg {
                Reg::Temp(r) => live_t[r as usize] |= lanes,
                Reg::Output(o) => live_o[o as usize] |= lanes,
                _ => {}
            }
        }
    }
    Liveness {
        temps_after,
        outputs_after,
    }
}

/// Forward reaching definitions: for each instruction `i` and each temp
/// lane, the index of the instruction whose write reaches the *start* of
/// `i`, or `None` when the lane still holds its zero initialisation.
pub fn reaching_defs(instrs: &[Instr]) -> Vec<[[Option<usize>; 4]; NUM_TEMPS]> {
    let mut cur = [[None; 4]; NUM_TEMPS];
    let mut out = Vec::with_capacity(instrs.len());
    for (i, instr) in instrs.iter().enumerate() {
        out.push(cur);
        if let Reg::Temp(r) = instr.dst.reg {
            for (lane, slot) in cur[r as usize].iter_mut().enumerate() {
                if instr.dst.mask[lane] {
                    *slot = Some(i);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Counters and report
// ---------------------------------------------------------------------------

/// Per-pass elimination counters accumulated by one [`optimize`] run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptCounters {
    /// Instructions whose result was computed at optimize time and replaced
    /// with a `MOV` from a materialised `DEF`.
    pub consts_folded: u64,
    /// Source operands rewritten through a copy (`MOV`) definition.
    pub copies_propagated: u64,
    /// ALU instructions replaced by a `MOV` from an identical earlier result.
    pub cse_replaced: u64,
    /// Redundant `TEX` fetches (same coordinate operand and unit) replaced.
    pub tex_cse_replaced: u64,
    /// `MUL`+`ADD` pairs fused into a single `MAD`.
    pub mads_fused: u64,
    /// `MUL`+`DP4`(all-ones) pairs fused into a single `DP4`.
    pub dots_fused: u64,
    /// Instructions removed because no written lane was live.
    pub dead_instructions: u64,
    /// Individual write lanes cleared from surviving instructions.
    pub dead_lanes: u64,
    /// Trailing `MOV O, R` copies removed by renaming `R` onto `O`.
    pub outputs_coalesced: u64,
    /// `DEF`s removed because no instruction reads the constant.
    pub defs_removed: u64,
}

impl OptCounters {
    /// Accumulate another run's counters into this one.
    pub fn add(&mut self, other: &OptCounters) {
        self.consts_folded += other.consts_folded;
        self.copies_propagated += other.copies_propagated;
        self.cse_replaced += other.cse_replaced;
        self.tex_cse_replaced += other.tex_cse_replaced;
        self.mads_fused += other.mads_fused;
        self.dots_fused += other.dots_fused;
        self.dead_instructions += other.dead_instructions;
        self.dead_lanes += other.dead_lanes;
        self.outputs_coalesced += other.outputs_coalesced;
        self.defs_removed += other.defs_removed;
    }

    /// `(label, count)` pairs in a stable order, for reports and JSON.
    pub fn entries(&self) -> [(&'static str, u64); 10] {
        [
            ("consts_folded", self.consts_folded),
            ("copies_propagated", self.copies_propagated),
            ("cse_replaced", self.cse_replaced),
            ("tex_cse_replaced", self.tex_cse_replaced),
            ("mads_fused", self.mads_fused),
            ("dots_fused", self.dots_fused),
            ("dead_instructions", self.dead_instructions),
            ("dead_lanes", self.dead_lanes),
            ("outputs_coalesced", self.outputs_coalesced),
            ("defs_removed", self.defs_removed),
        ]
    }
}

/// Before/after summary of one [`optimize`] run on one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptReport {
    /// Program name (`Program::name`).
    pub name: String,
    /// Instruction count before optimization.
    pub before: usize,
    /// Instruction count after optimization.
    pub after: usize,
    /// What each pass eliminated.
    pub counters: OptCounters,
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} instructions",
            self.name, self.before, self.after
        )?;
        let mut any = false;
        for (label, count) in self.counters.entries() {
            if count > 0 {
                write!(f, "{} {label} {count}", if any { "," } else { " (" })?;
                any = true;
            }
        }
        if any {
            write!(f, ")")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The optimizer
// ---------------------------------------------------------------------------

/// Upper bound on fixpoint rounds; each round either changes the program or
/// terminates the loop, and every rewrite strictly reduces instructions,
/// operand indirections, or unknown lattice entries, so this is never hit
/// in practice.
const MAX_ROUNDS: usize = 8;

/// Optimize `program` for execution under `bindings`, preserving results
/// bit for bit.
///
/// `bindings` matters twice: pass-bound constant registers have unknown
/// values (never folded), and `outputs_read` seeds liveness for dead-code
/// elimination. Returns the optimized program and an [`OptReport`].
/// Structurally malformed programs (which [`crate::verify`] rejects) are
/// returned unchanged.
pub fn optimize(program: &Program, bindings: &PassBindings) -> (Program, OptReport) {
    let mut p = program.clone();
    let mut counters = OptCounters::default();
    let before = p.instrs.len();
    if !malformed(&p) {
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            changed |= propagate(&mut p, bindings, &mut counters);
            changed |= dedup_invariant_tex(&mut p, &mut counters);
            changed |= cse(&mut p, &mut counters);
            changed |= fuse(&mut p, bindings, &mut counters);
            changed |= dce(&mut p, bindings, &mut counters);
            changed |= coalesce_output(&mut p, &mut counters);
            if !changed {
                break;
            }
        }
        prune_defs(&mut p, &mut counters);
    }
    let report = OptReport {
        name: p.name.clone(),
        before,
        after: p.instrs.len(),
        counters,
    };
    (p, report)
}

/// Reorder a straight-line program for the batched SoA executor: `TEX`
/// instructions are hoisted as early as their dependences allow, so the
/// executor's gather work clusters at the top of a chunk sweep and the ALU
/// tail runs as uninterrupted vectorizable arithmetic.
///
/// The reordering is exact- and count-preserving. A dependence edge is kept
/// for every register-identity read-after-write, write-after-read, and
/// write-after-write pair (lane masks are ignored — strictly conservative),
/// so every instruction still observes exactly the values it observed in
/// program order. The relative order of `TEX` instructions is additionally
/// pinned, preserving the per-fragment texture-cache fetch sequence the
/// batched executor replays (DESIGN.md §14). Selection is deterministic:
/// among ready instructions, the earliest-index `TEX` wins, then the
/// earliest-index ALU — so the schedule is a pure function of the program.
///
/// Malformed programs (see [`optimize`]) are returned unchanged.
pub fn schedule_for_batch(program: &Program) -> Program {
    let mut p = program.clone();
    if malformed(&p) {
        return p;
    }
    let n = p.instrs.len();
    // Registers an instruction reads that another instruction could write
    // (Const/TexCoord are read-only and never produce edges).
    let reads = |i: &Instr| -> Vec<Reg> {
        i.srcs
            .iter()
            .map(|s| s.reg)
            .filter(|r| matches!(r, Reg::Temp(_) | Reg::Output(_)))
            .collect()
    };
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds = vec![0usize; n];
    let mut last_tex: Option<usize> = None;
    for (i, pred) in preds.iter_mut().enumerate() {
        let wi = p.instrs[i].dst.reg;
        let ri = reads(&p.instrs[i]);
        for (j, succ) in succs.iter_mut().enumerate().take(i) {
            let wj = p.instrs[j].dst.reg;
            let raw = ri.contains(&wj);
            let war = reads(&p.instrs[j]).contains(&wi);
            let waw = wi == wj;
            if raw || war || waw {
                succ.push(i);
                *pred += 1;
            }
        }
        if p.instrs[i].op == Opcode::Tex {
            // Pin the TEX chain even when register deps would allow a swap.
            if let Some(j) = last_tex {
                succs[j].push(i);
                *pred += 1;
            }
            last_tex = Some(i);
        }
    }
    let tex_key = |i: usize| (u8::from(p.instrs[i].op != Opcode::Tex), i);
    let mut ready: std::collections::BTreeSet<(u8, usize)> =
        (0..n).filter(|&i| preds[i] == 0).map(&tex_key).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&key) = ready.iter().next() {
        ready.remove(&key);
        let i = key.1;
        order.push(i);
        for &s in &succs[i] {
            preds[s] -= 1;
            if preds[s] == 0 {
                ready.insert(tex_key(s));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dependence graph of a DAG by construction");
    let instrs = order.iter().map(|&i| p.instrs[i].clone()).collect();
    p.instrs = instrs;
    p
}

/// One lane of the copy lattice: "this lane currently equals
/// `±source_reg.lane`".
#[derive(Debug, Clone, Copy, PartialEq)]
struct CopyLane {
    reg: Reg,
    lane: u8,
    negate: bool,
}

/// Combined forward copy/constant propagation and constant folding.
///
/// A single in-order scan maintains, per temp lane, (a) a copy fact from
/// the latest non-saturating `MOV`, used to rewrite later reads through the
/// copy, and (b) a constant value when one is statically known, used to
/// evaluate instructions whose read lanes are all known. Folded results are
/// materialised as fresh `DEF`s (reusing a bit-identical existing `DEF` or
/// a free constant register) and replaced with a `MOV`; copy propagation
/// then forwards them and DCE removes the `MOV` when it dies.
fn propagate(p: &mut Program, bindings: &PassBindings, counters: &mut OptCounters) -> bool {
    let mut defv = [None::<[f32; 4]>; NUM_CONSTS];
    for d in &p.defs {
        defv[d.index as usize] = Some(d.value);
    }
    for &c in &bindings.constants {
        if (c as usize) < NUM_CONSTS {
            defv[c as usize] = None; // pass-bound: value unknown at optimize time
        }
    }
    let mut copy = [[None::<CopyLane>; 4]; NUM_TEMPS];
    let mut konst = [[None::<f32>; 4]; NUM_TEMPS];
    let mut new_defs: Vec<ConstDef> = Vec::new();
    let mut changed = false;

    for instr in &mut p.instrs {
        let positions = read_position_mask(instr);

        // --- Copy propagation: rewrite each operand through the lattice.
        for src in &mut instr.srcs {
            let Reg::Temp(r) = src.reg else { continue };
            let mut target: Option<(Reg, bool)> = None;
            let mut new_lanes = [0u8; 4];
            let mut ok = true;
            for pos in 0..4 {
                if positions & (1 << pos) == 0 {
                    continue;
                }
                match copy[r as usize][src.swizzle.0[pos] as usize] {
                    Some(fact) => {
                        if let Some((reg, neg)) = target {
                            if reg != fact.reg || neg != fact.negate {
                                ok = false;
                                break;
                            }
                        } else {
                            target = Some((fact.reg, fact.negate));
                        }
                        new_lanes[pos] = fact.lane;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            let Some((reg, neg)) = target else { continue };
            if !ok {
                continue;
            }
            // Fill unread positions with the first read position's lane so
            // the swizzle stays well-formed without widening what is read.
            let fill = (0..4)
                .find(|pos| positions & (1 << pos) != 0)
                .map(|pos| new_lanes[pos])
                .unwrap_or(0);
            for (pos, lane) in new_lanes.iter_mut().enumerate() {
                if positions & (1 << pos) == 0 {
                    *lane = fill;
                }
            }
            let rewritten = Src {
                reg,
                swizzle: Swizzle(new_lanes),
                negate: src.negate ^ neg,
            };
            if rewritten != *src {
                *src = rewritten;
                counters.copies_propagated += 1;
                changed = true;
            }
        }

        // --- Constant folding: evaluate when every read lane is known.
        let already_folded = instr.op == Opcode::Mov && matches!(instr.srcs[0].reg, Reg::Const(_));
        if instr.op != Opcode::Tex && !already_folded {
            let all_known = instr.srcs.iter().all(|src| {
                (0..4).all(|pos| {
                    positions & (1 << pos) == 0 || known_pos(&defv, &konst, src, pos).is_some()
                })
            });
            if all_known {
                let vecs: Vec<[f32; 4]> = instr
                    .srcs
                    .iter()
                    .map(|src| {
                        let mut v = [0.0f32; 4];
                        for (pos, slot) in v.iter_mut().enumerate() {
                            if positions & (1 << pos) != 0 {
                                *slot = known_pos(&defv, &konst, src, pos).unwrap();
                            }
                        }
                        v
                    })
                    .collect();
                let mut result = interp::alu(instr.op, |i| vecs[i]);
                if instr.dst.saturate {
                    result = result.map(|v| v.clamp(0.0, 1.0));
                }
                let mut stored = [0.0f32; 4];
                for (lane, slot) in stored.iter_mut().enumerate() {
                    if instr.dst.mask[lane] {
                        *slot = result[lane];
                    }
                }
                if let Some(index) = materialize(&p.defs, &mut new_defs, bindings, stored) {
                    instr.op = Opcode::Mov;
                    instr.srcs = vec![Src {
                        reg: Reg::Const(index),
                        swizzle: Swizzle::IDENTITY,
                        negate: false,
                    }];
                    instr.sampler = None;
                    instr.dst.saturate = false;
                    defv[index as usize] = Some(stored);
                    counters.consts_folded += 1;
                    changed = true;
                }
            }
        }

        // --- Lattice update for this (possibly rewritten) instruction.
        let written = verify::dst_mask(instr);
        if let Reg::Temp(d) = instr.dst.reg {
            // Kill copies whose source lanes are being overwritten.
            for lanes in copy.iter_mut() {
                for slot in lanes.iter_mut() {
                    if let Some(fact) = slot {
                        if fact.reg == Reg::Temp(d) && written & (1 << fact.lane) != 0 {
                            *slot = None;
                        }
                    }
                }
            }
            let is_copy = instr.op == Opcode::Mov
                && !instr.dst.saturate
                && instr.srcs[0].reg != Reg::Temp(d)
                && matches!(
                    instr.srcs[0].reg,
                    Reg::Temp(_) | Reg::TexCoord(_) | Reg::Const(_)
                );
            for lane in 0..4 {
                if written & (1 << lane) == 0 {
                    continue;
                }
                let src = &instr.srcs[0];
                copy[d as usize][lane] = if is_copy {
                    Some(CopyLane {
                        reg: src.reg,
                        lane: src.swizzle.0[lane],
                        negate: src.negate,
                    })
                } else {
                    None
                };
                konst[d as usize][lane] = if instr.op == Opcode::Mov {
                    known_pos(&defv, &konst, src, lane).map(|v| {
                        if instr.dst.saturate {
                            v.clamp(0.0, 1.0)
                        } else {
                            v
                        }
                    })
                } else {
                    None
                };
            }
        }
    }
    p.defs.extend(new_defs);
    changed
}

/// Resolve one operand position of `src` to a statically known value, if
/// any: constants through the `DEF` environment, temps through the constant
/// lattice, with the operand's negate applied after the swizzle.
fn known_pos(
    defv: &[Option<[f32; 4]>; NUM_CONSTS],
    konst: &[[Option<f32>; 4]; NUM_TEMPS],
    src: &Src,
    pos: usize,
) -> Option<f32> {
    let lane = src.swizzle.0[pos] as usize;
    let v = match src.reg {
        Reg::Const(c) => defv[c as usize].map(|v| v[lane]),
        Reg::Temp(r) => konst[r as usize][lane],
        _ => None,
    }?;
    Some(if src.negate { -v } else { v })
}

/// Find a constant register holding exactly `value` (bit-compared), or
/// allocate a free one. Returns `None` when every register is taken.
fn materialize(
    defs: &[ConstDef],
    new_defs: &mut Vec<ConstDef>,
    bindings: &PassBindings,
    value: [f32; 4],
) -> Option<u8> {
    let bits = value.map(f32::to_bits);
    for d in defs.iter().chain(new_defs.iter()) {
        if d.value.map(f32::to_bits) == bits {
            return Some(d.index);
        }
    }
    let mut taken = [false; NUM_CONSTS];
    for d in defs.iter().chain(new_defs.iter()) {
        taken[d.index as usize] = true;
    }
    for &c in &bindings.constants {
        if (c as usize) < NUM_CONSTS {
            taken[c as usize] = true;
        }
    }
    let free = taken.iter().position(|t| !t)? as u8;
    new_defs.push(ConstDef {
        index: free,
        value,
        line: 0,
    });
    Some(free)
}

/// Common-subexpression elimination, including redundant `TEX` fetches.
///
/// A forward scan keeps an availability table of full-mask, non-saturating
/// temp-destination computations keyed on `(op, operands, sampler)`; a later
/// instruction with an identical key is replaced by a `MOV` from the holder
/// (which recovers the identical 4-lane value bit for bit). Entries are
/// invalidated when any operand register or the holder is overwritten.
/// Global dedup of position-pure `TEX` fetches. Two `TEX` instructions on
/// the same sampler whose coordinate operand reads a register the program
/// never writes (an interpolated coordinate set, a constant, or an
/// untouched zero-initialized temp) fetch the same texel no matter where
/// they sit — unlike [`cse`], which must forget an available fetch as soon
/// as its holder register is reused. Each such family is canonicalized into
/// one full-mask fetch of a fresh temp inserted at the first occurrence,
/// and every member is demoted to a `MOV` from it (mask, saturate, and
/// destination preserved, so the rewrite is exact); copy propagation and
/// DCE then dissolve the `MOV`s. Families are processed first-come and the
/// pass stops allocating when the temp file runs out.
fn dedup_invariant_tex(p: &mut Program, counters: &mut OptCounters) -> bool {
    let mut written = [false; NUM_TEMPS];
    for instr in &p.instrs {
        if let Reg::Temp(t) = instr.dst.reg {
            written[t as usize] = true;
        }
    }
    let invariant = |s: &Src| match s.reg {
        Reg::TexCoord(_) | Reg::Const(_) => true,
        Reg::Temp(t) => !written[t as usize],
        _ => false,
    };
    type Key = (Option<u8>, Reg, [u8; 4], bool);
    let mut families: Vec<(Key, Vec<usize>)> = Vec::new();
    for (i, instr) in p.instrs.iter().enumerate() {
        if instr.op != Opcode::Tex {
            continue;
        }
        let s = &instr.srcs[0];
        if !invariant(s) {
            continue;
        }
        let key: Key = (instr.sampler, s.reg, s.swizzle.0, s.negate);
        match families.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => families.push((key, vec![i])),
        }
    }
    families.retain(|(_, v)| v.len() > 1);
    if families.is_empty() {
        return false;
    }
    // Holders live above every temp the program touches (written or
    // zero-init-read); `compact_temps` repacks afterwards.
    let mut next = 0usize;
    for instr in &p.instrs {
        for reg in std::iter::once(instr.dst.reg).chain(instr.srcs.iter().map(|s| s.reg)) {
            if let Reg::Temp(t) = reg {
                next = next.max(t as usize + 1);
            }
        }
    }
    let mut inserts: Vec<(usize, Instr)> = Vec::new();
    let mut changed = false;
    for (key, members) in families {
        if next >= NUM_TEMPS {
            break;
        }
        let holder = next as u8;
        next += 1;
        let first = members[0];
        inserts.push((
            first,
            Instr {
                op: Opcode::Tex,
                dst: Dst {
                    reg: Reg::Temp(holder),
                    mask: [true; 4],
                    saturate: false,
                },
                srcs: vec![Src {
                    reg: key.1,
                    swizzle: Swizzle(key.2),
                    negate: key.3,
                }],
                sampler: key.0,
                line: p.instrs[first].line,
            },
        ));
        for &i in &members {
            let instr = &mut p.instrs[i];
            instr.op = Opcode::Mov;
            instr.srcs = vec![Src {
                reg: Reg::Temp(holder),
                swizzle: Swizzle::IDENTITY,
                negate: false,
            }];
            instr.sampler = None;
        }
        counters.tex_cse_replaced += members.len() as u64 - 1;
        changed = true;
    }
    for (at, instr) in inserts.into_iter().rev() {
        p.instrs.insert(at, instr);
    }
    changed
}

fn cse(p: &mut Program, counters: &mut OptCounters) -> bool {
    type Key = (Opcode, Vec<(Reg, [u8; 4], bool)>, Option<u8>);
    let mut avail: Vec<(Key, u8)> = Vec::new();
    let mut changed = false;
    for instr in &mut p.instrs {
        let key: Key = (
            instr.op,
            instr
                .srcs
                .iter()
                .map(|s| (s.reg, s.swizzle.0, s.negate))
                .collect(),
            instr.sampler,
        );
        if instr.op != Opcode::Mov {
            if let Some((_, holder)) = avail.iter().find(|(k, _)| *k == key) {
                let replacement = Src {
                    reg: Reg::Temp(*holder),
                    swizzle: Swizzle::IDENTITY,
                    negate: false,
                };
                if instr.dst.reg != Reg::Temp(*holder) {
                    if instr.op == Opcode::Tex {
                        counters.tex_cse_replaced += 1;
                    } else {
                        counters.cse_replaced += 1;
                    }
                    instr.op = Opcode::Mov;
                    instr.srcs = vec![replacement];
                    instr.sampler = None;
                    changed = true;
                }
            }
        }
        // Invalidate everything the write clobbers, then register the
        // instruction as a provider when it computes all four lanes.
        let dst = instr.dst.reg;
        avail.retain(|(k, holder)| {
            Reg::Temp(*holder) != dst && k.1.iter().all(|(reg, _, _)| *reg != dst)
        });
        if let Reg::Temp(holder) = instr.dst.reg {
            let full = instr.dst.mask == [true; 4];
            let self_ref = instr.srcs.iter().any(|s| s.reg == Reg::Temp(holder));
            if full && !instr.dst.saturate && !self_ref && instr.op != Opcode::Mov {
                let key: Key = (
                    instr.op,
                    instr
                        .srcs
                        .iter()
                        .map(|s| (s.reg, s.swizzle.0, s.negate))
                        .collect(),
                    instr.sampler,
                );
                avail.push((key, holder));
            }
        }
    }
    changed
}

/// Compose `base`'s swizzle with an outer read swizzle: position `p` of the
/// fused operand reads what `outer[p]` read of `base`.
fn compose(base: &Src, outer: Swizzle) -> Src {
    Src {
        reg: base.reg,
        swizzle: Swizzle(outer.0.map(|l| base.swizzle.0[l as usize])),
        negate: base.negate,
    }
}

/// `MUL`+`ADD`→`MAD` and `MUL`+`DP4`(all-ones)→`DP4` fusion.
///
/// Both rewrites are exact: the interpreter's `MAD` is the unfused
/// two-rounding `a*b + c`, so `MAD` recomputes the identical product and
/// sum; dot fusion drops a `* 1.0` per term, which is the identity on every
/// value. Fusion requires the `MUL` result to be consumed *only* by the
/// fused instruction (no reads in between, dead after), its operands to be
/// unmodified in between, and no negation on the consumed operand (negating
/// before vs. after a multiply can differ in NaN sign propagation).
fn fuse(p: &mut Program, bindings: &PassBindings, counters: &mut OptCounters) -> bool {
    let mut defv = [None::<[f32; 4]>; NUM_CONSTS];
    for d in &p.defs {
        defv[d.index as usize] = Some(d.value);
    }
    for &c in &bindings.constants {
        if (c as usize) < NUM_CONSTS {
            defv[c as usize] = None;
        }
    }
    let mut any = false;
    // One fusion per iteration: indices shift after the removal, so rebuild
    // the reaching-defs table and rescan until no pair fuses.
    loop {
        let rd = reaching_defs(&p.instrs);
        let mut action: Option<(usize, usize, Instr)> = None;
        for (i, instr) in p.instrs.iter().enumerate() {
            let is_add = instr.op == Opcode::Add;
            let is_dot = instr.op == Opcode::Dp4;
            if !is_add && !is_dot {
                continue;
            }
            let Reg::Temp(r) = instr.srcs[0].reg else {
                continue;
            };
            if instr.srcs[0].negate || instr.srcs[1].reg == Reg::Temp(r) {
                continue;
            }
            if is_dot {
                // The second operand must be a provable all-ones constant.
                let s1 = &instr.srcs[1];
                let Reg::Const(c) = s1.reg else { continue };
                let Some(v) = defv[c as usize] else { continue };
                if s1.negate
                    || !s1
                        .swizzle
                        .0
                        .iter()
                        .all(|&l| v[l as usize].to_bits() == 1.0f32.to_bits())
                {
                    continue;
                }
            }
            // All four lanes of r must be defined by one full MUL.
            let lanes = rd[i][r as usize];
            let Some(j) = lanes[0] else { continue };
            if lanes.iter().any(|&l| l != Some(j)) {
                continue;
            }
            let mul = &p.instrs[j];
            if mul.op != Opcode::Mul || mul.dst.saturate || mul.dst.mask != [true; 4] {
                continue;
            }
            // Between the MUL and here: r unread, MUL operands unmodified.
            let clobbered = p.instrs[j + 1..i].iter().any(|b| {
                b.srcs.iter().any(|s| s.reg == Reg::Temp(r))
                    || mul.srcs.iter().any(|s| s.reg == b.dst.reg)
            });
            // The MUL result must be unobservable once `i` executes. A full
            // write-back into `r` itself (the common accumulator shape
            // `MUL R, a, b; DP4 R, R, ones`) buries it immediately.
            let r_buried = instr.dst.reg == Reg::Temp(r) && instr.dst.mask == [true; 4];
            if clobbered || !(r_buried || reg_dead_after(&p.instrs, i, r)) {
                continue;
            }
            let outer = instr.srcs[0].swizzle;
            let mut fused = instr.clone();
            if is_add {
                fused.op = Opcode::Mad;
                fused.srcs = vec![
                    compose(&mul.srcs[0], outer),
                    compose(&mul.srcs[1], outer),
                    instr.srcs[1],
                ];
            } else {
                fused.srcs = vec![compose(&mul.srcs[0], outer), compose(&mul.srcs[1], outer)];
            }
            action = Some((i, j, fused));
            break;
        }
        let Some((i, j, fused)) = action else {
            return any;
        };
        let fused_to_mad = fused.op == Opcode::Mad;
        p.instrs[i] = fused;
        p.instrs.remove(j);
        if fused_to_mad {
            counters.mads_fused += 1;
        } else {
            counters.dots_fused += 1;
        }
        any = true;
    }
}

/// True when no later instruction can observe `Rr` as written at `i`:
/// either nothing mentions it again, or the next mention is a full
/// overwrite. Partial overwrites are conservatively treated as live.
fn reg_dead_after(instrs: &[Instr], i: usize, r: u8) -> bool {
    for instr in &instrs[i + 1..] {
        if instr.srcs.iter().any(|s| s.reg == Reg::Temp(r)) {
            return false;
        }
        if instr.dst.reg == Reg::Temp(r) {
            return instr.dst.mask == [true; 4];
        }
    }
    true
}

/// Dead-instruction elimination and dead-write-lane narrowing, in one
/// backward walk seeded from `bindings.outputs_read`.
fn dce(p: &mut Program, bindings: &PassBindings, counters: &mut OptCounters) -> bool {
    let mut live_t = [0u8; NUM_TEMPS];
    let mut live_o = [0u8; NUM_OUTPUTS];
    for (o, read) in live_o.iter_mut().zip(bindings.outputs_read) {
        *o = if read { 0b1111 } else { 0 };
    }
    let mut changed = false;
    let mut keep: Vec<Instr> = Vec::with_capacity(p.instrs.len());
    for mut instr in p.instrs.drain(..).rev() {
        let written = verify::dst_mask(&instr);
        let live = match instr.dst.reg {
            Reg::Temp(r) => live_t[r as usize],
            Reg::Output(o) => live_o[o as usize],
            _ => 0b1111,
        };
        if written & live == 0 {
            counters.dead_instructions += 1;
            changed = true;
            continue;
        }
        if written & !live != 0 {
            counters.dead_lanes += u64::from((written & !live).count_ones());
            for (lane, m) in instr.dst.mask.iter_mut().enumerate() {
                *m = *m && live & (1 << lane) != 0;
            }
            changed = true;
        }
        match instr.dst.reg {
            Reg::Temp(r) => live_t[r as usize] &= !verify::dst_mask(&instr),
            Reg::Output(o) => live_o[o as usize] &= !verify::dst_mask(&instr),
            _ => {}
        }
        for si in 0..instr.srcs.len() {
            let lanes = verify::read_lanes(&instr, si);
            match instr.srcs[si].reg {
                Reg::Temp(r) => live_t[r as usize] |= lanes,
                Reg::Output(o) => live_o[o as usize] |= lanes,
                _ => {}
            }
        }
        keep.push(instr);
    }
    keep.reverse();
    p.instrs = keep;
    changed
}

/// Coalesce a `MOV O, R` (full mask, identity, no negate/saturate) whose
/// temp `R` is mentioned nowhere after it and whose output `O` is mentioned
/// nowhere else: rename `R` to `O` throughout the def range and drop the
/// `MOV`. Exact because temps and outputs share identical zero-initialised
/// storage semantics in the interpreter.
fn coalesce_output(p: &mut Program, counters: &mut OptCounters) -> bool {
    let mut target: Option<(usize, u8, u8)> = None;
    for (i, instr) in p.instrs.iter().enumerate() {
        let Reg::Output(o) = instr.dst.reg else {
            continue;
        };
        if instr.op != Opcode::Mov
            || instr.dst.mask != [true; 4]
            || instr.dst.saturate
            || instr.srcs[0].negate
            || !instr.srcs[0].swizzle.is_identity()
        {
            continue;
        }
        let Reg::Temp(r) = instr.srcs[0].reg else {
            continue;
        };
        let r_escapes = p.instrs.iter().enumerate().any(|(k, b)| {
            k > i && (b.dst.reg == Reg::Temp(r) || b.srcs.iter().any(|s| s.reg == Reg::Temp(r)))
        });
        let o_elsewhere = p.instrs.iter().enumerate().any(|(k, b)| {
            k != i
                && (b.dst.reg == Reg::Output(o) || b.srcs.iter().any(|s| s.reg == Reg::Output(o)))
        });
        let r_written = p.instrs[..i].iter().any(|b| b.dst.reg == Reg::Temp(r));
        if !r_escapes && !o_elsewhere && r_written {
            target = Some((i, r, o));
            break;
        }
    }
    let Some((i, r, o)) = target else {
        return false;
    };
    for instr in &mut p.instrs[..i] {
        if instr.dst.reg == Reg::Temp(r) {
            instr.dst.reg = Reg::Output(o);
        }
        for src in &mut instr.srcs {
            if src.reg == Reg::Temp(r) {
                src.reg = Reg::Output(o);
            }
        }
    }
    p.instrs.remove(i);
    counters.outputs_coalesced += 1;
    true
}

/// Remove `DEF`s whose constant register is never read, so optimized
/// programs stay free of `unused-const` lint warnings.
fn prune_defs(p: &mut Program, counters: &mut OptCounters) {
    let mut read = [false; NUM_CONSTS];
    for instr in &p.instrs {
        for src in &instr.srcs {
            if let Reg::Const(c) = src.reg {
                read[c as usize] = true;
            }
        }
    }
    let before = p.defs.len();
    p.defs.retain(|d| read[d.index as usize]);
    counters.defs_removed += (before - p.defs.len()) as u64;
}

// ---------------------------------------------------------------------------
// Producer inlining for render-graph pass fusion
// ---------------------------------------------------------------------------

/// Rename temporaries with a linear-scan allocator so the program uses the
/// fewest registers, returning how many remain in use.
///
/// Two temps may share a register only when their mention intervals are
/// disjoint *and* the later web's first action is a full four-lane write
/// (so no stale lane from the previous occupant is observable). Webs whose
/// first mention is a read, or a partial write, rely on the register file's
/// zero initialisation and are only ever placed in a register nothing used
/// before — which reads the same zeros. Renaming is therefore exact.
///
/// The fusion path calls this between inline steps: each inlined producer
/// body takes fresh temps, and without compaction a collapsed chain of
/// bodies would exhaust the 16-register file long before it exhausts the
/// instruction limit. Malformed programs (see [`optimize`]) are left
/// unchanged.
pub fn compact_temps(p: &mut Program) -> usize {
    let used = |p: &Program| {
        let mut seen = [false; NUM_TEMPS];
        for i in &p.instrs {
            if let Reg::Temp(r) = i.dst.reg {
                seen[r as usize] = true;
            }
            for s in &i.srcs {
                if let Reg::Temp(r) = s.reg {
                    seen[r as usize] = true;
                }
            }
        }
        seen.iter().filter(|&&b| b).count()
    };
    if malformed(p) {
        return used(p);
    }
    // Mention interval per temp; reads are scanned before the destination so
    // a `first` that is a write really is a write of a fresh value.
    let mut first = [usize::MAX; NUM_TEMPS];
    let mut last = [0usize; NUM_TEMPS];
    let mut full_write_first = [false; NUM_TEMPS];
    for (i, instr) in p.instrs.iter().enumerate() {
        for s in &instr.srcs {
            if let Reg::Temp(r) = s.reg {
                let r = r as usize;
                if first[r] == usize::MAX {
                    first[r] = i;
                }
                last[r] = i;
            }
        }
        if let Reg::Temp(r) = instr.dst.reg {
            let r = r as usize;
            if first[r] == usize::MAX {
                first[r] = i;
                full_write_first[r] = instr.dst.mask == [true; 4];
            }
            last[r] = i;
        }
    }
    let mut webs: Vec<usize> = (0..NUM_TEMPS).filter(|&r| first[r] != usize::MAX).collect();
    webs.sort_by_key(|&r| (first[r], r));
    // Per physical register: `None` = never used, `Some(end)` = last mention
    // of its current occupant.
    let mut phys: [Option<usize>; NUM_TEMPS] = [None; NUM_TEMPS];
    let mut map = [0u8; NUM_TEMPS];
    for &r in &webs {
        let slot = (0..NUM_TEMPS)
            .find(|&q| match phys[q] {
                None => true,
                Some(end) => full_write_first[r] && end < first[r],
            })
            .expect("webs never outnumber registers");
        phys[slot] = Some(last[r]);
        map[r] = slot as u8;
    }
    for instr in &mut p.instrs {
        if let Reg::Temp(r) = instr.dst.reg {
            instr.dst.reg = Reg::Temp(map[r as usize]);
        }
        for s in &mut instr.srcs {
            if let Reg::Temp(r) = s.reg {
                s.reg = Reg::Temp(map[r as usize]);
            }
        }
    }
    used(p)
}

/// How a producer's interpolated coordinates are reconciled with the
/// consumer's when its body is inlined at a `TEX` site by
/// [`inline_producer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineMode {
    /// Replace every producer `TEX` coordinate operand with the consuming
    /// site's coordinate operand. Exact when the producer rendered with
    /// identity coordinate sets only: its texel `(x, y)` is then a pure
    /// function of the sampling position, so recomputing the body at the
    /// site's coordinate reproduces the texel the site would have fetched
    /// — provided the caller's textures share the producer target's size
    /// and clamp addressing, which is the graph compiler's side of the
    /// contract.
    SubstituteSiteCoord,
    /// Keep producer coordinate operands, remapped through
    /// `texcoord_map`. Exact when the consuming site's own coordinate set
    /// is the identity (the consumer fetched the producer's texel at its
    /// own position) and the mapped fused coordinate sets are bound
    /// bit-identically to the producer's own bindings.
    KeepProducerCoords,
}

/// One producer→consumer fusion request for [`inline_producer`].
#[derive(Debug)]
pub struct InlineRequest<'a> {
    /// The producer pass's program; its `O0` result is the texture the
    /// consumer samples.
    pub producer: &'a Program,
    /// Consumer sampler index whose fetches are replaced by the body.
    pub sampler: u8,
    /// Producer sampler index → fused-program sampler index. Entries must
    /// avoid `sampler` (the dying slot) so inlined fetches are never
    /// mistaken for further sites.
    pub sampler_map: &'a [u8],
    /// Producer coordinate-set index → fused-program coordinate-set index
    /// ([`InlineMode::KeepProducerCoords`] only).
    pub texcoord_map: &'a [u8],
    /// Coordinate reconciliation mode.
    pub mode: InlineMode,
}

/// Inline `req.producer`'s body at every `TEX` site of `consumer` that
/// samples `req.sampler`, returning the fused program and the number of
/// sites inlined.
///
/// Each site's fetch becomes a `MOV` from a fresh temp holding the
/// producer's recomputed `O0`; the body is placed at the top of the program
/// when the site coordinate is an interpolated register (so repeated bodies
/// sit adjacent and [`optimize`]'s CSE can share their common fetches), and
/// immediately before the site when the coordinate is computed (a dependent
/// fetch). Producer temps are renamed into registers the consumer does not
/// use — running [`optimize`] + [`compact_temps`] to make room when needed
/// — and producer `DEF`s are merged by bit-identical value reuse.
///
/// `bindings` must describe the *fused* pass (its pass-bound constants
/// reserve registers from `DEF` merging; `outputs_read` seeds the interim
/// optimize). The transform is exact per fragment by construction: every
/// rewrite is a rename into unobservable registers, and the coordinate
/// handling is justified per [`InlineMode`]. Errors — resource exhaustion
/// or an illegal producer shape — leave fusion to fall back to the
/// materialized two-pass form.
pub fn inline_producer(
    consumer: &Program,
    bindings: &PassBindings,
    req: &InlineRequest<'_>,
) -> Result<(Program, usize), String> {
    if malformed(consumer) || malformed(req.producer) {
        return Err("malformed program".into());
    }
    if req.sampler_map.contains(&req.sampler) {
        return Err("sampler_map reuses the dying sampler slot".into());
    }
    if req
        .sampler_map
        .iter()
        .any(|&s| (s as usize) >= crate::isa::NUM_SAMPLERS)
    {
        return Err("sampler_map exceeds the sampler file".into());
    }
    // Producer shape checks.
    let mut defined = [false; NUM_CONSTS];
    for d in &req.producer.defs {
        defined[d.index as usize] = true;
    }
    for instr in &req.producer.instrs {
        match instr.dst.reg {
            Reg::Temp(_) | Reg::Output(0) => {}
            _ => return Err("producer writes an output other than O0".into()),
        }
        if let Some(s) = instr.sampler {
            if (s as usize) >= req.sampler_map.len() {
                return Err(format!("producer sampler tex{s} missing from sampler_map"));
            }
        }
        for (si, s) in instr.srcs.iter().enumerate() {
            match s.reg {
                Reg::Output(_) => return Err("producer reads an output register".into()),
                Reg::Const(c) if !defined[c as usize] => {
                    return Err(format!(
                        "producer reads pass-bound constant C{c} (value unknown at fuse time)"
                    ));
                }
                Reg::TexCoord(t) => match req.mode {
                    InlineMode::SubstituteSiteCoord => {
                        let is_site_coord = instr.op == Opcode::Tex
                            && si == 0
                            && s.swizzle.0[0] == 0
                            && s.swizzle.0[1] == 1
                            && !s.negate;
                        if !is_site_coord {
                            return Err(format!(
                                "producer reads T{t} outside a plain TEX coordinate; \
                                 cannot substitute the site coordinate"
                            ));
                        }
                    }
                    InlineMode::KeepProducerCoords => {
                        if (t as usize) >= req.texcoord_map.len() {
                            return Err(format!(
                                "producer coordinate T{t} missing from texcoord_map"
                            ));
                        }
                    }
                },
                _ => {}
            }
        }
    }
    let producer_temps: Vec<u8> = {
        let mut seen = [false; NUM_TEMPS];
        for i in &req.producer.instrs {
            if let Reg::Temp(r) = i.dst.reg {
                seen[r as usize] = true;
            }
            for s in &i.srcs {
                if let Reg::Temp(r) = s.reg {
                    seen[r as usize] = true;
                }
            }
        }
        (0..NUM_TEMPS as u8).filter(|&r| seen[r as usize]).collect()
    };
    let needed = producer_temps.len() + 1; // body temps + the O0 holder

    let mut cur = consumer.clone();
    let mut sites = 0usize;
    let has_site = |p: &Program| {
        p.instrs
            .iter()
            .any(|i| i.op == Opcode::Tex && i.sampler == Some(req.sampler))
    };
    loop {
        if !has_site(&cur) {
            return Ok((cur, sites));
        }
        // Make room for the body's fresh temps, shrinking the program first
        // when the file is short.
        let free_temps = |p: &Program| -> Vec<u8> {
            let mut seen = [false; NUM_TEMPS];
            for i in &p.instrs {
                if let Reg::Temp(r) = i.dst.reg {
                    seen[r as usize] = true;
                }
                for s in &i.srcs {
                    if let Reg::Temp(r) = s.reg {
                        seen[r as usize] = true;
                    }
                }
            }
            (0..NUM_TEMPS as u8)
                .filter(|&r| !seen[r as usize])
                .collect()
        };
        let mut free = free_temps(&cur);
        if free.len() < needed {
            let (optimized, _) = optimize(&cur, bindings);
            cur = optimized;
            compact_temps(&mut cur);
            free = free_temps(&cur);
            if free.len() < needed {
                return Err("temp registers exhausted by inlining".into());
            }
        }
        // The optimize above may have moved or removed sites; re-find.
        let Some(site_idx) = cur
            .instrs
            .iter()
            .position(|i| i.op == Opcode::Tex && i.sampler == Some(req.sampler))
        else {
            return Ok((cur, sites));
        };
        let site = cur.instrs[site_idx].clone();
        let site_coord = site.srcs[0];

        let mut temp_map = [0u8; NUM_TEMPS];
        for (k, &r) in producer_temps.iter().enumerate() {
            temp_map[r as usize] = free[k];
        }
        let result_temp = free[producer_temps.len()];

        // Merge the producer's DEFs by bit-identical value, after any
        // interim optimize may have pruned earlier copies.
        let mut new_defs: Vec<ConstDef> = Vec::new();
        let mut const_map = [0u8; NUM_CONSTS];
        for d in &req.producer.defs {
            let idx = materialize(&cur.defs, &mut new_defs, bindings, d.value)
                .ok_or_else(|| "constant registers exhausted by inlining".to_string())?;
            const_map[d.index as usize] = idx;
        }
        cur.defs.extend(new_defs);

        let map_src = |s: &Src| -> Src {
            let reg = match s.reg {
                Reg::Temp(r) => Reg::Temp(temp_map[r as usize]),
                Reg::Const(c) => Reg::Const(const_map[c as usize]),
                Reg::TexCoord(t) => match req.mode {
                    InlineMode::KeepProducerCoords => Reg::TexCoord(req.texcoord_map[t as usize]),
                    // Non-TEX TexCoord reads were rejected above; TEX
                    // coordinates are substituted wholesale below.
                    InlineMode::SubstituteSiteCoord => Reg::TexCoord(t),
                },
                other => other,
            };
            Src { reg, ..*s }
        };
        let mut body: Vec<Instr> = Vec::with_capacity(req.producer.instrs.len());
        for instr in &req.producer.instrs {
            let mut out = instr.clone();
            out.dst.reg = match out.dst.reg {
                Reg::Temp(r) => Reg::Temp(temp_map[r as usize]),
                Reg::Output(0) => Reg::Temp(result_temp),
                other => other,
            };
            for s in &mut out.srcs {
                *s = map_src(s);
            }
            if out.op == Opcode::Tex {
                out.sampler = Some(req.sampler_map[out.sampler.unwrap() as usize]);
                if req.mode == InlineMode::SubstituteSiteCoord {
                    out.srcs[0] = site_coord;
                }
            }
            body.push(out);
        }
        // The fetch becomes a register move from the recomputed result.
        let mut replacement = site;
        replacement.op = Opcode::Mov;
        replacement.sampler = None;
        replacement.srcs = vec![Src {
            reg: Reg::Temp(result_temp),
            swizzle: Swizzle::IDENTITY,
            negate: false,
        }];
        cur.instrs[site_idx] = replacement;
        // Interpolated coordinates are program invariants, so bodies that
        // only depend on them can sit at the top — adjacent to bodies from
        // other sites, where CSE shares their common fetches. A computed
        // (dependent) coordinate pins the body to its site.
        let insert_at = match req.mode {
            InlineMode::KeepProducerCoords => 0,
            InlineMode::SubstituteSiteCoord => match site_coord.reg {
                Reg::TexCoord(_) => 0,
                _ => site_idx,
            },
        };
        cur.instrs.splice(insert_at..insert_at, body);
        sites += 1;
    }
}

// ---------------------------------------------------------------------------
// Cross-pass pipeline contract checker
// ---------------------------------------------------------------------------

/// Declared properties of one texture resource flowing between pipeline
/// stages.
#[derive(Debug, Clone)]
pub struct ResourceDecl {
    /// Unique resource name referenced by [`StageContract`]s.
    pub name: String,
    /// Address mode the texture is configured with.
    pub mode: AddressMode,
}

/// One stage of a multi-pass pipeline contract: the program it runs, the
/// bindings it runs under, and the resources it consumes and produces.
#[derive(Debug, Clone)]
pub struct StageContract {
    /// Stage name, used in error messages.
    pub name: String,
    /// The fragment program this stage shades with.
    pub program: Program,
    /// Exact pass bindings the stage runs under.
    pub bindings: PassBindings,
    /// One entry per bound sampler, in sampler order: the resource name and
    /// the address mode the program's fetch pattern requires (if any).
    pub inputs: Vec<(String, Option<AddressMode>)>,
    /// The resource this stage renders into.
    pub output: String,
}

/// Statically validate producer→consumer contracts across a pipeline.
///
/// Checks, per stage: the program verifies error-free under its bindings;
/// the sampler count matches the declared inputs; the render target is not
/// simultaneously bound as an input; every referenced resource is declared;
/// each input's required address mode matches the resource's declared mode;
/// and any input produced by the pipeline is produced by an *earlier* stage.
/// Returns human-readable errors — empty means the pipeline is accepted.
pub fn check_pipeline(
    profile: &GpuProfile,
    resources: &[ResourceDecl],
    stages: &[StageContract],
) -> Vec<String> {
    let mut errors = Vec::new();
    for (i, r) in resources.iter().enumerate() {
        if resources[..i].iter().any(|prev| prev.name == r.name) {
            errors.push(format!("resource `{}` declared twice", r.name));
        }
    }
    let find = |name: &str| resources.iter().find(|r| r.name == name);
    // First stage index producing each resource name.
    let producer = |name: &str| stages.iter().position(|s| s.output == name);
    for (k, stage) in stages.iter().enumerate() {
        let diags = verify::verify(&stage.program, profile, Some(&stage.bindings));
        for d in diags
            .iter()
            .filter(|d| d.severity == verify::Severity::Error)
        {
            errors.push(format!("stage `{}`: {}", stage.name, d.message));
        }
        if stage.inputs.len() != stage.bindings.samplers {
            errors.push(format!(
                "stage `{}`: {} input(s) declared but bindings specify {} sampler(s)",
                stage.name,
                stage.inputs.len(),
                stage.bindings.samplers
            ));
        }
        if find(&stage.output).is_none() {
            errors.push(format!(
                "stage `{}`: output resource `{}` is not declared",
                stage.name, stage.output
            ));
        }
        for (si, (input, required)) in stage.inputs.iter().enumerate() {
            if input == &stage.output {
                errors.push(format!(
                    "stage `{}`: renders into `{}` while sampling it via tex{si}",
                    stage.name, stage.output
                ));
            }
            let Some(decl) = find(input) else {
                errors.push(format!(
                    "stage `{}`: input resource `{input}` is not declared",
                    stage.name
                ));
                continue;
            };
            if let Some(required) = required {
                if *required != decl.mode {
                    errors.push(format!(
                        "stage `{}`: tex{si} (`{input}`) requires address mode {required:?} \
                         but the resource is declared {:?}",
                        stage.name, decl.mode
                    ));
                }
            }
            if let Some(pk) = producer(input) {
                if pk >= k {
                    errors.push(format!(
                        "stage `{}`: consumes `{input}` which is first produced by later \
                         stage `{}`",
                        stage.name, stages[pk].name
                    ));
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::interp::{execute, resolve_constants, FragmentInput};
    use crate::texture::Texture2D;
    use crate::verify::has_errors;

    fn bindings() -> PassBindings {
        PassBindings {
            samplers: 2,
            texcoord_sets: 2,
            constants: vec![],
            outputs_read: [true, false, false, false],
        }
    }

    /// Optimize under `b` and assert bit-identical O0 on a spread of inputs.
    fn assert_exact(src: &str, b: &PassBindings) -> (Program, OptReport) {
        let program = assemble(src).unwrap();
        let (opt, report) = optimize(&program, b);
        let t0 = Texture2D::from_flat(
            4,
            4,
            &(0..64).map(|i| i as f32 * 0.3 - 3.0).collect::<Vec<_>>(),
        );
        let t1 = Texture2D::from_flat(
            4,
            4,
            &(0..64)
                .map(|i| (i * 5 % 11) as f32 * 0.7)
                .collect::<Vec<_>>(),
        );
        let ca = resolve_constants(&program, &[]);
        let cb = resolve_constants(&opt, &[]);
        for &(u, v) in &[(0.1f32, 0.9f32), (0.6, 0.2), (0.95, 0.55)] {
            let mut input = FragmentInput::zero();
            input.texcoords[0] = [u, v, 0.0, 1.0];
            input.texcoords[1] = [v, u, 0.0, 1.0];
            let a = execute(&program, &input, &ca, &[&t0, &t1], None);
            let o = execute(&opt, &input, &cb, &[&t0, &t1], None);
            assert_eq!(
                a.colors[0].map(f32::to_bits),
                o.colors[0].map(f32::to_bits),
                "results diverged for {}",
                program.name
            );
        }
        assert!(
            !has_errors(&verify::verify(&opt, &GpuProfile::fx5950_ultra(), Some(b))),
            "optimized program fails verification"
        );
        (opt, report)
    }

    /// Schedule `src` for the batch executor and assert bit-identical
    /// execution (all outputs, all texel counts) on a spread of inputs.
    fn assert_schedule_exact(src: &str) -> Program {
        let program = assemble(src).unwrap();
        let scheduled = schedule_for_batch(&program);
        assert_eq!(scheduled.len(), program.len(), "count-preserving");
        let tex_order = |p: &Program| {
            p.instrs
                .iter()
                .filter(|i| i.op == Opcode::Tex)
                .map(|i| (i.sampler, i.srcs[0].reg))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            tex_order(&scheduled),
            tex_order(&program),
            "TEX chain order must be pinned"
        );
        let t0 = Texture2D::from_flat(
            4,
            4,
            &(0..64).map(|i| i as f32 * 0.3 - 3.0).collect::<Vec<_>>(),
        );
        let t1 = Texture2D::from_flat(
            4,
            4,
            &(0..64)
                .map(|i| (i * 5 % 11) as f32 * 0.7)
                .collect::<Vec<_>>(),
        );
        let ca = resolve_constants(&program, &[]);
        let cb = resolve_constants(&scheduled, &[]);
        for &(u, v) in &[(0.1f32, 0.9f32), (0.6, 0.2), (0.95, 0.55)] {
            let mut input = FragmentInput::zero();
            input.texcoords[0] = [u, v, 0.0, 1.0];
            input.texcoords[1] = [v, u, 0.0, 1.0];
            let a = execute(&program, &input, &ca, &[&t0, &t1], None);
            let s = execute(&scheduled, &input, &cb, &[&t0, &t1], None);
            assert_eq!(
                a.colors.map(|c| c.map(f32::to_bits)),
                s.colors.map(|c| c.map(f32::to_bits)),
                "scheduling changed results:\n{}",
                scheduled.to_asm()
            );
            assert_eq!(a.texel_fetches, s.texel_fetches);
        }
        scheduled
    }

    #[test]
    fn schedule_hoists_independent_tex_fetches() {
        // The second TEX doesn't depend on the ADD between them, so it is
        // hoisted into the leading gather cluster.
        let s = assert_schedule_exact(
            "TEX R0, T0, tex0\nADD R1, R0, R0.x\nTEX R2, T1, tex1\nMUL OC, R1, R2",
        );
        let ops: Vec<Opcode> = s.instrs.iter().map(|i| i.op).collect();
        assert_eq!(
            ops,
            vec![Opcode::Tex, Opcode::Tex, Opcode::Add, Opcode::Mul],
            "{}",
            s.to_asm()
        );
    }

    #[test]
    fn schedule_respects_dependent_tex_chains() {
        // The second TEX reads R0 (a dependent fetch) — it cannot move
        // above its producer.
        let s = assert_schedule_exact("TEX R0, T0, tex0\nTEX R1, R0, tex1\nADD OC, R1, R0");
        let ops: Vec<Opcode> = s.instrs.iter().map(|i| i.op).collect();
        assert_eq!(ops, vec![Opcode::Tex, Opcode::Tex, Opcode::Add]);
    }

    #[test]
    fn schedule_preserves_war_and_waw_hazards() {
        // R0 is read (WAR) then rewritten (WAW) — the MOVs must not cross
        // the TEX or each other.
        let s = assert_schedule_exact("MOV R0, T0\nMOV R1, R0\nTEX R0, T1, tex0\nADD OC, R0, R1");
        let asm = s.to_asm();
        let scalar = assemble("MOV R0, T0\nMOV R1, R0\nTEX R0, T1, tex0\nADD OC, R0, R1").unwrap();
        assert_eq!(asm, schedule_for_batch(&scalar).to_asm(), "deterministic");
    }

    #[test]
    fn copy_propagation_removes_the_copy() {
        let (opt, report) = assert_exact(
            "TEX R0, T0, tex0\nMOV R1, R0\nADD OC, R1, R1.x",
            &bindings(),
        );
        assert_eq!(opt.len(), 2, "{}", opt.to_asm());
        assert!(report.counters.copies_propagated >= 1);
        assert_eq!(report.counters.dead_instructions, 1);
    }

    #[test]
    fn swizzle_and_negate_compose_through_copies() {
        let (opt, _) = assert_exact(
            "TEX R0, T0, tex0\nMOV R1, -R0.yzwx\nSUB OC, T1, -R1.wxyz",
            &bindings(),
        );
        assert_eq!(opt.len(), 2, "{}", opt.to_asm());
        // -(-R0.yzwx).wxyz == R0.xyzw read through the composed swizzle.
        assert_eq!(opt.instrs[1].srcs[1].reg, Reg::Temp(0));
        assert!(!opt.instrs[1].srcs[1].negate);
    }

    #[test]
    fn constant_folding_materialises_a_def() {
        let (opt, report) = assert_exact(
            "DEF C0, 2, 3, 4, 5\nADD R0, C0, C0\nMUL OC, T0, R0",
            &bindings(),
        );
        assert_eq!(report.counters.consts_folded, 1);
        assert_eq!(opt.len(), 1, "{}", opt.to_asm());
        // The folded vector reaches the MUL directly from a DEF.
        assert!(matches!(opt.instrs[0].srcs[1].reg, Reg::Const(_)));
        let c = match opt.instrs[0].srcs[1].reg {
            Reg::Const(c) => c,
            _ => unreachable!(),
        };
        let def = opt.defs.iter().find(|d| d.index == c).unwrap();
        assert_eq!(def.value, [4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn pass_bound_constants_are_never_folded() {
        let mut b = bindings();
        b.constants = vec![0];
        let (opt, report) = assert_exact("ADD R0, C0, C0\nMUL OC, T0, R0", &b);
        assert_eq!(report.counters.consts_folded, 0);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn tex_cse_removes_the_duplicate_fetch() {
        let (opt, report) = assert_exact(
            "TEX R0, T0, tex0\nTEX R1, T0, tex0\nADD OC, R0, R1",
            &bindings(),
        );
        assert_eq!(report.counters.tex_cse_replaced, 1);
        assert_eq!(opt.tex_count(), 1, "{}", opt.to_asm());
    }

    #[test]
    fn mul_add_fuses_to_mad() {
        let (opt, report) = assert_exact(
            "TEX R0, T0, tex0\nTEX R1, T1, tex1\nMUL R2, R0, R1\nADD OC, R2, R1",
            &bindings(),
        );
        assert_eq!(report.counters.mads_fused, 1);
        assert_eq!(opt.len(), 3, "{}", opt.to_asm());
        assert_eq!(opt.instrs[2].op, Opcode::Mad);
    }

    #[test]
    fn mul_dp4_ones_fuses_to_dp4() {
        let (opt, report) = assert_exact(
            "DEF C1, 1, 1, 1, 1\nTEX R0, T0, tex0\nTEX R1, T1, tex1\n\
             MUL R2, R0, R1\nDP4 R3, R2, C1\nADD OC, R3, R0",
            &bindings(),
        );
        assert_eq!(report.counters.dots_fused, 1);
        assert_eq!(opt.len(), 4, "{}", opt.to_asm());
        // The all-ones DEF dies with the fusion.
        assert_eq!(report.counters.defs_removed, 1);
    }

    #[test]
    fn accumulator_shaped_dot_fuses_despite_later_reads() {
        // `MUL R2, a, b; DP4 R2, R2, ones` fully buries the MUL result in
        // the DP4's own write-back, so the later read of R2 observes the
        // dot product, never the product vector — fusion is legal.
        let (opt, report) = assert_exact(
            "DEF C1, 1, 1, 1, 1\nTEX R0, T0, tex0\nTEX R1, T1, tex1\n\
             MUL R2, R0, R1\nDP4 R2, R2, C1\nADD OC, R2, R0",
            &bindings(),
        );
        assert_eq!(report.counters.dots_fused, 1, "{}", opt.to_asm());
        assert_eq!(opt.len(), 4, "{}", opt.to_asm());
    }

    #[test]
    fn fusion_refuses_when_the_mul_result_is_still_read() {
        let (opt, report) = assert_exact(
            "TEX R0, T0, tex0\nTEX R1, T1, tex1\nMUL R2, R0, R1\n\
             ADD R3, R2, R1\nADD OC, R3, R2",
            &bindings(),
        );
        assert_eq!(report.counters.mads_fused, 0);
        assert_eq!(opt.len(), 5);
    }

    #[test]
    fn dead_lanes_and_instructions_are_eliminated() {
        let b = bindings();
        let program = assemble("TEX R0, T0, tex0\nADD R1, R0, R0\nMOV OC.x, R0").unwrap();
        let (opt, report) = optimize(&program, &b);
        // ADD R1 is never read; OC.x only needs lane x of the TEX.
        assert_eq!(report.counters.dead_instructions, 1);
        assert!(opt.len() <= 2, "{}", opt.to_asm());
    }

    #[test]
    fn output_coalescing_renames_the_def_range() {
        let (opt, report) = assert_exact(
            "DEF C0, 0, 0, 0, 0\nTEX R0, T0, tex0\nMOV R1, R0.x\nMOV R1.yw, C0\nMOV OC, R1",
            &bindings(),
        );
        assert_eq!(report.counters.outputs_coalesced, 1);
        assert_eq!(opt.len(), 3, "{}", opt.to_asm());
        assert!(opt
            .instrs
            .iter()
            .any(|i| i.dst.reg == Reg::Output(0) && i.dst.mask != [true; 4]));
    }

    #[test]
    fn malformed_programs_are_returned_unchanged() {
        let mut program = assemble("TEX R0, T0, tex0\nMOV OC, R0").unwrap();
        program.instrs[0].sampler = None; // structurally broken TEX
        let (opt, report) = optimize(&program, &bindings());
        assert_eq!(opt, program);
        assert_eq!(report.before, report.after);
        assert_eq!(report.counters, OptCounters::default());
    }

    #[test]
    fn liveness_and_reaching_defs_agree_with_the_verifier_helpers() {
        let p = assemble("TEX R0, T0, tex0\nMOV R1, R0\nADD OC, R1, R0").unwrap();
        let live = liveness(&p.instrs, [true, false, false, false]);
        // After the TEX, both R0 (read twice) and nothing else is live.
        assert_eq!(live.temps_after[0][0], 0b1111);
        assert_eq!(live.temps_after[1][1], 0b1111);
        assert_eq!(live.temps_after[2][0], 0);
        let rd = reaching_defs(&p.instrs);
        assert_eq!(rd[1][0], [Some(0); 4]);
        assert_eq!(rd[2][1], [Some(1); 4]);
    }

    /// Shade `p` per pixel of a `w x h` target under `sets`, sampling
    /// `textures`, exactly as the rasterizer would — the reference for the
    /// compaction and inlining exactness tests.
    fn shade(
        p: &Program,
        sets: &[crate::raster::TexCoordSet],
        textures: &[&Texture2D],
        w: usize,
        h: usize,
    ) -> Vec<[u32; 4]> {
        let consts = resolve_constants(p, &[]);
        let mut out = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let input = crate::raster::fragment_input(sets, x, y, w, h);
                let r = execute(p, &input, &consts, textures, None);
                out.push(r.colors[0].map(f32::to_bits));
            }
        }
        out
    }

    fn checker_tex(seed: u64) -> Texture2D {
        let mut t = Texture2D::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                let base = (seed * 37 + (y * 4 + x) as u64 * 13) % 101;
                t.set_texel(
                    x,
                    y,
                    [
                        base as f32 * 0.11 - 3.0,
                        base as f32 * 0.07 + 0.5,
                        base as f32 * 0.03,
                        1.0,
                    ],
                );
            }
        }
        t
    }

    #[test]
    fn compact_temps_reuses_dead_registers_exactly() {
        let mut p =
            assemble("TEX R3, T0, tex0\nMOV R7, R3\nTEX R12, T1, tex1\nADD OC, R12, R7").unwrap();
        let orig = p.clone();
        // R3 dies at the MOV, so R12 can reuse its register: 3 webs, 2 regs.
        assert_eq!(compact_temps(&mut p), 2);
        let sets = [
            crate::raster::TexCoordSet::identity(),
            crate::raster::TexCoordSet::shifted_texels(1, -1, 4, 4),
        ];
        let a = checker_tex(1);
        let b = checker_tex(2);
        assert_eq!(
            shade(&orig, &sets, &[&a, &b], 4, 4),
            shade(&p, &sets, &[&a, &b], 4, 4)
        );
    }

    #[test]
    fn compact_temps_preserves_zero_init_reads() {
        // R5 is read before any write (observing the zero-initialised file)
        // and must land in a register no other web used first.
        let mut p = assemble("MOV R9, T0\nADD R8, R9, R5\nMOV OC, R8").unwrap();
        let orig = p.clone();
        assert_eq!(compact_temps(&mut p), 3);
        let sets = [crate::raster::TexCoordSet::identity()];
        let a = checker_tex(3);
        assert_eq!(
            shade(&orig, &sets, &[&a], 4, 4),
            shade(&p, &sets, &[&a], 4, 4)
        );
    }

    /// A normalize-shaped producer: two identity fetches combined into O0.
    fn norm_like_producer() -> Program {
        assemble(
            "!!prod\nDEF C0, 0.5, 0.25, 1, 1\nTEX R0, T0, tex0\nTEX R1, T0, tex1\n\
             ADD R2, R0, R1\nMUL OC, R2, C0.x",
        )
        .unwrap()
    }

    #[test]
    fn inline_substitutes_the_site_coordinate_exactly() {
        // Consumer samples the producer's output at its own position (T0)
        // and one texel shifted (T1) — the normalize→distance shape.
        let producer = norm_like_producer();
        let consumer =
            assemble("!!cons\nTEX R0, T0, tex0\nTEX R1, T1, tex0\nSUB OC, R0, R1").unwrap();
        let a = checker_tex(4);
        let b = checker_tex(5);
        // Materialize the producer's target texel for texel.
        let mut prod_tex = Texture2D::new(4, 4);
        let id = [crate::raster::TexCoordSet::identity()];
        for (i, bits) in shade(&producer, &id, &[&a, &b], 4, 4).iter().enumerate() {
            prod_tex.set_texel(i % 4, i / 4, bits.map(f32::from_bits));
        }
        let sets = [
            crate::raster::TexCoordSet::identity(),
            crate::raster::TexCoordSet::shifted_texels(1, -1, 4, 4),
        ];
        let reference = shade(&consumer, &sets, &[&prod_tex], 4, 4);
        let fused_bindings = PassBindings {
            samplers: 3,
            texcoord_sets: 2,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let (fused, sites) = inline_producer(
            &consumer,
            &fused_bindings,
            &InlineRequest {
                producer: &producer,
                sampler: 0,
                sampler_map: &[1, 2],
                texcoord_map: &[],
                mode: InlineMode::SubstituteSiteCoord,
            },
        )
        .unwrap();
        assert_eq!(sites, 2);
        let dummy = Texture2D::new(4, 4);
        let got = shade(&fused, &sets, &[&dummy, &a, &b], 4, 4);
        assert_eq!(reference, got, "fused:\n{}", fused.to_asm());
        // The optimized fused program still matches and verifies clean.
        let (opt, _) = optimize(&fused, &fused_bindings);
        assert_eq!(reference, shade(&opt, &sets, &[&dummy, &a, &b], 4, 4));
        assert!(!has_errors(&verify::verify(
            &opt,
            &GpuProfile::fx5950_ultra(),
            Some(&fused_bindings)
        )));
    }

    #[test]
    fn inline_keep_coords_collapses_an_accumulator_chain() {
        // Accumulator shape: each link adds a term of `src` (centre and
        // shifted) onto the running total fetched from the previous link.
        let link = "TEX R0, T0, tex0\nTEX R1, T1, tex0\nADD R2, R0, R1\n\
                    TEX R3, T0, tex1\nADD OC, R2, R3";
        let producer = assemble(&format!("!!p\n{link}")).unwrap();
        let consumer = assemble(&format!("!!c\n{link}")).unwrap();
        let src = checker_tex(6);
        let seed = checker_tex(7);
        let sets = [
            crate::raster::TexCoordSet::identity(),
            crate::raster::TexCoordSet::shifted_texels(-1, 1, 4, 4),
        ];
        let mut prod_tex = Texture2D::new(4, 4);
        for (i, bits) in shade(&producer, &sets, &[&src, &seed], 4, 4)
            .iter()
            .enumerate()
        {
            prod_tex.set_texel(i % 4, i / 4, bits.map(f32::from_bits));
        }
        let reference = shade(&consumer, &sets, &[&src, &prod_tex], 4, 4);
        let fused_bindings = PassBindings {
            samplers: 3,
            texcoord_sets: 2,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let (fused, sites) = inline_producer(
            &consumer,
            &fused_bindings,
            &InlineRequest {
                producer: &producer,
                sampler: 1,
                // The producer's src texture is already bound at slot 0;
                // its seed goes to a fresh slot.
                sampler_map: &[0, 2],
                texcoord_map: &[0, 1],
                mode: InlineMode::KeepProducerCoords,
            },
        )
        .unwrap();
        assert_eq!(sites, 1);
        let dummy = Texture2D::new(4, 4);
        assert_eq!(
            reference,
            shade(&fused, &sets, &[&src, &dummy, &seed], 4, 4)
        );
        // CSE shares the centre and shifted `src` fetches between the body
        // and the consumer's own fetches: 5 naive fetches become 3.
        let (opt, _) = optimize(&fused, &fused_bindings);
        assert_eq!(reference, shade(&opt, &sets, &[&src, &dummy, &seed], 4, 4));
        assert_eq!(opt.tex_count(), 3, "{}", opt.to_asm());
    }

    #[test]
    fn inline_at_a_dependent_site_stays_in_place() {
        // The site coordinate is computed (a dependent fetch), so the body
        // must execute at the site, after the coordinate exists.
        let producer = norm_like_producer();
        let consumer = assemble(
            "!!c\nDEF C0, 0.25, 0.25, 0, 0\nTEX R0, T0, tex1\nMAD R1, R0, C0.x, C0.y\n\
             TEX R2, R1, tex0\nADD OC, R2, R0",
        )
        .unwrap();
        let a = checker_tex(8);
        let b = checker_tex(9);
        let guide = checker_tex(10);
        let id = [crate::raster::TexCoordSet::identity()];
        let mut prod_tex = Texture2D::new(4, 4);
        for (i, bits) in shade(&producer, &id, &[&a, &b], 4, 4).iter().enumerate() {
            prod_tex.set_texel(i % 4, i / 4, bits.map(f32::from_bits));
        }
        let reference = shade(&consumer, &id, &[&prod_tex, &guide], 4, 4);
        let fused_bindings = PassBindings {
            samplers: 4,
            texcoord_sets: 1,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let (fused, sites) = inline_producer(
            &consumer,
            &fused_bindings,
            &InlineRequest {
                producer: &producer,
                sampler: 0,
                sampler_map: &[2, 3],
                texcoord_map: &[],
                mode: InlineMode::SubstituteSiteCoord,
            },
        )
        .unwrap();
        assert_eq!(sites, 1);
        let dummy = Texture2D::new(4, 4);
        assert_eq!(
            reference,
            shade(&fused, &id, &[&dummy, &guide, &a, &b], 4, 4),
            "{}",
            fused.to_asm()
        );
    }

    #[test]
    fn inline_rejects_illegal_producers() {
        let consumer = assemble("!!c\nTEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let b = PassBindings {
            samplers: 2,
            texcoord_sets: 1,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let req = |producer: &Program| -> Result<(Program, usize), String> {
            inline_producer(
                &consumer,
                &b,
                &InlineRequest {
                    producer,
                    sampler: 0,
                    sampler_map: &[1],
                    texcoord_map: &[],
                    mode: InlineMode::SubstituteSiteCoord,
                },
            )
        };
        // A coordinate register read outside a TEX cannot be substituted.
        let p = assemble("!!p\nTEX R0, T0, tex0\nADD OC, R0, T0").unwrap();
        assert!(req(&p).unwrap_err().contains("outside a plain TEX"));
        // Pass-bound constants have no value at fuse time.
        let p = assemble("!!p\nTEX R0, T0, tex0\nMUL OC, R0, C5").unwrap();
        assert!(req(&p).unwrap_err().contains("pass-bound"));
        // The dying sampler slot must not be reused by the map.
        let p = assemble("!!p\nTEX R0, T0, tex0\nMOV OC, R0").unwrap();
        let err = inline_producer(
            &consumer,
            &b,
            &InlineRequest {
                producer: &p,
                sampler: 0,
                sampler_map: &[0],
                texcoord_map: &[],
                mode: InlineMode::SubstituteSiteCoord,
            },
        )
        .unwrap_err();
        assert!(err.contains("dying sampler"), "{err}");
    }

    #[test]
    fn checker_accepts_a_well_formed_two_stage_chain() {
        let resources = vec![
            ResourceDecl {
                name: "src".into(),
                mode: AddressMode::ClampToEdge,
            },
            ResourceDecl {
                name: "mid".into(),
                mode: AddressMode::ClampToEdge,
            },
            ResourceDecl {
                name: "dst".into(),
                mode: AddressMode::ClampToEdge,
            },
        ];
        let program = assemble("TEX R0, T0, tex0\nADD OC, R0, R0").unwrap();
        let b = PassBindings {
            samplers: 1,
            texcoord_sets: 1,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let stages = vec![
            StageContract {
                name: "first".into(),
                program: program.clone(),
                bindings: b.clone(),
                inputs: vec![("src".into(), Some(AddressMode::ClampToEdge))],
                output: "mid".into(),
            },
            StageContract {
                name: "second".into(),
                program,
                bindings: b,
                inputs: vec![("mid".into(), None)],
                output: "dst".into(),
            },
        ];
        let errors = check_pipeline(&GpuProfile::fx5950_ultra(), &resources, &stages);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn checker_rejects_mode_mismatch_feedback_and_misorder() {
        let resources = vec![
            ResourceDecl {
                name: "src".into(),
                mode: AddressMode::Repeat,
            },
            ResourceDecl {
                name: "dst".into(),
                mode: AddressMode::ClampToEdge,
            },
        ];
        let program = assemble("TEX R0, T0, tex0\nADD OC, R0, R0").unwrap();
        let b = PassBindings {
            samplers: 1,
            texcoord_sets: 1,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let stage = |name: &str, input: &str, required, output: &str| StageContract {
            name: name.into(),
            program: program.clone(),
            bindings: b.clone(),
            inputs: vec![(input.into(), required)],
            output: output.into(),
        };
        // Address-mode mismatch.
        let errors = check_pipeline(
            &GpuProfile::fx5950_ultra(),
            &resources,
            &[stage("s", "src", Some(AddressMode::ClampToEdge), "dst")],
        );
        assert_eq!(errors.len(), 1, "{errors:?}");
        // Render-target feedback.
        let errors = check_pipeline(
            &GpuProfile::fx5950_ultra(),
            &resources,
            &[stage("s", "dst", None, "dst")],
        );
        assert!(!errors.is_empty());
        // Consumed before produced.
        let errors = check_pipeline(
            &GpuProfile::fx5950_ultra(),
            &resources,
            &[
                stage("a", "dst", None, "src"),
                stage("b", "src", None, "dst"),
            ],
        );
        assert!(errors.iter().any(|e| e.contains("later stage")));
    }
}
