//! Quickstart: classify a small synthetic cube with the reference AMC
//! implementation and inspect every intermediate product.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hyperspec::prelude::*;

fn main() {
    // Build a 16x16 cube with three vertical material strips and 8 bands.
    let materials = [
        [90.0f32, 20.0, 10.0, 10.0, 30.0, 40.0, 20.0, 10.0],
        [10.0f32, 15.0, 80.0, 70.0, 20.0, 10.0, 10.0, 15.0],
        [20.0f32, 20.0, 20.0, 20.0, 70.0, 80.0, 60.0, 40.0],
    ];
    let dims = CubeDims::new(16, 16, 8);
    let cube = Cube::from_fn(dims, Interleave::Bip, |x, _, b| materials[x * 3 / 16][b])
        .expect("valid dimensions");
    println!(
        "cube: {}x{} pixels, {} bands ({} KiB as 16-bit sensor data)",
        dims.width,
        dims.height,
        dims.bands,
        dims.sensor_bytes() / 1024
    );

    // Step 1+2 of AMC: normalization + morphological MEI scores.
    let normalized = hyperspec::hsi::morphology::normalize_cube(&cube);
    let se = StructuringElement::square(3).expect("3x3");
    let (mei, morph) = hyperspec::hsi::morphology::mei(&normalized, &se, SpectralDistance::Sid);
    let peak = mei.scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    println!("MEI: peak score {peak:.4} (material boundaries light up)");
    println!(
        "erosion/dilation indices range over the SE's {} neighbours (max index seen: {})",
        se.len(),
        morph.max_index.iter().max().unwrap()
    );

    // Steps 3+4: endmember selection + unmixing-based labels.
    let amc = AmcClassifier::new(AmcConfig::paper_default(3));
    let out = amc.classify(&cube).expect("AMC");
    println!("extracted {} endmembers:", out.class_count());
    for (i, e) in out.endmembers.iter().enumerate() {
        println!(
            "  endmember {i}: selected near ({}, {}), MEI score {:.4}",
            e.x, e.y, e.score
        );
    }

    // Print the label map.
    println!("label map:");
    for y in 0..dims.height {
        let row: String = (0..dims.width)
            .map(|x| char::from(b'A' + out.label(x, y) as u8))
            .collect();
        println!("  {row}");
    }

    // The three strips should carry three distinct labels.
    let (a, b, c) = (out.label(1, 8), out.label(8, 8), out.label(14, 8));
    assert!(a != b && b != c && a != c, "three materials, three classes");
    println!("three strips separated: labels {a}, {b}, {c} — quickstart OK");
}
