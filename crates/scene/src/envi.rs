//! ENVI-format cube I/O.
//!
//! AVIRIS products ship as a raw binary cube plus an ENVI ASCII header
//! describing dimensions, interleave and data type. This module writes and
//! reads that format (data type 4 = 32-bit float, band-interleave per the
//! header), which lets generated scenes round-trip to disk and be inspected
//! with standard remote-sensing tools.

use hsi::cube::{Cube, CubeDims, Interleave};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Errors from ENVI I/O.
#[derive(Debug)]
pub enum EnviError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Header missing or malformed.
    BadHeader(String),
    /// Raw file size disagrees with the header.
    SizeMismatch {
        /// Samples expected from the header.
        expected: usize,
        /// f32 samples actually present.
        actual: usize,
    },
}

impl std::fmt::Display for EnviError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnviError::Io(e) => write!(f, "io: {e}"),
            EnviError::BadHeader(m) => write!(f, "bad ENVI header: {m}"),
            EnviError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "raw size mismatch: expected {expected} samples, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for EnviError {}

impl From<io::Error> for EnviError {
    fn from(e: io::Error) -> Self {
        EnviError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, EnviError>;

/// Write `cube` as `<path>` (raw little-endian f32) plus `<path>.hdr`.
pub fn write_cube(path: &Path, cube: &Cube, description: &str) -> Result<()> {
    let dims = cube.dims();
    let header = format!(
        "ENVI\n\
         description = {{{description}}}\n\
         samples = {}\n\
         lines = {}\n\
         bands = {}\n\
         header offset = 0\n\
         file type = ENVI Standard\n\
         data type = 4\n\
         interleave = {}\n\
         byte order = 0\n",
        dims.width,
        dims.height,
        dims.bands,
        cube.interleave().envi_name()
    );
    fs::write(hdr_path(path), header)?;
    let mut raw = fs::File::create(path)?;
    let mut buf = Vec::with_capacity(cube.data().len() * 4);
    for v in cube.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    raw.write_all(&buf)?;
    Ok(())
}

/// Read a cube written by [`write_cube`] (or any f32 ENVI cube).
pub fn read_cube(path: &Path) -> Result<Cube> {
    let header = fs::read_to_string(hdr_path(path))?;
    let get = |key: &str| -> Result<String> {
        header
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once('=')?;
                (k.trim().eq_ignore_ascii_case(key)).then(|| v.trim().to_string())
            })
            .ok_or_else(|| EnviError::BadHeader(format!("missing `{key}`")))
    };
    let samples: usize = get("samples")?
        .parse()
        .map_err(|_| EnviError::BadHeader("samples not an integer".into()))?;
    let lines: usize = get("lines")?
        .parse()
        .map_err(|_| EnviError::BadHeader("lines not an integer".into()))?;
    let bands: usize = get("bands")?
        .parse()
        .map_err(|_| EnviError::BadHeader("bands not an integer".into()))?;
    let dtype = get("data type")?;
    if dtype != "4" {
        return Err(EnviError::BadHeader(format!(
            "unsupported data type {dtype} (only 4 = f32)"
        )));
    }
    let interleave = Interleave::from_envi_name(&get("interleave")?)
        .ok_or_else(|| EnviError::BadHeader("unknown interleave".into()))?;

    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() % 4 != 0 {
        return Err(EnviError::BadHeader(
            "raw length not a multiple of 4".into(),
        ));
    }
    let actual = raw.len() / 4;
    let dims = CubeDims::new(samples, lines, bands);
    if actual != dims.samples() {
        return Err(EnviError::SizeMismatch {
            expected: dims.samples(),
            actual,
        });
    }
    let data: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Cube::from_vec(dims, interleave, data)
        .map_err(|e| EnviError::BadHeader(format!("cube construction: {e}")))
}

fn hdr_path(path: &Path) -> std::path::PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".hdr");
    std::path::PathBuf::from(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::cube::Interleave;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hsi_envi_test_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_all_interleaves() {
        let dir = temp_dir("rt");
        for il in Interleave::ALL {
            let cube = Cube::from_fn(CubeDims::new(5, 4, 3), il, |x, y, b| {
                (x as f32) + 10.0 * (y as f32) + 0.5 * (b as f32)
            })
            .unwrap();
            let path = dir.join(format!("cube_{}.raw", il.envi_name()));
            write_cube(&path, &cube, "round trip test").unwrap();
            let back = read_cube(&path).unwrap();
            assert_eq!(back, cube);
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn header_contents() {
        let dir = temp_dir("hdr");
        let cube = Cube::zeros(CubeDims::new(7, 2, 9), Interleave::Bil).unwrap();
        let path = dir.join("cube.raw");
        write_cube(&path, &cube, "hello").unwrap();
        let header = fs::read_to_string(dir.join("cube.raw.hdr")).unwrap();
        assert!(header.starts_with("ENVI"));
        assert!(header.contains("samples = 7"));
        assert!(header.contains("lines = 2"));
        assert!(header.contains("bands = 9"));
        assert!(header.contains("interleave = bil"));
        assert!(header.contains("hello"));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn size_mismatch_detected() {
        let dir = temp_dir("sz");
        let cube = Cube::zeros(CubeDims::new(4, 4, 2), Interleave::Bip).unwrap();
        let path = dir.join("cube.raw");
        write_cube(&path, &cube, "x").unwrap();
        // Truncate the raw file.
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() - 8]).unwrap();
        assert!(matches!(
            read_cube(&path),
            Err(EnviError::SizeMismatch { .. })
        ));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_header_key_detected() {
        let dir = temp_dir("kb");
        let path = dir.join("cube.raw");
        fs::write(&path, [0u8; 16]).unwrap();
        fs::write(dir.join("cube.raw.hdr"), "ENVI\nsamples = 2\n").unwrap();
        assert!(matches!(read_cube(&path), Err(EnviError::BadHeader(_))));
        fs::remove_dir_all(dir).ok();
    }
}
