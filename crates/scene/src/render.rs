//! PGM/PPM rendering of bands, score maps and class maps.
//!
//! Fig. 5 of the paper shows (a) one spectral band of the scene and (b) the
//! colour-coded ground-truth map. These helpers regenerate both for any
//! scene: greyscale PGM for a single band or score image, colour PPM for a
//! label raster with a deterministic 32-entry palette.

use hsi::cube::Cube;
use std::fs;
use std::io;
use std::path::Path;

/// Render one spectral band to an 8-bit binary PGM (P5), min–max stretched.
pub fn band_to_pgm(cube: &Cube, band: usize) -> Vec<u8> {
    let dims = cube.dims();
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for y in 0..dims.height {
        for x in 0..dims.width {
            let v = cube.get(x, y, band);
            min = min.min(v);
            max = max.max(v);
        }
    }
    let range = (max - min).max(f32::MIN_POSITIVE);
    let mut out = format!("P5\n{} {}\n255\n", dims.width, dims.height).into_bytes();
    for y in 0..dims.height {
        for x in 0..dims.width {
            let v = (cube.get(x, y, band) - min) / range;
            out.push((v * 255.0).round().clamp(0.0, 255.0) as u8);
        }
    }
    out
}

/// Render a row-major score raster (e.g. an MEI image) to PGM.
pub fn scores_to_pgm(scores: &[f32], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(scores.len(), width * height, "score raster size");
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in scores {
        min = min.min(v);
        max = max.max(v);
    }
    let range = (max - min).max(f32::MIN_POSITIVE);
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    for &v in scores {
        out.push((((v - min) / range) * 255.0).round().clamp(0.0, 255.0) as u8);
    }
    out
}

/// Deterministic colour for class `i` (golden-angle hue walk, full
/// saturation, alternating value so adjacent indices stay distinguishable).
pub fn class_color(i: usize) -> [u8; 3] {
    let h = (i as f64 * 137.508) % 360.0;
    let v = if i.is_multiple_of(2) { 0.95 } else { 0.7 };
    hsv_to_rgb(h, 0.85, v)
}

fn hsv_to_rgb(h: f64, s: f64, v: f64) -> [u8; 3] {
    let c = v * s;
    let hp = h / 60.0;
    let x = c * (1.0 - ((hp % 2.0) - 1.0).abs());
    let (r, g, b) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    [
        ((r + m) * 255.0).round() as u8,
        ((g + m) * 255.0).round() as u8,
        ((b + m) * 255.0).round() as u8,
    ]
}

/// Render a label raster to a binary PPM (P6) with the class palette.
pub fn labels_to_ppm(labels: &[u16], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(labels.len(), width * height, "label raster size");
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for &l in labels {
        out.extend_from_slice(&class_color(l as usize));
    }
    out
}

/// Write bytes to a file (convenience wrapper used by the harness bins).
pub fn write_file(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::cube::{CubeDims, Interleave};

    #[test]
    fn pgm_header_and_stretch() {
        let cube = Cube::from_fn(CubeDims::new(3, 2, 1), Interleave::Bip, |x, y, _| {
            (x + 3 * y) as f32
        })
        .unwrap();
        let pgm = band_to_pgm(&cube, 0);
        let header_end = pgm.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert!(pgm.starts_with(b"P5\n3 2\n255\n"));
        let pixels = &pgm[header_end..];
        assert_eq!(pixels.len(), 6);
        assert_eq!(pixels[0], 0); // min
        assert_eq!(pixels[5], 255); // max
    }

    #[test]
    fn scores_pgm_constant_input() {
        let pgm = scores_to_pgm(&[1.0; 4], 2, 2);
        assert!(pgm.starts_with(b"P5\n2 2\n255\n"));
        // Constant raster must not produce NaN — everything maps to 0.
        assert_eq!(&pgm[pgm.len() - 4..], &[0, 0, 0, 0]);
    }

    #[test]
    fn class_colors_distinct_for_table3() {
        let colors: Vec<[u8; 3]> = (0..32).map(class_color).collect();
        for i in 0..colors.len() {
            for j in i + 1..colors.len() {
                assert_ne!(colors[i], colors[j], "classes {i} and {j} share a colour");
            }
        }
    }

    #[test]
    fn ppm_structure() {
        let ppm = labels_to_ppm(&[0, 1, 2, 3], 2, 2);
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n2 2\n255\n".len() + 12);
    }

    #[test]
    #[should_panic(expected = "label raster size")]
    fn label_size_checked() {
        labels_to_ppm(&[0, 1], 2, 2);
    }
}
