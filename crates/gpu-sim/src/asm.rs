//! Textual assembler for fragment programs.
//!
//! The syntax follows the ARB/NV assembly the paper's Cg kernels compiled
//! down to:
//!
//! ```text
//! !!sid_partial                       # program name
//! DEF C0, 1e-12, 0.69314718, 1, 0    # constant definition
//! TEX R0, T0, tex0                   # sample texture unit 0 at coord set 0
//! MAX R0, R0, C0.x                   # epsilon guard (swizzle broadcast)
//! MAD_SAT OC.xy, R0, C0.y, -R1      # saturation, write mask, negation
//! # '#' and ';' start comments; blank lines are ignored
//! ```
//!
//! Errors report the 1-based source line and a description.

use crate::error::{GpuError, Result};
use crate::isa::{
    ConstDef, Dst, Instr, Opcode, Program, Reg, Src, Swizzle, NUM_CONSTS, NUM_OUTPUTS,
    NUM_SAMPLERS, NUM_TEMPS, NUM_TEXCOORDS,
};
use std::fmt;

/// The disassembler: a [`Program`] displays as assemblable source text —
/// `!!name`, `DEF`s, then one instruction per line (each via the existing
/// [`Instr`] `Display`). `assemble(&program.to_string())` reproduces the
/// program exactly (modulo source line numbers, which `Program` equality
/// ignores), so optimized kernels can be dumped, diffed, and re-assembled.
impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_asm())
    }
}

/// Assemble a source string into a [`Program`].
///
/// Every instruction and `DEF` remembers its 1-based source line, so
/// downstream diagnostics (the verifier, `shader-lint`) can point back into
/// the text. A second `!!name` directive and a `DEF` that redefines an
/// already-`DEF`ed constant register are rejected here — both are always
/// authoring mistakes and the later value would silently win.
pub fn assemble(source: &str) -> Result<Program> {
    let mut program = Program::default();
    let mut named_on: Option<usize> = None;
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        if let Some(name) = text.strip_prefix("!!") {
            if let Some(prev) = named_on {
                return Err(err(
                    line,
                    format!("duplicate `!!` name directive (program already named on line {prev})"),
                ));
            }
            named_on = Some(line);
            program.name = name.trim().to_string();
            continue;
        }
        let (mnemonic, rest) = text
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(line, "instruction needs operands"))?;
        if mnemonic.eq_ignore_ascii_case("DEF") {
            let def = parse_def(line, rest)?;
            if let Some(prev) = program.defs.iter().find(|d| d.index == def.index) {
                return Err(err(
                    line,
                    format!(
                        "duplicate DEF for C{} (first defined on line {})",
                        def.index, prev.line
                    ),
                ));
            }
            program.defs.push(def);
            continue;
        }
        program.instrs.push(parse_instr(line, mnemonic, rest)?);
    }
    Ok(program)
}

fn err(line: usize, message: impl Into<String>) -> GpuError {
    GpuError::AssemblyError {
        line,
        message: message.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find('#')
        .into_iter()
        .chain(line.find(';'))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn parse_def(line: usize, rest: &str) -> Result<ConstDef> {
    let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
    if parts.len() != 5 {
        return Err(err(line, "DEF needs: DEF Cn, x, y, z, w"));
    }
    let reg = parse_reg(line, parts[0])?;
    let idx = match reg {
        Reg::Const(i) => i,
        _ => return Err(err(line, "DEF target must be a constant register")),
    };
    let mut vals = [0.0f32; 4];
    for (slot, p) in vals.iter_mut().zip(&parts[1..]) {
        *slot = p
            .parse::<f32>()
            .map_err(|_| err(line, format!("bad float literal `{p}`")))?;
    }
    Ok(ConstDef {
        index: idx,
        value: vals,
        line,
    })
}

fn parse_instr(line: usize, mnemonic: &str, rest: &str) -> Result<Instr> {
    let upper = mnemonic.to_ascii_uppercase();
    let (op_name, saturate) = match upper.strip_suffix("_SAT") {
        Some(base) => (base.to_string(), true),
        None => (upper, false),
    };
    let op = Opcode::from_mnemonic(&op_name)
        .ok_or_else(|| err(line, format!("unknown opcode `{mnemonic}`")))?;
    let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
    let expected = 1 + op.arity() + usize::from(op == Opcode::Tex);
    if parts.len() != expected {
        return Err(err(
            line,
            format!(
                "{} expects {} operands, found {}",
                op.mnemonic(),
                expected,
                parts.len()
            ),
        ));
    }
    let mut dst = parse_dst(line, parts[0])?;
    dst.saturate = saturate;
    match dst.reg {
        Reg::Temp(_) | Reg::Output(_) => {}
        _ => return Err(err(line, "destination must be a temp or output register")),
    }
    let mut srcs = Vec::with_capacity(op.arity());
    for p in &parts[1..1 + op.arity()] {
        srcs.push(parse_src(line, p)?);
    }
    let sampler = if op == Opcode::Tex {
        Some(parse_sampler(line, parts[expected - 1])?)
    } else {
        None
    };
    Ok(Instr {
        op,
        dst,
        srcs,
        sampler,
        line,
    })
}

fn parse_sampler(line: usize, text: &str) -> Result<u8> {
    let lower = text.to_ascii_lowercase();
    let idx = lower
        .strip_prefix("tex")
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| err(line, format!("bad sampler `{text}` (expected texN)")))?;
    if (idx as usize) >= NUM_SAMPLERS {
        return Err(err(line, format!("sampler index {idx} out of range")));
    }
    Ok(idx)
}

fn parse_reg(line: usize, text: &str) -> Result<Reg> {
    let t = text.trim();
    if t.eq_ignore_ascii_case("OC") {
        return Ok(Reg::Output(0));
    }
    let (kind, digits) = t.split_at(1);
    let idx: u8 = digits
        .parse()
        .map_err(|_| err(line, format!("bad register `{text}`")))?;
    let reg = match kind.to_ascii_uppercase().as_str() {
        "R" if (idx as usize) < NUM_TEMPS => Reg::Temp(idx),
        "C" if (idx as usize) < NUM_CONSTS => Reg::Const(idx),
        "T" if (idx as usize) < NUM_TEXCOORDS => Reg::TexCoord(idx),
        "O" if (idx as usize) < NUM_OUTPUTS => Reg::Output(idx),
        "R" | "C" | "T" | "O" => {
            return Err(err(line, format!("register index out of range `{text}`")))
        }
        _ => return Err(err(line, format!("bad register `{text}`"))),
    };
    Ok(reg)
}

fn lane_of(line: usize, c: char) -> Result<u8> {
    Ok(match c.to_ascii_lowercase() {
        'x' | 'r' => 0,
        'y' | 'g' => 1,
        'z' | 'b' => 2,
        'w' | 'a' => 3,
        _ => return Err(err(line, format!("bad swizzle lane `{c}`"))),
    })
}

fn parse_src(line: usize, text: &str) -> Result<Src> {
    let mut t = text.trim();
    let negate = t.starts_with('-');
    if negate {
        t = t[1..].trim_start();
    }
    let (reg_text, swz_text) = match t.split_once('.') {
        Some((r, s)) => (r, Some(s)),
        None => (t, None),
    };
    let reg = parse_reg(line, reg_text)?;
    let swizzle = match swz_text {
        None => Swizzle::IDENTITY,
        Some(s) => {
            let chars: Vec<char> = s.chars().collect();
            match chars.len() {
                1 => Swizzle::splat(lane_of(line, chars[0])?),
                4 => {
                    let mut lanes = [0u8; 4];
                    for (slot, &c) in lanes.iter_mut().zip(&chars) {
                        *slot = lane_of(line, c)?;
                    }
                    Swizzle(lanes)
                }
                n => {
                    return Err(err(
                        line,
                        format!("swizzle must have 1 or 4 lanes, found {n}"),
                    ))
                }
            }
        }
    };
    Ok(Src {
        reg,
        swizzle,
        negate,
    })
}

fn parse_dst(line: usize, text: &str) -> Result<Dst> {
    let (reg_text, mask_text) = match text.split_once('.') {
        Some((r, m)) => (r, Some(m)),
        None => (text, None),
    };
    let reg = parse_reg(line, reg_text)?;
    let mask = match mask_text {
        None => [true; 4],
        Some(m) => {
            let mut mask = [false; 4];
            let mut last = -1i32;
            for c in m.chars() {
                let lane = lane_of(line, c)? as i32;
                if lane <= last {
                    return Err(err(line, "write mask lanes must be in xyzw order"));
                }
                mask[lane as usize] = true;
                last = lane;
            }
            mask
        }
    };
    Ok(Dst {
        reg,
        mask,
        saturate: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_representative_program() {
        let src = r#"
            !!sid_partial
            # epsilon / ln2 constants
            DEF C0, 1e-12, 0.69314718, 1, 0
            TEX R0, T0, tex0
            TEX R1, T1, tex0       ; neighbour
            MAX R0, R0, C0.x
            MAX R1, R1, C0.x
            RCP R2, R1
            MUL R2, R0, R2
            LG2 R2, R2
            MUL R2, R2, C0.y
            SUB R3, R0, R1
            MUL R3, R3, R2
            DP4 R3, R3, C1
            TEX R4, T0, tex1
            ADD OC, R4, R3
        "#;
        let p = assemble(src).unwrap();
        assert_eq!(p.name, "sid_partial");
        assert_eq!(p.defs.len(), 1);
        assert_eq!(p.defs[0].index, 0);
        assert_eq!(p.defs[0].value, [1e-12, std::f32::consts::LN_2, 1.0, 0.0]);
        assert_eq!(p.defs[0].line, 4);
        assert_eq!(p.len(), 13);
        assert_eq!(p.tex_count(), 3);
        assert_eq!(p.max_sampler(), Some(1));
        assert_eq!(p.instrs[12].dst.reg, Reg::Output(0));
        // Instructions carry their 1-based source line.
        assert_eq!(p.instrs[0].line, 5);
        assert_eq!(p.instrs[12].line, 17);
    }

    #[test]
    fn round_trips_through_to_asm() {
        let src = "!!rt\nDEF C2, 1, 2, 3, 4\nMAD_SAT R0.xy, R1.x, -C2, T0\nTEX OC, R0, tex5\n";
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&p1.to_asm()).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn saturation_and_negation() {
        let p = assemble("MOV_SAT R0, -R1.w").unwrap();
        assert!(p.instrs[0].dst.saturate);
        assert!(p.instrs[0].srcs[0].negate);
        assert_eq!(p.instrs[0].srcs[0].swizzle, Swizzle::splat(3));
    }

    #[test]
    fn rgba_lane_aliases() {
        let p = assemble("MOV R0, R1.rgba").unwrap();
        assert!(p.instrs[0].srcs[0].swizzle.is_identity());
        let p = assemble("MOV R0.x, R1.a").unwrap();
        assert_eq!(p.instrs[0].dst.mask, [true, false, false, false]);
        assert_eq!(p.instrs[0].srcs[0].swizzle, Swizzle::splat(3));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("MOV R0, R1\nBOGUS R0, R1").unwrap_err();
        match e {
            GpuError::AssemblyError { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("BOGUS"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn arity_is_enforced() {
        assert!(assemble("ADD R0, R1").is_err());
        assert!(assemble("ADD R0, R1, R2, R3").is_err());
        assert!(assemble("MAD R0, R1, R2, R3").is_ok());
        assert!(assemble("TEX R0, T0").is_err()); // missing sampler
    }

    #[test]
    fn destination_must_be_writable() {
        assert!(assemble("MOV C0, R1").is_err());
        assert!(assemble("MOV T0, R1").is_err());
        assert!(assemble("MOV OC, R1").is_ok());
        assert!(assemble("MOV O3, R1").is_ok());
    }

    #[test]
    fn register_ranges_checked() {
        assert!(assemble("MOV R16, R0").is_err());
        assert!(assemble("MOV R0, C32").is_err());
        assert!(assemble("MOV R0, T8").is_err());
        assert!(assemble("TEX R0, T0, tex15").is_ok());
        assert!(assemble("TEX R0, T0, tex16").is_err());
        assert!(assemble("MOV R0, X1").is_err());
    }

    #[test]
    fn def_validation() {
        assert!(assemble("DEF C0, 1, 2, 3").is_err());
        assert!(assemble("DEF R0, 1, 2, 3, 4").is_err());
        assert!(assemble("DEF C0, a, 2, 3, 4").is_err());
        assert!(assemble("DEF C31, 1, 2, 3, 4").is_ok());
    }

    #[test]
    fn duplicate_name_directive_rejected() {
        let e = assemble("!!first\nMOV R0, R1\n!!second\n").unwrap_err();
        match e {
            GpuError::AssemblyError { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("line 1"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn duplicate_def_rejected() {
        let e = assemble("DEF C3, 1, 2, 3, 4\nMOV R0, C3\nDEF C3, 5, 6, 7, 8\n").unwrap_err();
        match e {
            GpuError::AssemblyError { line, message } => {
                assert_eq!(line, 3);
                assert!(
                    message.contains("C3") && message.contains("line 1"),
                    "{message}"
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Different registers are fine.
        assert!(assemble("DEF C3, 1, 2, 3, 4\nDEF C4, 1, 2, 3, 4\n").is_ok());
    }

    #[test]
    fn bad_swizzles_rejected() {
        assert!(assemble("MOV R0, R1.xy").is_err()); // 2-lane swizzle unsupported
        assert!(assemble("MOV R0, R1.q").is_err());
        assert!(assemble("MOV R0.yx, R1").is_err()); // out-of-order mask
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = assemble("\n  # nothing\n ; nothing either\nMOV R0, R1 # tail\n").unwrap();
        assert_eq!(p.len(), 1);
    }
}
