//! Bench-delta regression gate: compare two `BENCH_results.json` documents
//! and fail on performance regressions or broken quality floors.
//!
//! Two kinds of gate, generalizing the ad-hoc per-metric CI checks this
//! module replaced:
//!
//! * **Relative** — wall-clock regressions of the current run against the
//!   checked-in baseline (`gpu_pipeline_wall_s`, `cpu_tail_wall_s`, every
//!   per-stage wall). Walls below a noise floor are skipped: a 1 ms stage
//!   doubling is scheduler jitter, not a regression.
//! * **Absolute** — floors/ceilings the current run must meet on its own:
//!   distance-stage wall-vs-modeled skew, optimizer dynamic-instruction
//!   reduction, fusion fetch reduction, modeled dual-device fleet speedup,
//!   and the schema-7 `analysis` floors (pack-overlap efficiency of the
//!   headline arm, trace-side load balance of every fleet arm).
//!
//! Driven by `tables -- bench-delta <baseline> <current>`; exit status 1
//! means at least one [`Violation`], 2 means usage/IO/schema error.

use crate::results::{opt_rollup, BenchRun};
use gpu_sim::device::GpuProfile;
use gpu_sim::timing;
use std::fmt;

/// Gate thresholds. The defaults encode the repo's CI contract; every field
/// has a matching `--` override on the `bench-delta` subcommand.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Max allowed relative wall-clock growth vs baseline, percent.
    pub max_stage_regress_pct: f64,
    /// Walls where baseline and current both sit below this are not gated
    /// (relative noise on a near-zero wall is meaningless).
    pub min_stage_wall_s: f64,
    /// Ceiling on the distance stage's measured-over-modeled skew.
    pub max_distance_skew: f64,
    /// Floor on the optimizer's dynamic-instruction reduction, percent.
    pub min_opt_reduction_pct: f64,
    /// Floor on fusion's static and measured fetch reduction, percent.
    pub min_fetch_reduction_pct: f64,
    /// Floor on the modeled 2×7800 GTX speedup over 1×.
    pub min_fleet_speedup: f64,
    /// Floor on the headline arm's pack-overlap efficiency. Only enforced
    /// when the arm actually packed (a single-chunk run has no packs).
    pub min_pack_overlap: f64,
    /// Floor on every fleet arm's trace-side load balance (mean/max device
    /// busy time).
    pub min_fleet_load_balance: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            max_stage_regress_pct: 25.0,
            min_stage_wall_s: 0.05,
            max_distance_skew: 150.0,
            min_opt_reduction_pct: 10.0,
            min_fetch_reduction_pct: 30.0,
            min_fleet_speedup: 1.8,
            min_pack_overlap: 0.5,
            min_fleet_load_balance: 0.6,
        }
    }
}

/// One failed gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which gate fired (stable identifier, e.g. `stage.distance.wall_s`).
    pub gate: String,
    /// Human-readable explanation with the numbers involved.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.gate, self.message)
    }
}

fn check_rel(v: &mut Vec<Violation>, thr: &Thresholds, gate: &str, baseline: f64, current: f64) {
    if baseline.max(current) < thr.min_stage_wall_s {
        return;
    }
    let limit = (baseline * (1.0 + thr.max_stage_regress_pct / 100.0)).max(thr.min_stage_wall_s);
    if current > limit {
        v.push(Violation {
            gate: gate.to_owned(),
            message: format!(
                "regressed {baseline:.3}s -> {current:.3}s \
                 (limit {limit:.3}s, +{:.0}% over a {:.3}s noise floor)",
                thr.max_stage_regress_pct, thr.min_stage_wall_s
            ),
        });
    }
}

/// Run every gate of `current` against `baseline`; empty result = pass.
pub fn compare(baseline: &BenchRun, current: &BenchRun, thr: &Thresholds) -> Vec<Violation> {
    let mut v = Vec::new();

    // Relative wall-clock gates.
    check_rel(
        &mut v,
        thr,
        "gpu_pipeline_wall_s",
        baseline.gpu_pipeline_s,
        current.gpu_pipeline_s,
    );
    check_rel(
        &mut v,
        thr,
        "cpu_tail_wall_s",
        baseline.cpu_tail_s,
        current.cpu_tail_s,
    );
    for ((name, base), (_, cur)) in baseline
        .stage_wall
        .as_named()
        .into_iter()
        .zip(current.stage_wall.as_named())
    {
        check_rel(&mut v, thr, &format!("stage.{name}.wall_s"), base, cur);
    }

    // Absolute gates on the current run.
    let device = GpuProfile::geforce_7800gtx();
    let modeled_ms = timing::gpu_time(&current.stages.distance, &device).total_ms();
    if modeled_ms <= 0.0 {
        v.push(Violation {
            gate: "stage.distance.skew".into(),
            message: "distance stage has no modeled time — counters broken?".into(),
        });
    } else {
        let skew = current.stage_wall.distance_s * 1e3 / modeled_ms;
        if skew > thr.max_distance_skew {
            v.push(Violation {
                gate: "stage.distance.skew".into(),
                message: format!(
                    "wall-over-modeled skew {skew:.1} exceeds ceiling {:.1}",
                    thr.max_distance_skew
                ),
            });
        }
    }

    let rollup = opt_rollup(current);
    if rollup.reduction_pct() < thr.min_opt_reduction_pct {
        v.push(Violation {
            gate: "opt.dynamic_reduction_pct".into(),
            message: format!(
                "optimizer removed only {:.2}% < {:.0}% of dynamic instructions",
                rollup.reduction_pct(),
                thr.min_opt_reduction_pct
            ),
        });
    }

    let fus = &current.fusion;
    if !fus.enabled {
        v.push(Violation {
            gate: "fusion.enabled".into(),
            message: "fusion must be on in the benchmarked run".into(),
        });
    } else {
        let fused_fetches =
            current.stages.normalize.texel_fetches + current.stages.distance.texel_fetches;
        for (gate, pct) in [
            (
                "fusion.static_fetch_reduction_pct",
                fus.static_fetch_reduction_pct(),
            ),
            (
                "fusion.measured_fetch_reduction_pct",
                fus.measured_fetch_reduction_pct(fused_fetches),
            ),
        ] {
            if pct < thr.min_fetch_reduction_pct {
                v.push(Violation {
                    gate: gate.into(),
                    message: format!(
                        "fetch reduction {pct:.2}% < {:.0}%",
                        thr.min_fetch_reduction_pct
                    ),
                });
            }
        }
    }

    match current
        .fleet
        .shapes
        .iter()
        .find(|s| s.name == "7800gtx+7800gtx")
    {
        None => v.push(Violation {
            gate: "fleet.scaling".into(),
            message: "no 7800gtx+7800gtx shape in the fleet block".into(),
        }),
        Some(dual) => {
            let speedup = dual.modeled_speedup(current.fleet.baseline_modeled_s);
            if speedup < thr.min_fleet_speedup {
                v.push(Violation {
                    gate: "fleet.scaling".into(),
                    message: format!(
                        "modeled 2x7800gtx speedup {speedup:.3} < {:.2}",
                        thr.min_fleet_speedup
                    ),
                });
            }
        }
    }

    // Analysis-block floors.
    if current.analysis.arms.is_empty() {
        v.push(Violation {
            gate: "analysis.arms".into(),
            message: "analysis block has no arms — tracing was off during the bench?".into(),
        });
    }
    for arm in &current.analysis.arms {
        if arm.name == "headline"
            && arm.pack_total_s > 0.0
            && arm.pack_overlap_efficiency() < thr.min_pack_overlap
        {
            v.push(Violation {
                gate: "analysis.headline.pack_overlap".into(),
                message: format!(
                    "pack-overlap efficiency {:.3} < {:.2} \
                     ({:.3}s of {:.3}s pack time hidden)",
                    arm.pack_overlap_efficiency(),
                    thr.min_pack_overlap,
                    arm.pack_hidden_s,
                    arm.pack_total_s
                ),
            });
        }
        if let Some(fleet) = &arm.fleet {
            if fleet.load_balance() < thr.min_fleet_load_balance {
                v.push(Violation {
                    gate: format!("analysis.{}.load_balance", arm.name),
                    message: format!(
                        "trace-side load balance {:.3} < {:.2} across {} devices",
                        fleet.load_balance(),
                        thr.min_fleet_load_balance,
                        fleet.devices.len()
                    ),
                });
            }
        }
    }

    v
}

/// Render a pass/fail report for the terminal.
pub fn render(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "bench-delta: all gates passed\n".into();
    }
    let mut s = format!("bench-delta: {} gate(s) FAILED\n", violations.len());
    for v in violations {
        s.push_str(&format!("  {v}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::tests::sample_run;

    /// The shared fixture with enough distance-stage counters to carry a
    /// modeled time (the serialization fixture zeroes them to exercise the
    /// null-skew path, which would trip the skew gate here).
    fn gated_run() -> BenchRun {
        let mut run = sample_run();
        run.stages.distance.passes = 8;
        run.stages.distance.fragments = 800_000;
        run.stages.distance.instructions = 8_000_000;
        // Stays under the fixture's unfused-arm fetch counters so the
        // measured fetch reduction clears its floor.
        run.stages.distance.texel_fetches = 20_000;
        run.stages.distance.bytes_written = 1 << 22;
        run.stage_wall.distance_s = 0.05;
        run
    }

    #[test]
    fn identical_runs_pass_every_gate() {
        let run = gated_run();
        let violations = compare(&run, &run, &Thresholds::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn injected_stage_regression_fails() {
        let baseline = gated_run();
        let mut current = gated_run();
        current.cpu_tail_s *= 1.5;
        current.stage_wall.normalize_s *= 1.4;
        let violations = compare(&baseline, &current, &Thresholds::default());
        let gates: Vec<_> = violations.iter().map(|v| v.gate.as_str()).collect();
        assert!(gates.contains(&"cpu_tail_wall_s"), "{gates:?}");
        assert!(gates.contains(&"stage.normalize.wall_s"), "{gates:?}");
    }

    #[test]
    fn sub_noise_floor_walls_are_not_gated() {
        let baseline = gated_run();
        let mut current = gated_run();
        // 0.011s -> 0.02s is an 82% regression but both sit under the
        // 0.05s noise floor: scheduler jitter, not a signal.
        current.stage_wall.upload_s = 0.02;
        let violations = compare(&baseline, &current, &Thresholds::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn crossing_the_noise_floor_is_still_gated() {
        let baseline = gated_run();
        let mut current = gated_run();
        current.stage_wall.upload_s = 0.5;
        let violations = compare(&baseline, &current, &Thresholds::default());
        assert!(
            violations.iter().any(|v| v.gate == "stage.upload.wall_s"),
            "{violations:?}"
        );
    }

    #[test]
    fn absolute_floors_fire_without_a_baseline_change() {
        let baseline = gated_run();
        let mut current = gated_run();
        // Kill the pack overlap on the headline arm and unbalance the
        // fleet arm far below the floor.
        current.analysis.arms[0].pack_hidden_s = 0.0;
        let fleet = current.analysis.arms[1].fleet.as_mut().unwrap();
        fleet.devices[1].busy_s = 0.05;
        let violations = compare(&baseline, &current, &Thresholds::default());
        let gates: Vec<_> = violations.iter().map(|v| v.gate.as_str()).collect();
        assert!(
            gates.contains(&"analysis.headline.pack_overlap"),
            "{gates:?}"
        );
        assert!(
            gates.contains(&"analysis.fleet:7800gtx+7800gtx.load_balance"),
            "{gates:?}"
        );
    }

    #[test]
    fn missing_analysis_and_fleet_shape_fail() {
        let baseline = gated_run();
        let mut current = gated_run();
        current.analysis.arms.clear();
        current.fleet.shapes.retain(|s| s.name != "7800gtx+7800gtx");
        let violations = compare(&baseline, &current, &Thresholds::default());
        let gates: Vec<_> = violations.iter().map(|v| v.gate.as_str()).collect();
        assert!(gates.contains(&"analysis.arms"), "{gates:?}");
        assert!(gates.contains(&"fleet.scaling"), "{gates:?}");
    }

    #[test]
    fn render_reports_pass_and_fail() {
        assert!(render(&[]).contains("all gates passed"));
        let v = vec![Violation {
            gate: "cpu_tail_wall_s".into(),
            message: "regressed".into(),
        }];
        let text = render(&v);
        assert!(text.contains("1 gate(s) FAILED"));
        assert!(text.contains("cpu_tail_wall_s: regressed"));
    }
}
