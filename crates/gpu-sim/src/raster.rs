//! Rasterization of GPGPU full-screen quads.
//!
//! Every pass of the stream model draws one screen-aligned quad covering the
//! render target; the rasterizer turns it into a fragment per target pixel
//! and interpolates the texture-coordinate sets attached to the quad's
//! vertices. Because the quad is axis-aligned, each coordinate set is an
//! affine map of the pixel position — which is also how neighbour access is
//! expressed (a coordinate set shifted by `k` texels, exactly the trick the
//! paper's Cumulative Distance stage uses to address the B-neighbourhood).

use crate::interp::FragmentInput;
use crate::isa::NUM_TEXCOORDS;

/// One interpolated texture-coordinate set: `uv = base * scale + offset`,
/// where `base` is the fragment's normalized position in the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TexCoordSet {
    /// Multiplies the normalized fragment position.
    pub scale: [f32; 2],
    /// Added after scaling.
    pub offset: [f32; 2],
}

impl TexCoordSet {
    /// The identity mapping: fragment `(x, y)` samples the same-size source
    /// texture at its own position.
    pub const fn identity() -> Self {
        Self {
            scale: [1.0, 1.0],
            offset: [0.0, 0.0],
        }
    }

    /// Identity shifted by `(dx, dy)` texels of a `w x h` source texture —
    /// the neighbour-access mapping.
    pub fn shifted_texels(dx: i32, dy: i32, w: usize, h: usize) -> Self {
        Self {
            scale: [1.0, 1.0],
            offset: [dx as f32 / w as f32, dy as f32 / h as f32],
        }
    }

    /// Evaluate at a normalized base position.
    #[inline(always)]
    pub fn eval(&self, u: f32, v: f32) -> [f32; 2] {
        [
            u * self.scale[0] + self.offset[0],
            v * self.scale[1] + self.offset[1],
        ]
    }
}

/// The target rectangle a pass renders (usually the whole target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quad {
    /// Left edge in target pixels.
    pub x0: usize,
    /// Top edge in target pixels.
    pub y0: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

/// Width of one shading tile in fragments. Narrow enough that realistic
/// chunk widths split into many more tiles than any profile has fragment
/// pipes (so occupancy stays high), wide enough that the per-tile texture
/// cache still sees the horizontal block reuse of the raster scan.
pub const TILE_W: usize = 64;

/// Height of one shading tile: the texture-cache block height, so a tile
/// covers whole cache blocks vertically and the per-pipe cache model sees
/// the same vertical reuse the hardware's rasterisation order provides.
pub const TILE_ROWS: usize = crate::texcache::BLOCK_H;

impl Quad {
    /// A quad covering an entire `w x h` target.
    pub const fn full(w: usize, h: usize) -> Self {
        Self {
            x0: 0,
            y0: 0,
            width: w,
            height: h,
        }
    }

    /// Number of fragments the quad generates.
    pub const fn fragments(&self) -> usize {
        self.width * self.height
    }

    /// Number of tile columns ([`TILE_W`] wide) covering the quad.
    pub const fn tile_cols(&self) -> usize {
        self.width.div_ceil(TILE_W)
    }

    /// Number of [`TILE_W`]`x`[`TILE_ROWS`] shading tiles covering the quad
    /// — the unit of work the executor dispatches to fragment pipes.
    pub const fn tile_count(&self) -> usize {
        self.tile_cols() * self.height.div_ceil(TILE_ROWS)
    }
}

/// Compute the interpolated [`FragmentInput`] for target pixel `(x, y)`.
///
/// `target_w/h` are the full render-target dimensions (normalization basis);
/// the fragment position is taken at the pixel centre, matching texel-centre
/// sampling in [`crate::texture::Texture2D::sample`].
pub fn fragment_input(
    sets: &[TexCoordSet],
    x: usize,
    y: usize,
    target_w: usize,
    target_h: usize,
) -> FragmentInput {
    debug_assert!(sets.len() <= NUM_TEXCOORDS, "too many texcoord sets");
    let u = (x as f32 + 0.5) / target_w as f32;
    let v = (y as f32 + 0.5) / target_h as f32;
    let mut input = FragmentInput::zero();
    for (slot, set) in input.texcoords.iter_mut().zip(sets) {
        let uv = set.eval(u, v);
        *slot = [uv[0], uv[1], 0.0, 1.0];
    }
    input
}

/// Append the [`FragmentInput`]s of one row segment — `width` fragments
/// starting at target pixel `(x0, y)` — to `out`, in column order.
///
/// Each entry is exactly `fragment_input(sets, x0 + i, y, ..)`, so batched
/// executors that gather a tile's inputs through this helper see
/// bit-identical interpolants to the scalar per-fragment path.
pub fn extend_row_inputs(
    sets: &[TexCoordSet],
    out: &mut Vec<FragmentInput>,
    x0: usize,
    y: usize,
    width: usize,
    target_w: usize,
    target_h: usize,
) {
    out.extend((0..width).map(|i| fragment_input(sets, x0 + i, y, target_w, target_h)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_pixel_centres() {
        let sets = [TexCoordSet::identity()];
        let f = fragment_input(&sets, 3, 1, 8, 4);
        assert_eq!(f.texcoords[0], [3.5 / 8.0, 1.5 / 4.0, 0.0, 1.0]);
        // Unused sets stay at the zero default.
        assert_eq!(f.texcoords[1], [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn identity_round_trips_through_sampling() {
        // fragment (x, y) sampling a same-size texture lands on texel (x, y).
        use crate::texture::Texture2D;
        let mut tex = Texture2D::new(5, 3);
        for y in 0..3 {
            for x in 0..5 {
                tex.set_texel(x, y, [(y * 5 + x) as f32; 4]);
            }
        }
        let sets = [TexCoordSet::identity()];
        for y in 0..3 {
            for x in 0..5 {
                let f = fragment_input(&sets, x, y, 5, 3);
                let s = tex.sample(f.texcoords[0][0], f.texcoords[0][1]);
                assert_eq!(s[0], (y * 5 + x) as f32, "({x},{y})");
            }
        }
    }

    #[test]
    fn shifted_set_addresses_neighbours() {
        use crate::texture::Texture2D;
        let mut tex = Texture2D::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                tex.set_texel(x, y, [(y * 4 + x) as f32; 4]);
            }
        }
        let sets = [TexCoordSet::shifted_texels(1, -1, 4, 4)];
        let f = fragment_input(&sets, 1, 2, 4, 4);
        let s = tex.sample(f.texcoords[0][0], f.texcoords[0][1]);
        // (1, 2) + (1, -1) = (2, 1).
        assert_eq!(s[0], (4 + 2) as f32);
        // Clamping at the border: fragment (3, 0) + (1, -1) clamps to (3, 0).
        let f = fragment_input(&sets, 3, 0, 4, 4);
        let s = tex.sample(f.texcoords[0][0], f.texcoords[0][1]);
        assert_eq!(s[0], 3.0);
    }

    #[test]
    fn quad_geometry() {
        let q = Quad::full(10, 5);
        assert_eq!(q.fragments(), 50);
        assert_eq!(q.x0, 0);
        let sub = Quad {
            x0: 2,
            y0: 1,
            width: 3,
            height: 2,
        };
        assert_eq!(sub.fragments(), 6);
    }

    #[test]
    fn tile_counts_cover_the_quad() {
        // Smaller than one tile: exactly one.
        assert_eq!(Quad::full(10, 3).tile_count(), 1);
        // Exact multiples.
        assert_eq!(Quad::full(TILE_W, TILE_ROWS).tile_count(), 1);
        assert_eq!(Quad::full(2 * TILE_W, 3 * TILE_ROWS).tile_count(), 6);
        // Ragged edges round up.
        let q = Quad::full(TILE_W + 1, TILE_ROWS + 1);
        assert_eq!(q.tile_cols(), 2);
        assert_eq!(q.tile_count(), 4);
    }

    #[test]
    fn extend_row_inputs_matches_per_fragment_interpolation() {
        let sets = [
            TexCoordSet::identity(),
            TexCoordSet::shifted_texels(1, -1, 8, 4),
        ];
        let mut batch = Vec::new();
        extend_row_inputs(&sets, &mut batch, 2, 3, 5, 8, 4);
        assert_eq!(batch.len(), 5);
        for (i, got) in batch.iter().enumerate() {
            let want = fragment_input(&sets, 2 + i, 3, 8, 4);
            assert_eq!(
                got.texcoords.map(|c| c.map(f32::to_bits)),
                want.texcoords.map(|c| c.map(f32::to_bits))
            );
        }
    }

    #[test]
    fn multiple_sets_interpolate_independently() {
        let sets = [
            TexCoordSet::identity(),
            TexCoordSet::shifted_texels(2, 0, 8, 8),
            TexCoordSet {
                scale: [0.5, 0.5],
                offset: [0.25, 0.25],
            },
        ];
        let f = fragment_input(&sets, 0, 0, 8, 8);
        assert_eq!(f.texcoords[0][0], 0.5 / 8.0);
        assert!((f.texcoords[1][0] - (0.5 / 8.0 + 0.25)).abs() < 1e-7);
        assert!((f.texcoords[2][0] - (0.5 / 8.0 * 0.5 + 0.25)).abs() < 1e-7);
    }
}
