//! The GPU stream pipeline must agree with the CPU reference morphology on
//! arbitrary cubes — this is the core correctness contract of the paper's
//! port ("the desired performance at the quality required").

use hyperspec::amc::cpu;
use hyperspec::amc::pipeline::{GpuAmc, KernelMode};
use hyperspec::prelude::*;

fn pseudo_random_cube(w: usize, h: usize, bands: usize, seed: u64) -> Cube {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / 16_777_216.0
    };
    Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |_, _, _| {
        25.0 + 175.0 * next()
    })
    .unwrap()
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what} length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
            "{what}[{i}]: {x} vs {y}"
        );
    }
}

#[test]
fn gpu_mei_matches_cpu_reference_across_shapes() {
    for (w, h, bands, seed) in [(9, 7, 5, 1u64), (16, 12, 8, 2), (13, 13, 11, 3)] {
        let cube = pseudo_random_cube(w, h, bands, seed);
        let se = StructuringElement::square(3).unwrap();
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let gpu_out = GpuAmc::new(se.clone(), KernelMode::Closure)
            .run(&mut gpu, &cube)
            .unwrap();
        let norm = hyperspec::hsi::morphology::normalize_cube(&cube);
        let (ref_mei, morph) = hyperspec::hsi::morphology::mei(&norm, &se, SpectralDistance::Sid);
        assert_close(&gpu_out.mei.scores, &ref_mei.scores, 1e-4, "mei");
        assert_eq!(gpu_out.min_index, morph.min_index, "{w}x{h}x{bands}");
        assert_eq!(gpu_out.max_index, morph.max_index);
    }
}

#[test]
fn gpu_matches_cpu_simd4_baseline() {
    let cube = pseudo_random_cube(11, 9, 7, 42);
    let se = StructuringElement::square(3).unwrap();
    let simd = cpu::run_simd4(&cube, &se);
    let mut gpu = Gpu::new(GpuProfile::fx5950_ultra());
    let gpu_out = GpuAmc::new(se, KernelMode::Closure)
        .run(&mut gpu, &cube)
        .unwrap();
    // The SIMD4 CPU baseline uses exactly the GPU's 4-lane arithmetic.
    assert_close(&gpu_out.mei.scores, &simd.mei.scores, 1e-5, "mei");
    assert_eq!(gpu_out.min_index, simd.morph.min_index);
    assert_eq!(gpu_out.max_index, simd.morph.max_index);
}

#[test]
fn isa_and_closure_modes_agree_on_both_devices() {
    let cube = pseudo_random_cube(10, 8, 6, 9);
    let se = StructuringElement::square(3).unwrap();
    let mut reference: Option<Vec<f32>> = None;
    for profile in [GpuProfile::fx5950_ultra(), GpuProfile::geforce_7800gtx()] {
        for mode in [KernelMode::Isa, KernelMode::Closure] {
            let mut gpu = Gpu::new(profile.clone());
            let out = GpuAmc::new(se.clone(), mode).run(&mut gpu, &cube).unwrap();
            match &reference {
                None => reference = Some(out.mei.scores),
                Some(r) => assert_eq!(
                    &out.mei.scores, r,
                    "{:?} on {} must be bit-identical",
                    mode, profile.name
                ),
            }
        }
    }
}

#[test]
fn scalar_baseline_matches_library_reference_exactly() {
    let cube = pseudo_random_cube(12, 10, 6, 77);
    let se = StructuringElement::square(3).unwrap();
    let scalar = cpu::run_scalar(&cube, &se);
    let norm = hyperspec::hsi::morphology::normalize_cube(&cube);
    let (ref_mei, morph) = hyperspec::hsi::morphology::mei(&norm, &se, SpectralDistance::Sid);
    assert_eq!(scalar.mei.scores, ref_mei.scores);
    assert_eq!(scalar.morph.min_index, morph.min_index);
    assert_eq!(scalar.morph.max_index, morph.max_index);
}

#[test]
fn five_by_five_se_agrees_too() {
    let cube = pseudo_random_cube(12, 12, 4, 5);
    let se = StructuringElement::square(5).unwrap();
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let gpu_out = GpuAmc::new(se.clone(), KernelMode::Closure)
        .run(&mut gpu, &cube)
        .unwrap();
    let norm = hyperspec::hsi::morphology::normalize_cube(&cube);
    let (ref_mei, morph) = hyperspec::hsi::morphology::mei(&norm, &se, SpectralDistance::Sid);
    assert_close(&gpu_out.mei.scores, &ref_mei.scores, 1e-4, "mei5");
    assert_eq!(gpu_out.min_index, morph.min_index);
    assert_eq!(gpu_out.max_index, morph.max_index);
}
