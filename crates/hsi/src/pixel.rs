//! Pixel-vector helpers.
//!
//! A "pixel" in hyperspectral processing is the full N-band spectral vector
//! at one spatial location. These free functions operate on plain `&[f32]`
//! slices so they work on borrowed BIP pixels and scratch buffers alike.

/// Sum of all band values (the denominator of eqs. 3–4 in the paper).
#[inline]
pub fn band_sum(pixel: &[f32]) -> f32 {
    pixel.iter().sum()
}

/// Normalize `pixel` into `out` so the result sums to 1 (eqs. 3–4).
///
/// The paper's SID needs probability-like vectors `p_l = f_l / Σ_k f_k`.
/// Non-positive sums (possible on synthetic or denoised data) fall back to a
/// uniform distribution so downstream `log` calls stay finite, mirroring the
/// epsilon-guarding every practical implementation applies.
pub fn normalize_into(pixel: &[f32], out: &mut [f32]) {
    debug_assert_eq!(pixel.len(), out.len());
    let sum = band_sum(pixel);
    if sum > f32::MIN_POSITIVE {
        let inv = 1.0 / sum;
        for (o, &v) in out.iter_mut().zip(pixel) {
            *o = v * inv;
        }
    } else {
        let uniform = 1.0 / pixel.len() as f32;
        out.fill(uniform);
    }
}

/// Allocate and return the normalized copy of `pixel`.
pub fn normalized(pixel: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; pixel.len()];
    normalize_into(pixel, &mut out);
    out
}

/// Dot product of two equal-length vectors.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Linear combination `out = Σ_i coeffs[i] * basis[i]`.
///
/// Used to synthesise mixed pixels from endmember spectra and to validate
/// unmixing round-trips.
pub fn linear_mix_into(basis: &[&[f32]], coeffs: &[f32], out: &mut [f32]) {
    debug_assert_eq!(basis.len(), coeffs.len());
    out.fill(0.0);
    for (&spectrum, &c) in basis.iter().zip(coeffs) {
        debug_assert_eq!(spectrum.len(), out.len());
        for (o, &s) in out.iter_mut().zip(spectrum) {
            *o += c * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_sum_basic() {
        assert_eq!(band_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(band_sum(&[]), 0.0);
    }

    #[test]
    fn normalize_produces_probability_vector() {
        let p = normalized(&[2.0, 6.0, 2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(p, vec![0.2, 0.6, 0.2]);
    }

    #[test]
    fn normalize_zero_pixel_falls_back_to_uniform() {
        let p = normalized(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(p, vec![0.25; 4]);
    }

    #[test]
    fn normalize_negative_sum_falls_back_to_uniform() {
        let p = normalized(&[-1.0, -1.0]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn linear_mix_reconstructs() {
        let e0 = [1.0f32, 0.0, 0.0];
        let e1 = [0.0f32, 2.0, 0.0];
        let mut out = [0.0f32; 3];
        linear_mix_into(&[&e0, &e1], &[0.5, 0.25], &mut out);
        assert_eq!(out, [0.5, 0.5, 0.0]);
    }
}
