//! Host wall-clock of the CPU reference implementations against the
//! simulated GPU pipeline (functional simulation cost), plus the analytic
//! table generation itself.

use amc_core::cpu;
use amc_core::perf::{self, PredictConfig};
use amc_core::pipeline::{GpuAmc, KernelMode};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use hsi::cube::{Cube, CubeDims, Interleave};
use hsi::morphology::StructuringElement;
use std::time::Duration;

fn cube() -> Cube {
    Cube::from_fn(CubeDims::new(24, 24, 8), Interleave::Bip, |x, y, b| {
        10.0 + ((x * 31 + y * 17 + b * 7) % 97) as f32
    })
    .unwrap()
}

fn bench_implementations(c: &mut Criterion) {
    let mut group = c.benchmark_group("implementations_24x24x8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let cb = cube();
    let se = StructuringElement::square(3).unwrap();

    group.bench_function("cpu_scalar", |b| b.iter(|| cpu::run_scalar(&cb, &se)));
    group.bench_function("cpu_simd4", |b| b.iter(|| cpu::run_simd4(&cb, &se)));
    group.bench_function("gpu_closure", |b| {
        let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        b.iter(|| amc.run(&mut gpu, &cb).unwrap())
    });
    group.bench_function("gpu_isa_interpreted", |b| {
        let amc = GpuAmc::new(se.clone(), KernelMode::Isa);
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        b.iter(|| amc.run(&mut gpu, &cb).unwrap())
    });
    group.finish();
}

fn bench_analytic_model(c: &mut Criterion) {
    // Generating the full Table 4 from the analytic model must be
    // effectively free — that's the point of having it.
    let mut group = c.benchmark_group("analytic_model");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1));
    let se = StructuringElement::square(3).unwrap();
    group.bench_function("predict_full_547mb_scene", |b| {
        b.iter(|| {
            perf::predict_gpu_time(
                CubeDims::new(2166, 614, 216),
                &se,
                &GpuProfile::geforce_7800gtx(),
                &PredictConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_implementations, bench_analytic_model);
criterion_main!(benches);
