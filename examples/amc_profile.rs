//! Profile the hybrid AMC run with tracing enabled: capture a Chrome
//! trace-event file of the chunked pipeline (load it in Perfetto or
//! chrome://tracing) and print the metrics registry — cache hit-rates,
//! latency histograms and the measured-vs-modeled skew per stage.
//!
//! The device's video memory is shrunk so the scene splits into multiple
//! chunks: the trace then shows the packer thread preparing chunk N+1
//! while the worker pool shades chunk N (the double-buffer overlap), the
//! six `pipeline.stage` spans inside each `pipeline.chunk` span, and the
//! per-thread `gpu.tile` batches.
//!
//! After the run, the in-process analyzer (`trace::analyze`, DESIGN.md §17)
//! prints the critical path, per-thread utilization and packer-overlap
//! efficiency straight from the captured span stream. With
//! `--analyze-only <trace.json>` the profiled run is skipped and a
//! previously exported Chrome trace is analyzed instead.
//!
//! ```text
//! cargo run --release --example amc_profile
//! cargo run --release --example amc_profile -- --analyze-only out/amc_profile_trace.json
//! ```
//!
//! See DESIGN.md §12 for the full span taxonomy.

use hyperspec::gpu::timing;
use hyperspec::prelude::*;
use hyperspec::scene::library::indian_pines_classes;
use hyperspec::trace;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--analyze-only") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: amc_profile [--analyze-only <trace.json>]");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let snap = trace::analyze::import_chrome_trace(&text).unwrap_or_else(|e| {
            eprintln!("error: {path} is not a loadable Chrome trace: {e}");
            std::process::exit(2);
        });
        print!(
            "{}",
            trace::analyze::render_text(&trace::analyze::analyze(&snap))
        );
        return;
    }

    trace::enable();

    let classes = indian_pines_classes();
    let scene = generate(&classes, &SceneConfig::reduced_indian_pines(2026));
    let dims = scene.cube.dims();
    println!(
        "scene: {}x{} pixels, {} bands",
        dims.width, dims.height, dims.bands
    );

    // Shrink video memory so the cube cannot be resident at once and the
    // executor must chunk (and double-buffer) — that is what we profile.
    let mut profile = GpuProfile::geforce_7800gtx();
    profile.video_memory_mib = 8;
    let mut gpu = Gpu::new(profile);

    let config = AmcConfig::paper_default(classes.len());
    let amc = GpuAmc::new(config.se.clone(), KernelMode::Closure);
    let classifier = AmcClassifier::new(config);
    let hybrid = amc
        .run_and_classify(&mut gpu, &scene.cube, &classifier)
        .expect("hybrid AMC run");
    assert!(
        hybrid.pipeline.chunks >= 2,
        "profile run should exercise chunking"
    );
    println!(
        "pipeline: {} chunks, gpu wall {:.3}s, cpu tail wall {:.3}s",
        hybrid.pipeline.chunks, hybrid.gpu_wall_s, hybrid.tail_wall_s
    );

    // Measured host wall vs modeled device time, stage by stage.
    let device = gpu.profile().clone();
    let stages = &hybrid.pipeline.stages;
    let named: [(&str, &hyperspec::gpu::counters::PassStats); 6] = [
        ("upload", &stages.upload),
        ("normalize", &stages.normalize),
        ("distance", &stages.distance),
        ("minmax", &stages.minmax),
        ("mei", &stages.mei),
        ("download", &stages.download),
    ];
    println!("\n  stage      wall_ms  modeled_ms  wall/modeled");
    for (i, (name, wall_s)) in hybrid.pipeline.stage_wall.as_named().iter().enumerate() {
        debug_assert_eq!(*name, named[i].0);
        let modeled_ms = timing::gpu_time(named[i].1, &device).total_ms();
        let skew = if modeled_ms > 0.0 {
            wall_s * 1e3 / modeled_ms
        } else {
            0.0
        };
        println!(
            "  {name:<9} {:>8.2} {:>11.3} {:>13.1}",
            wall_s * 1e3,
            modeled_ms,
            skew
        );
    }

    // The metrics registry: counters (cache effectiveness) and log2-bucket
    // latency histograms (approximate percentiles).
    let snap = trace::metrics::snapshot();
    println!("\ncounters:");
    for (name, value) in &snap.counters {
        println!("  {name:<24} {value}");
    }
    println!("histograms (ns):");
    println!(
        "  {:<24} {:>7} {:>11} {:>11} {:>11}",
        "name", "count", "p50", "p95", "p99"
    );
    for (name, h) in &snap.histograms {
        println!(
            "  {name:<24} {:>7} {:>11} {:>11} {:>11}",
            h.count, h.p50_ns, h.p95_ns, h.p99_ns
        );
    }

    // The in-process analyzer over the same span stream the Chrome export
    // carries: critical path, per-thread utilization, packer overlap.
    let analysis = trace::analyze::analyze(&trace::snapshot_events());
    println!("\nanalyzer summary (see DESIGN.md §17):");
    print!("{}", trace::analyze::render_text(&analysis));

    let out = Path::new("out/amc_profile_trace.json");
    trace::write_chrome_trace(out).expect("write trace");
    println!(
        "\nchrome trace -> {} (open in https://ui.perfetto.dev or chrome://tracing)",
        out.display()
    );
}
