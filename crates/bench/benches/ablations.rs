//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! RGBA band packing, structuring-element size, chunk granularity.

use amc_core::pipeline::{GpuAmc, KernelMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use hsi::cube::{Chunking, Cube, CubeDims, Interleave};
use hsi::morphology::{self, StructuringElement};
use hsi::spectral::SpectralDistance;
use std::time::Duration;

fn cube(w: usize, h: usize, bands: usize) -> Cube {
    Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |x, y, b| {
        10.0 + ((x * 31 + y * 17 + b * 7) % 97) as f32
    })
    .unwrap()
}

fn bench_se_size(c: &mut Criterion) {
    // O(p_f * p_B * N): doubling the SE area should roughly double time.
    let mut group = c.benchmark_group("se_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let cb = cube(20, 20, 8);
    for side in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let se = StructuringElement::square(side).unwrap();
            let norm = morphology::normalize_cube(&cb);
            b.iter(|| morphology::mei(&norm, &se, SpectralDistance::Sid))
        });
    }
    group.finish();
}

fn bench_rgba_packing(c: &mut Criterion) {
    // The paper's Fig. 3 argument: four bands per RGBA texel exploits the
    // SIMD4 ALUs. The ablation runs the same cube with the packed pipeline
    // (2 band groups) vs an unpacked emulation (8 one-band groups → 4x the
    // band-group passes).
    let mut group = c.benchmark_group("rgba_packing");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let se = StructuringElement::square(3).unwrap();
    let packed = cube(16, 16, 8);
    // Unpacked emulation: spread each band into its own group of 4 (3 zero
    // lanes), i.e. a 32-band cube with every 4th band meaningful.
    let unpacked = Cube::from_fn(CubeDims::new(16, 16, 32), Interleave::Bip, |x, y, b| {
        if b % 4 == 0 {
            packed.get(x, y, b / 4)
        } else {
            0.0
        }
    })
    .unwrap();
    for (name, cb) in [("packed_rgba", &packed), ("one_band_per_texel", &unpacked)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), cb, |b, cb| {
            let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
            let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
            b.iter(|| amc.run(&mut gpu, cb).unwrap())
        });
    }
    group.finish();
}

fn bench_chunk_granularity(c: &mut Criterion) {
    // Smaller chunks = more halo recomputation + more passes.
    let mut group = c.benchmark_group("chunk_lines");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let cb = cube(16, 48, 8);
    let se = StructuringElement::square(3).unwrap();
    for lines in [6usize, 12, 48] {
        group.bench_with_input(BenchmarkId::from_parameter(lines), &lines, |b, &lines| {
            let amc = GpuAmc::new(se.clone(), KernelMode::Closure);
            let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
            let chunking = Chunking::new(lines, 2);
            b.iter(|| {
                let mut total = 0u64;
                for chunk in cb.chunks(chunking) {
                    total += amc.run_chunk(&mut gpu, &chunk.cube).unwrap().stats.passes;
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_se_size,
    bench_rgba_packing,
    bench_chunk_granularity
);
criterion_main!(benches);
