//! # `hsi` — hyperspectral image substrate
//!
//! This crate provides every data structure and numerical routine the
//! Automated Morphological Classification (AMC) algorithm of Setoain et al.
//! (ICPPW'06) needs, independent of *where* it runs (CPU reference or the
//! simulated GPU stream pipeline in the `gpu-sim`/`amc-core` crates):
//!
//! * [`cube`] — the hyperspectral data cube with the three classic interleave
//!   layouts (BSQ/BIL/BIP), spatial crops and chunking.
//! * [`spectral`] — spectral distances: SID (eq. 2 of the paper), SAM,
//!   Euclidean, and the per-pixel normalization of eqs. 3–4.
//! * [`morphology`] — structuring elements, the cumulative distance of eq. 1,
//!   extended erosion/dilation (eqs. 5–6) and the MEI score.
//! * [`linalg`] — small dense matrices with the factorizations linear
//!   unmixing needs (Cholesky, LU, least squares).
//! * [`unmix`] — the standard linear mixture model: abundance estimation.
//! * [`endmember`] — MEI-driven endmember selection.
//! * [`classify`] — the complete reference AMC classifier.
//! * [`metrics`] — confusion matrices, overall/average accuracy, kappa.
//! * [`pca`] — spectral principal-component analysis (band covariance +
//!   Jacobi eigensolver), the dimensionality-reduction companion of the
//!   morphological pipeline.
//! * [`stats`] — band statistics and SNR estimation.
//!
//! The reference implementations here are the ground truth every accelerated
//! path is tested against.

#![warn(missing_docs)]

pub mod classify;
pub mod cube;
pub mod endmember;
pub mod error;
pub mod linalg;
pub mod metrics;
pub mod morphology;
pub mod pca;
pub mod pixel;
pub mod spectral;
pub mod stats;
pub mod unmix;

pub use classify::{AmcClassifier, AmcConfig, AmcOutput};
pub use cube::{Chunking, Cube, CubeDims, Interleave};
pub use error::HsiError;
pub use morphology::{MeiImage, StructuringElement};
pub use spectral::SpectralDistance;
