//! The roofline timing model.
//!
//! Converts counted work ([`PassStats`]) into modeled execution time on one
//! of the paper's platforms. Kernel time is the maximum of three rates
//! (compute, texture fill, memory traffic) — GPU pipelines overlap the
//! three, so the slowest resource bounds throughput. Host transfer time is
//! modeled separately through the bus so experiments can report the paper's
//! compute-only table entries *and* transfer-inclusive totals.
//!
//! This is a first-order model: absolute milliseconds carry the usual
//! factor-of-small-constant uncertainty, but ratios between platforms follow
//! directly from the published Table 1/2 parameters, which is what the
//! paper's evaluation shape depends on.

use crate::counters::PassStats;
use crate::device::{Compiler, CpuProfile, GpuProfile};
use crate::texcache::BLOCK_BYTES;

/// Per-pipe L1 misses that share one DRAM block fill through the shared L2
/// texture cache: neighbouring pipes walk the same blocks, so DRAM sees
/// roughly one fill per block per pass, not one per L1 miss. Documented
/// model constant (block is 16 texels; ~4 pipes touch each block).
pub const L2_SHARING: f64 = 4.0;

/// How host transfers relate to kernel execution in the modeled total.
///
/// The paper's measured pipeline serializes transfers with shading; a
/// double-buffered uploader (pack and upload chunk N+1 while chunk N shades)
/// hides upload latency behind kernel time, leaving only the epilogue
/// download serial. The chunk executor in `amc-core` implements exactly that
/// overlap, so experiments can report both totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Upload → shade → download in sequence (the paper's setup).
    #[default]
    Serial,
    /// Uploads overlap shading (double-buffered streaming); downloads stay
    /// serial — results only exist once the last pass retires.
    Overlapped,
}

/// Breakdown of one modeled GPU execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTime {
    /// Shader ALU time, seconds.
    pub compute_s: f64,
    /// Texture fill-rate time, seconds.
    pub texture_s: f64,
    /// Memory traffic time (cache misses + framebuffer writes), seconds.
    pub memory_s: f64,
    /// Host → device upload time, seconds.
    pub upload_s: f64,
    /// Device → host download time, seconds.
    pub download_s: f64,
}

impl GpuTime {
    /// Kernel-only time: max of the three overlapped resources.
    pub fn kernel_s(&self) -> f64 {
        self.compute_s.max(self.texture_s).max(self.memory_s)
    }

    /// Kernel time in milliseconds (the paper's table unit).
    pub fn kernel_ms(&self) -> f64 {
        self.kernel_s() * 1e3
    }

    /// End-to-end time including host transfers, seconds.
    pub fn total_s(&self) -> f64 {
        self.kernel_s() + self.upload_s + self.download_s
    }

    /// End-to-end time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_s() * 1e3
    }

    /// End-to-end time under the given transfer model, seconds. With
    /// [`TransferMode::Overlapped`], upload hides behind kernel work (the
    /// slower of the two bounds throughput) and only the download serializes.
    pub fn total_s_mode(&self, mode: TransferMode) -> f64 {
        match mode {
            TransferMode::Serial => self.total_s(),
            TransferMode::Overlapped => self.kernel_s().max(self.upload_s) + self.download_s,
        }
    }

    /// End-to-end time under the given transfer model, milliseconds.
    pub fn total_ms_mode(&self, mode: TransferMode) -> f64 {
        self.total_s_mode(mode) * 1e3
    }

    /// Seconds saved by overlapping uploads with kernel execution.
    pub fn overlap_saving_s(&self) -> f64 {
        self.total_s() - self.total_s_mode(TransferMode::Overlapped)
    }
}

/// Mean shading tiles dispatched per pass — the parallelism the executor
/// actually exposed to the profile's fragment pipes. 0 when the stats
/// carry no tile counts (hand-built stats from older call sites).
fn tiles_per_pass(stats: &PassStats) -> f64 {
    if stats.passes == 0 {
        stats.tiles as f64
    } else {
        stats.tiles as f64 / stats.passes as f64
    }
}

/// Model the execution of counted work on a GPU profile.
///
/// Per-pipe rates (shader issue, texture fill) are derated by
/// [`GpuProfile::pipe_occupancy`] of the executor's mean tiles per pass: a
/// pass that splits into fewer tiles than the device has fragment pipes
/// cannot use them all, which is exactly why narrow chunks favour the
/// 4-pipe FX5950 and wide scenes favour the 24-pipe 7800GTX.
pub fn gpu_time(stats: &PassStats, profile: &GpuProfile) -> GpuTime {
    let occupancy = profile.pipe_occupancy(tiles_per_pass(stats));
    // TEX instructions retire on the texture units (charged to texture_s),
    // so only arithmetic instructions occupy the shader ALUs.
    let alu_instr = stats.instructions.saturating_sub(stats.texel_fetches);
    let compute_s = alu_instr as f64 / (profile.sustained_instr_per_s() * occupancy);
    let texture_s = stats.texel_fetches as f64 / (profile.peak_texels_per_s() * occupancy);
    // Memory side: texture-cache misses pull whole blocks; framebuffer
    // writes always hit DRAM. When the cache model was disabled, fall back
    // to charging every texel fetch.
    let miss_bytes = if stats.cache_hits + stats.cache_misses > 0 {
        stats.cache_misses as f64 * BLOCK_BYTES as f64 / L2_SHARING
    } else {
        stats.texel_bytes() as f64
    };
    let mem_bytes = miss_bytes + stats.bytes_written as f64;
    let memory_s = mem_bytes / (profile.memory_bandwidth_gbs * 1e9);
    GpuTime {
        compute_s,
        texture_s,
        memory_s,
        // A stage that moved no bytes issued no transfer, so it owes no
        // per-transfer setup latency — otherwise every zero-work stage
        // models to 2x bus latency and "modeled time is zero" can never
        // happen, which hid a misleading 0.0 skew in the bench report.
        upload_s: if stats.bytes_uploaded > 0 {
            profile.bus.upload_time(stats.bytes_uploaded as usize)
        } else {
            0.0
        },
        download_s: if stats.bytes_downloaded > 0 {
            profile.bus.download_time(stats.bytes_downloaded as usize)
        } else {
            0.0
        },
    }
}

/// Model the execution of counted work on one device of a fleet of
/// `bus_sharers` devices streaming concurrently over the shared host link.
///
/// Kernel-side rates are unaffected — each device owns its pipes and video
/// memory — but upload/download bandwidth divides across the sharers
/// ([`crate::bus::BusModel::contended`]). With `bus_sharers <= 1` this is
/// exactly [`gpu_time`]. Combine with
/// [`GpuTime::total_s_mode`]`(TransferMode::Overlapped)` for the fleet
/// executor's double-buffered per-device upload pipeline: each device's
/// uploads hide behind its own shading while the other devices shade their
/// chunks concurrently.
pub fn gpu_time_shared(stats: &PassStats, profile: &GpuProfile, bus_sharers: usize) -> GpuTime {
    let base = gpu_time(stats, profile);
    if bus_sharers <= 1 {
        return base;
    }
    let bus = profile.bus.contended(bus_sharers);
    GpuTime {
        upload_s: if stats.bytes_uploaded > 0 {
            bus.upload_time(stats.bytes_uploaded as usize)
        } else {
            0.0
        },
        download_s: if stats.bytes_downloaded > 0 {
            bus.download_time(stats.bytes_downloaded as usize)
        } else {
            0.0
        },
        ..base
    }
}

/// Counted CPU work for the baseline implementations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuWork {
    /// Scalar floating-point operations executed.
    pub flops: u64,
    /// Bytes of memory traffic beyond cache (streaming reads of the cube).
    pub bytes: u64,
}

impl CpuWork {
    /// Accumulate.
    pub fn add(&mut self, other: &CpuWork) {
        self.flops += other.flops;
        self.bytes += other.bytes;
    }
}

/// Model CPU execution time: max of flop throughput (per compiler model)
/// and FSB-bound memory streaming.
pub fn cpu_time_s(work: &CpuWork, profile: &CpuProfile, compiler: Compiler) -> f64 {
    let compute_s = work.flops as f64 / profile.sustained_flops(compiler);
    let memory_s = work.bytes as f64 / (profile.fsb_gbs * 1e9);
    compute_s.max(memory_s)
}

/// CPU time in milliseconds.
pub fn cpu_time_ms(work: &CpuWork, profile: &CpuProfile, compiler: Compiler) -> f64 {
    cpu_time_s(work, profile, compiler) * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> PassStats {
        PassStats {
            fragments: 1_000_000,
            instructions: 20_000_000,
            texel_fetches: 5_000_000,
            cache_hits: 4_900_000,
            cache_misses: 100_000,
            bytes_written: 16_000_000,
            bytes_uploaded: 64 << 20,
            bytes_downloaded: 4 << 20,
            passes: 10,
            // 256 tiles per pass: whole waves on 4 pipes, a ~97 % partial
            // last wave on 24.
            tiles: 2560,
        }
    }

    #[test]
    fn kernel_time_is_max_of_resources() {
        let t = GpuTime {
            compute_s: 3.0,
            texture_s: 1.0,
            memory_s: 2.0,
            upload_s: 0.5,
            download_s: 0.25,
        };
        assert_eq!(t.kernel_s(), 3.0);
        assert_eq!(t.total_s(), 3.75);
        assert_eq!(t.kernel_ms(), 3000.0);
        assert_eq!(t.total_ms(), 3750.0);
    }

    #[test]
    fn overlapped_mode_hides_uploads_behind_kernel_time() {
        let t = GpuTime {
            compute_s: 3.0,
            texture_s: 1.0,
            memory_s: 2.0,
            upload_s: 0.5,
            download_s: 0.25,
        };
        // Kernel (3.0) dominates upload (0.5): the upload disappears.
        assert_eq!(t.total_s_mode(TransferMode::Serial), 3.75);
        assert_eq!(t.total_s_mode(TransferMode::Overlapped), 3.25);
        assert_eq!(t.overlap_saving_s(), 0.5);
        assert_eq!(t.total_ms_mode(TransferMode::Overlapped), 3250.0);
        // Upload-bound case: the upload becomes the bottleneck instead.
        let slow_bus = GpuTime { upload_s: 5.0, ..t };
        assert_eq!(slow_bus.total_s_mode(TransferMode::Overlapped), 5.25);
        // Overlap never loses to serial.
        assert!(slow_bus.total_s_mode(TransferMode::Overlapped) <= slow_bus.total_s());
        assert_eq!(TransferMode::default(), TransferMode::Serial);
    }

    #[test]
    fn shared_bus_slows_transfers_but_not_kernels() {
        let stats = sample_stats();
        let p = GpuProfile::geforce_7800gtx();
        let solo = gpu_time(&stats, &p);
        let dual = gpu_time_shared(&stats, &p, 2);
        // Kernel resources are per-device.
        assert_eq!(dual.compute_s, solo.compute_s);
        assert_eq!(dual.texture_s, solo.texture_s);
        assert_eq!(dual.memory_s, solo.memory_s);
        // Transfers pay the halved link: twice the byte time, same latency.
        let byte_up = solo.upload_s - p.bus.latency_s;
        assert!((dual.upload_s - (p.bus.latency_s + 2.0 * byte_up)).abs() < 1e-12);
        assert!(dual.download_s > solo.download_s);
        // One sharer (or zero) is the plain model.
        assert_eq!(gpu_time_shared(&stats, &p, 1), solo);
        assert_eq!(gpu_time_shared(&stats, &p, 0), solo);
        // Zero-byte stages still owe no latency under contention.
        let idle = gpu_time_shared(&PassStats::default(), &p, 4);
        assert_eq!(idle.upload_s, 0.0);
        assert_eq!(idle.download_s, 0.0);
    }

    #[test]
    fn newer_gpu_is_faster_on_same_work() {
        let stats = sample_stats();
        let fx = gpu_time(&stats, &GpuProfile::fx5950_ultra());
        let g70 = gpu_time(&stats, &GpuProfile::geforce_7800gtx());
        assert!(g70.kernel_s() < fx.kernel_s());
        let ratio = fx.kernel_s() / g70.kernel_s();
        // Paper's observed generation gap: ~4.4x (plus transfer effects).
        assert!(ratio > 3.0 && ratio < 7.0, "ratio = {ratio}");
        // PCIe uploads beat AGP.
        assert!(g70.upload_s < fx.upload_s);
    }

    #[test]
    fn compute_time_scales_linearly_with_instructions() {
        let mut s1 = sample_stats();
        s1.cache_misses = 0;
        s1.bytes_written = 0;
        s1.texel_fetches = 0;
        s1.cache_hits = 1; // keep the cache-model path active
        let mut s2 = s1;
        s2.instructions *= 2;
        let p = GpuProfile::geforce_7800gtx();
        let t1 = gpu_time(&s1, &p);
        let t2 = gpu_time(&s2, &p);
        assert!((t2.compute_s / t1.compute_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_model_charges_all_texels() {
        let mut with_cache = sample_stats();
        let mut no_cache = sample_stats();
        no_cache.cache_hits = 0;
        no_cache.cache_misses = 0;
        let p = GpuProfile::fx5950_ultra();
        let a = gpu_time(&with_cache, &p);
        let b = gpu_time(&no_cache, &p);
        // With the cache model 100k misses pull 100k*256/4 = 6.4 MB; without
        // it every one of the 5M fetches pays DRAM bandwidth (80 MB).
        assert!(a.memory_s < b.memory_s);
        with_cache.cache_misses = 2_000_000; // 128 MB > 80 MB
        with_cache.cache_hits = 3_000_000;
        let a = gpu_time(&with_cache, &p);
        assert!(a.memory_s > b.memory_s);
    }

    #[test]
    fn zero_work_stage_models_to_exactly_zero() {
        // No counted work at all → no modeled time, including bus setup
        // latency (no bytes moved means no transfer was issued). The bench
        // report relies on this to emit a `null` skew instead of dividing
        // by a phantom latency.
        let t = gpu_time(&PassStats::default(), &GpuProfile::geforce_7800gtx());
        assert_eq!(t.total_ms(), 0.0);
        // But any actual transfer still pays the per-transfer latency.
        let moved = PassStats {
            bytes_uploaded: 1,
            ..PassStats::default()
        };
        let t = gpu_time(&moved, &GpuProfile::geforce_7800gtx());
        assert!(t.upload_s >= GpuProfile::geforce_7800gtx().bus.latency_s);
    }

    #[test]
    fn occupancy_derates_per_pipe_resources() {
        let full = sample_stats();
        let mut sparse = full;
        sparse.tiles = sparse.passes; // one tile per pass
        let p = GpuProfile::geforce_7800gtx();
        let t_full = gpu_time(&full, &p);
        let t_sparse = gpu_time(&sparse, &p);
        // 1 busy pipe of 24: per-pipe resources slow by the occupancy ratio.
        let occ_full = p.pipe_occupancy(256.0);
        let expect = occ_full / p.pipe_occupancy(1.0);
        assert!((t_sparse.compute_s / t_full.compute_s - expect).abs() < 1e-9);
        assert!((t_sparse.texture_s / t_full.texture_s - expect).abs() < 1e-9);
        // Memory and transfer sides are device-wide, not per-pipe.
        assert_eq!(t_sparse.memory_s, t_full.memory_s);
        assert_eq!(t_sparse.upload_s, t_full.upload_s);
        // Legacy stats without tile counts are not derated.
        let mut untiled = full;
        untiled.tiles = 0;
        assert!(gpu_time(&untiled, &p).compute_s <= t_full.compute_s);
    }

    #[test]
    fn single_tile_pass_cannot_use_a_wide_gpu() {
        // One tile per pass keeps 23 of the 7800GTX's 24 pipes idle; the
        // 4-pipe FX5950 wastes only 3, so the newer GPU loses its edge.
        let mut stats = sample_stats();
        stats.tiles = stats.passes;
        let fx = gpu_time(&stats, &GpuProfile::fx5950_ultra());
        let g70 = gpu_time(&stats, &GpuProfile::geforce_7800gtx());
        assert!(
            g70.compute_s > fx.compute_s,
            "g70 {} vs fx {}",
            g70.compute_s,
            fx.compute_s
        );
    }

    #[test]
    fn cpu_model_reproduces_compiler_and_generation_gaps() {
        let work = CpuWork {
            flops: 2_000_000_000,
            bytes: 500_000_000,
        };
        let p4 = CpuProfile::pentium4_northwood();
        let pr = CpuProfile::pentium4_prescott();
        let p4_gcc = cpu_time_s(&work, &p4, Compiler::Gcc);
        let p4_icc = cpu_time_s(&work, &p4, Compiler::Icc);
        let pr_gcc = cpu_time_s(&work, &pr, Compiler::Gcc);
        assert!(p4_icc < p4_gcc);
        let icc_gain = p4_gcc / p4_icc;
        assert!(icc_gain > 1.4 && icc_gain < 1.8, "icc gain {icc_gain}");
        let gen_gain = p4_gcc / pr_gcc;
        assert!(gen_gain > 1.0 && gen_gain < 1.1, "gen gain {gen_gain}");
    }

    #[test]
    fn cpu_memory_bound_when_flops_are_few() {
        let work = CpuWork {
            flops: 1,
            bytes: 6_400_000_000,
        };
        let p4 = CpuProfile::pentium4_northwood();
        // 6.4 GB over a 6.4 GB/s FSB = 1 s.
        assert!((cpu_time_s(&work, &p4, Compiler::Gcc) - 1.0).abs() < 1e-9);
        assert_eq!(cpu_time_ms(&work, &p4, Compiler::Gcc).round(), 1000.0);
    }

    #[test]
    fn cpu_work_accumulates() {
        let mut w = CpuWork::default();
        w.add(&CpuWork {
            flops: 10,
            bytes: 20,
        });
        w.add(&CpuWork { flops: 1, bytes: 2 });
        assert_eq!(
            w,
            CpuWork {
                flops: 11,
                bytes: 22
            }
        );
    }
}
