//! Small dense linear algebra for spectral unmixing.
//!
//! The linear mixture model needs, per scene, one factorization of the
//! endmember Gram matrix (c×c with c ≈ 30) and, per pixel, one triangular
//! solve. That is small enough that a self-contained column-major `f64`
//! matrix with Cholesky and partially-pivoted LU is both sufficient and
//! dependency-free.

use crate::error::{HsiError, Result};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(HsiError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Build a `rows x cols` matrix whose columns are the given `f32` spectra
    /// (the endmember matrix E of the mixture model).
    pub fn from_columns_f32(columns: &[&[f32]]) -> Result<Self> {
        let cols = columns.len();
        if cols == 0 {
            return Err(HsiError::EmptyDimension { which: "columns" });
        }
        let rows = columns[0].len();
        for c in columns {
            if c.len() != rows {
                return Err(HsiError::DimensionMismatch {
                    expected: rows,
                    actual: c.len(),
                });
            }
        }
        let mut m = Self::zeros(rows, cols);
        for (j, col) in columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v as f64;
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(HsiError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(HsiError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *o = row.iter().zip(v).map(|(&a, &b)| a * b).sum();
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (symmetric positive semi-definite).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for k in 0..self.rows {
                    s += self[(k, i)] * self[(k, j)];
                }
                g[(i, j)] = s;
                g[(j, i)] = s;
            }
        }
        g
    }

    /// `selfᵀ * v` for an `f32` vector — the per-pixel right-hand side of the
    /// normal equations, computed without materialising a transpose.
    pub fn transpose_matvec_f32(&self, v: &[f32]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(HsiError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            let vi = vi as f64;
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &r) in out.iter_mut().zip(row) {
                *o += r * vi;
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry (for test tolerances).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Cache-blocked matrix product `self * rhs`.
    ///
    /// Same contract as [`Matrix::matmul`], but the loops are tiled so that
    /// a `block × block` panel of `self` and the matching rows of `rhs` stay
    /// resident while an output panel accumulates. The summation order is
    /// fixed by the blocking (independent of any threading), so repeated
    /// calls are bit-identical.
    pub fn matmul_block(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(HsiError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        const BLOCK: usize = 64;
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for kb in (0..k).step_by(BLOCK) {
            let kend = (kb + BLOCK).min(k);
            for ib in (0..m).step_by(BLOCK) {
                let iend = (ib + BLOCK).min(m);
                for i in ib..iend {
                    for kk in kb..kend {
                        let a = self.data[i * k + kk];
                        if a == 0.0 {
                            continue;
                        }
                        let row = &rhs.data[kk * n..(kk + 1) * n];
                        let orow = &mut out.data[i * n..(i + 1) * n];
                        for (o, &r) in orow.iter_mut().zip(row) {
                            *o += a * r;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Copy the square sub-block `[r0, r0+rows) × [c0, c0+cols)` into a new
    /// matrix (used to extract the abundance block of a bordered-system
    /// inverse).
    pub fn sub_block(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Result<Matrix> {
        if r0 + rows > self.rows || c0 + cols > self.cols {
            return Err(HsiError::ShapeMismatch {
                left: self.shape(),
                right: (r0 + rows, c0 + cols),
            });
        }
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                out[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        Ok(out)
    }
}

/// Dot product of an `f64` row with an `f32` vector, accumulating in `f64`.
///
/// Four interleaved partial sums break the dependency chain of a naive
/// sequential reduction (the per-pixel latency bottleneck of the batched
/// unmixing GEMM) while keeping the summation order fixed, so results are
/// bit-reproducible at every thread count.
#[inline]
pub fn dot_f32(row: &[f64], v: &[f32]) -> f64 {
    debug_assert_eq!(row.len(), v.len());
    let mut acc = [0.0f64; 4];
    let mut rc = row.chunks_exact(4);
    let mut vc = v.chunks_exact(4);
    for (r, p) in (&mut rc).zip(&mut vc) {
        acc[0] += r[0] * p[0] as f64;
        acc[1] += r[1] * p[1] as f64;
        acc[2] += r[2] * p[2] as f64;
        acc[3] += r[3] * p[3] as f64;
    }
    let mut tail = 0.0;
    for (r, p) in rc.remainder().iter().zip(vc.remainder()) {
        tail += r * *p as f64;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Dot product of two `f64` slices with the same fixed 4-way accumulation
/// order as [`dot_f32`].
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (x, y) in (&mut ac).zip(&mut bc) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut tail = 0.0;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Batched operator application over a BIP pixel block: for every pixel `p`
/// and operator row `j`, `out[p·m + j] = Σ_b op[(j, b)] · pixels[p·k + b]`,
/// where `op` is `m × k` and `pixels` holds `n` contiguous `k`-band `f32`
/// pixel vectors. Inputs widen to `f64` before accumulation.
///
/// This is the inner GEMM of the batched unmixing tail: `op` (a few KiB)
/// stays cache-resident while the pixel block streams through, and no
/// intermediate buffers are allocated.
pub fn apply_operator_f32(op: &Matrix, pixels: &[f32], out: &mut [f64]) -> Result<()> {
    let (m, k) = op.shape();
    if k == 0 || !pixels.len().is_multiple_of(k) {
        return Err(HsiError::DimensionMismatch {
            expected: k,
            actual: pixels.len(),
        });
    }
    let n = pixels.len() / k;
    if out.len() != n * m {
        return Err(HsiError::DimensionMismatch {
            expected: n * m,
            actual: out.len(),
        });
    }
    for (px, orow) in pixels.chunks_exact(k).zip(out.chunks_exact_mut(m)) {
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot_f32(&op.data[j * k..(j + 1) * k], px);
        }
    }
    Ok(())
}

/// [`apply_operator_f32`] for `f64` input rows (the second, `c × c` stage of
/// the batched residual computation, applied to already-projected pixels).
pub fn apply_operator_f64(op: &Matrix, rows: &[f64], out: &mut [f64]) -> Result<()> {
    let (m, k) = op.shape();
    if k == 0 || !rows.len().is_multiple_of(k) {
        return Err(HsiError::DimensionMismatch {
            expected: k,
            actual: rows.len(),
        });
    }
    let n = rows.len() / k;
    if out.len() != n * m {
        return Err(HsiError::DimensionMismatch {
            expected: n * m,
            actual: out.len(),
        });
    }
    for (row, orow) in rows.chunks_exact(k).zip(out.chunks_exact_mut(m)) {
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot_f64(&op.data[j * k..(j + 1) * k], row);
        }
    }
    Ok(())
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// Holds the lower-triangular factor and solves `A x = b` with two triangular
/// sweeps — the per-pixel hot path of unmixing.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>, // row-major lower triangle (full storage for simplicity)
}

impl Cholesky {
    /// Factorize `a`. Fails with [`HsiError::SingularMatrix`] if `a` is not
    /// positive definite (within a tiny pivot tolerance).
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(HsiError::ShapeMismatch {
                left: a.shape(),
                right: (a.cols(), a.rows()),
            });
        }
        let n = a.rows();
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 1e-14 * (1.0 + a[(i, i)].abs()) {
                        return Err(HsiError::SingularMatrix);
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Ok(Self { n, l })
    }

    /// Solve `A x = b` in place (`b` becomes `x`).
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<()> {
        if b.len() != self.n {
            return Err(HsiError::ShapeMismatch {
                left: (self.n, self.n),
                right: (b.len(), 1),
            });
        }
        let n = self.n;
        // Forward: L y = b.
        for i in 0..n {
            let dot: f64 = self.l[i * n..i * n + i]
                .iter()
                .zip(&*b)
                .map(|(&l, &x)| l * x)
                .sum();
            b[i] = (b[i] - dot) / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y (column of L read with stride n).
        for i in (0..n).rev() {
            let dot: f64 = b[i + 1..]
                .iter()
                .enumerate()
                .map(|(j, &x)| self.l[(i + 1 + j) * n + i] * x)
                .sum();
            b[i] = (b[i] - dot) / self.l[i * n + i];
        }
        Ok(())
    }

    /// Solve returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Explicit inverse `A⁻¹`, one triangular solve per unit column.
    ///
    /// Used once per model fit to precompute the dense abundance operator
    /// `(EᵀE)⁻¹Eᵀ`; never called per pixel.
    pub fn inverse(&self) -> Matrix {
        let n = self.n;
        let mut inv = Matrix::zeros(n, n);
        let mut col = vec![0.0f64; n];
        for j in 0..n {
            col.fill(0.0);
            col[j] = 1.0;
            self.solve_in_place(&mut col)
                .expect("column length matches factorization by construction");
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

/// LU factorization with partial pivoting, for general square systems
/// (used by the sum-to-one constrained unmixing's bordered system, which is
/// symmetric but indefinite).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl Lu {
    /// Factorize `a`.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(HsiError::ShapeMismatch {
                left: a.shape(),
                right: (a.cols(), a.rows()),
            });
        }
        let n = a.rows();
        let mut lu: Vec<f64> = (0..n * n).map(|i| a.data[i]).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Pivot.
            let mut p = col;
            for r in col + 1..n {
                if lu[r * n + col].abs() > lu[p * n + col].abs() {
                    p = r;
                }
            }
            if lu[p * n + col].abs() < 1e-300 {
                return Err(HsiError::SingularMatrix);
            }
            if p != col {
                for j in 0..n {
                    lu.swap(col * n + j, p * n + j);
                }
                perm.swap(col, p);
            }
            let pivot = lu[col * n + col];
            for r in col + 1..n {
                let factor = lu[r * n + col] / pivot;
                lu[r * n + col] = factor;
                for j in col + 1..n {
                    lu[r * n + j] -= factor * lu[col * n + j];
                }
            }
        }
        Ok(Self { n, lu, perm })
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(HsiError::ShapeMismatch {
                left: (self.n, self.n),
                right: (b.len(), 1),
            });
        }
        let n = self.n;
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower triangle).
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[i * n + k] * x[k];
            }
        }
        // Backward substitution.
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.lu[i * n + k] * x[k];
            }
            x[i] /= self.lu[i * n + i];
        }
        Ok(x)
    }

    /// Explicit inverse `A⁻¹`, one solve per unit column.
    ///
    /// Used once per model fit to extract the abundance block and offset of
    /// the bordered sum-to-one system; never called per pixel.
    pub fn inverse(&self) -> Matrix {
        let n = self.n;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0f64; n];
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            let col = self
                .solve(&e)
                .expect("column length matches factorization by construction");
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

/// Unconstrained linear least squares: `argmin_x ‖A x − b‖₂` via normal
/// equations + Cholesky. `A` must have full column rank.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(HsiError::ShapeMismatch {
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let gram = a.gram();
    let chol = Cholesky::new(&gram)?;
    let at = a.transpose();
    let rhs = at.matvec(b)?;
    chol.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn identity_and_indexing() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        assert_eq!(i3.shape(), (3, 3));
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_columns_builds_endmember_matrix() {
        let e0 = [1.0f32, 2.0, 3.0];
        let e1 = [4.0f32, 5.0, 6.0];
        let m = Matrix::from_columns_f32(&[&e0, &e1]).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(2, 1)], 6.0);
        // Ragged columns rejected.
        let short = [1.0f32];
        assert!(Matrix::from_columns_f32(&[&e0, &short]).is_err());
        assert!(Matrix::from_columns_f32(&[]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_and_matvec() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(1, 1)], 50.0);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
        let bad = Matrix::zeros(3, 3);
        assert!(a.matmul(&bad).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(3, 2, &[1.0, 2.0, 0.0, 1.0, 4.0, -1.0]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < TOL);
            }
        }
    }

    #[test]
    fn transpose_matvec_f32_matches_explicit() {
        let a = Matrix::from_rows(3, 2, &[1.0, 2.0, 0.0, 1.0, 4.0, -1.0]).unwrap();
        let v = [1.0f32, 2.0, 3.0];
        let got = a.transpose_matvec_f32(&v).unwrap();
        let expected = a.transpose().matvec(&[1.0, 2.0, 3.0]).unwrap();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < TOL);
        }
        assert!(a.transpose_matvec_f32(&[1.0]).is_err());
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = Lref Lrefᵀ with Lref = [[2,0],[1,3]] → A = [[4,2],[2,10]].
        let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 2.0, 10.0]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let x = chol.solve(&[8.0, 26.0]).unwrap();
        // Check A x = b.
        let b = a.matvec(&x).unwrap();
        assert!((b[0] - 8.0).abs() < TOL && (b[1] - 26.0).abs() < TOL);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, −1
        assert!(matches!(Cholesky::new(&a), Err(HsiError::SingularMatrix)));
        let rect = Matrix::zeros(2, 3);
        assert!(Cholesky::new(&rect).is_err());
    }

    #[test]
    fn cholesky_solve_checks_length() {
        let a = Matrix::identity(3);
        let chol = Cholesky::new(&a).unwrap();
        assert!(chol.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn lu_solves_general_system() {
        // Needs pivoting: zero on the diagonal.
        let a = Matrix::from_rows(3, 3, &[0.0, 2.0, 1.0, 1.0, 0.0, 3.0, 2.0, 1.0, 0.0]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let xref = [1.0, -2.0, 3.0];
        let b = a.matvec(&xref).unwrap();
        let x = lu.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-8, "{x:?}");
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(Lu::new(&a), Err(HsiError::SingularMatrix)));
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined consistent system.
        let a = Matrix::from_rows(4, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]).unwrap();
        let xref = [0.5, 2.0];
        let b = a.matvec(&xref).unwrap();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 0.5).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn matmul_block_matches_matmul() {
        // Odd shapes exercise partial blocks; values from a fixed recurrence.
        let mut vals = Vec::new();
        let mut x = 0.37f64;
        for _ in 0..(70 * 65 + 65 * 3) {
            x = (x * 997.0 + 0.123).rem_euclid(7.0) - 3.5;
            vals.push(x);
        }
        let a = Matrix::from_rows(70, 65, &vals[..70 * 65]).unwrap();
        let b = Matrix::from_rows(65, 3, &vals[70 * 65..]).unwrap();
        let naive = a.matmul(&b).unwrap();
        let blocked = a.matmul_block(&b).unwrap();
        for i in 0..70 {
            for j in 0..3 {
                assert!((naive[(i, j)] - blocked[(i, j)]).abs() < 1e-9 * naive.max_abs());
            }
        }
        assert!(a.matmul_block(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn sub_block_extracts_and_validates() {
        let m = Matrix::from_rows(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]).unwrap();
        let b = m.sub_block(1, 0, 2, 2).unwrap();
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b[(0, 0)], 4.0);
        assert_eq!(b[(1, 1)], 8.0);
        assert!(m.sub_block(2, 2, 2, 2).is_err());
    }

    #[test]
    fn dot_products_match_naive_sums() {
        // 11 elements: exercises the 4-wide kernel plus a 3-element tail.
        let a: Vec<f64> = (0..11).map(|i| (i as f64) * 0.5 - 2.0).collect();
        let b32: Vec<f32> = (0..11).map(|i| (i as f32) * 0.25 + 1.0).collect();
        let b64: Vec<f64> = b32.iter().map(|&v| v as f64).collect();
        let naive: f64 = a.iter().zip(&b64).map(|(x, y)| x * y).sum();
        assert!((dot_f32(&a, &b32) - naive).abs() < TOL);
        assert!((dot_f64(&a, &b64) - naive).abs() < TOL);
    }

    #[test]
    fn apply_operator_matches_per_row_matvec() {
        let op = Matrix::from_rows(2, 3, &[1.0, -2.0, 0.5, 0.0, 3.0, 1.0]).unwrap();
        let pixels = [1.0f32, 2.0, 3.0, -1.0, 0.5, 2.0];
        let mut out = vec![0.0f64; 4];
        apply_operator_f32(&op, &pixels, &mut out).unwrap();
        for p in 0..2 {
            let v: Vec<f64> = pixels[p * 3..(p + 1) * 3]
                .iter()
                .map(|&x| x as f64)
                .collect();
            let expected = op.matvec(&v).unwrap();
            assert!((out[p * 2] - expected[0]).abs() < TOL);
            assert!((out[p * 2 + 1] - expected[1]).abs() < TOL);
        }
        // f64 variant agrees on the same data.
        let rows64: Vec<f64> = pixels.iter().map(|&x| x as f64).collect();
        let mut out64 = vec![0.0f64; 4];
        apply_operator_f64(&op, &rows64, &mut out64).unwrap();
        for (a, b) in out.iter().zip(&out64) {
            assert!((a - b).abs() < TOL);
        }
        // Shape validation.
        assert!(apply_operator_f32(&op, &pixels[..5], &mut out).is_err());
        assert!(apply_operator_f32(&op, &pixels, &mut out[..3]).is_err());
        assert!(apply_operator_f64(&op, &rows64[..5], &mut out64).is_err());
        assert!(apply_operator_f64(&op, &rows64, &mut out64[..3]).is_err());
    }

    #[test]
    fn cholesky_inverse_reproduces_identity() {
        let a = Matrix::from_rows(3, 3, &[4.0, 2.0, 1.0, 2.0, 10.0, 3.0, 1.0, 3.0, 6.0]).unwrap();
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        let ident = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - ident[(i, j)]).abs() < 1e-10, "{prod:?}");
            }
        }
    }

    #[test]
    fn lu_inverse_reproduces_identity() {
        let a = Matrix::from_rows(3, 3, &[0.0, 2.0, 1.0, 1.0, 0.0, 3.0, 2.0, 1.0, 0.0]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = a.matmul(&inv).unwrap();
        let ident = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - ident[(i, j)]).abs() < 1e-10, "{prod:?}");
            }
        }
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(3, 2, &[1.0, 1.0, 1.0, 2.0, 1.0, 3.0]).unwrap();
        let b = [1.0, 0.0, 2.0];
        let x = least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        // Aᵀ r = 0.
        let atr = a.transpose().matvec(&r).unwrap();
        assert!(atr.iter().all(|v| v.abs() < 1e-8), "{atr:?}");
    }
}
