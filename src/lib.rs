//! # hyperspec — GPU-style parallel hyperspectral image processing
//!
//! A full reproduction of Setoain, Tenllado, Prieto, Valencia, Plaza &
//! Plaza, *"Parallel Hyperspectral Image Processing on Commodity Graphics
//! Hardware"* (ICPP Workshops 2006): the Automated Morphological
//! Classification (AMC) algorithm mapped onto the stream programming model
//! of 2003–2005 commodity GPUs, together with every substrate the paper's
//! evaluation depends on.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`hsi`] — hyperspectral cubes, spectral distances (SID), extended
//!   morphology, linear unmixing, the reference AMC classifier, metrics.
//! * [`gpu`] (`gpu-sim`) — a functional + performance-modelling simulator of
//!   fp30-era programmable GPUs: fragment ISA, textures, rasterizer, texture
//!   cache, bus and roofline timing models.
//! * [`amc`] (`amc-core`) — the paper's contribution: the six-stage stream
//!   AMC pipeline, CPU baselines and the analytic work model behind the
//!   evaluation tables.
//! * [`scene`] (`hsi-scene`) — synthetic AVIRIS Indian Pines scenes with
//!   ground truth, ENVI I/O and rendering.
//! * [`trace`] — zero-dependency spans, instants, counters and latency
//!   histograms with a Chrome trace-event (Perfetto) exporter; see
//!   DESIGN.md §12 for the span taxonomy.
//!
//! ## Quickstart
//!
//! ```
//! use hyperspec::prelude::*;
//!
//! // A toy two-material cube.
//! let dims = CubeDims::new(8, 8, 4);
//! let cube = Cube::from_fn(dims, Interleave::Bip, |x, _, b| {
//!     if x < 4 { [80.0, 10.0, 10.0, 20.0][b] } else { [10.0, 10.0, 80.0, 20.0][b] }
//! }).unwrap();
//!
//! // Classify with the paper's configuration (3x3 SE, SID ordering).
//! let amc = AmcClassifier::new(AmcConfig::paper_default(2));
//! let out = amc.classify(&cube).unwrap();
//! assert_eq!(out.class_count(), 2);
//! assert_ne!(out.label(0, 4), out.label(7, 4));
//! ```

pub use amc_core as amc;
pub use gpu_sim as gpu;
pub use hsi;
pub use hsi_scene as scene;
pub use trace;

/// The most common imports in one place.
pub mod prelude {
    pub use amc_core::pipeline::{GpuAmc, KernelMode};
    pub use gpu_sim::device::{Compiler, CpuProfile, GpuProfile};
    pub use gpu_sim::gpu::Gpu;
    pub use hsi::classify::{AmcClassifier, AmcConfig, AmcOutput};
    pub use hsi::cube::{Chunking, Cube, CubeDims, Interleave};
    pub use hsi::morphology::{MeiImage, StructuringElement};
    pub use hsi::spectral::SpectralDistance;
    pub use hsi::unmix::{AbundanceConstraint, LinearMixtureModel};
    pub use hsi_scene::scene::{generate, SceneConfig, SyntheticScene};
}
