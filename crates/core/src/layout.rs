//! Stream layout of hyperspectral cubes (Fig. 3 of the paper).
//!
//! "We have opted to split every hyperspectral image into a stack of 2D
//! textures \[and\] mapped every group of four consecutive channels onto the
//! RGBA color channels of the texture elements, in order to take advantage
//! of the SIMD capabilities of the fragment processors."
//!
//! A cube with `N` bands becomes `ceil(N / 4)` band-group planes; the final
//! group is zero-padded. Zero padding is harmless downstream: padded lanes
//! contribute nothing to the band sum and cancel inside the ε-guarded SID.

use hsi::cube::Cube;

/// Number of spectral bands packed per texel.
pub const BANDS_PER_TEXEL: usize = 4;

/// Number of band-group planes for an `bands`-band cube.
pub const fn band_groups(bands: usize) -> usize {
    bands.div_ceil(BANDS_PER_TEXEL)
}

/// Pack band group `group` of a cube into a flat RGBA buffer
/// (`width * height * 4` floats, row-major texels).
///
/// Lane `l` of texel `(x, y)` holds band `group * 4 + l`, or zero beyond the
/// last band.
pub fn pack_band_group(cube: &Cube, group: usize) -> Vec<f32> {
    let mut out = Vec::new();
    pack_band_group_into(cube, group, &mut out);
    out
}

/// [`pack_band_group`] into a caller-owned buffer (cleared and refilled),
/// so streaming executors can reuse one scratch allocation per plane
/// instead of allocating `groups × chunks` fresh buffers.
pub fn pack_band_group_into(cube: &Cube, group: usize, out: &mut Vec<f32>) {
    let dims = cube.dims();
    assert!(group < band_groups(dims.bands), "band group out of range");
    out.clear();
    out.resize(dims.width * dims.height * 4, 0.0);
    for y in 0..dims.height {
        for x in 0..dims.width {
            let base = (y * dims.width + x) * 4;
            for lane in 0..BANDS_PER_TEXEL {
                let band = group * BANDS_PER_TEXEL + lane;
                out[base + lane] = if band < dims.bands {
                    cube.get(x, y, band)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack the whole cube into its stack of band-group buffers.
pub fn pack_cube(cube: &Cube) -> Vec<Vec<f32>> {
    let mut groups = Vec::new();
    pack_cube_into(cube, &mut groups);
    groups
}

/// [`pack_cube`] into caller-owned buffers (resized and refilled). Buffers
/// beyond the band-group count are truncated away; existing buffers are
/// reused without reallocating when capacities already fit.
pub fn pack_cube_into(cube: &Cube, groups: &mut Vec<Vec<f32>>) {
    let n = band_groups(cube.dims().bands);
    groups.resize_with(n, Vec::new);
    for (g, buf) in groups.iter_mut().enumerate() {
        pack_band_group_into(cube, g, buf);
    }
}

/// Reassemble a cube (BIP) from packed band-group buffers.
pub fn unpack_cube(
    groups: &[Vec<f32>],
    width: usize,
    height: usize,
    bands: usize,
) -> hsi::error::Result<Cube> {
    assert_eq!(groups.len(), band_groups(bands), "band group count");
    let dims = hsi::cube::CubeDims::new(width, height, bands);
    let mut data = vec![0.0f32; dims.samples()];
    for (g, buf) in groups.iter().enumerate() {
        assert_eq!(buf.len(), width * height * 4, "band group buffer size");
        for y in 0..height {
            for x in 0..width {
                let base = (y * width + x) * 4;
                for lane in 0..BANDS_PER_TEXEL {
                    let band = g * BANDS_PER_TEXEL + lane;
                    if band < bands {
                        data[(y * width + x) * bands + band] = buf[base + lane];
                    }
                }
            }
        }
    }
    Cube::from_vec(dims, hsi::cube::Interleave::Bip, data)
}

/// Bytes of video memory one band-group plane occupies (RGBA32F).
pub const fn plane_bytes(width: usize, height: usize) -> usize {
    width * height * 16
}

/// Video memory needed to hold all band groups of a `w x h x bands` chunk.
pub const fn cube_plane_bytes(width: usize, height: usize, bands: usize) -> usize {
    band_groups(bands) * plane_bytes(width, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsi::cube::{CubeDims, Interleave};

    #[test]
    fn band_group_counts() {
        assert_eq!(band_groups(1), 1);
        assert_eq!(band_groups(4), 1);
        assert_eq!(band_groups(5), 2);
        assert_eq!(band_groups(216), 54); // AVIRIS after calibration drops
        assert_eq!(band_groups(224), 56); // raw AVIRIS
    }

    #[test]
    fn pack_places_bands_in_rgba_lanes() {
        let cube = Cube::from_fn(CubeDims::new(2, 1, 6), Interleave::Bip, |x, _, b| {
            (x * 10 + b) as f32
        })
        .unwrap();
        let g0 = pack_band_group(&cube, 0);
        assert_eq!(g0, vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]);
        let g1 = pack_band_group(&cube, 1);
        // Bands 4, 5 then zero padding.
        assert_eq!(g1, vec![4.0, 5.0, 0.0, 0.0, 14.0, 15.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        for bands in [1, 3, 4, 7, 8] {
            let cube = Cube::from_fn(CubeDims::new(3, 2, bands), Interleave::Bip, |x, y, b| {
                (100 * x + 10 * y + b) as f32
            })
            .unwrap();
            let groups = pack_cube(&cube);
            assert_eq!(groups.len(), band_groups(bands));
            let back = unpack_cube(&groups, 3, 2, bands).unwrap();
            assert_eq!(back, cube, "bands = {bands}");
        }
    }

    #[test]
    fn pack_works_from_any_interleave() {
        let dims = CubeDims::new(4, 3, 5);
        let bip =
            Cube::from_fn(dims, Interleave::Bip, |x, y, b| (x + 2 * y + 3 * b) as f32).unwrap();
        let bsq = bip.to_interleave(Interleave::Bsq);
        assert_eq!(pack_cube(&bip), pack_cube(&bsq));
    }

    #[test]
    fn memory_footprints() {
        assert_eq!(plane_bytes(64, 32), 64 * 32 * 16);
        // Full Indian Pines: 54 planes of 2166x614 RGBA32F ≈ 1.07 GiB —
        // exceeds the 256 MiB cards, which is exactly why the paper chunks.
        let full = cube_plane_bytes(2166, 614, 216);
        assert!(full > 256 * 1024 * 1024);
        assert_eq!(full, 54 * 2166 * 614 * 16);
    }

    #[test]
    fn pack_into_reuses_buffers_and_scrubs_stale_contents() {
        let small = Cube::from_fn(CubeDims::new(2, 1, 3), Interleave::Bip, |x, _, b| {
            (x * 10 + b) as f32
        })
        .unwrap();
        let big = Cube::from_fn(CubeDims::new(3, 2, 6), Interleave::Bip, |x, y, b| {
            (100 * x + 10 * y + b) as f32
        })
        .unwrap();
        // Pack big, then small into the same buffers: stale lanes (padding)
        // and stale trailing groups must not leak through.
        let mut groups = Vec::new();
        pack_cube_into(&big, &mut groups);
        assert_eq!(groups.len(), 2);
        pack_cube_into(&small, &mut groups);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], pack_band_group(&small, 0));
        assert_eq!(groups[0][3], 0.0, "padding lane re-zeroed");
        // And a buffer round-trip still reconstructs the cube.
        pack_cube_into(&big, &mut groups);
        let back = unpack_cube(&groups, 3, 2, 6).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    #[should_panic(expected = "band group out of range")]
    fn pack_rejects_bad_group() {
        let cube = Cube::zeros(CubeDims::new(2, 2, 4), Interleave::Bip).unwrap();
        pack_band_group(&cube, 1);
    }
}
