!!FP1.0 fix-clean
# Epsilon-guarded reciprocal: no verifier output at all.
DEF C0, 0.00001, 0.0, 0.0, 0.0
TEX R0, T0, tex0
MAX R1, R0, C0.xxxx
RCP R2.x, R1.x
MOV OC, R2.xxxx
