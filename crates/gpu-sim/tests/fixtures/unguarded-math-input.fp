!!FP1.0 fix-unguarded-math-input
# RCP of a raw texel: zero texels produce inf downstream.
TEX R0, T0, tex0
RCP R1.x, R0.x
MOV OC, R1.xxxx
