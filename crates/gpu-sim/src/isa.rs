//! The fragment-shader instruction set.
//!
//! Modelled on the NV `fp30` profile the paper's Cg kernels compiled to:
//! SIMD4 register-to-register arithmetic with swizzles, write masks,
//! saturation and texture sampling. Two documented deviations from the real
//! hardware keep kernels compact without changing counted work shape:
//!
//! 1. `RCP`/`RSQ`/`EX2`/`LG2` operate componentwise (real fp30 issued them
//!    per scalar, but NV3x/G7x co-issued scalar ops, so a vector count is the
//!    fairer cost model);
//! 2. `LG2` of a non-positive input returns `log2` of the smallest positive
//!    `f32` instead of an unspecified value, so mis-guarded kernels fail
//!    loudly in tests rather than silently.

use std::fmt;

/// Register files visible to a fragment program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reg {
    /// Temporary register `R0..R15`.
    Temp(u8),
    /// Program constant `C0..C31` (bound per pass or via `DEF`).
    Const(u8),
    /// Interpolated texture coordinate set `T0..T7`.
    TexCoord(u8),
    /// Output color `O0..O3` (`OC` is an alias for `O0`).
    Output(u8),
}

/// Number of temporary registers.
pub const NUM_TEMPS: usize = 16;
/// Number of constant registers.
pub const NUM_CONSTS: usize = 32;
/// Number of texture-coordinate sets.
pub const NUM_TEXCOORDS: usize = 8;
/// Number of output registers (multiple render targets).
pub const NUM_OUTPUTS: usize = 4;
/// Number of texture samplers. NV3x exposed 16 texture image units to
/// fragment programs (twice the interpolated coordinate sets), which is what
/// lets a fused producer→consumer program bind both passes' textures at once.
pub const NUM_SAMPLERS: usize = 16;

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Temp(i) => write!(f, "R{i}"),
            Reg::Const(i) => write!(f, "C{i}"),
            Reg::TexCoord(i) => write!(f, "T{i}"),
            Reg::Output(0) => write!(f, "OC"),
            Reg::Output(i) => write!(f, "O{i}"),
        }
    }
}

/// A four-component swizzle; each entry selects a source lane (0..=3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Swizzle(pub [u8; 4]);

impl Swizzle {
    /// The identity swizzle `.xyzw`.
    pub const IDENTITY: Swizzle = Swizzle([0, 1, 2, 3]);

    /// Broadcast a single lane.
    pub const fn splat(lane: u8) -> Swizzle {
        Swizzle([lane, lane, lane, lane])
    }

    /// Apply to a vector.
    #[inline(always)]
    pub fn apply(&self, v: [f32; 4]) -> [f32; 4] {
        [
            v[self.0[0] as usize],
            v[self.0[1] as usize],
            v[self.0[2] as usize],
            v[self.0[3] as usize],
        ]
    }

    /// True if this is the identity swizzle.
    pub fn is_identity(&self) -> bool {
        self.0 == [0, 1, 2, 3]
    }
}

impl fmt::Display for Swizzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return Ok(());
        }
        const LANES: [char; 4] = ['x', 'y', 'z', 'w'];
        write!(f, ".")?;
        // Collapse a splat to one character.
        if self.0.iter().all(|&l| l == self.0[0]) {
            return write!(f, "{}", LANES[self.0[0] as usize]);
        }
        for &l in &self.0 {
            write!(f, "{}", LANES[l as usize])?;
        }
        Ok(())
    }
}

/// A source operand: register, swizzle, optional negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Src {
    /// Source register.
    pub reg: Reg,
    /// Lane selection.
    pub swizzle: Swizzle,
    /// Negate after swizzling.
    pub negate: bool,
}

impl Src {
    /// Plain (un-swizzled, positive) source.
    pub const fn new(reg: Reg) -> Src {
        Src {
            reg,
            swizzle: Swizzle::IDENTITY,
            negate: false,
        }
    }

    /// Source broadcasting one lane.
    pub const fn lane(reg: Reg, lane: u8) -> Src {
        Src {
            reg,
            swizzle: Swizzle::splat(lane),
            negate: false,
        }
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "-")?;
        }
        write!(f, "{}{}", self.reg, self.swizzle)
    }
}

/// A destination operand: register, write mask, optional saturation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dst {
    /// Destination register (temp or output).
    pub reg: Reg,
    /// Per-lane write enable.
    pub mask: [bool; 4],
    /// Clamp results to `[0, 1]` before writing.
    pub saturate: bool,
}

impl Dst {
    /// Full write, no saturation.
    pub const fn new(reg: Reg) -> Dst {
        Dst {
            reg,
            mask: [true; 4],
            saturate: false,
        }
    }

    /// True when all four lanes are written.
    pub fn full(&self) -> bool {
        self.mask.iter().all(|&m| m)
    }

    /// The write mask packed into the low four bits (bit `i` = lane `i`),
    /// the form the lowered executor tests per lane.
    pub fn mask_bits(&self) -> u8 {
        self.mask
            .iter()
            .enumerate()
            .fold(0u8, |bits, (lane, &on)| bits | ((on as u8) << lane))
    }
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reg)?;
        if !self.full() {
            write!(f, ".")?;
            const LANES: [char; 4] = ['x', 'y', 'z', 'w'];
            for (i, &m) in self.mask.iter().enumerate() {
                if m {
                    write!(f, "{}", LANES[i])?;
                }
            }
        }
        Ok(())
    }
}

/// Operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Copy: `d = s0`.
    Mov,
    /// Componentwise add.
    Add,
    /// Componentwise subtract.
    Sub,
    /// Componentwise multiply.
    Mul,
    /// Multiply-add: `d = s0*s1 + s2`.
    Mad,
    /// Componentwise minimum.
    Min,
    /// Componentwise maximum.
    Max,
    /// Componentwise reciprocal.
    Rcp,
    /// Componentwise reciprocal square root.
    Rsq,
    /// Componentwise `2^x`.
    Ex2,
    /// Componentwise `log2(x)` (non-positive inputs clamp to tiny).
    Lg2,
    /// Fractional part: `x - floor(x)`.
    Frc,
    /// Floor.
    Flr,
    /// Absolute value.
    Abs,
    /// Set on less-than: `d = s0 < s1 ? 1 : 0`.
    Slt,
    /// Set on greater-or-equal.
    Sge,
    /// Conditional select: `d = s0 < 0 ? s1 : s2`.
    Cmp,
    /// Linear interpolation: `d = s0*s1 + (1-s0)*s2`.
    Lrp,
    /// 3-component dot product, broadcast to all lanes.
    Dp3,
    /// 4-component dot product, broadcast to all lanes.
    Dp4,
    /// Texture sample: `d = tex[sampler].sample(s0.xy)`.
    Tex,
}

impl Opcode {
    /// Number of source operands.
    pub fn arity(&self) -> usize {
        match self {
            Opcode::Mov
            | Opcode::Rcp
            | Opcode::Rsq
            | Opcode::Ex2
            | Opcode::Lg2
            | Opcode::Frc
            | Opcode::Flr
            | Opcode::Abs
            | Opcode::Tex => 1,
            Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Min
            | Opcode::Max
            | Opcode::Slt
            | Opcode::Sge
            | Opcode::Dp3
            | Opcode::Dp4 => 2,
            Opcode::Mad | Opcode::Cmp | Opcode::Lrp => 3,
        }
    }

    /// Mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Opcode::Mov => "MOV",
            Opcode::Add => "ADD",
            Opcode::Sub => "SUB",
            Opcode::Mul => "MUL",
            Opcode::Mad => "MAD",
            Opcode::Min => "MIN",
            Opcode::Max => "MAX",
            Opcode::Rcp => "RCP",
            Opcode::Rsq => "RSQ",
            Opcode::Ex2 => "EX2",
            Opcode::Lg2 => "LG2",
            Opcode::Frc => "FRC",
            Opcode::Flr => "FLR",
            Opcode::Abs => "ABS",
            Opcode::Slt => "SLT",
            Opcode::Sge => "SGE",
            Opcode::Cmp => "CMP",
            Opcode::Lrp => "LRP",
            Opcode::Dp3 => "DP3",
            Opcode::Dp4 => "DP4",
            Opcode::Tex => "TEX",
        }
    }

    /// Parse a mnemonic (uppercase).
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Some(match s {
            "MOV" => Opcode::Mov,
            "ADD" => Opcode::Add,
            "SUB" => Opcode::Sub,
            "MUL" => Opcode::Mul,
            "MAD" => Opcode::Mad,
            "MIN" => Opcode::Min,
            "MAX" => Opcode::Max,
            "RCP" => Opcode::Rcp,
            "RSQ" => Opcode::Rsq,
            "EX2" => Opcode::Ex2,
            "LG2" => Opcode::Lg2,
            "FRC" => Opcode::Frc,
            "FLR" => Opcode::Flr,
            "ABS" => Opcode::Abs,
            "SLT" => Opcode::Slt,
            "SGE" => Opcode::Sge,
            "CMP" => Opcode::Cmp,
            "LRP" => Opcode::Lrp,
            "DP3" => Opcode::Dp3,
            "DP4" => Opcode::Dp4,
            "TEX" => Opcode::Tex,
            _ => return None,
        })
    }

    /// All opcodes (for exhaustive tests).
    pub const ALL: [Opcode; 21] = [
        Opcode::Mov,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Mad,
        Opcode::Min,
        Opcode::Max,
        Opcode::Rcp,
        Opcode::Rsq,
        Opcode::Ex2,
        Opcode::Lg2,
        Opcode::Frc,
        Opcode::Flr,
        Opcode::Abs,
        Opcode::Slt,
        Opcode::Sge,
        Opcode::Cmp,
        Opcode::Lrp,
        Opcode::Dp3,
        Opcode::Dp4,
        Opcode::Tex,
    ];
}

/// One decoded instruction.
///
/// Equality ignores [`Instr::line`]: two instructions are the same operation
/// regardless of where they appeared in source, which keeps
/// assemble → `to_asm` → assemble round-trips equal even though the texts
/// have different layouts.
#[derive(Debug, Clone)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// Destination.
    pub dst: Dst,
    /// Sources (`op.arity()` of them).
    pub srcs: Vec<Src>,
    /// Sampler index for [`Opcode::Tex`].
    pub sampler: Option<u8>,
    /// 1-based source line this instruction was assembled from (0 when the
    /// instruction was built in code rather than assembled).
    pub line: usize,
}

impl PartialEq for Instr {
    fn eq(&self, other: &Self) -> bool {
        self.op == other.op
            && self.dst == other.dst
            && self.srcs == other.srcs
            && self.sampler == other.sampler
    }
}

/// A constant preloaded by a `DEF` directive.
///
/// Equality ignores [`ConstDef::line`], mirroring [`Instr`].
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Constant register index (`C<index>`).
    pub index: u8,
    /// The four-component value.
    pub value: [f32; 4],
    /// 1-based source line of the `DEF` (0 when built in code).
    pub line: usize,
}

impl PartialEq for ConstDef {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.value == other.value
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op.mnemonic())?;
        if self.dst.saturate {
            write!(f, "_SAT")?;
        }
        write!(f, " {}", self.dst)?;
        for s in &self.srcs {
            write!(f, ", {s}")?;
        }
        if let Some(s) = self.sampler {
            write!(f, ", tex{s}")?;
        }
        Ok(())
    }
}

/// A complete fragment program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Optional program name (from the `!!name` directive).
    pub name: String,
    /// Instruction sequence.
    pub instrs: Vec<Instr>,
    /// Constants pre-set by `DEF` directives.
    pub defs: Vec<ConstDef>,
}

impl Program {
    /// Number of instructions (the static cost the timing model uses).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of `TEX` instructions (texel fetches per fragment).
    pub fn tex_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.op == Opcode::Tex).count()
    }

    /// Highest sampler index used, if any.
    pub fn max_sampler(&self) -> Option<u8> {
        self.instrs.iter().filter_map(|i| i.sampler).max()
    }

    /// Render the program back to assembly text.
    pub fn to_asm(&self) -> String {
        let mut out = String::new();
        if !self.name.is_empty() {
            out.push_str(&format!("!!{}\n", self.name));
        }
        for d in &self.defs {
            let v = d.value;
            out.push_str(&format!(
                "DEF C{}, {}, {}, {}, {}\n",
                d.index, v[0], v[1], v[2], v[3]
            ));
        }
        for i in &self.instrs {
            out.push_str(&format!("{i}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swizzle_apply_and_display() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(Swizzle::IDENTITY.apply(v), v);
        assert_eq!(Swizzle([3, 2, 1, 0]).apply(v), [4.0, 3.0, 2.0, 1.0]);
        assert_eq!(Swizzle::splat(1).apply(v), [2.0; 4]);
        assert_eq!(Swizzle::IDENTITY.to_string(), "");
        assert_eq!(Swizzle::splat(2).to_string(), ".z");
        assert_eq!(Swizzle([0, 0, 1, 1]).to_string(), ".xxyy");
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg::Temp(3).to_string(), "R3");
        assert_eq!(Reg::Const(15).to_string(), "C15");
        assert_eq!(Reg::TexCoord(0).to_string(), "T0");
        assert_eq!(Reg::Output(0).to_string(), "OC");
        assert_eq!(Reg::Output(2).to_string(), "O2");
    }

    #[test]
    fn operand_display() {
        let mut s = Src::new(Reg::Temp(0));
        s.negate = true;
        s.swizzle = Swizzle::splat(0);
        assert_eq!(s.to_string(), "-R0.x");
        let mut d = Dst::new(Reg::Output(0));
        d.mask = [true, true, false, false];
        assert_eq!(d.to_string(), "OC.xy");
        assert!(!d.full());
        assert!(Dst::new(Reg::Temp(1)).full());
    }

    #[test]
    fn opcode_round_trip_and_arity() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
            assert!(op.arity() >= 1 && op.arity() <= 3);
        }
        assert_eq!(Opcode::from_mnemonic("NOPE"), None);
        assert_eq!(Opcode::Mad.arity(), 3);
        assert_eq!(Opcode::Tex.arity(), 1);
    }

    #[test]
    fn instr_display() {
        let i = Instr {
            op: Opcode::Mad,
            dst: Dst::new(Reg::Temp(2)),
            srcs: vec![
                Src::new(Reg::Temp(0)),
                Src::lane(Reg::Const(1), 0),
                Src::new(Reg::Temp(1)),
            ],
            sampler: None,
            line: 0,
        };
        assert_eq!(i.to_string(), "MAD R2, R0, C1.x, R1");
        let t = Instr {
            op: Opcode::Tex,
            dst: Dst::new(Reg::Temp(0)),
            srcs: vec![Src::new(Reg::TexCoord(0))],
            sampler: Some(3),
            line: 0,
        };
        assert_eq!(t.to_string(), "TEX R0, T0, tex3");
    }

    #[test]
    fn program_queries() {
        let p = Program {
            name: "test".into(),
            instrs: vec![
                Instr {
                    op: Opcode::Tex,
                    dst: Dst::new(Reg::Temp(0)),
                    srcs: vec![Src::new(Reg::TexCoord(0))],
                    sampler: Some(0),
                    line: 0,
                },
                Instr {
                    op: Opcode::Mov,
                    dst: Dst::new(Reg::Output(0)),
                    srcs: vec![Src::new(Reg::Temp(0))],
                    sampler: None,
                    line: 0,
                },
            ],
            defs: vec![ConstDef {
                index: 0,
                value: [1.0, 2.0, 3.0, 4.0],
                line: 0,
            }],
        };
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.tex_count(), 1);
        assert_eq!(p.max_sampler(), Some(0));
        let asm = p.to_asm();
        assert!(asm.contains("!!test"));
        assert!(asm.contains("DEF C0, 1, 2, 3, 4"));
        assert!(asm.contains("TEX R0, T0, tex0"));
    }
}
