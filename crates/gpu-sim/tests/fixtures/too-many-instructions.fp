!!FP1.0 fix-too-many-instructions
# Five instructions; the test checks it against a profile that allows four.
TEX R0, T0, tex0
MOV R1, R0
MOV R2, R1
MOV R3, R2
MOV OC, R3
