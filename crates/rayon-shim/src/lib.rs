//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the exact API subset the workspace uses: `par_chunks` /
//! `par_chunks_mut` / `par_sort_by` / `into_par_iter` through
//! `rayon::prelude::*`, with the usual `enumerate` / `zip` / `map` /
//! `for_each` / `collect` / `sum` adapters.
//!
//! Unlike earlier revisions of this shim, execution is **multi-threaded**:
//! work items are drained from a shared queue by scoped `std::thread`
//! workers (the calling thread participates, so a pool of size 1 is exactly
//! the old sequential path). All call sites are data-parallel with disjoint
//! outputs, so results are bit-identical at every thread count.
//!
//! Thread-count resolution, in priority order:
//! 1. a scoped programmatic override installed with [`with_threads`]
//!    (thread-local, used by determinism tests),
//! 2. the `GPU_SIM_THREADS` environment variable (read once per process;
//!    `GPU_SIM_THREADS=1` forces the sequential debug path),
//! 3. [`std::thread::available_parallelism`].
//!
//! Callers that spawn coordination threads of their own (e.g. the chunk
//! executor's double-buffered packing thread) can take a
//! [`ThreadReservation`] so the pool and those threads together never
//! oversubscribe the host.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Scoped override installed by [`with_threads`]; 0 means "unset".
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Worker slots claimed by live [`ThreadReservation`] guards.
    static RESERVED: Cell<usize> = const { Cell::new(0) };
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("GPU_SIM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Number of worker threads a parallel call issued from this thread may use
/// (override > `GPU_SIM_THREADS` > `available_parallelism`, minus any live
/// [`ThreadReservation`]s; never less than 1).
pub fn max_threads() -> usize {
    let base = match OVERRIDE.with(Cell::get) {
        0 => env_threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        n => n,
    };
    base.saturating_sub(RESERVED.with(Cell::get)).max(1)
}

/// Run `f` with the pool width forced to `n` for parallel calls issued from
/// the current thread. Restores the previous setting on exit (including on
/// panic). `n = 1` forces the sequential execution order.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(n.max(1))));
    f()
}

/// Guard that reserves one worker slot for a thread managed outside the
/// pool, so pool + external threads stay within `available_parallelism`.
/// The slot is released when the guard drops.
#[must_use = "the reservation is released when this guard is dropped"]
pub struct ThreadReservation(());

/// Reserve one worker slot on the current thread (see [`ThreadReservation`]).
pub fn reserve_thread() -> ThreadReservation {
    RESERVED.with(|c| c.set(c.get() + 1));
    ThreadReservation(())
}

impl Drop for ThreadReservation {
    fn drop(&mut self) {
        RESERVED.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Drain `items` through `f` on a scoped worker pool. The calling thread is
/// one of the workers; with an effective width of 1 this is a plain
/// in-order loop.
fn run_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    // Trace gating is hoisted once per dispatch: the per-item path pays a
    // single bool test when tracing is off.
    let traced = trace::enabled();
    let queue = Mutex::new(items.into_iter());
    let work = || {
        let _drain = trace::span_with(
            "pool.worker",
            "drain",
            &[("threads", trace::ArgValue::U64(threads as u64))],
        );
        loop {
            let wait = traced.then(std::time::Instant::now);
            let item = queue.lock().unwrap().next();
            if let Some(started) = wait {
                trace::metrics::observe("pool.queue_wait", started.elapsed());
            }
            match item {
                Some(item) => f(item),
                None => return,
            }
        }
    };
    std::thread::scope(|s| {
        let work = &work;
        for k in 1..threads {
            s.spawn(move || {
                if traced {
                    // Stable role name: successive scoped workers with the
                    // same index share one timeline row in the trace viewer.
                    trace::set_thread_name(&format!("pool-worker-{k}"));
                }
                work();
            });
        }
        work();
    });
}

/// Parallel map preserving input order: each worker writes its result into
/// the slot belonging to its item, so the output is identical to a
/// sequential map regardless of scheduling.
fn run_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let slots: Vec<(&mut Option<R>, T)> = out.iter_mut().zip(items).collect();
    run_each(slots, |(slot, item)| *slot = Some(f(item)));
    out.into_iter()
        .map(|r| r.expect("worker filled slot"))
        .collect()
}

/// The subset of `rayon::iter::ParallelIterator` the workspace uses.
///
/// Adapters materialise their work list via [`into_items`]; the terminal
/// operations (`for_each`, `collect`, `sum`) dispatch that list onto the
/// worker pool.
///
/// [`into_items`]: ParallelIterator::into_items
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Materialise the items this iterator will dispatch. For composed
    /// adapters (e.g. `map`) this is where the parallel work happens.
    fn into_items(self) -> Vec<Self::Item>;

    /// Apply `f` to every item on the worker pool.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_each(self.into_items(), f);
    }

    /// Lazily map every item through `f` (runs on the pool at the terminal
    /// operation).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pair every item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Pair items with another parallel iterator, truncating to the shorter.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Collect all items in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }

    /// Sum all items. The reduction itself is sequential (and thus
    /// deterministic for floats); any mapped work has already run on the
    /// pool inside [`into_items`](ParallelIterator::into_items).
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_items().into_iter().sum()
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn into_items(self) -> Vec<R> {
        run_map(self.base.into_items(), self.f)
    }

    fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_each(self.base.into_items(), |item| g(f(item)));
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.base.into_items().into_iter().enumerate().collect()
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.a
            .into_items()
            .into_iter()
            .zip(self.b.into_items())
            .collect()
    }
}

/// Borrowed chunks of a shared slice (see `par_chunks`).
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn into_items(self) -> Vec<&'a [T]> {
        self.slice.chunks(self.size).collect()
    }
}

/// Borrowed chunks of a mutable slice (see `par_chunks_mut`).
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn into_items(self) -> Vec<&'a mut [T]> {
        self.slice.chunks_mut(self.size).collect()
    }
}

/// Owned items lifted into the pool (see `into_par_iter`).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// The rayon prelude: parallel-slice traits plus the iterator adapters.
pub mod prelude {
    pub use super::{Enumerate, Map, ParIter, ParallelIterator, Zip};

    /// Pool-backed stand-in for `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T: Sync> {
        /// Chunked traversal dispatched on the worker pool.
        fn par_chunks(&self, chunk_size: usize) -> super::ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> super::ParChunks<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            super::ParChunks {
                slice: self,
                size: chunk_size,
            }
        }
    }

    /// Pool-backed stand-in for `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        /// Chunked mutable traversal dispatched on the worker pool.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> super::ParChunksMut<'_, T>;

        /// Stable comparator sort: chunks are sorted on the pool, then a
        /// final (adaptive, run-merging) stable sort combines them.
        fn par_sort_by<F>(&mut self, compare: F)
        where
            F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> super::ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            super::ParChunksMut {
                slice: self,
                size: chunk_size,
            }
        }

        fn par_sort_by<F>(&mut self, compare: F)
        where
            F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
        {
            let threads = super::max_threads();
            if threads > 1 && self.len() >= 2 * threads {
                let chunk = self.len().div_ceil(threads);
                let parts: Vec<&mut [T]> = self.chunks_mut(chunk).collect();
                super::run_each(parts, |part| part.sort_by(&compare));
                // The std stable sort detects the pre-sorted runs, so this
                // final pass is effectively the merge step.
            }
            self.sort_by(&compare);
        }
    }

    /// Pool-backed stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Lift an ordinary collection or range onto the worker pool.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;
        type Iter = super::ParIter<I::Item>;
        fn into_par_iter(self) -> super::ParIter<I::Item> {
            super::ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_behaves_like_chunks_mut() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_chunks_reads_in_order() {
        let v = [1, 2, 3, 4, 5];
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, [3, 7, 5]);
    }

    #[test]
    fn zipped_chunk_iterators_stay_aligned() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = i as u32;
                cb[0] = 10 + i as u32;
            });
        assert_eq!(a, [0, 0, 1, 0, 2, 0]);
        assert_eq!(b, [10, 0, 11, 0, 12, 0]);
    }

    #[test]
    fn into_par_iter_matches_into_iter() {
        let total: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let gold: Vec<u64> = super::with_threads(1, || {
            (0u64..997).into_par_iter().map(|x| x * x + 1).collect()
        });
        for threads in [2, 3, 8] {
            let out: Vec<u64> = super::with_threads(threads, || {
                (0u64..997).into_par_iter().map(|x| x * x + 1).collect()
            });
            assert_eq!(out, gold, "threads={threads}");
        }
    }

    #[test]
    fn pool_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        super::with_threads(4, || {
            (0..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        // The calling thread participates; with 4 workers and sleeping
        // items at least one extra thread must have picked up work.
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn with_threads_scopes_and_restores() {
        let outer = super::max_threads();
        super::with_threads(3, || {
            assert_eq!(super::max_threads(), 3);
            super::with_threads(1, || assert_eq!(super::max_threads(), 1));
            assert_eq!(super::max_threads(), 3);
        });
        assert_eq!(super::max_threads(), outer);
    }

    #[test]
    fn reservation_shrinks_the_pool_and_releases_on_drop() {
        super::with_threads(4, || {
            let guard = super::reserve_thread();
            assert_eq!(super::max_threads(), 3);
            let second = super::reserve_thread();
            assert_eq!(super::max_threads(), 2);
            drop(second);
            drop(guard);
            assert_eq!(super::max_threads(), 4);
        });
    }

    #[test]
    fn par_sort_by_is_stable_and_sorted() {
        // Keys collide often so stability is observable via the payload.
        let mut v: Vec<(u32, usize)> = (0..1000).map(|i| (((i * 7919) % 10) as u32, i)).collect();
        let mut expect = v.clone();
        expect.sort_by_key(|e| e.0);
        super::with_threads(4, || {
            v.par_sort_by(|a, b| a.0.cmp(&b.0));
        });
        assert_eq!(v, expect);
    }

    #[test]
    fn map_for_each_composes_on_the_pool() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let acc = AtomicU64::new(0);
        super::with_threads(4, || {
            (1u64..=100).into_par_iter().map(|x| x * 2).for_each(|x| {
                acc.fetch_add(x, Ordering::Relaxed);
            });
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10100);
    }
}
