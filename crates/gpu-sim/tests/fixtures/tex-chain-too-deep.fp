!!FP1.0 fix-tex-chain-too-deep
# Five dependent texture reads; the FX 5950 allows chains of four.
TEX R0, T0, tex0
TEX R1, R0, tex0
TEX R2, R1, tex0
TEX R3, R2, tex0
TEX R4, R3, tex0
MOV OC, R4
