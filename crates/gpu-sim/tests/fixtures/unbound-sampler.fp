!!FP1.0 fix-unbound-sampler
# Samples tex3; the pass only binds one texture.
TEX R0, T0, tex3
MOV OC, R0
