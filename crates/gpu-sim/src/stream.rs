//! A Brook-like stream layer over the raw device.
//!
//! The paper (Section 2) abstracts the GPU as a stream processor: data lives
//! in *streams* (ordered sets backed by textures), computation in *kernels*
//! (fragment programs mapped over whole streams) with no ordering guarantees
//! between output elements. This module is that abstraction: [`Stream`]
//! wraps a texture, [`map`]/[`map_closure`] apply a kernel, and
//! [`reduce_sum`] shows the classic log-step GPGPU reduction.

use crate::counters::PassStats;
use crate::error::Result;
use crate::gpu::{Fetcher, Gpu, TextureId};
use crate::isa::Program;
use crate::raster::{Quad, TexCoordSet};
use crate::texture::Texel;

/// A 2D stream of float4 elements, resident on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream {
    /// Backing texture.
    pub id: TextureId,
    /// Width in elements.
    pub width: usize,
    /// Height in elements.
    pub height: usize,
}

impl Stream {
    /// Allocate an uninitialised (zero) stream.
    pub fn create(gpu: &mut Gpu, width: usize, height: usize) -> Result<Stream> {
        let id = gpu.alloc_texture(width, height)?;
        Ok(Stream { id, width, height })
    }

    /// Allocate and fill a stream from host data (4 floats per element).
    pub fn upload(gpu: &mut Gpu, width: usize, height: usize, data: &[f32]) -> Result<Stream> {
        let s = Stream::create(gpu, width, height)?;
        gpu.upload(s.id, data)?;
        Ok(s)
    }

    /// Read the stream back to the host.
    pub fn read(&self, gpu: &mut Gpu) -> Result<Vec<f32>> {
        gpu.download(self.id)
    }

    /// Release the backing texture.
    pub fn free(self, gpu: &mut Gpu) -> Result<()> {
        gpu.free_texture(self.id)
    }

    /// Elements in the stream.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// True if the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Apply an assembled kernel to input streams, writing `output`.
///
/// Identity texture coordinates are generated for each input unless
/// `texcoords` overrides them (e.g. neighbour-shifted sets).
pub fn map(
    gpu: &mut Gpu,
    kernel: &Program,
    inputs: &[&Stream],
    constants: &[(u8, [f32; 4])],
    texcoords: Option<&[TexCoordSet]>,
    output: &Stream,
) -> Result<PassStats> {
    let ids: Vec<TextureId> = inputs.iter().map(|s| s.id).collect();
    let default_coords: Vec<TexCoordSet> = inputs.iter().map(|_| TexCoordSet::identity()).collect();
    let coords = texcoords.unwrap_or(&default_coords);
    gpu.run_pass(kernel, &ids, constants, coords, output.id, None)
}

/// Apply a closure kernel to input streams (fast path; see
/// [`Gpu::run_closure_pass`]).
pub fn map_closure<F>(
    gpu: &mut Gpu,
    inputs: &[&Stream],
    output: &Stream,
    instr_per_fragment: u64,
    kernel: F,
) -> Result<PassStats>
where
    F: Fn(&Fetcher<'_>, usize, usize) -> Texel + Sync,
{
    let ids: Vec<TextureId> = inputs.iter().map(|s| s.id).collect();
    gpu.run_closure_pass(&ids, output.id, instr_per_fragment, None, kernel)
}

/// Sum-reduce a stream to a single float4 with log-step halving passes —
/// each pass folds a 2x2 block into one element, the canonical GPGPU
/// reduction pattern.
///
/// Returns the reduced value and the accumulated pass statistics.
pub fn reduce_sum(gpu: &mut Gpu, input: &Stream) -> Result<([f32; 4], PassStats)> {
    let mut stats = PassStats::default();
    let mut cur = *input;
    let mut owned: Option<Stream> = None; // intermediate to free
    while cur.width > 1 || cur.height > 1 {
        let nw = cur.width.div_ceil(2);
        let nh = cur.height.div_ceil(2);
        let next = Stream::create(gpu, nw, nh)?;
        let (cw, ch) = (cur.width, cur.height);
        let pass = gpu.run_closure_pass(&[cur.id], next.id, 4, Some(Quad::full(nw, nh)), {
            move |f, x, y| {
                let mut acc = [0.0f32; 4];
                for dy in 0..2usize {
                    for dx in 0..2usize {
                        let sx = 2 * x + dx;
                        let sy = 2 * y + dy;
                        if sx < cw && sy < ch {
                            let t = f.fetch(0, sx as i64, sy as i64);
                            for (a, v) in acc.iter_mut().zip(t) {
                                *a += v;
                            }
                        }
                    }
                }
                acc
            }
        })?;
        stats.add(&pass);
        if let Some(s) = owned.take() {
            s.free(gpu)?;
        }
        owned = Some(next);
        cur = next;
    }
    let flat = cur.read(&mut *gpu)?;
    let result = [flat[0], flat[1], flat[2], flat[3]];
    if let Some(s) = owned {
        s.free(gpu)?;
    }
    Ok((result, stats))
}

/// Max-reduce a stream to a single float4 with the same log-step pattern as
/// [`reduce_sum`].
pub fn reduce_max(gpu: &mut Gpu, input: &Stream) -> Result<([f32; 4], PassStats)> {
    let mut stats = PassStats::default();
    let mut cur = *input;
    let mut owned: Option<Stream> = None;
    while cur.width > 1 || cur.height > 1 {
        let nw = cur.width.div_ceil(2);
        let nh = cur.height.div_ceil(2);
        let next = Stream::create(gpu, nw, nh)?;
        let (cw, ch) = (cur.width, cur.height);
        let pass = gpu.run_closure_pass(&[cur.id], next.id, 4, Some(Quad::full(nw, nh)), {
            move |f, x, y| {
                let mut acc = [f32::NEG_INFINITY; 4];
                for dy in 0..2usize {
                    for dx in 0..2usize {
                        let sx = 2 * x + dx;
                        let sy = 2 * y + dy;
                        if sx < cw && sy < ch {
                            let t = f.fetch(0, sx as i64, sy as i64);
                            for (a, v) in acc.iter_mut().zip(t) {
                                *a = a.max(v);
                            }
                        }
                    }
                }
                acc
            }
        })?;
        stats.add(&pass);
        if let Some(s) = owned.take() {
            s.free(gpu)?;
        }
        owned = Some(next);
        cur = next;
    }
    let flat = cur.read(&mut *gpu)?;
    let result = [flat[0], flat[1], flat[2], flat[3]];
    if let Some(s) = owned {
        s.free(gpu)?;
    }
    Ok((result, stats))
}

/// Gather: `output[i] = input[indices[i]]` — the dependent-read primitive of
/// the stream model (the MEI stage's index-driven fetches in kernel form).
///
/// `indices` holds flat element indices into `input` in its `.x` component.
pub fn gather(
    gpu: &mut Gpu,
    input: &Stream,
    indices: &Stream,
    output: &Stream,
) -> Result<PassStats> {
    let (iw, ih) = (input.width as i64, input.height as i64);
    gpu.run_closure_pass(
        &[input.id, indices.id],
        output.id,
        3,
        None,
        move |f, x, y| {
            // Out-of-range indices clamp to the valid element range.
            let idx = (f.fetch(1, x as i64, y as i64)[0].max(0.0) as i64).min(iw * ih - 1);
            f.fetch(0, idx % iw, idx / iw)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::device::GpuProfile;

    fn gpu() -> Gpu {
        Gpu::new(GpuProfile::geforce_7800gtx())
    }

    #[test]
    fn stream_lifecycle() {
        let mut gpu = gpu();
        let data: Vec<f32> = (0..4 * 2 * 4).map(|i| i as f32).collect();
        let s = Stream::upload(&mut gpu, 4, 2, &data).unwrap();
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.read(&mut gpu).unwrap(), data);
        let used = gpu.allocated_bytes();
        assert_eq!(used, 4 * 2 * 16);
        s.free(&mut gpu).unwrap();
        assert_eq!(gpu.allocated_bytes(), 0);
    }

    #[test]
    fn map_applies_kernel_elementwise() {
        let mut gpu = gpu();
        let data: Vec<f32> = (0..4 * 4 * 4).map(|i| i as f32 * 0.25).collect();
        let a = Stream::upload(&mut gpu, 4, 4, &data).unwrap();
        let out = Stream::create(&mut gpu, 4, 4).unwrap();
        let scale = assemble("TEX R0, T0, tex0\nMUL OC, R0, C0.x").unwrap();
        map(
            &mut gpu,
            &scale,
            &[&a],
            &[(0, [3.0, 0.0, 0.0, 0.0])],
            None,
            &out,
        )
        .unwrap();
        let got = out.read(&mut gpu).unwrap();
        for (g, d) in got.iter().zip(&data) {
            assert!((g - d * 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn map_closure_matches_map() {
        let mut gpu = gpu();
        let data: Vec<f32> = (0..8 * 8 * 4).map(|i| (i as f32).sin()).collect();
        let a = Stream::upload(&mut gpu, 8, 8, &data).unwrap();
        let o1 = Stream::create(&mut gpu, 8, 8).unwrap();
        let o2 = Stream::create(&mut gpu, 8, 8).unwrap();
        let sq = assemble("TEX R0, T0, tex0\nMUL OC, R0, R0").unwrap();
        map(&mut gpu, &sq, &[&a], &[], None, &o1).unwrap();
        map_closure(&mut gpu, &[&a], &o2, 2, |f, x, y| {
            let t = f.fetch(0, x as i64, y as i64);
            [t[0] * t[0], t[1] * t[1], t[2] * t[2], t[3] * t[3]]
        })
        .unwrap();
        assert_eq!(o1.read(&mut gpu).unwrap(), o2.read(&mut gpu).unwrap());
    }

    #[test]
    fn reduce_sum_totals_all_elements() {
        let mut gpu = gpu();
        // 5x3 stream (odd sizes exercise the ceil-halving path).
        let mut data = Vec::new();
        for i in 0..15 {
            data.extend_from_slice(&[i as f32, 1.0, 0.5, 2.0]);
        }
        let s = Stream::upload(&mut gpu, 5, 3, &data).unwrap();
        let before = gpu.allocated_bytes();
        let (sum, stats) = reduce_sum(&mut gpu, &s).unwrap();
        assert_eq!(sum[0], (0..15).sum::<i32>() as f32);
        assert_eq!(sum[1], 15.0);
        assert_eq!(sum[2], 7.5);
        assert_eq!(sum[3], 30.0);
        assert!(stats.passes >= 3); // log-step halving
                                    // Intermediates were freed.
        assert_eq!(gpu.allocated_bytes(), before);
    }

    #[test]
    fn reduce_max_finds_componentwise_maxima() {
        let mut gpu = gpu();
        let mut data = Vec::new();
        for i in 0..12 {
            data.extend_from_slice(&[i as f32, -(i as f32), (i % 5) as f32, 1.0]);
        }
        let s = Stream::upload(&mut gpu, 4, 3, &data).unwrap();
        let (m, stats) = reduce_max(&mut gpu, &s).unwrap();
        assert_eq!(m[0], 11.0);
        assert_eq!(m[1], 0.0);
        assert_eq!(m[2], 4.0);
        assert_eq!(m[3], 1.0);
        assert!(stats.passes >= 2);
    }

    #[test]
    fn gather_permutes_elements() {
        let mut gpu = gpu();
        let data: Vec<f32> = (0..6).flat_map(|i| [i as f32, 0.0, 0.0, 0.0]).collect();
        let input = Stream::upload(&mut gpu, 3, 2, &data).unwrap();
        // Reverse permutation in index stream.
        let idx: Vec<f32> = (0..6)
            .rev()
            .flat_map(|i| [i as f32, 0.0, 0.0, 0.0])
            .collect();
        let indices = Stream::upload(&mut gpu, 3, 2, &idx).unwrap();
        let output = Stream::create(&mut gpu, 3, 2).unwrap();
        gather(&mut gpu, &input, &indices, &output).unwrap();
        let out = output.read(&mut gpu).unwrap();
        let xs: Vec<f32> = out.chunks_exact(4).map(|t| t[0]).collect();
        assert_eq!(xs, vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
        // Out-of-range indices clamp instead of crashing.
        let idx_bad: Vec<f32> = [99.0, 0.0, 0.0, 0.0].repeat(6);
        gpu.upload(indices.id, &idx_bad).unwrap();
        gather(&mut gpu, &input, &indices, &output).unwrap();
        let out = output.read(&mut gpu).unwrap();
        assert_eq!(out[0], 5.0); // clamped to the last element
    }

    #[test]
    fn reduce_sum_of_single_element_is_identity() {
        let mut gpu = gpu();
        let s = Stream::upload(&mut gpu, 1, 1, &[4.0, 3.0, 2.0, 1.0]).unwrap();
        let (sum, stats) = reduce_sum(&mut gpu, &s).unwrap();
        assert_eq!(sum, [4.0, 3.0, 2.0, 1.0]);
        assert_eq!(stats.passes, 0);
    }
}
