//! Linear spectral unmixing (step 3 of the AMC algorithm).
//!
//! The standard linear mixture model (Chang 2003, the paper's \[2\]) writes
//! each pixel as `f(x,y) ≈ Σ_i α_i(x,y) · e_i` where `e_i` are the endmember
//! spectra selected from the MEI image. Abundances are estimated by least
//! squares; the classic variants differ in which physical constraints they
//! enforce.

use crate::error::{HsiError, Result};
use crate::linalg::{Cholesky, Lu, Matrix};
use rayon::prelude::*;

/// Which abundance constraints the estimator enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AbundanceConstraint {
    /// Unconstrained least squares (UCLS).
    None,
    /// Sum-to-one constrained least squares (SCLS) via a bordered KKT system.
    SumToOne,
    /// SCLS followed by clamping negatives to zero and renormalizing — the
    /// cheap approximation of fully-constrained LS used when only the argmax
    /// is needed (as in AMC's classification step).
    #[default]
    SumToOneNonNeg,
}

/// Default ridge λ as a fraction of the Gram matrix's mean diagonal.
pub const RIDGE_SCALE: f64 = 3e-5;

/// A fitted linear mixture model over a fixed endmember set.
///
/// Construction factorizes the (c×c) systems once; per-pixel unmixing is then
/// a matrix-vector product plus a triangular solve.
#[derive(Debug, Clone)]
pub struct LinearMixtureModel {
    endmembers: Matrix, // bands x c
    chol: Cholesky,     // of EᵀE
    bordered: Lu,       // KKT system for sum-to-one
    bands: usize,
    count: usize,
}

impl LinearMixtureModel {
    /// Fit the model to the given endmember spectra (each of equal length).
    ///
    /// Fails with [`HsiError::SingularMatrix`] if the endmembers are linearly
    /// dependent (e.g. the same pixel selected twice).
    pub fn new(endmembers: &[&[f32]]) -> Result<Self> {
        let e = Matrix::from_columns_f32(endmembers)?;
        let bands = e.rows();
        let count = e.cols();
        if count > bands {
            return Err(HsiError::InvalidClassCount {
                requested: count,
                available: bands,
            });
        }
        let mut gram = e.gram();
        // Ridge regularisation (damped least squares): real endmember sets
        // (e.g. a dozen corn variants early in the growing season) are
        // near-collinear, so the unregularised LS estimate amplifies sensor
        // noise along the Gram matrix's small eigenvalues. A small fixed λ
        // relative to the mean diagonal stabilises abundances; it escalates
        // only if the factorization still fails (exactly duplicate spectra).
        let mean_diag: f64 = (0..count).map(|i| gram[(i, i)]).sum::<f64>() / count as f64;
        let mut scale = RIDGE_SCALE;
        for i in 0..count {
            gram[(i, i)] += mean_diag * scale;
        }
        let mut chol = Cholesky::new(&gram);
        while chol.is_err() && scale <= 1e-4 {
            scale *= 100.0;
            for i in 0..count {
                gram[(i, i)] += mean_diag * scale;
            }
            chol = Cholesky::new(&gram);
        }
        let chol = chol?;
        // Bordered KKT system for min ‖Ex − b‖ s.t. Σx = 1:
        //   [ G   1 ] [x] = [Eᵀb]
        //   [ 1ᵀ  0 ] [λ]   [ 1 ]
        let mut kkt = Matrix::zeros(count + 1, count + 1);
        for i in 0..count {
            for j in 0..count {
                kkt[(i, j)] = gram[(i, j)];
            }
            kkt[(i, count)] = 1.0;
            kkt[(count, i)] = 1.0;
        }
        let bordered = Lu::new(&kkt)?;
        Ok(Self {
            endmembers: e,
            chol,
            bordered,
            bands,
            count,
        })
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Number of endmembers (classes) `c`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The endmember matrix (bands × c).
    pub fn endmember_matrix(&self) -> &Matrix {
        &self.endmembers
    }

    /// Estimate the abundance vector of one pixel.
    pub fn abundances(&self, pixel: &[f32], constraint: AbundanceConstraint) -> Result<Vec<f64>> {
        if pixel.len() != self.bands {
            return Err(HsiError::DimensionMismatch {
                expected: self.bands,
                actual: pixel.len(),
            });
        }
        let etb = self.endmembers.transpose_matvec_f32(pixel)?;
        match constraint {
            AbundanceConstraint::None => self.chol.solve(&etb),
            AbundanceConstraint::SumToOne => {
                let x = self.solve_sum_to_one(&etb)?;
                Ok(x)
            }
            AbundanceConstraint::SumToOneNonNeg => {
                let mut x = self.solve_sum_to_one(&etb)?;
                clamp_renormalize(&mut x);
                Ok(x)
            }
        }
    }

    fn solve_sum_to_one(&self, etb: &[f64]) -> Result<Vec<f64>> {
        let mut rhs = Vec::with_capacity(self.count + 1);
        rhs.extend_from_slice(etb);
        rhs.push(1.0);
        let mut sol = self.bordered.solve(&rhs)?;
        sol.truncate(self.count); // drop the multiplier λ
        Ok(sol)
    }

    /// Index of the largest abundance — AMC's class assignment (step 4).
    pub fn classify_pixel(&self, pixel: &[f32], constraint: AbundanceConstraint) -> Result<usize> {
        let a = self.abundances(pixel, constraint)?;
        Ok(argmax(&a))
    }

    /// Classify every pixel of a BIP cube in parallel, returning row-major
    /// labels in `0..count`.
    pub fn classify_cube(
        &self,
        cube: &crate::cube::Cube,
        constraint: AbundanceConstraint,
    ) -> Result<Vec<u16>> {
        let dims = cube.dims();
        let bip = cube.to_interleave(crate::cube::Interleave::Bip);
        let data = bip.data();
        let labels: Vec<u16> = data
            .par_chunks(dims.bands)
            .map(|px| {
                self.classify_pixel(px, constraint)
                    .map(|c| c as u16)
                    .unwrap_or(0)
            })
            .collect();
        Ok(labels)
    }

    /// Reconstruct a pixel from abundances (for residual checks).
    pub fn reconstruct(&self, abundances: &[f64]) -> Result<Vec<f64>> {
        self.endmembers.matvec(abundances)
    }

    /// Squared reconstruction residual `‖pixel − E·α‖²` under unconstrained
    /// LS abundances — the selection criterion of ATGP endmember extraction.
    pub fn residual_norm2(&self, pixel: &[f32]) -> Result<f64> {
        let a = self.abundances(pixel, AbundanceConstraint::None)?;
        let recon = self.reconstruct(&a)?;
        Ok(pixel
            .iter()
            .zip(&recon)
            .map(|(&p, &q)| {
                let d = p as f64 - q;
                d * d
            })
            .sum())
    }
}

/// Clamp negative abundances to zero and renormalize to sum one.
pub fn clamp_renormalize(x: &mut [f64]) {
    let mut sum = 0.0;
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        x.iter_mut().for_each(|v| *v *= inv);
    } else {
        let uniform = 1.0 / x.len() as f64;
        x.iter_mut().for_each(|v| *v = uniform);
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(x: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{Cube, CubeDims, Interleave};

    fn simple_model() -> LinearMixtureModel {
        let e0 = [1.0f32, 0.0, 0.0, 0.5];
        let e1 = [0.0f32, 1.0, 0.0, 0.5];
        let e2 = [0.0f32, 0.0, 1.0, 0.5];
        LinearMixtureModel::new(&[&e0, &e1, &e2]).unwrap()
    }

    #[test]
    fn model_shape_accessors() {
        let m = simple_model();
        assert_eq!(m.bands(), 4);
        assert_eq!(m.count(), 3);
        assert_eq!(m.endmember_matrix().shape(), (4, 3));
    }

    #[test]
    fn ridge_handles_dependent_endmembers() {
        // Collinear endmembers (the same material selected twice) must not
        // crash: the ridge makes the system solvable with finite abundances.
        let e0 = [1.0f32, 2.0, 3.0];
        let e1 = [2.0f32, 4.0, 6.0];
        let m = LinearMixtureModel::new(&[&e0, &e1]).unwrap();
        let a = m
            .abundances(&[1.5, 3.0, 4.5], AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        assert!(a.iter().all(|v| v.is_finite()));
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_more_endmembers_than_bands() {
        let e = [1.0f32, 0.0];
        let e2 = [0.0f32, 1.0];
        let e3 = [1.0f32, 1.0];
        assert!(matches!(
            LinearMixtureModel::new(&[&e[..], &e2[..], &e3[..]]),
            Err(HsiError::InvalidClassCount { .. })
        ));
    }

    #[test]
    fn unconstrained_recovers_exact_mixture() {
        let m = simple_model();
        // pixel = 0.2 e0 + 0.3 e1 + 0.5 e2
        let px = [0.2f32, 0.3, 0.5, 0.5];
        let a = m.abundances(&px, AbundanceConstraint::None).unwrap();
        // Tolerance reflects the stabilising ridge bias (RIDGE_SCALE).
        assert!((a[0] - 0.2).abs() < 1e-3, "{a:?}");
        assert!((a[1] - 0.3).abs() < 1e-3);
        assert!((a[2] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn sum_to_one_enforces_constraint() {
        let m = simple_model();
        // Pixel scaled by 3: unconstrained abundances sum to 3, SCLS to 1.
        let px = [0.6f32, 0.9, 1.5, 1.5];
        let unc = m.abundances(&px, AbundanceConstraint::None).unwrap();
        assert!((unc.iter().sum::<f64>() - 3.0).abs() < 1e-2);
        let scls = m.abundances(&px, AbundanceConstraint::SumToOne).unwrap();
        assert!((scls.iter().sum::<f64>() - 1.0).abs() < 1e-8, "{scls:?}");
        // Relative ordering preserved.
        assert!(scls[2] > scls[1] && scls[1] > scls[0]);
    }

    #[test]
    fn nonneg_variant_produces_probability_vector() {
        let m = simple_model();
        // A pixel outside the simplex can yield negative SCLS abundances.
        let px = [2.0f32, -0.5, 0.1, 0.2];
        let a = m
            .abundances(&px, AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        assert!(a.iter().all(|&v| v >= 0.0), "{a:?}");
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn pixel_length_checked() {
        let m = simple_model();
        assert!(m
            .abundances(&[1.0, 2.0], AbundanceConstraint::None)
            .is_err());
    }

    #[test]
    fn classify_pixel_picks_dominant_endmember() {
        let m = simple_model();
        for (i, px) in [
            [0.9f32, 0.05, 0.05, 0.5],
            [0.05f32, 0.9, 0.05, 0.5],
            [0.05f32, 0.05, 0.9, 0.5],
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(
                m.classify_pixel(px, AbundanceConstraint::SumToOneNonNeg)
                    .unwrap(),
                i
            );
        }
    }

    #[test]
    fn classify_cube_labels_every_pixel() {
        let m = simple_model();
        let cube = Cube::from_fn(CubeDims::new(2, 2, 4), Interleave::Bip, |x, y, b| {
            // (0,0)->e0, (1,0)->e1, (0,1)->e2, (1,1)->e0-ish
            let e: usize = match (x, y) {
                (0, 0) => 0,
                (1, 0) => 1,
                (0, 1) => 2,
                _ => 0,
            };
            if b == e {
                1.0
            } else if b == 3 {
                0.5
            } else {
                0.0
            }
        })
        .unwrap();
        let labels = m
            .classify_cube(&cube, AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        assert_eq!(labels, vec![0, 1, 2, 0]);
    }

    #[test]
    fn reconstruct_round_trips() {
        let m = simple_model();
        let recon = m.reconstruct(&[0.2, 0.3, 0.5]).unwrap();
        assert!((recon[0] - 0.2).abs() < 1e-9);
        assert!((recon[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clamp_renormalize_edge_cases() {
        let mut x = vec![-1.0, 2.0, 2.0];
        clamp_renormalize(&mut x);
        assert_eq!(x, vec![0.0, 0.5, 0.5]);
        let mut zeros = vec![-1.0, -2.0];
        clamp_renormalize(&mut zeros);
        assert_eq!(zeros, vec![0.5, 0.5]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }
}
