//! End-to-end AMC classification on synthetic scenes with ground truth —
//! the Table 3 experiment at test scale.

use hyperspec::amc::pipeline::{GpuAmc, KernelMode};
use hyperspec::hsi::metrics::score_unsupervised;
use hyperspec::prelude::*;
use hyperspec::scene::library::indian_pines_classes;

/// A fast scene: 8 classes on a small grid.
fn small_scene(seed: u64) -> SyntheticScene {
    let classes: Vec<_> = indian_pines_classes().into_iter().take(8).collect();
    let cfg = SceneConfig {
        width: 64,
        height: 48,
        bands: 24,
        field_width: 12,
        field_height: 12,
        seed,
        noise_fraction: 0.002,
        mixing_halfwidth: 0.3,
        sensor_scale: 4000.0,
        purity_boost: 0.10,
    };
    generate(&classes, &cfg)
}

#[test]
fn amc_recovers_most_of_the_ground_truth() {
    let scene = small_scene(11);
    let amc = AmcClassifier::new(AmcConfig::paper_default(8));
    let out = amc.classify(&scene.cube).unwrap();
    assert!(out.class_count() >= 6, "found {}", out.class_count());
    let cm = score_unsupervised(&scene.ground_truth, &out.labels, out.class_count(), 8).unwrap();
    let oa = cm.overall_accuracy();
    assert!(oa > 55.0, "overall accuracy {oa}");
    assert!(cm.kappa() > 0.4, "kappa {}", cm.kappa());
}

#[test]
fn classification_is_deterministic() {
    let scene = small_scene(3);
    let amc = AmcClassifier::new(AmcConfig::paper_default(8));
    let a = amc.classify(&scene.cube).unwrap();
    let b = amc.classify(&scene.cube).unwrap();
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.mei.scores, b.mei.scores);
}

#[test]
fn hybrid_gpu_mei_plus_cpu_tail_matches_pure_cpu_labels() {
    // The paper's partitioning: stages 1-5 on the GPU, endmember selection
    // and unmixing on the host. The MEI streams differ only in f32 rounding,
    // and the final labels must be essentially the same.
    let scene = small_scene(21);
    let amc = AmcClassifier::new(AmcConfig::paper_default(8));
    let cpu_out = amc.classify(&scene.cube).unwrap();

    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let gpu_mei = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure)
        .run(&mut gpu, &scene.cube)
        .unwrap();
    let hybrid_out = amc.classify_with_mei(&scene.cube, gpu_mei.mei).unwrap();

    let disagreements = cpu_out
        .labels
        .iter()
        .zip(&hybrid_out.labels)
        .filter(|(a, b)| a != b)
        .count();
    let frac = disagreements as f64 / cpu_out.labels.len() as f64;
    assert!(
        frac < 0.02,
        "hybrid vs CPU labels disagree on {:.2}% of pixels",
        frac * 100.0
    );
}

#[test]
fn greedy_selection_ablation_runs_but_default_beats_it_here() {
    // The MeiGreedy literal reading works on scenes without a dominant
    // boundary continuum; on the mixed synthetic scene ATGP is at least as
    // good. Both must run to completion.
    let scene = small_scene(5);
    let mut cfg = AmcConfig::paper_default(8);
    cfg.selection = hyperspec::hsi::classify::SelectionMethod::MeiGreedy;
    cfg.refine_iterations = 0;
    let greedy = AmcClassifier::new(cfg).classify(&scene.cube).unwrap();
    let default = AmcClassifier::new(AmcConfig::paper_default(8))
        .classify(&scene.cube)
        .unwrap();
    let score = |out: &AmcOutput| {
        score_unsupervised(&scene.ground_truth, &out.labels, out.class_count(), 8)
            .unwrap()
            .overall_accuracy()
    };
    let (g, d) = (score(&greedy), score(&default));
    assert!(d >= g - 5.0, "default {d} vs greedy {g}");
    assert!(g > 0.0);
}

#[test]
fn accuracy_improves_with_refinement() {
    let scene = small_scene(8);
    let score_with_iters = |iters: usize| {
        let mut cfg = AmcConfig::paper_default(8);
        cfg.refine_iterations = iters;
        let out = AmcClassifier::new(cfg).classify(&scene.cube).unwrap();
        score_unsupervised(&scene.ground_truth, &out.labels, out.class_count(), 8)
            .unwrap()
            .overall_accuracy()
    };
    let zero = score_with_iters(0);
    let five = score_with_iters(5);
    assert!(
        five >= zero - 1.0,
        "refinement should not hurt: {zero} -> {five}"
    );
}
