//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no registry access, so this in-tree shim
//! provides the exact API subset the workspace uses: `par_chunks` /
//! `par_chunks_mut` through `rayon::prelude::*`. The "parallel" iterators
//! returned here are the corresponding **sequential** `std` slice iterators,
//! so every standard `Iterator` adapter (`enumerate`, `zip`, `for_each`,
//! `map`, …) works unchanged and results are bit-identical to a parallel
//! run (all call sites are data-parallel with disjoint outputs).
//!
//! Documented deviation: execution is single-threaded. The simulator's
//! counters use atomics and per-band accumulation, so functional results
//! and statistics are unaffected — only host wall-clock differs.

/// The rayon prelude: parallel-slice traits over ordinary slices.
pub mod prelude {
    /// Sequential stand-in for `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T> {
        /// Chunked traversal; sequential equivalent of `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Sequential stand-in for `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// Chunked mutable traversal; sequential equivalent of
        /// `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;

        /// Comparator sort; sequential equivalent of `par_sort_by`.
        fn par_sort_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }

        fn par_sort_by<F>(&mut self, compare: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.sort_by(compare);
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Sequential equivalent of `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_behaves_like_chunks_mut() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for c in chunk {
                *c = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_chunks_reads_in_order() {
        let v = [1, 2, 3, 4, 5];
        let sums: Vec<i32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, [3, 7, 5]);
    }

    #[test]
    fn zipped_chunk_iterators_stay_aligned() {
        let mut a = vec![0u32; 6];
        let mut b = vec![0u32; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca[0] = i as u32;
                cb[0] = 10 + i as u32;
            });
        assert_eq!(a, [0, 0, 1, 0, 2, 0]);
        assert_eq!(b, [10, 0, 11, 0, 12, 0]);
    }

    #[test]
    fn into_par_iter_matches_into_iter() {
        let total: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(total, 10);
    }
}
