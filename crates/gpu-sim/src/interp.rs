//! Fragment program interpreter.
//!
//! Executes one [`Program`] per fragment over a SIMD4 register file, exactly
//! as the fragment processors of the modelled GPUs would: no control flow,
//! one instruction per cycle, texture units resolved through the bound
//! samplers. Work counts (instructions, texel fetches, cache hits/misses)
//! are returned with the result so passes can be costed.

use crate::isa::{
    Opcode, Program, Reg, Swizzle, NUM_CONSTS, NUM_OUTPUTS, NUM_TEMPS, NUM_TEXCOORDS,
};
use crate::texcache::TextureCache;
use crate::texture::{AddressMode, Texture2D};

/// Per-fragment inputs.
#[derive(Debug, Clone)]
pub struct FragmentInput {
    /// Interpolated texture-coordinate sets (`T0..T7`); `[u, v, 0, 1]`.
    pub texcoords: [[f32; 4]; NUM_TEXCOORDS],
}

impl FragmentInput {
    /// All coordinate sets zero.
    pub fn zero() -> Self {
        Self {
            texcoords: [[0.0, 0.0, 0.0, 1.0]; NUM_TEXCOORDS],
        }
    }
}

/// Per-fragment outputs and work counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentOutput {
    /// Output colors `O0..O3` (`O0` = `OC`).
    pub colors: [[f32; 4]; NUM_OUTPUTS],
    /// Instructions executed.
    pub instructions: u64,
    /// Texel fetches issued.
    pub texel_fetches: u64,
}

/// Smallest positive f32, used to clamp `LG2` inputs (see module docs of
/// [`crate::isa`]).
const LG2_TINY: f32 = f32::MIN_POSITIVE;

/// The `LG2` opcode's base-2 logarithm, defined by this implementation
/// rather than by the platform's libm.
///
/// Shader hardware of the fp30 era computed `LG2` with its own polynomial
/// special-function unit, not a host libm — and libm `log2f` differs
/// between platforms anyway, so pinning the definition here makes shader
/// results reproducible across hosts. It is also branch-free on the main
/// path, so the batched executor's lane loops autovectorize where a libm
/// call would serialize.
///
/// Method: split `x = 2^e · m` with `m ∈ [1, 2)` by exponent extraction,
/// re-centre to `m ∈ [√2/2, √2)` so the reduced argument
/// `r = (m−1)/(m+1)` satisfies `|r| ≤ 0.1716`, and evaluate the atanh
/// series `log2(m) = 2·log2(e)·(r + r³/3 + r⁵/5 + …)` truncated at `r⁷`
/// (truncation error < 6e-8, ~1 ulp). Exact on powers of two (`r = 0`),
/// and `+inf` maps to `+inf`. Callers clamp to [`f32::MIN_POSITIVE`], so
/// zero/negative/NaN/subnormal inputs never reach this function.
///
/// Every consumer that must stay bit-identical to shaded `LG2` results —
/// the scalar and batched executors, the optimizer's constant folder (via
/// [`alu`]), and the closure-path CPU kernels in `amc_core` — goes through
/// this one definition.
#[inline(always)]
pub fn lg2(x: f32) -> f32 {
    let bits = x.to_bits();
    let e = ((bits >> 23) as i32 - 127) as f32;
    let m = f32::from_bits((bits & 0x007f_ffff) | 0x3f80_0000);
    // Re-centre around 1 so the series converges fast on both sides.
    let big = m >= std::f32::consts::SQRT_2;
    let m = if big { m * 0.5 } else { m };
    let e = if big { e + 1.0 } else { e };
    let r = (m - 1.0) / (m + 1.0);
    let r2 = r * r;
    // 2·log2(e) · (r + r³/3 + r⁵/5 + r⁷/7), Horner over r².
    const C0: f32 = 2.885_39; // 2·log2(e), to f32 precision
    const C1: f32 = C0 / 3.0;
    const C2: f32 = C0 / 5.0;
    const C3: f32 = C0 / 7.0;
    let main = e + r * (C0 + r2 * (C1 + r2 * (C2 + r2 * C3)));
    // +inf stays +inf (NaN is clamped away by callers). A select, not a
    // branch, so lane loops over this function stay vectorizable.
    if bits >= 0x7f80_0000 {
        x
    } else {
        main
    }
}

#[inline(always)]
fn lanewise1(op: impl Fn(f32) -> f32, a: [f32; 4]) -> [f32; 4] {
    [op(a[0]), op(a[1]), op(a[2]), op(a[3])]
}

#[inline(always)]
fn lanewise2(op: impl Fn(f32, f32) -> f32, a: [f32; 4], b: [f32; 4]) -> [f32; 4] {
    [
        op(a[0], b[0]),
        op(a[1], b[1]),
        op(a[2], b[2]),
        op(a[3], b[3]),
    ]
}

/// The arithmetic core shared by [`execute`] and [`execute_lowered`]: both
/// executors funnel every non-`TEX` opcode through this one match so their
/// float operations are the same code and results stay bit-identical.
#[inline(always)]
pub(crate) fn alu(op: Opcode, s: impl Fn(usize) -> [f32; 4]) -> [f32; 4] {
    match op {
        Opcode::Mov => s(0),
        Opcode::Add => lanewise2(|a, b| a + b, s(0), s(1)),
        Opcode::Sub => lanewise2(|a, b| a - b, s(0), s(1)),
        Opcode::Mul => lanewise2(|a, b| a * b, s(0), s(1)),
        Opcode::Mad => {
            let (a, b, c) = (s(0), s(1), s(2));
            [
                a[0] * b[0] + c[0],
                a[1] * b[1] + c[1],
                a[2] * b[2] + c[2],
                a[3] * b[3] + c[3],
            ]
        }
        Opcode::Min => lanewise2(f32::min, s(0), s(1)),
        Opcode::Max => lanewise2(f32::max, s(0), s(1)),
        Opcode::Rcp => lanewise1(|a| 1.0 / a, s(0)),
        Opcode::Rsq => lanewise1(|a| 1.0 / a.sqrt(), s(0)),
        Opcode::Ex2 => lanewise1(f32::exp2, s(0)),
        Opcode::Lg2 => lanewise1(|a| lg2(a.max(LG2_TINY)), s(0)),
        Opcode::Frc => lanewise1(|a| a - a.floor(), s(0)),
        Opcode::Flr => lanewise1(f32::floor, s(0)),
        Opcode::Abs => lanewise1(f32::abs, s(0)),
        Opcode::Slt => lanewise2(|a, b| if a < b { 1.0 } else { 0.0 }, s(0), s(1)),
        Opcode::Sge => lanewise2(|a, b| if a >= b { 1.0 } else { 0.0 }, s(0), s(1)),
        Opcode::Cmp => {
            let (c, a, b) = (s(0), s(1), s(2));
            [
                if c[0] < 0.0 { a[0] } else { b[0] },
                if c[1] < 0.0 { a[1] } else { b[1] },
                if c[2] < 0.0 { a[2] } else { b[2] },
                if c[3] < 0.0 { a[3] } else { b[3] },
            ]
        }
        Opcode::Lrp => {
            let (t, a, b) = (s(0), s(1), s(2));
            [
                t[0] * a[0] + (1.0 - t[0]) * b[0],
                t[1] * a[1] + (1.0 - t[1]) * b[1],
                t[2] * a[2] + (1.0 - t[2]) * b[2],
                t[3] * a[3] + (1.0 - t[3]) * b[3],
            ]
        }
        Opcode::Dp3 => {
            let (a, b) = (s(0), s(1));
            let d = a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
            [d; 4]
        }
        Opcode::Dp4 => {
            let (a, b) = (s(0), s(1));
            let d = a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
            [d; 4]
        }
        Opcode::Tex => unreachable!("TEX handled by the executors"),
    }
}

/// The texture path shared by both executors: counts the fetch, tags the
/// cache with the texel the sampler actually touches, and samples.
#[inline(always)]
fn tex_fetch(
    tex: &Texture2D,
    sampler: usize,
    coord: [f32; 4],
    cache: &mut Option<&mut TextureCache>,
    texel_fetches: &mut u64,
) -> [f32; 4] {
    *texel_fetches += 1;
    if let Some(cache) = cache.as_deref_mut() {
        // Tag the cache with the texel the sampler actually touches under
        // its address mode; a border fetch that resolves to no texel
        // generates no cache traffic.
        let x = (coord[0] * tex.width() as f32).floor() as i64;
        let y = (coord[1] * tex.height() as f32).floor() as i64;
        if let Some((cx, cy)) = tex.resolve_coords(x, y) {
            cache.access(sampler as u32, cx, cy);
        }
    }
    tex.sample(coord[0], coord[1])
}

/// Masked, optionally saturating write-back shared by both executors.
#[inline(always)]
fn write_back(target: &mut [f32; 4], value: [f32; 4], mask_bits: u8, saturate: bool) {
    let value = if saturate {
        lanewise1(|a| a.clamp(0.0, 1.0), value)
    } else {
        value
    };
    for lane in 0..4 {
        if mask_bits & (1 << lane) != 0 {
            target[lane] = value[lane];
        }
    }
}

/// Execute `program` for one fragment.
///
/// `constants` are the pass-level constant registers (with `DEF`s already
/// applied — see [`resolve_constants`]); `textures` are the bound samplers.
/// `cache` optionally models the per-pipe texture cache.
pub fn execute(
    program: &Program,
    input: &FragmentInput,
    constants: &[[f32; 4]; NUM_CONSTS],
    textures: &[&Texture2D],
    mut cache: Option<&mut TextureCache>,
) -> FragmentOutput {
    let mut temps = [[0.0f32; 4]; NUM_TEMPS];
    let mut outputs = [[0.0f32; 4]; NUM_OUTPUTS];
    let mut instructions = 0u64;
    let mut texel_fetches = 0u64;

    for instr in &program.instrs {
        instructions += 1;
        let s = |i: usize| -> [f32; 4] {
            let src = &instr.srcs[i];
            let raw = match src.reg {
                Reg::Temp(r) => temps[r as usize],
                Reg::Const(c) => constants[c as usize],
                Reg::TexCoord(t) => input.texcoords[t as usize],
                Reg::Output(o) => outputs[o as usize],
            };
            let mut v = src.swizzle.apply(raw);
            if src.negate {
                v = [-v[0], -v[1], -v[2], -v[3]];
            }
            v
        };

        let value: [f32; 4] = if instr.op == Opcode::Tex {
            let sampler = instr.sampler.expect("TEX carries a sampler") as usize;
            tex_fetch(
                textures[sampler],
                sampler,
                s(0),
                &mut cache,
                &mut texel_fetches,
            )
        } else {
            alu(instr.op, s)
        };

        let target: &mut [f32; 4] = match instr.dst.reg {
            Reg::Temp(r) => &mut temps[r as usize],
            Reg::Output(o) => &mut outputs[o as usize],
            _ => unreachable!("assembler rejects non-writable destinations"),
        };
        write_back(target, value, instr.dst.mask_bits(), instr.dst.saturate);
    }

    FragmentOutput {
        colors: outputs,
        instructions,
        texel_fetches,
    }
}

/// A source operand pre-resolved at lower time: constants are folded to
/// immediates (swizzle and negation already applied), everything else keeps
/// its register index plus decoded swizzle/negate.
#[derive(Debug, Clone, Copy)]
enum LoweredSrc {
    /// Folded constant operand.
    Imm([f32; 4]),
    /// Temporary register read.
    Temp(u8, Swizzle, bool),
    /// Interpolated texture coordinate read.
    Coord(u8, Swizzle, bool),
    /// Output register read.
    Out(u8, Swizzle, bool),
}

#[inline(always)]
pub(crate) fn swizzle_negate(sw: Swizzle, negate: bool, raw: [f32; 4]) -> [f32; 4] {
    let v = sw.apply(raw);
    if negate {
        [-v[0], -v[1], -v[2], -v[3]]
    } else {
        v
    }
}

impl LoweredSrc {
    #[inline(always)]
    fn read(
        &self,
        temps: &[[f32; 4]; NUM_TEMPS],
        outputs: &[[f32; 4]; NUM_OUTPUTS],
        texcoords: &[[f32; 4]; NUM_TEXCOORDS],
    ) -> [f32; 4] {
        match *self {
            LoweredSrc::Imm(v) => v,
            LoweredSrc::Temp(r, sw, neg) => swizzle_negate(sw, neg, temps[r as usize]),
            LoweredSrc::Coord(t, sw, neg) => swizzle_negate(sw, neg, texcoords[t as usize]),
            LoweredSrc::Out(o, sw, neg) => swizzle_negate(sw, neg, outputs[o as usize]),
        }
    }
}

/// Pre-decoded destination: which register file, which index.
#[derive(Debug, Clone, Copy)]
enum LoweredDst {
    /// Temporary register.
    Temp(u8),
    /// Output register.
    Out(u8),
}

/// One pre-decoded instruction of a [`LoweredProgram`].
#[derive(Debug, Clone, Copy)]
struct LoweredInstr {
    op: Opcode,
    /// `op.arity()` live operands; the rest are zero immediates.
    srcs: [LoweredSrc; 3],
    dst: LoweredDst,
    mask_bits: u8,
    saturate: bool,
    sampler: u8,
}

/// A fragment program lowered for repeated execution: operand registers,
/// swizzles, and write masks are decoded once, and constant operands are
/// folded to immediates against a resolved constant block. Produced by
/// [`lower`], executed by [`execute_lowered`], and cached per
/// (program, constants) on `Gpu`.
#[derive(Debug, Clone)]
pub struct LoweredProgram {
    instrs: Vec<LoweredInstr>,
    tex_count: u64,
}

impl LoweredProgram {
    /// Instructions executed per fragment.
    pub fn instruction_count(&self) -> u64 {
        self.instrs.len() as u64
    }

    /// Texel fetches issued per fragment.
    pub fn tex_count(&self) -> u64 {
        self.tex_count
    }
}

/// Lower `program` against a resolved constant block (see
/// [`resolve_constants`]). Constant folding applies the same
/// swizzle-then-negate float ops the interpreter would, so lowered
/// execution is bit-identical to [`execute`].
pub fn lower(program: &Program, constants: &[[f32; 4]; NUM_CONSTS]) -> LoweredProgram {
    let mut instrs = Vec::with_capacity(program.instrs.len());
    let mut tex_count = 0u64;
    for instr in &program.instrs {
        let mut srcs = [LoweredSrc::Imm([0.0; 4]); 3];
        for (slot, src) in srcs.iter_mut().zip(&instr.srcs) {
            *slot = match src.reg {
                Reg::Const(c) => {
                    // Constant folding is owned by the optimizer's lattice
                    // helper so there is exactly one definition of
                    // "swizzle, then negate, a resolved constant".
                    LoweredSrc::Imm(crate::opt::fold_const_src(src, constants[c as usize]))
                }
                Reg::Temp(r) => LoweredSrc::Temp(r, src.swizzle, src.negate),
                Reg::TexCoord(t) => LoweredSrc::Coord(t, src.swizzle, src.negate),
                Reg::Output(o) => LoweredSrc::Out(o, src.swizzle, src.negate),
            };
        }
        if instr.op == Opcode::Tex {
            tex_count += 1;
        }
        instrs.push(LoweredInstr {
            op: instr.op,
            srcs,
            dst: match instr.dst.reg {
                Reg::Temp(r) => LoweredDst::Temp(r),
                Reg::Output(o) => LoweredDst::Out(o),
                _ => unreachable!("assembler rejects non-writable destinations"),
            },
            mask_bits: instr.dst.mask_bits(),
            saturate: instr.dst.saturate,
            sampler: instr.sampler.unwrap_or(0),
        });
    }
    LoweredProgram { instrs, tex_count }
}

/// Execute a [`LoweredProgram`] for one fragment. Constants were folded at
/// lower time, so only textures and the optional cache model are needed.
/// Results (colors and work counts) are bit-identical to [`execute`] on the
/// same program, constants, and fragment input.
pub fn execute_lowered(
    program: &LoweredProgram,
    input: &FragmentInput,
    textures: &[&Texture2D],
    mut cache: Option<&mut TextureCache>,
) -> FragmentOutput {
    let mut temps = [[0.0f32; 4]; NUM_TEMPS];
    let mut outputs = [[0.0f32; 4]; NUM_OUTPUTS];
    let mut texel_fetches = 0u64;

    for instr in &program.instrs {
        let s = |i: usize| instr.srcs[i].read(&temps, &outputs, &input.texcoords);
        let value: [f32; 4] = if instr.op == Opcode::Tex {
            let sampler = instr.sampler as usize;
            tex_fetch(
                textures[sampler],
                sampler,
                s(0),
                &mut cache,
                &mut texel_fetches,
            )
        } else {
            alu(instr.op, s)
        };
        let target: &mut [f32; 4] = match instr.dst {
            LoweredDst::Temp(r) => &mut temps[r as usize],
            LoweredDst::Out(o) => &mut outputs[o as usize],
        };
        write_back(target, value, instr.mask_bits, instr.saturate);
    }

    FragmentOutput {
        colors: outputs,
        instructions: program.instrs.len() as u64,
        texel_fetches,
    }
}

/// Fragments per SoA chunk of [`execute_lowered_batch`]: eight f32 lanes
/// are one AVX register (and two SSE registers), so the component-major
/// inner loops below autovectorize on the host SIMD units.
pub const BATCH_LANES: usize = 8;

/// One structure-of-arrays register component: a value per batch lane.
type LaneVec = [f32; BATCH_LANES];

#[inline(always)]
fn blanewise1(op: impl Fn(f32) -> f32 + Copy, a: [LaneVec; 4]) -> [LaneVec; 4] {
    a.map(|comp| comp.map(op))
}

#[inline(always)]
fn blanewise2(
    op: impl Fn(f32, f32) -> f32 + Copy,
    a: [LaneVec; 4],
    b: [LaneVec; 4],
) -> [LaneVec; 4] {
    std::array::from_fn(|c| std::array::from_fn(|l| op(a[c][l], b[c][l])))
}

/// The batched arithmetic core: the same match as [`alu`], over
/// structure-of-arrays operands. Every lane evaluates the exact scalar
/// expression [`alu`] evaluates (same operators, same association order, no
/// FMA contraction — Rust never contracts `a * b + c`), so each lane's
/// result is bit-identical to a scalar execution of the same fragment.
#[inline(always)]
fn alu_batch(op: Opcode, s: impl Fn(usize) -> [LaneVec; 4]) -> [LaneVec; 4] {
    use std::array::from_fn;
    match op {
        Opcode::Mov => s(0),
        Opcode::Add => blanewise2(|a, b| a + b, s(0), s(1)),
        Opcode::Sub => blanewise2(|a, b| a - b, s(0), s(1)),
        Opcode::Mul => blanewise2(|a, b| a * b, s(0), s(1)),
        Opcode::Mad => {
            let (a, b, c) = (s(0), s(1), s(2));
            from_fn(|k| from_fn(|l| a[k][l] * b[k][l] + c[k][l]))
        }
        Opcode::Min => blanewise2(f32::min, s(0), s(1)),
        Opcode::Max => blanewise2(f32::max, s(0), s(1)),
        Opcode::Rcp => blanewise1(|a| 1.0 / a, s(0)),
        Opcode::Rsq => blanewise1(|a| 1.0 / a.sqrt(), s(0)),
        Opcode::Ex2 => blanewise1(f32::exp2, s(0)),
        Opcode::Lg2 => blanewise1(|a| lg2(a.max(LG2_TINY)), s(0)),
        Opcode::Frc => blanewise1(|a| a - a.floor(), s(0)),
        Opcode::Flr => blanewise1(f32::floor, s(0)),
        Opcode::Abs => blanewise1(f32::abs, s(0)),
        Opcode::Slt => blanewise2(|a, b| if a < b { 1.0 } else { 0.0 }, s(0), s(1)),
        Opcode::Sge => blanewise2(|a, b| if a >= b { 1.0 } else { 0.0 }, s(0), s(1)),
        Opcode::Cmp => {
            let (c, a, b) = (s(0), s(1), s(2));
            from_fn(|k| from_fn(|l| if c[k][l] < 0.0 { a[k][l] } else { b[k][l] }))
        }
        Opcode::Lrp => {
            let (t, a, b) = (s(0), s(1), s(2));
            from_fn(|k| from_fn(|l| t[k][l] * a[k][l] + (1.0 - t[k][l]) * b[k][l]))
        }
        Opcode::Dp3 => {
            let (a, b) = (s(0), s(1));
            let d: LaneVec = from_fn(|l| a[0][l] * b[0][l] + a[1][l] * b[1][l] + a[2][l] * b[2][l]);
            [d; 4]
        }
        Opcode::Dp4 => {
            let (a, b) = (s(0), s(1));
            let d: LaneVec = from_fn(|l| {
                a[0][l] * b[0][l] + a[1][l] * b[1][l] + a[2][l] * b[2][l] + a[3][l] * b[3][l]
            });
            [d; 4]
        }
        Opcode::Tex => unreachable!("TEX handled by the batch executor"),
    }
}

/// Swizzle-then-negate over SoA operands: the swizzle is a pure component
/// permutation (lane arrays move wholesale), negation is the same unary
/// `-x` [`swizzle_negate`] applies per scalar lane.
#[inline(always)]
fn swizzle_negate_batch(sw: Swizzle, negate: bool, raw: &[LaneVec; 4]) -> [LaneVec; 4] {
    let v = [
        raw[sw.0[0] as usize],
        raw[sw.0[1] as usize],
        raw[sw.0[2] as usize],
        raw[sw.0[3] as usize],
    ];
    if negate {
        v.map(|comp| comp.map(|x| -x))
    } else {
        v
    }
}

impl LoweredSrc {
    #[inline(always)]
    fn read_batch(
        &self,
        temps: &[[LaneVec; 4]; NUM_TEMPS],
        outputs: &[[LaneVec; 4]; NUM_OUTPUTS],
        texcoords: &[[LaneVec; 4]; NUM_TEXCOORDS],
    ) -> [LaneVec; 4] {
        match *self {
            LoweredSrc::Imm(v) => v.map(|c| [c; BATCH_LANES]),
            LoweredSrc::Temp(r, sw, neg) => swizzle_negate_batch(sw, neg, &temps[r as usize]),
            LoweredSrc::Coord(t, sw, neg) => swizzle_negate_batch(sw, neg, &texcoords[t as usize]),
            LoweredSrc::Out(o, sw, neg) => swizzle_negate_batch(sw, neg, &outputs[o as usize]),
        }
    }
}

/// Masked, optionally saturating SoA write-back: the same clamp and the
/// same per-component write-enable as [`write_back`], applied to whole
/// lane arrays.
#[inline(always)]
fn write_back_batch(target: &mut [LaneVec; 4], value: [LaneVec; 4], mask_bits: u8, saturate: bool) {
    let value = if saturate {
        blanewise1(|a| a.clamp(0.0, 1.0), value)
    } else {
        value
    };
    if mask_bits == 0b1111 {
        *target = value;
        return;
    }
    for (lane, v) in value.into_iter().enumerate() {
        if mask_bits & (1 << lane) != 0 {
            target[lane] = v;
        }
    }
}

/// Execute a [`LoweredProgram`] for a whole batch of fragments at once.
///
/// Fragments are processed in [`BATCH_LANES`]-wide structure-of-arrays
/// chunks: per register component one `[f32; BATCH_LANES]` lane array, so
/// the per-instruction decode-dispatch cost is paid once per chunk instead
/// of once per fragment and the inner lane loops autovectorize. `inputs`
/// must be in the caller's scalar iteration order (the tile's row-major
/// fragment order); `colors[i]` receives fragment `i`'s output registers.
///
/// Bit-exactness contract: colors, the returned `(instructions,
/// texel_fetches)` totals, and the cache's hit/miss counters are identical
/// to running [`execute_lowered`] per fragment in `inputs` order against
/// the same `cache`. Lane arithmetic reuses the scalar expressions (see
/// [`alu_batch`]), and TEX touches are recorded per (instruction, lane)
/// during the chunk sweep and replayed into the cache fragment-major — the
/// exact access sequence the scalar executor would issue.
pub fn execute_lowered_batch(
    program: &LoweredProgram,
    inputs: &[FragmentInput],
    textures: &[&Texture2D],
    mut cache: Option<&mut TextureCache>,
    colors: &mut [[[f32; 4]; NUM_OUTPUTS]],
) -> (u64, u64) {
    assert_eq!(inputs.len(), colors.len(), "one color slot per fragment");
    let tex_slots = program.tex_count as usize;
    // One resolved touch per (lane, TEX instruction) — lane-major, so the
    // fragment-major replay scans contiguously — packed as
    // `(sampler << 48) | (y << 24) | x`; [`NO_TOUCH`] marks border fetches
    // (no cache traffic) and inactive lanes.
    let mut touches: Vec<u64> = vec![NO_TOUCH; tex_slots * BATCH_LANES];
    let mut texel_fetches = 0u64;
    // Registers a program never names keep their bits from chunk to chunk;
    // zeroing is only observable (and only required for scalar parity) on
    // the registers it can actually read.
    let mut temps_used = 0usize; // zero temps[..temps_used] per chunk
    let mut coord_sets = 0u16; // bitmask of texcoord sets read
    for instr in &program.instrs {
        if let LoweredDst::Temp(r) = instr.dst {
            temps_used = temps_used.max(r as usize + 1);
        }
        for src in &instr.srcs {
            match *src {
                LoweredSrc::Temp(r, ..) => temps_used = temps_used.max(r as usize + 1),
                LoweredSrc::Coord(t, ..) => coord_sets |= 1 << t,
                _ => {}
            }
        }
    }
    let mut temps = [[[0.0f32; BATCH_LANES]; 4]; NUM_TEMPS];
    let mut outputs = [[[0.0f32; BATCH_LANES]; 4]; NUM_OUTPUTS];
    let mut texcoords = [[[0.0f32; BATCH_LANES]; 4]; NUM_TEXCOORDS];
    for (inp, cols) in inputs
        .chunks(BATCH_LANES)
        .zip(colors.chunks_mut(BATCH_LANES))
    {
        let active = inp.len();
        temps[..temps_used].fill([[0.0; BATCH_LANES]; 4]);
        outputs.fill([[0.0; BATCH_LANES]; 4]);
        // Only the sets the program reads are transposed in; lanes past
        // `active` keep stale bits that no observable path ever reads
        // (the TEX loop and the color scatter stop at `active`).
        for (t, soa) in texcoords.iter_mut().enumerate() {
            if coord_sets & (1 << t) != 0 {
                for (l, fi) in inp.iter().enumerate() {
                    for (comp, &x) in soa.iter_mut().zip(&fi.texcoords[t]) {
                        comp[l] = x;
                    }
                }
            }
        }
        if tex_slots > 0 {
            touches.fill(NO_TOUCH);
        }
        shade_chunk(
            program,
            textures,
            &mut temps,
            &mut outputs,
            &texcoords,
            &mut touches,
            active,
            cache.is_some(),
        );
        texel_fetches += (tex_slots * active) as u64;
        if let Some(cache) = cache.as_deref_mut() {
            replay_touches(cache, &touches, tex_slots, active);
        }
        for (l, slot) in cols.iter_mut().enumerate() {
            for (o, out) in slot.iter_mut().zip(&outputs) {
                for (c, comp) in o.iter_mut().zip(out) {
                    *c = comp[l];
                }
            }
        }
    }
    (
        program.instrs.len() as u64 * inputs.len() as u64,
        texel_fetches,
    )
}

/// Run every instruction of `program` once over one SoA chunk whose
/// register state the caller prepared (temps/outputs zeroed, texcoords
/// filled for the sets the program reads, `touches` reset to [`NO_TOUCH`]).
/// When `record` is set, resolved TEX coordinates are packed into
/// `touches` lane-major for a later fragment-major cache replay.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn shade_chunk(
    program: &LoweredProgram,
    textures: &[&Texture2D],
    temps: &mut [[LaneVec; 4]; NUM_TEMPS],
    outputs: &mut [[LaneVec; 4]; NUM_OUTPUTS],
    texcoords: &[[LaneVec; 4]; NUM_TEXCOORDS],
    touches: &mut [u64],
    active: usize,
    record: bool,
) {
    let tex_slots = program.tex_count as usize;
    let mut tex_slot = 0usize;
    for instr in &program.instrs {
        let s = |i: usize| instr.srcs[i].read_batch(temps, outputs, texcoords);
        let value: [LaneVec; 4] = if instr.op == Opcode::Tex {
            let sampler = instr.sampler as usize;
            let tex = textures[sampler];
            let coord = s(0);
            let mut fetched = [[0.0f32; BATCH_LANES]; 4];
            let (wf, hf) = (tex.width() as f32, tex.height() as f32);
            if let AddressMode::ClampToEdge = tex.address_mode() {
                // The GPGPU-default mode, hoisted out of the lane loop;
                // the clamp mirrors `Texture2D`'s own resolution (every
                // coordinate resolves, never a border). i32 truncation
                // is exact here: both i32 and i64 saturation points lie
                // far outside `[0, edge]`, so the clamped texel is the
                // same one the scalar path's i64 floor resolves to.
                let xs: [i32; BATCH_LANES] =
                    std::array::from_fn(|l| floor_to_i32(coord[0][l] * wf));
                let ys: [i32; BATCH_LANES] =
                    std::array::from_fn(|l| floor_to_i32(coord[1][l] * hf));
                let (xmax, ymax) = (tex.width() as i32 - 1, tex.height() as i32 - 1);
                for l in 0..active {
                    let cx = xs[l].clamp(0, xmax) as usize;
                    let cy = ys[l].clamp(0, ymax) as usize;
                    if record {
                        touches[l * tex_slots + tex_slot] = pack_touch(sampler as u32, cx, cy);
                    }
                    let t = tex.texel(cx, cy);
                    for (comp, &x) in fetched.iter_mut().zip(&t) {
                        comp[l] = x;
                    }
                }
            } else {
                // Wrap/mirror/border arithmetic is sensitive to the
                // saturation bound, so these modes keep the scalar
                // path's full i64 coordinates.
                for l in 0..active {
                    let x = floor_to_i64(coord[0][l] * wf);
                    let y = floor_to_i64(coord[1][l] * hf);
                    let t = match tex.resolve_coords(x, y) {
                        Some((cx, cy)) => {
                            if record {
                                touches[l * tex_slots + tex_slot] =
                                    pack_touch(sampler as u32, cx, cy);
                            }
                            tex.texel(cx, cy)
                        }
                        None => tex.border_texel(),
                    };
                    for (comp, &x) in fetched.iter_mut().zip(&t) {
                        comp[l] = x;
                    }
                }
            }
            tex_slot += 1;
            fetched
        } else {
            alu_batch(instr.op, s)
        };
        let target = match instr.dst {
            LoweredDst::Temp(r) => &mut temps[r as usize],
            LoweredDst::Out(o) => &mut outputs[o as usize],
        };
        write_back_batch(target, value, instr.mask_bits, instr.saturate);
    }
}

/// Replay a chunk's recorded touches fragment-major (per fragment, TEX
/// instructions in program order): exactly the sequence the scalar
/// executor feeds the cache, so hit/miss counts match bit for bit at
/// every cache geometry.
#[inline(always)]
fn replay_touches(cache: &mut TextureCache, touches: &[u64], tex_slots: usize, active: usize) {
    for l in 0..active {
        cache.access_all(
            touches[l * tex_slots..(l + 1) * tex_slots]
                .iter()
                .copied()
                .filter(|&t| t != NO_TOUCH)
                .map(unpack_touch),
        );
    }
}

/// Shade one raster tile with [`BATCH_LANES`]-wide SoA chunks, writing
/// output `O0` straight into the tile's row segments.
///
/// This is the zero-copy fast path of [`execute_lowered_batch`]: instead
/// of materialising a [`FragmentInput`] per fragment and transposing it
/// into lane arrays, the affine coordinate-set interpolants are evaluated
/// directly into the SoA registers — the `v` component and the constant
/// `[.., .., 0, 1]` tail once per row/tile, the `u` ramp once per chunk —
/// and `outputs[0]` scatters straight to `rows`. Each row is chunked
/// independently, so `rows` may have ragged lengths.
///
/// Bit-exactness contract: `rows`, the returned `(instructions,
/// texel_fetches)` totals, and the cache's hit/miss counters are identical
/// to the scalar loop
/// `for (ri, seg) { for ci { execute_lowered(prog, fragment_input(sets,
/// x0+ci, y0+ri, target_w, target_h), .. ) } }`: the interpolants are
/// computed with expression-identical arithmetic (`(x + 0.5) / w` then
/// `u * scale + offset`, never fused), lanes reuse the scalar ALU
/// expressions, and TEX touches replay fragment-major in row-major
/// fragment order.
#[allow(clippy::too_many_arguments)]
pub fn execute_lowered_batch_tile(
    program: &LoweredProgram,
    sets: &[crate::raster::TexCoordSet],
    x0: usize,
    y0: usize,
    target_w: usize,
    target_h: usize,
    rows: &mut [&mut [[f32; 4]]],
    textures: &[&Texture2D],
    mut cache: Option<&mut TextureCache>,
) -> (u64, u64) {
    let tex_slots = program.tex_count as usize;
    let mut touches: Vec<u64> = vec![NO_TOUCH; tex_slots * BATCH_LANES];
    let mut texel_fetches = 0u64;
    let mut fragments = 0u64;
    let mut temps_used = 0usize;
    let mut coord_sets = 0u16;
    for instr in &program.instrs {
        if let LoweredDst::Temp(r) = instr.dst {
            temps_used = temps_used.max(r as usize + 1);
        }
        for src in &instr.srcs {
            match *src {
                LoweredSrc::Temp(r, ..) => temps_used = temps_used.max(r as usize + 1),
                LoweredSrc::Coord(t, ..) => coord_sets |= 1 << t,
                _ => {}
            }
        }
    }
    let mut temps = [[[0.0f32; BATCH_LANES]; 4]; NUM_TEMPS];
    let mut outputs = [[[0.0f32; BATCH_LANES]; 4]; NUM_OUTPUTS];
    let mut texcoords = [[[0.0f32; BATCH_LANES]; 4]; NUM_TEXCOORDS];
    let (twf, thf) = (target_w as f32, target_h as f32);
    // Coordinate sets interpolate `[u, v, 0, 1]`: components 2 and 3 are
    // constant across the tile, and sets past `sets.len()` stay at the
    // `FragmentInput::zero()` default `[0, 0, 0, 1]` everywhere.
    for (t, soa) in texcoords.iter_mut().enumerate() {
        if coord_sets & (1 << t) != 0 {
            *soa = [
                [0.0; BATCH_LANES],
                [0.0; BATCH_LANES],
                [0.0; BATCH_LANES],
                [1.0; BATCH_LANES],
            ];
        }
    }
    for (ri, seg) in rows.iter_mut().enumerate() {
        let y = y0 + ri;
        let v = (y as f32 + 0.5) / thf;
        // The `v` component of every bound set is constant along the row.
        for (t, set) in sets.iter().enumerate() {
            if coord_sets & (1 << t) != 0 {
                texcoords[t][1] = [v * set.scale[1] + set.offset[1]; BATCH_LANES];
            }
        }
        let width = seg.len();
        let mut ci = 0usize;
        while ci < width {
            let active = (width - ci).min(BATCH_LANES);
            // The `u` ramp for this chunk (lanes past `active` compute
            // coordinates no observable path reads).
            let us: LaneVec = std::array::from_fn(|l| ((x0 + ci + l) as f32 + 0.5) / twf);
            for (t, set) in sets.iter().enumerate() {
                if coord_sets & (1 << t) != 0 {
                    let (s0, o0) = (set.scale[0], set.offset[0]);
                    texcoords[t][0] = us.map(|u| u * s0 + o0);
                }
            }
            temps[..temps_used].fill([[0.0; BATCH_LANES]; 4]);
            outputs.fill([[0.0; BATCH_LANES]; 4]);
            if tex_slots > 0 {
                touches.fill(NO_TOUCH);
            }
            shade_chunk(
                program,
                textures,
                &mut temps,
                &mut outputs,
                &texcoords,
                &mut touches,
                active,
                cache.is_some(),
            );
            texel_fetches += (tex_slots * active) as u64;
            if let Some(cache) = cache.as_deref_mut() {
                replay_touches(cache, &touches, tex_slots, active);
            }
            let o0 = &outputs[0];
            for l in 0..active {
                seg[ci + l] = [o0[0][l], o0[1][l], o0[2][l], o0[3][l]];
            }
            fragments += active as u64;
            ci += active;
        }
    }
    (program.instrs.len() as u64 * fragments, texel_fetches)
}

/// `v.floor() as i64` without the libm `floorf` call: truncate toward
/// zero, then step down when truncation rounded up (negative non-integer
/// inputs). Result-identical to the scalar path's `v.floor() as i64` for
/// every f32: NaN → 0 either way, and out-of-range values saturate at the
/// same bounds (the correction term never fires at a saturated truncation
/// except below `i64::MIN`, where `saturating_sub` pins it).
#[inline(always)]
fn floor_to_i64(v: f32) -> i64 {
    let t = v as i64;
    t.saturating_sub(i64::from(t as f32 > v))
}

/// [`floor_to_i64`] truncated to i32 (vectorizable `cvttps2dq` path). Only
/// valid where the caller clamps the result to a range both widths
/// saturate outside of, e.g. `ClampToEdge`'s `[0, size-1]`.
#[inline(always)]
fn floor_to_i32(v: f32) -> i32 {
    let t = v as i32;
    t.saturating_sub(i32::from(t as f32 > v))
}

/// Sentinel for a (TEX, lane) slot that generated no cache traffic.
const NO_TOUCH: u64 = u64::MAX;

/// Pack a resolved cache touch into one word (24 bits per coordinate —
/// far beyond any allocatable texture edge — and the sampler on top).
#[inline(always)]
fn pack_touch(sampler: u32, x: usize, y: usize) -> u64 {
    debug_assert!(x < (1 << 24) && y < (1 << 24) && sampler < (1 << 16));
    ((sampler as u64) << 48) | ((y as u64) << 24) | x as u64
}

#[inline(always)]
fn unpack_touch(t: u64) -> (u32, usize, usize) {
    (
        (t >> 48) as u32,
        (t & 0xff_ffff) as usize,
        ((t >> 24) & 0xff_ffff) as usize,
    )
}

/// Merge a program's `DEF` constants into a pass-level constant block.
pub fn resolve_constants(
    program: &Program,
    pass_constants: &[(u8, [f32; 4])],
) -> [[f32; 4]; NUM_CONSTS] {
    let mut c = [[0.0f32; 4]; NUM_CONSTS];
    for d in &program.defs {
        c[d.index as usize] = d.value;
    }
    for &(idx, v) in pass_constants {
        c[idx as usize] = v;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn lg2_is_exact_on_powers_of_two_and_close_to_libm_elsewhere() {
        for k in -126..=127 {
            let x = (k as f32).exp2();
            assert_eq!(lg2(x), k as f32, "lg2(2^{k})");
        }
        assert_eq!(lg2(1.0), 0.0);
        assert_eq!(lg2(f32::INFINITY), f32::INFINITY);
        // Dense sweep against the platform libm: the vendored polynomial
        // must agree to a few ulp everywhere the LG2 clamp can produce.
        let mut worst = 0.0f64;
        let mut x = f32::MIN_POSITIVE;
        while x.is_finite() {
            let (got, want) = (lg2(x) as f64, (x as f64).log2());
            let err = (got - want).abs();
            // Absolute log2 values span ±126; 1e-5 absolute ≈ 2 f32 ulp
            // at |log2| ≈ 64 and far below SID's ε-tolerances near 1.
            worst = worst.max(err / want.abs().max(1.0));
            x *= 1.618_034; // irrational step: hits varied mantissas
        }
        assert!(worst < 1e-6, "worst relative error {worst}");
    }

    fn run(src: &str, textures: &[&Texture2D]) -> FragmentOutput {
        let p = assemble(src).unwrap();
        let constants = resolve_constants(&p, &[]);
        execute(&p, &FragmentInput::zero(), &constants, textures, None)
    }

    fn run_with_input(src: &str, input: &FragmentInput, textures: &[&Texture2D]) -> FragmentOutput {
        let p = assemble(src).unwrap();
        let constants = resolve_constants(&p, &[]);
        execute(&p, input, &constants, textures, None)
    }

    #[test]
    fn arithmetic_opcodes() {
        let out = run(
            "DEF C0, 1, 2, 3, 4\nDEF C1, 10, 20, 30, 40\n\
             ADD R0, C0, C1\nSUB R1, C1, C0\nMUL R2, C0, C0\nMAD R3, C0, C1, C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2\nMOV O3, R3",
            &[],
        );
        assert_eq!(out.colors[0], [11.0, 22.0, 33.0, 44.0]);
        assert_eq!(out.colors[1], [9.0, 18.0, 27.0, 36.0]);
        assert_eq!(out.colors[2], [1.0, 4.0, 9.0, 16.0]);
        assert_eq!(out.colors[3], [11.0, 42.0, 93.0, 164.0]);
        assert_eq!(out.instructions, 8);
        assert_eq!(out.texel_fetches, 0);
    }

    #[test]
    fn transcendental_opcodes() {
        let out = run(
            "DEF C0, 2, 4, 8, 1\nRCP R0, C0\nRSQ R1, C0\nLG2 R2, C0\nEX2 R3, C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2\nMOV O3, R3",
            &[],
        );
        assert_eq!(out.colors[0], [0.5, 0.25, 0.125, 1.0]);
        assert!((out.colors[1][0] - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(out.colors[2], [1.0, 2.0, 3.0, 0.0]);
        assert_eq!(out.colors[3], [4.0, 16.0, 256.0, 2.0]);
    }

    #[test]
    fn lg2_clamps_non_positive() {
        let out = run("DEF C0, 0, -1, 1, 2\nLG2 R0, C0\nMOV OC, R0", &[]);
        assert!(out.colors[0][0].is_finite());
        assert!(out.colors[0][1].is_finite());
        assert_eq!(out.colors[0][2], 0.0);
        assert_eq!(out.colors[0][3], 1.0);
    }

    #[test]
    fn comparison_and_select_opcodes() {
        let out = run(
            "DEF C0, 1, 5, 3, 3\nDEF C1, 2, 2, 3, 4\n\
             SLT R0, C0, C1\nSGE R1, C0, C1\n\
             DEF C2, -1, 1, -0.5, 0\nCMP R2, C2, C0, C1\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2",
            &[],
        );
        assert_eq!(out.colors[0], [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(out.colors[1], [0.0, 1.0, 1.0, 0.0]);
        assert_eq!(out.colors[2], [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn misc_opcodes() {
        let out = run(
            "DEF C0, 1.75, -1.25, 2, -2\n\
             FRC R0, C0\nFLR R1, C0\nABS R2, C0\n\
             MIN R3, C0, -C0\nMAX R4, C0, -C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2\nMOV O3, R3\nMOV R5, R4",
            &[],
        );
        assert_eq!(out.colors[0], [0.75, 0.75, 0.0, 0.0]);
        assert_eq!(out.colors[1], [1.0, -2.0, 2.0, -2.0]);
        assert_eq!(out.colors[2], [1.75, 1.25, 2.0, 2.0]);
        assert_eq!(out.colors[3], [-1.75, -1.25, -2.0, -2.0]);
    }

    #[test]
    fn dot_products_broadcast() {
        let out = run(
            "DEF C0, 1, 2, 3, 4\nDEF C1, 1, 1, 1, 1\nDP3 R0, C0, C1\nDP4 R1, C0, C1\n\
             MOV OC, R0\nMOV O1, R1",
            &[],
        );
        assert_eq!(out.colors[0], [6.0; 4]);
        assert_eq!(out.colors[1], [10.0; 4]);
    }

    #[test]
    fn lrp_interpolates() {
        let out = run(
            "DEF C0, 0, 1, 0.5, 0.25\nDEF C1, 10, 10, 10, 10\nDEF C2, 20, 20, 20, 20\n\
             LRP R0, C0, C1, C2\nMOV OC, R0",
            &[],
        );
        assert_eq!(out.colors[0], [20.0, 10.0, 15.0, 17.5]);
    }

    #[test]
    fn swizzle_negate_mask_saturate() {
        let out = run(
            "DEF C0, 1, 2, 3, 4\nMOV R0, C0.wzyx\nMOV R1.xz, C0\nMOV_SAT R2, -C0\n\
             MOV OC, R0\nMOV O1, R1\nMOV O2, R2",
            &[],
        );
        assert_eq!(out.colors[0], [4.0, 3.0, 2.0, 1.0]);
        assert_eq!(out.colors[1], [1.0, 0.0, 3.0, 0.0]);
        assert_eq!(out.colors[2], [0.0; 4]); // negatives saturate to 0
    }

    #[test]
    fn texture_sampling_uses_texcoords_and_counts_fetches() {
        let mut tex = Texture2D::new(2, 2);
        tex.set_texel(0, 0, [1.0, 0.0, 0.0, 1.0]);
        tex.set_texel(1, 1, [0.0, 1.0, 0.0, 1.0]);
        let mut input = FragmentInput::zero();
        input.texcoords[0] = [0.25, 0.25, 0.0, 1.0]; // texel (0,0)
        input.texcoords[1] = [0.75, 0.75, 0.0, 1.0]; // texel (1,1)
        let out = run_with_input(
            "TEX R0, T0, tex0\nTEX R1, T1, tex0\nADD OC, R0, R1",
            &input,
            &[&tex],
        );
        assert_eq!(out.colors[0], [1.0, 1.0, 0.0, 2.0]);
        assert_eq!(out.texel_fetches, 2);
        assert_eq!(out.instructions, 3);
    }

    #[test]
    fn dependent_texture_read() {
        // Compute a coordinate in the shader, then sample with it.
        let mut lut = Texture2D::new(2, 1);
        lut.set_texel(0, 0, [11.0; 4]);
        lut.set_texel(1, 0, [22.0; 4]);
        let out = run(
            "DEF C0, 0.75, 0.5, 0, 0\nMOV R0, C0\nTEX R1, R0, tex0\nMOV OC, R1",
            &[&lut],
        );
        assert_eq!(out.colors[0], [22.0; 4]);
    }

    #[test]
    fn cache_is_consulted_per_fetch() {
        let tex = Texture2D::new(4, 4);
        let p = assemble("TEX R0, T0, tex0\nTEX R1, T0, tex0\nMOV OC, R0").unwrap();
        let constants = resolve_constants(&p, &[]);
        let mut cache = TextureCache::new(16, 2);
        let input = FragmentInput::zero();
        execute(&p, &input, &constants, &[&tex], Some(&mut cache));
        assert_eq!(cache.hits() + cache.misses(), 2);
        assert_eq!(cache.hits(), 1); // second fetch hits the same block
    }

    #[test]
    fn lowered_execution_matches_interpreter() {
        let mut tex = Texture2D::new(2, 2);
        tex.set_texel(0, 0, [0.25, 0.5, 0.75, 1.0]);
        tex.set_texel(1, 1, [0.1, 0.2, 0.3, 0.4]);
        let p = assemble(
            "DEF C0, 1.5, -2, 0.25, 4\n\
             TEX R0, T0, tex0\nMAD R1.xz, R0, C0.wzyx, -C0\nLRP R2, C0.x, R0, R1\n\
             RSQ R3, C0.w\nMOV_SAT OC, R2\nDP4 O1, R1, C0\nMOV O2, R3",
        )
        .unwrap();
        let constants = resolve_constants(&p, &[(1, [0.5, 0.5, 0.0, 1.0])]);
        let lowered = lower(&p, &constants);
        assert_eq!(lowered.instruction_count(), p.len() as u64);
        assert_eq!(lowered.tex_count(), p.tex_count() as u64);
        let mut input = FragmentInput::zero();
        input.texcoords[0] = [0.6, 0.7, 0.0, 1.0];
        let a = execute(&p, &input, &constants, &[&tex], None);
        let b = execute_lowered(&lowered, &input, &[&tex], None);
        assert_eq!(a, b);
    }

    #[test]
    fn lowered_cache_traffic_matches_interpreter() {
        let tex = Texture2D::new(4, 4);
        let p = assemble("TEX R0, T0, tex0\nTEX R1, T0, tex0\nMOV OC, R0").unwrap();
        let constants = resolve_constants(&p, &[]);
        let lowered = lower(&p, &constants);
        let input = FragmentInput::zero();
        let mut ca = TextureCache::new(16, 2);
        let mut cb = TextureCache::new(16, 2);
        execute(&p, &input, &constants, &[&tex], Some(&mut ca));
        execute_lowered(&lowered, &input, &[&tex], Some(&mut cb));
        assert_eq!((ca.hits(), ca.misses()), (cb.hits(), cb.misses()));
    }

    #[test]
    fn batched_execution_matches_scalar_over_ragged_batch() {
        // 11 fragments = one full 8-lane chunk plus a ragged 3-lane tail,
        // over a program mixing TEX, MAD masks, LRP, saturation and DP4.
        let mut tex = Texture2D::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                let v = (y * 4 + x) as f32 * 0.125 - 0.5;
                tex.set_texel(x, y, [v, v + 0.25, -v, 1.0]);
            }
        }
        let p = assemble(
            "DEF C0, 1.5, -2, 0.25, 4\n\
             TEX R0, T0, tex0\nMAD R1.xz, R0, C0.wzyx, -C0\nLRP R2, C0.x, R0, R1\n\
             RSQ R3, C0.w\nMOV_SAT OC, R2\nDP4 O1, R1, C0\nMOV O2, R3",
        )
        .unwrap();
        let constants = resolve_constants(&p, &[(1, [0.5, 0.5, 0.0, 1.0])]);
        let lowered = lower(&p, &constants);
        let inputs: Vec<FragmentInput> = (0..11)
            .map(|i| {
                let mut fi = FragmentInput::zero();
                fi.texcoords[0] = [i as f32 * 0.09, 1.0 - i as f32 * 0.07, 0.0, 1.0];
                fi
            })
            .collect();
        let mut scalar_cache = TextureCache::new(16, 2);
        let mut batch_cache = TextureCache::new(16, 2);
        let mut scalar_instr = 0u64;
        let mut scalar_fetches = 0u64;
        let scalar: Vec<_> = inputs
            .iter()
            .map(|fi| {
                let r = execute_lowered(&lowered, fi, &[&tex], Some(&mut scalar_cache));
                scalar_instr += r.instructions;
                scalar_fetches += r.texel_fetches;
                r.colors
            })
            .collect();
        let mut colors = vec![[[0.0f32; 4]; NUM_OUTPUTS]; inputs.len()];
        let (instr, fetches) = execute_lowered_batch(
            &lowered,
            &inputs,
            &[&tex],
            Some(&mut batch_cache),
            &mut colors,
        );
        for (a, b) in scalar.iter().zip(&colors) {
            let bits = |c: &[[f32; 4]; NUM_OUTPUTS]| c.map(|v| v.map(f32::to_bits));
            assert_eq!(bits(a), bits(b));
        }
        assert_eq!((instr, fetches), (scalar_instr, scalar_fetches));
        assert_eq!(
            (batch_cache.hits(), batch_cache.misses()),
            (scalar_cache.hits(), scalar_cache.misses())
        );
    }

    #[test]
    fn batched_cache_replay_preserves_fragment_major_order() {
        // Two TEX instructions against different samplers through a 1-set,
        // 1-way cache: instruction-major accesses would turn the scalar
        // all-miss A,B,A,B... sequence into runs of hits, so equality here
        // proves the batch path replays touches fragment-major.
        let ta = Texture2D::new(4, 4);
        let tb = Texture2D::new(4, 4);
        let p = assemble("TEX R0, T0, tex0\nTEX R1, T0, tex1\nADD OC, R0, R1").unwrap();
        let constants = resolve_constants(&p, &[]);
        let lowered = lower(&p, &constants);
        let inputs = vec![FragmentInput::zero(); 8];
        let mut scalar_cache = TextureCache::new(1, 1);
        let mut batch_cache = TextureCache::new(1, 1);
        for fi in &inputs {
            execute_lowered(&lowered, fi, &[&ta, &tb], Some(&mut scalar_cache));
        }
        let mut colors = vec![[[0.0f32; 4]; NUM_OUTPUTS]; inputs.len()];
        execute_lowered_batch(
            &lowered,
            &inputs,
            &[&ta, &tb],
            Some(&mut batch_cache),
            &mut colors,
        );
        assert_eq!(scalar_cache.hits(), 0, "scalar sequence must thrash");
        assert_eq!(
            (batch_cache.hits(), batch_cache.misses()),
            (scalar_cache.hits(), scalar_cache.misses())
        );
    }

    #[test]
    fn batch_tile_matches_scalar_row_loop_bit_for_bit() {
        // A ragged 13-wide, 3-row tile (chunks of 8 + 5 per row) with an
        // offset origin, two coordinate sets (one neighbour-shifted so
        // fetches clamp at the border) and a program exercising TEX from
        // both sets, LG2 and saturation. The tile path must reproduce the
        // scalar `fragment_input` + `execute_lowered` loop exactly —
        // colors, counters and cache traffic.
        use crate::raster::{fragment_input, TexCoordSet};
        let (tw, th) = (20, 9);
        let mut tex = Texture2D::new(20, 9);
        for y in 0..9 {
            for x in 0..20 {
                let v = (y * 20 + x) as f32 * 0.011 + 0.125;
                tex.set_texel(x, y, [v, 1.0 - v, v * v, 1.0]);
            }
        }
        let sets = [
            TexCoordSet::identity(),
            TexCoordSet::shifted_texels(2, -1, 20, 9),
        ];
        let p = assemble(
            "DEF C0, 0.5, 2, -1, 1\n\
             TEX R0, T0, tex0\nTEX R1, T1, tex0\nLG2 R2.xy, R0.x\n\
             MAD R3, R1, C0.yyyy, R2\nMOV_SAT OC, R3\nADD O1, R0, -R1",
        )
        .unwrap();
        let constants = resolve_constants(&p, &[]);
        let lowered = lower(&p, &constants);
        let (x0, y0, width, rows) = (5usize, 3usize, 13usize, 3usize);
        let mut scalar_cache = TextureCache::new(4, 2);
        let mut scalar_out = vec![[0.0f32; 4]; width * rows];
        let mut scalar_instr = 0u64;
        let mut scalar_fetches = 0u64;
        for ri in 0..rows {
            for ci in 0..width {
                let fi = fragment_input(&sets, x0 + ci, y0 + ri, tw, th);
                let r = execute_lowered(&lowered, &fi, &[&tex], Some(&mut scalar_cache));
                scalar_instr += r.instructions;
                scalar_fetches += r.texel_fetches;
                scalar_out[ri * width + ci] = r.colors[0];
            }
        }
        let mut tile_out = vec![[0.0f32; 4]; width * rows];
        let mut segs: Vec<&mut [[f32; 4]]> = tile_out.chunks_mut(width).collect();
        let mut tile_cache = TextureCache::new(4, 2);
        let (instr, fetches) = execute_lowered_batch_tile(
            &lowered,
            &sets,
            x0,
            y0,
            tw,
            th,
            &mut segs,
            &[&tex],
            Some(&mut tile_cache),
        );
        let bits = |v: &[[f32; 4]]| v.iter().map(|t| t.map(f32::to_bits)).collect::<Vec<_>>();
        assert_eq!(bits(&scalar_out), bits(&tile_out));
        assert_eq!((instr, fetches), (scalar_instr, scalar_fetches));
        assert_eq!(
            (tile_cache.hits(), tile_cache.misses()),
            (scalar_cache.hits(), scalar_cache.misses())
        );
    }

    #[test]
    fn pass_constants_override_defs() {
        let p = assemble("DEF C0, 1, 1, 1, 1\nMOV OC, C0").unwrap();
        let constants = resolve_constants(&p, &[(0, [9.0, 8.0, 7.0, 6.0])]);
        let out = execute(&p, &FragmentInput::zero(), &constants, &[], None);
        assert_eq!(out.colors[0], [9.0, 8.0, 7.0, 6.0]);
    }
}
