//! CLI smoke tests for the `shader_lint` binary, exercising the `--opt`
//! and `--emit` flags added alongside the optimizer.

use std::io::Write;
use std::process::{Command, Stdio};

/// A tiny program with an obvious copy to eliminate: the optimizer folds
/// `MOV R1, R0` into the ADD and coalesces the result straight into OC.
const COPY_HEAVY: &str = "!!copy_heavy
TEX R0, T0, tex0
MOV R1, R0
ADD R2, R1, R0
MOV OC, R2
";

/// A program with a genuine lint error (unwritten register read).
const BROKEN: &str = "!!broken
ADD OC, R0, R7
";

fn run_lint(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_shader_lint"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn shader_lint");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait shader_lint");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.code(),
    )
}

#[test]
fn opt_flag_reports_counters_and_counts() {
    let (stdout, _, code) = run_lint(&["--opt"], COPY_HEAVY);
    assert_eq!(code, Some(0), "clean program must keep exit 0\n{stdout}");
    assert!(
        stdout.contains("opt[<stdin>] copy_heavy: 4 -> 2 instructions"),
        "expected before/after counts in report, got:\n{stdout}"
    );
    assert!(
        stdout.contains("copies_propagated"),
        "expected per-pass counters, got:\n{stdout}"
    );
}

#[test]
fn emit_flag_prints_optimized_disassembly() {
    let (stdout, _, code) = run_lint(&["--emit"], COPY_HEAVY);
    assert_eq!(code, Some(0));
    // The emitted text is the optimized program: the copy is gone and the
    // sum lands directly in OC.
    assert!(stdout.contains("!!copy_heavy"), "missing header:\n{stdout}");
    assert!(
        stdout.contains("ADD OC, R0, R0"),
        "expected coalesced ADD into OC, got:\n{stdout}"
    );
    assert!(
        !stdout.contains("MOV R1, R0"),
        "copy should have been eliminated:\n{stdout}"
    );
}

#[test]
fn emitted_disassembly_reassembles_and_lints_clean() {
    let (stdout, _, _) = run_lint(&["--emit"], COPY_HEAVY);
    // Round-trip the emitted text through the linter again: it must be a
    // fixed point (already optimal) and verify-clean.
    let (second, _, code) = run_lint(&["--emit", "--deny-warnings"], &stdout);
    assert_eq!(
        code,
        Some(0),
        "optimized program must lint clean:\n{second}"
    );
    assert_eq!(second, stdout, "optimization should be idempotent");
}

#[test]
fn exit_code_stays_lint_driven_with_opt_flags() {
    let (stdout, _, code) = run_lint(&["--opt", "--emit"], BROKEN);
    assert_eq!(code, Some(1), "errors must still fail the lint:\n{stdout}");
    // Broken programs are not optimized: no report, no emitted program.
    assert!(
        !stdout.contains("opt[<stdin>]"),
        "unexpected report:\n{stdout}"
    );
    assert!(
        !stdout.contains("!!broken\nADD"),
        "unexpected emit:\n{stdout}"
    );
}
