//! Per-pixel oracle vs the batched abundance operator on an AMC-sized
//! unmixing problem (96 bands, 24 endmembers).

use criterion::{criterion_group, criterion_main, Criterion};
use hsi::cube::{Cube, CubeDims, Interleave};
use hsi::unmix::{AbundanceConstraint, LinearMixtureModel};
use std::time::Duration;

const BANDS: usize = 96;
const COUNT: usize = 24;

fn model() -> LinearMixtureModel {
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        20.0 + ((state >> 40) % 4000) as f32
    };
    let spectra: Vec<Vec<f32>> = (0..COUNT)
        .map(|_| (0..BANDS).map(|_| next()).collect())
        .collect();
    let refs: Vec<&[f32]> = spectra.iter().map(Vec::as_slice).collect();
    LinearMixtureModel::new(&refs).unwrap()
}

fn cube() -> Cube {
    Cube::from_fn(CubeDims::new(64, 32, BANDS), Interleave::Bip, |x, y, b| {
        30.0 + ((x * 31 + y * 17 + b * 7) % 3971) as f32
    })
    .unwrap()
}

fn bench_unmix(c: &mut Criterion) {
    let mut group = c.benchmark_group("unmix_64x32x96_c24");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let m = model();
    let cb = cube();
    let constraint = AbundanceConstraint::SumToOneNonNeg;
    let pixels = cb.data();
    let n = cb.dims().pixels();

    group.bench_function("per_pixel_oracle", |b| {
        b.iter(|| {
            let mut labels = vec![0u16; n];
            for (px, l) in pixels.chunks(BANDS).zip(labels.iter_mut()) {
                let a = m.abundances(px, constraint).unwrap();
                *l = hsi::unmix::argmax(&a) as u16;
            }
            labels
        })
    });
    group.bench_function("abundances_batch", |b| {
        let mut out = vec![0.0f64; n * COUNT];
        b.iter(|| m.abundances_batch(pixels, constraint, &mut out).unwrap())
    });
    group.bench_function("classify_cube_batched", |b| {
        b.iter(|| m.classify_cube_batched(&cb, constraint).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_unmix);
criterion_main!(benches);
