//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this in-tree shim
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, range / tuple / `any` / collection
//! strategies, `prop_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Documented deviations from real proptest:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message but is not minimised.
//! * **Deterministic.** Each test derives its RNG seed from the test name,
//!   so runs are reproducible; set `PROPTEST_SHIM_SEED` to explore a
//!   different universe of cases.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of generated values (no shrinking in this shim).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through a function.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    start + unit * (end - start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite values across a wide dynamic range, sign included.
            let mantissa = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            let exp = (rng.next_u64() % 61) as i32 - 30;
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            sign * mantissa * (exp as f32).exp2()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.next_u64() % 121) as i32 - 60;
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            sign * mantissa * (exp as f64).exp2()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of a given element strategy and length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not failed.
        Reject(String),
        /// `prop_assert*` failed — the test fails.
        Fail(String),
    }

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test name (plus `PROPTEST_SHIM_SEED` if set), so
        /// every test explores its own reproducible stream.
        pub fn for_test(test_name: &str) -> Self {
            let base: u64 = std::env::var("PROPTEST_SHIM_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00D);
            let mut state = base;
            for b in test_name.bytes() {
                state = state.wrapping_mul(0x100000001B3) ^ b as u64;
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Namespaced re-exports matching `proptest::prelude::prop::*` usage.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-importable prelude.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a `proptest!` body; failure fails the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= 16 * __config.cases + 1024,
                            "too many prop_assume! rejections ({__why})"
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property failed after {__passed} passing case(s): {__msg}\n\
                             (offline proptest shim: no input shrinking)"
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u8..17, y in -4i32..4, f in 0.5f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_generate(
            pair in (0u16..4, 0u16..4),
            v in prop::collection::vec(1.0f32..10.0, 1..20),
        ) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| (1.0..10.0).contains(&e)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn any_bool_and_map_work(b in any::<bool>(), doubled in (1u8..10).prop_map(|v| v * 2)) {
            prop_assert!(u8::from(b) <= 1);
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..20).contains(&doubled));
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
