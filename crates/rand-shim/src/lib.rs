//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Provides the `Rng`/`SeedableRng` traits with uniform range sampling —
//! the exact subset the scene generator and tests use. Backed by any
//! `RngCore` implementor (the workspace uses the `rand_chacha` shim's
//! `ChaCha8Rng`). Sampling is deterministic for a given seed, which is all
//! the synthetic-scene pipeline requires; the streams are **not**
//! bit-compatible with the real `rand` crate.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that sample a uniform value from a range.
pub trait SampleRange<T> {
    /// Draw one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_ranges {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_ranges!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// User-facing random number generator interface.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniform value of a supported primitive type (`bool`, ints, unit
    /// floats).
    fn r#gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" uniform distribution.
pub trait Standard: Sized {
    /// Sample one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(0u64..=4);
            assert!(v <= 4);
            let f = rng.gen_range(1e-9f64..1.0);
            assert!((1e-9..1.0).contains(&f));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = SplitMix(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_samples_are_unit_floats() {
        let mut rng = SplitMix(3);
        for _ in 0..100 {
            let f: f64 = rng.r#gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.r#gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
