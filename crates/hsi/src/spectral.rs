//! Spectral distance measures.
//!
//! The paper's morphological ordering is driven by the **Spectral Information
//! Divergence** (SID, eq. 2): the symmetrised Kullback–Leibler divergence
//! between the band-normalized "probability" spectra of two pixels
//! (eqs. 3–4). SAM and Euclidean distance are provided as well — they are the
//! other standard measures in the hyperspectral literature and serve as
//! ablation points for the ordering relation.

use crate::pixel;

/// Epsilon used to keep `log(p/q)` finite when a normalized band is zero.
///
/// Matches the guard every practical SID implementation applies; at `1e-12`
/// relative to probabilities that sum to one it perturbs distances far below
/// the sensor noise floor.
pub const SID_EPSILON: f32 = 1e-12;

/// SID between two **already normalized** probability spectra (eq. 2).
///
/// `p` and `q` must be non-negative and each sum to ~1 (see
/// [`pixel::normalize_into`]). The result is symmetric, non-negative and zero
/// iff `p == q`.
pub fn sid_normalized(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let mut acc = 0.0f32;
    for (&pl, &ql) in p.iter().zip(q) {
        let pl = pl.max(SID_EPSILON);
        let ql = ql.max(SID_EPSILON);
        let log_ratio = (pl / ql).ln();
        // p·log(p/q) + q·log(q/p) = (p − q)·log(p/q)
        acc += (pl - ql) * log_ratio;
    }
    // Rounding can leave a tiny negative residue when p ≈ q.
    acc.max(0.0)
}

/// SID between two raw radiance pixels: normalizes (eqs. 3–4) then applies
/// eq. 2.
pub fn sid(a: &[f32], b: &[f32]) -> f32 {
    let p = pixel::normalized(a);
    let q = pixel::normalized(b);
    sid_normalized(&p, &q)
}

/// Spectral Angle Mapper: the angle (radians) between the two spectra.
pub fn sam(a: &[f32], b: &[f32]) -> f32 {
    let denom = pixel::norm(a) * pixel::norm(b);
    if denom <= f32::MIN_POSITIVE {
        return 0.0;
    }
    let cos = (pixel::dot(a, b) / denom).clamp(-1.0, 1.0);
    cos.acos()
}

/// Euclidean distance between the two spectra.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Selectable pointwise spectral distance.
///
/// The paper uses SID throughout; SAM and Euclidean are kept for ablations of
/// the morphological ordering relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpectralDistance {
    /// Spectral Information Divergence (the paper's choice, eq. 2).
    #[default]
    Sid,
    /// Spectral Angle Mapper.
    Sam,
    /// Euclidean distance.
    Euclidean,
}

impl SpectralDistance {
    /// Evaluate this distance on raw (unnormalized) pixels.
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            SpectralDistance::Sid => sid(a, b),
            SpectralDistance::Sam => sam(a, b),
            SpectralDistance::Euclidean => euclidean(a, b),
        }
    }

    /// Evaluate on pre-normalized spectra where that is meaningful.
    ///
    /// For SID this skips re-normalization (the hot path of the pipeline,
    /// which normalizes each pixel exactly once — the paper's stage 2). SAM
    /// and Euclidean are scale-sensitive, so they are evaluated directly.
    pub fn eval_normalized(&self, p: &[f32], q: &[f32]) -> f32 {
        match self {
            SpectralDistance::Sid => sid_normalized(p, q),
            SpectralDistance::Sam => sam(p, q),
            SpectralDistance::Euclidean => euclidean(p, q),
        }
    }

    /// Short identifier for table output.
    pub fn name(&self) -> &'static str {
        match self {
            SpectralDistance::Sid => "SID",
            SpectralDistance::Sam => "SAM",
            SpectralDistance::Euclidean => "ED",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f32 = 1e-6;

    #[test]
    fn sid_of_identical_pixels_is_zero() {
        let a = [0.3f32, 0.5, 0.2];
        assert_eq!(sid_normalized(&a, &a), 0.0);
        let raw = [10.0f32, 90.0, 45.0];
        assert!(sid(&raw, &raw).abs() < TOL);
    }

    #[test]
    fn sid_is_scale_invariant() {
        // Normalization makes SID invariant to per-pixel gain.
        let a = [1.0f32, 2.0, 3.0];
        let b = [3.0f32, 1.0, 2.0];
        let a2: Vec<f32> = a.iter().map(|v| v * 7.5).collect();
        assert!((sid(&a, &b) - sid(&a2, &b)).abs() < TOL);
    }

    #[test]
    fn sid_is_symmetric() {
        let a = [0.1f32, 0.4, 0.5];
        let b = [0.6f32, 0.3, 0.1];
        assert!((sid_normalized(&a, &b) - sid_normalized(&b, &a)).abs() < TOL);
    }

    #[test]
    fn sid_matches_textbook_formula() {
        // Direct evaluation of eq. 2 on a hand-picked pair.
        let p = [0.2f32, 0.8];
        let q = [0.5f32, 0.5];
        let expected: f32 = p
            .iter()
            .zip(&q)
            .map(|(&pl, &ql)| pl * (pl / ql).ln() + ql * (ql / pl).ln())
            .sum();
        assert!((sid_normalized(&p, &q) - expected).abs() < TOL);
        assert!(expected > 0.0);
    }

    #[test]
    fn sid_handles_zero_bands() {
        let p = [0.0f32, 1.0];
        let q = [0.5f32, 0.5];
        let d = sid_normalized(&p, &q);
        assert!(d.is_finite());
        assert!(d > 0.0);
    }

    #[test]
    fn sid_grows_with_divergence() {
        let p = [0.5f32, 0.5];
        let near = [0.45f32, 0.55];
        let far = [0.1f32, 0.9];
        assert!(sid_normalized(&p, &near) < sid_normalized(&p, &far));
    }

    #[test]
    fn sam_basics() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((sam(&a, &b) - std::f32::consts::FRAC_PI_2).abs() < TOL);
        assert!(sam(&a, &a).abs() < 1e-3);
        // Scale invariant.
        let b2 = [0.0f32, 42.0];
        assert!((sam(&a, &b) - sam(&a, &b2)).abs() < TOL);
        // Degenerate zero vector.
        assert_eq!(sam(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn distance_enum_dispatch() {
        let a = [2.0f32, 1.0, 1.0];
        let b = [1.0f32, 2.0, 1.0];
        assert!((SpectralDistance::Sid.eval(&a, &b) - sid(&a, &b)).abs() < TOL);
        assert!((SpectralDistance::Sam.eval(&a, &b) - sam(&a, &b)).abs() < TOL);
        assert!((SpectralDistance::Euclidean.eval(&a, &b) - euclidean(&a, &b)).abs() < TOL);
        assert_eq!(SpectralDistance::default(), SpectralDistance::Sid);
        assert_eq!(SpectralDistance::Sid.name(), "SID");
    }

    #[test]
    fn eval_normalized_sid_skips_renormalization() {
        let p = [0.25f32, 0.75];
        let q = [0.5f32, 0.5];
        assert!(
            (SpectralDistance::Sid.eval_normalized(&p, &q) - sid_normalized(&p, &q)).abs() < TOL
        );
    }
}
