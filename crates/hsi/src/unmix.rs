//! Linear spectral unmixing (step 3 of the AMC algorithm).
//!
//! The standard linear mixture model (Chang 2003, the paper's \[2\]) writes
//! each pixel as `f(x,y) ≈ Σ_i α_i(x,y) · e_i` where `e_i` are the endmember
//! spectra selected from the MEI image. Abundances are estimated by least
//! squares; the classic variants differ in which physical constraints they
//! enforce.

use crate::cube::{Cube, Interleave};
use crate::error::{HsiError, Result};
use crate::linalg::{self, Cholesky, Lu, Matrix};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which abundance constraints the estimator enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AbundanceConstraint {
    /// Unconstrained least squares (UCLS).
    None,
    /// Sum-to-one constrained least squares (SCLS) via a bordered KKT system.
    SumToOne,
    /// SCLS followed by clamping negatives to zero and renormalizing — the
    /// cheap approximation of fully-constrained LS used when only the argmax
    /// is needed (as in AMC's classification step).
    #[default]
    SumToOneNonNeg,
}

/// Default ridge λ as a fraction of the Gram matrix's mean diagonal.
pub const RIDGE_SCALE: f64 = 3e-5;

/// Pixels per tile of the batched unmixing kernels.
///
/// 256 pixels × ~100 bands × 4 bytes keeps a tile's input (~100 KiB) plus its
/// abundance scratch well inside L2 next to the cache-resident operator. The
/// tile size is a fixed constant — never derived from the worker count — so
/// tile boundaries, and therefore every f64 summation, are identical at every
/// `GPU_SIM_THREADS` setting.
pub const BATCH_TILE_PIXELS: usize = 256;

// Per-worker scratch for the batched kernels (abundance / Eᵀp rows). Reused
// across tiles so the steady state performs zero per-pixel and zero per-tile
// allocations.
thread_local! {
    static TILE_SCRATCH: RefCell<(Vec<f64>, Vec<f64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Worker-summed CPU seconds of one batched classification call.
///
/// Each worker thread times its own tiles; the fields are the sums across
/// workers. At one worker thread they add up to the call's wall clock; at `n`
/// workers the sum can exceed wall time (it counts total CPU work, not
/// elapsed time).
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchTimings {
    /// Seconds in the abundance GEMM + constraint fix-up (clamp/renormalize).
    pub unmix_s: f64,
    /// Seconds in the per-pixel argmax label assignment.
    pub argmax_s: f64,
}

/// A fitted linear mixture model over a fixed endmember set.
///
/// Construction factorizes the (c×c) systems once and precomputes the dense
/// abundance operators; per-pixel unmixing is then a matrix-vector product
/// plus a triangular solve, and batched unmixing is one GEMM per pixel tile.
#[derive(Debug, Clone)]
pub struct LinearMixtureModel {
    endmembers: Matrix,    // bands x c
    et: Matrix,            // c x bands — Eᵀ, the batched right-hand-side operator
    chol: Cholesky,        // of the ridged EᵀE
    bordered: Lu,          // KKT system for sum-to-one
    op_ucls: Matrix,       // c x bands — (EᵀE + λI)⁻¹Eᵀ
    op_scls: Matrix,       // c x bands — abundance block of KKT⁻¹ times Eᵀ
    scls_offset: Vec<f64>, // c — affine part of the bordered solve (λ row folded out)
    gram: Matrix,          // c x c — unridged EᵀE, for batched residuals
    gram_inv: Matrix,      // c x c — (EᵀE + λI)⁻¹
    bands: usize,
    count: usize,
}

impl LinearMixtureModel {
    /// Fit the model to the given endmember spectra (each of equal length).
    ///
    /// Fails with [`HsiError::SingularMatrix`] if the endmembers are linearly
    /// dependent (e.g. the same pixel selected twice).
    pub fn new(endmembers: &[&[f32]]) -> Result<Self> {
        let e = Matrix::from_columns_f32(endmembers)?;
        let bands = e.rows();
        let count = e.cols();
        if count > bands {
            return Err(HsiError::InvalidClassCount {
                requested: count,
                available: bands,
            });
        }
        let gram_unridged = e.gram();
        let mut gram = gram_unridged.clone();
        // Ridge regularisation (damped least squares): real endmember sets
        // (e.g. a dozen corn variants early in the growing season) are
        // near-collinear, so the unregularised LS estimate amplifies sensor
        // noise along the Gram matrix's small eigenvalues. A small fixed λ
        // relative to the mean diagonal stabilises abundances; it escalates
        // only if the factorization still fails (exactly duplicate spectra).
        let mean_diag: f64 = (0..count).map(|i| gram[(i, i)]).sum::<f64>() / count as f64;
        let mut scale = RIDGE_SCALE;
        for i in 0..count {
            gram[(i, i)] += mean_diag * scale;
        }
        let mut chol = Cholesky::new(&gram);
        while chol.is_err() && scale <= 1e-4 {
            scale *= 100.0;
            for i in 0..count {
                gram[(i, i)] += mean_diag * scale;
            }
            chol = Cholesky::new(&gram);
        }
        let chol = chol?;
        // Bordered KKT system for min ‖Ex − b‖ s.t. Σx = 1:
        //   [ G   1 ] [x] = [Eᵀb]
        //   [ 1ᵀ  0 ] [λ]   [ 1 ]
        let mut kkt = Matrix::zeros(count + 1, count + 1);
        for i in 0..count {
            for j in 0..count {
                kkt[(i, j)] = gram[(i, j)];
            }
            kkt[(i, count)] = 1.0;
            kkt[(count, i)] = 1.0;
        }
        let bordered = Lu::new(&kkt)?;
        // Precompute the dense abundance operators so the batched path is one
        // GEMM per pixel tile instead of a triangular solve per pixel.
        //
        // UCLS: x = (EᵀE + λI)⁻¹ Eᵀ p, so op_ucls = G̃⁻¹Eᵀ (c × bands).
        //
        // SCLS: the bordered solve is affine in the right-hand side,
        //   [x; μ] = KKT⁻¹ [Eᵀp; 1]  ⇒  x = B·(Eᵀp) + d
        // where B is the top-left c×c block of KKT⁻¹ and d its last column's
        // top c entries — the multiplier row folds into a constant offset.
        let et = e.transpose();
        let gram_inv = chol.inverse();
        let op_ucls = gram_inv.matmul_block(&et)?;
        let kkt_inv = bordered.inverse();
        let op_scls = kkt_inv.sub_block(0, 0, count, count)?.matmul_block(&et)?;
        let scls_offset: Vec<f64> = (0..count).map(|i| kkt_inv[(i, count)]).collect();
        Ok(Self {
            endmembers: e,
            et,
            chol,
            bordered,
            op_ucls,
            op_scls,
            scls_offset,
            gram: gram_unridged,
            gram_inv,
            bands,
            count,
        })
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Number of endmembers (classes) `c`.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The endmember matrix (bands × c).
    pub fn endmember_matrix(&self) -> &Matrix {
        &self.endmembers
    }

    /// Estimate the abundance vector of one pixel.
    pub fn abundances(&self, pixel: &[f32], constraint: AbundanceConstraint) -> Result<Vec<f64>> {
        if pixel.len() != self.bands {
            return Err(HsiError::DimensionMismatch {
                expected: self.bands,
                actual: pixel.len(),
            });
        }
        let etb = self.endmembers.transpose_matvec_f32(pixel)?;
        match constraint {
            AbundanceConstraint::None => self.chol.solve(&etb),
            AbundanceConstraint::SumToOne => {
                let x = self.solve_sum_to_one(&etb)?;
                Ok(x)
            }
            AbundanceConstraint::SumToOneNonNeg => {
                let mut x = self.solve_sum_to_one(&etb)?;
                clamp_renormalize(&mut x);
                Ok(x)
            }
        }
    }

    fn solve_sum_to_one(&self, etb: &[f64]) -> Result<Vec<f64>> {
        let mut rhs = Vec::with_capacity(self.count + 1);
        rhs.extend_from_slice(etb);
        rhs.push(1.0);
        let mut sol = self.bordered.solve(&rhs)?;
        sol.truncate(self.count); // drop the multiplier λ
        Ok(sol)
    }

    /// Index of the largest abundance — AMC's class assignment (step 4).
    pub fn classify_pixel(&self, pixel: &[f32], constraint: AbundanceConstraint) -> Result<usize> {
        let a = self.abundances(pixel, constraint)?;
        Ok(argmax(&a))
    }

    /// Classify every pixel of a BIP cube in parallel, returning row-major
    /// labels in `0..count`.
    pub fn classify_cube(
        &self,
        cube: &crate::cube::Cube,
        constraint: AbundanceConstraint,
    ) -> Result<Vec<u16>> {
        let dims = cube.dims();
        let bip = cube.to_interleave(crate::cube::Interleave::Bip);
        let data = bip.data();
        let labels: Vec<u16> = data
            .par_chunks(dims.bands)
            .map(|px| {
                self.classify_pixel(px, constraint)
                    .map(|c| c as u16)
                    .unwrap_or(0)
            })
            .collect();
        Ok(labels)
    }

    /// Reconstruct a pixel from abundances (for residual checks).
    pub fn reconstruct(&self, abundances: &[f64]) -> Result<Vec<f64>> {
        self.endmembers.matvec(abundances)
    }

    /// Squared reconstruction residual `‖pixel − E·α‖²` under unconstrained
    /// LS abundances — the selection criterion of ATGP endmember extraction.
    pub fn residual_norm2(&self, pixel: &[f32]) -> Result<f64> {
        let a = self.abundances(pixel, AbundanceConstraint::None)?;
        let recon = self.reconstruct(&a)?;
        Ok(pixel
            .iter()
            .zip(&recon)
            .map(|(&p, &q)| {
                let d = p as f64 - q;
                d * d
            })
            .sum())
    }

    /// Estimate abundances for a block of BIP pixels in one batched pass.
    ///
    /// `pixels` holds `n` contiguous `bands`-length spectra; on return
    /// `out[p*count .. (p+1)*count]` is the abundance vector of pixel `p`,
    /// identical (up to f64 rounding, see the batch-vs-oracle proptests) to
    /// calling [`LinearMixtureModel::abundances`] per pixel. The work is
    /// tiled into [`BATCH_TILE_PIXELS`]-pixel blocks executed on the rayon
    /// worker pool with zero per-pixel allocations; results are
    /// bit-identical at every thread count because tile boundaries and
    /// summation order are fixed.
    pub fn abundances_batch(
        &self,
        pixels: &[f32],
        constraint: AbundanceConstraint,
        out: &mut [f64],
    ) -> Result<()> {
        if !pixels.len().is_multiple_of(self.bands) {
            return Err(HsiError::DimensionMismatch {
                expected: self.bands,
                actual: pixels.len(),
            });
        }
        let n = pixels.len() / self.bands;
        if out.len() != n * self.count {
            return Err(HsiError::DimensionMismatch {
                expected: n * self.count,
                actual: out.len(),
            });
        }
        out.par_chunks_mut(BATCH_TILE_PIXELS * self.count)
            .zip(pixels.par_chunks(BATCH_TILE_PIXELS * self.bands))
            .for_each(|(ob, pb)| self.abundances_tile(pb, constraint, ob));
        Ok(())
    }

    // One tile of `abundances_batch`: operator GEMM straight into `out`,
    // then the constraint fix-up row by row. Shapes are validated by the
    // callers, so the GEMM cannot fail.
    fn abundances_tile(&self, pixels: &[f32], constraint: AbundanceConstraint, out: &mut [f64]) {
        let op = match constraint {
            AbundanceConstraint::None => &self.op_ucls,
            _ => &self.op_scls,
        };
        linalg::apply_operator_f32(op, pixels, out).expect("tile shapes validated by caller");
        match constraint {
            AbundanceConstraint::None => {}
            AbundanceConstraint::SumToOne => {
                for row in out.chunks_exact_mut(self.count) {
                    for (v, d) in row.iter_mut().zip(&self.scls_offset) {
                        *v += d;
                    }
                }
            }
            AbundanceConstraint::SumToOneNonNeg => {
                for row in out.chunks_exact_mut(self.count) {
                    for (v, d) in row.iter_mut().zip(&self.scls_offset) {
                        *v += d;
                    }
                    clamp_renormalize(row);
                }
            }
        }
    }

    /// Batched [`LinearMixtureModel::classify_cube`]: one operator GEMM +
    /// fused constraint fix-up + argmax per pixel tile, with per-worker
    /// scratch instead of per-pixel allocations.
    pub fn classify_cube_batched(
        &self,
        cube: &Cube,
        constraint: AbundanceConstraint,
    ) -> Result<Vec<u16>> {
        self.classify_cube_batched_timed(cube, constraint)
            .map(|(labels, _)| labels)
    }

    /// [`LinearMixtureModel::classify_cube_batched`] plus a [`BatchTimings`]
    /// breakdown of where the CPU time went.
    pub fn classify_cube_batched_timed(
        &self,
        cube: &Cube,
        constraint: AbundanceConstraint,
    ) -> Result<(Vec<u16>, BatchTimings)> {
        let dims = cube.dims();
        if dims.bands != self.bands {
            return Err(HsiError::DimensionMismatch {
                expected: self.bands,
                actual: dims.bands,
            });
        }
        let bip = cube.to_interleave(Interleave::Bip);
        let data = bip.data();
        let mut labels = vec![0u16; dims.pixels()];
        let unmix_ns = AtomicU64::new(0);
        let argmax_ns = AtomicU64::new(0);
        labels
            .par_chunks_mut(BATCH_TILE_PIXELS)
            .zip(data.par_chunks(BATCH_TILE_PIXELS * self.bands))
            .for_each(|(lab_tile, px_tile)| {
                TILE_SCRATCH.with(|scratch| {
                    let mut scratch = scratch.borrow_mut();
                    let ab = &mut scratch.0;
                    ab.resize(lab_tile.len() * self.count, 0.0);
                    let span = trace::span("tail.batch", "unmix");
                    let t = Instant::now();
                    self.abundances_tile(px_tile, constraint, ab);
                    unmix_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    drop(span);
                    let span = trace::span("tail.batch", "argmax");
                    let t = Instant::now();
                    for (row, lab) in ab.chunks_exact(self.count).zip(lab_tile.iter_mut()) {
                        *lab = argmax(row) as u16;
                    }
                    argmax_ns.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    drop(span);
                });
            });
        let timings = BatchTimings {
            unmix_s: unmix_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            argmax_s: argmax_ns.load(Ordering::Relaxed) as f64 * 1e-9,
        };
        Ok((labels, timings))
    }

    /// Batched squared reconstruction residuals under unconstrained LS:
    /// `out[p] = ‖pixel_p − E·α_p‖²`, matching
    /// [`LinearMixtureModel::residual_norm2`] per pixel (up to f64 rounding).
    ///
    /// Expanded as `‖p‖² − 2·(Eᵀp)ᵀα + αᵀ(EᵀE)α` so the whole tile needs two
    /// small GEMMs (`Eᵀ` and `G̃⁻¹`) plus c-length dot products — no
    /// band-space reconstruction. The expansion can go slightly negative
    /// through cancellation on fully-explained pixels, so it is clamped at
    /// zero.
    pub fn residuals_batch(&self, pixels: &[f32], out: &mut [f64]) -> Result<()> {
        if !pixels.len().is_multiple_of(self.bands) {
            return Err(HsiError::DimensionMismatch {
                expected: self.bands,
                actual: pixels.len(),
            });
        }
        let n = pixels.len() / self.bands;
        if out.len() != n {
            return Err(HsiError::DimensionMismatch {
                expected: n,
                actual: out.len(),
            });
        }
        out.par_chunks_mut(BATCH_TILE_PIXELS)
            .zip(pixels.par_chunks(BATCH_TILE_PIXELS * self.bands))
            .for_each(|(res_tile, px_tile)| {
                TILE_SCRATCH.with(|scratch| {
                    let mut scratch = scratch.borrow_mut();
                    let (etb, a) = &mut *scratch;
                    etb.resize(res_tile.len() * self.count, 0.0);
                    a.resize(res_tile.len() * self.count, 0.0);
                    linalg::apply_operator_f32(&self.et, px_tile, etb)
                        .expect("tile shapes validated by caller");
                    linalg::apply_operator_f64(&self.gram_inv, etb, a)
                        .expect("tile shapes validated by caller");
                    for (p, res) in res_tile.iter_mut().enumerate() {
                        let px = &px_tile[p * self.bands..(p + 1) * self.bands];
                        let eb = &etb[p * self.count..(p + 1) * self.count];
                        let ar = &a[p * self.count..(p + 1) * self.count];
                        let mut pp = 0.0f64;
                        for &v in px {
                            let v = v as f64;
                            pp += v * v;
                        }
                        let mut quad = 0.0f64;
                        for (i, &ai) in ar.iter().enumerate() {
                            quad += ai * linalg::dot_f64(self.gram.row(i), ar);
                        }
                        *res = (pp - 2.0 * linalg::dot_f64(eb, ar) + quad).max(0.0);
                    }
                });
            });
        Ok(())
    }
}

/// Clamp negative abundances to zero and renormalize to sum one.
pub fn clamp_renormalize(x: &mut [f64]) {
    let mut sum = 0.0;
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        x.iter_mut().for_each(|v| *v *= inv);
    } else {
        let uniform = 1.0 / x.len() as f64;
        x.iter_mut().for_each(|v| *v = uniform);
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(x: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::{Cube, CubeDims, Interleave};

    fn simple_model() -> LinearMixtureModel {
        let e0 = [1.0f32, 0.0, 0.0, 0.5];
        let e1 = [0.0f32, 1.0, 0.0, 0.5];
        let e2 = [0.0f32, 0.0, 1.0, 0.5];
        LinearMixtureModel::new(&[&e0, &e1, &e2]).unwrap()
    }

    #[test]
    fn model_shape_accessors() {
        let m = simple_model();
        assert_eq!(m.bands(), 4);
        assert_eq!(m.count(), 3);
        assert_eq!(m.endmember_matrix().shape(), (4, 3));
    }

    #[test]
    fn ridge_handles_dependent_endmembers() {
        // Collinear endmembers (the same material selected twice) must not
        // crash: the ridge makes the system solvable with finite abundances.
        let e0 = [1.0f32, 2.0, 3.0];
        let e1 = [2.0f32, 4.0, 6.0];
        let m = LinearMixtureModel::new(&[&e0, &e1]).unwrap();
        let a = m
            .abundances(&[1.5, 3.0, 4.5], AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        assert!(a.iter().all(|v| v.is_finite()));
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_more_endmembers_than_bands() {
        let e = [1.0f32, 0.0];
        let e2 = [0.0f32, 1.0];
        let e3 = [1.0f32, 1.0];
        assert!(matches!(
            LinearMixtureModel::new(&[&e[..], &e2[..], &e3[..]]),
            Err(HsiError::InvalidClassCount { .. })
        ));
    }

    #[test]
    fn unconstrained_recovers_exact_mixture() {
        let m = simple_model();
        // pixel = 0.2 e0 + 0.3 e1 + 0.5 e2
        let px = [0.2f32, 0.3, 0.5, 0.5];
        let a = m.abundances(&px, AbundanceConstraint::None).unwrap();
        // Tolerance reflects the stabilising ridge bias (RIDGE_SCALE).
        assert!((a[0] - 0.2).abs() < 1e-3, "{a:?}");
        assert!((a[1] - 0.3).abs() < 1e-3);
        assert!((a[2] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn sum_to_one_enforces_constraint() {
        let m = simple_model();
        // Pixel scaled by 3: unconstrained abundances sum to 3, SCLS to 1.
        let px = [0.6f32, 0.9, 1.5, 1.5];
        let unc = m.abundances(&px, AbundanceConstraint::None).unwrap();
        assert!((unc.iter().sum::<f64>() - 3.0).abs() < 1e-2);
        let scls = m.abundances(&px, AbundanceConstraint::SumToOne).unwrap();
        assert!((scls.iter().sum::<f64>() - 1.0).abs() < 1e-8, "{scls:?}");
        // Relative ordering preserved.
        assert!(scls[2] > scls[1] && scls[1] > scls[0]);
    }

    #[test]
    fn nonneg_variant_produces_probability_vector() {
        let m = simple_model();
        // A pixel outside the simplex can yield negative SCLS abundances.
        let px = [2.0f32, -0.5, 0.1, 0.2];
        let a = m
            .abundances(&px, AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        assert!(a.iter().all(|&v| v >= 0.0), "{a:?}");
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn pixel_length_checked() {
        let m = simple_model();
        assert!(m
            .abundances(&[1.0, 2.0], AbundanceConstraint::None)
            .is_err());
    }

    #[test]
    fn classify_pixel_picks_dominant_endmember() {
        let m = simple_model();
        for (i, px) in [
            [0.9f32, 0.05, 0.05, 0.5],
            [0.05f32, 0.9, 0.05, 0.5],
            [0.05f32, 0.05, 0.9, 0.5],
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(
                m.classify_pixel(px, AbundanceConstraint::SumToOneNonNeg)
                    .unwrap(),
                i
            );
        }
    }

    #[test]
    fn classify_cube_labels_every_pixel() {
        let m = simple_model();
        let cube = Cube::from_fn(CubeDims::new(2, 2, 4), Interleave::Bip, |x, y, b| {
            // (0,0)->e0, (1,0)->e1, (0,1)->e2, (1,1)->e0-ish
            let e: usize = match (x, y) {
                (0, 0) => 0,
                (1, 0) => 1,
                (0, 1) => 2,
                _ => 0,
            };
            if b == e {
                1.0
            } else if b == 3 {
                0.5
            } else {
                0.0
            }
        })
        .unwrap();
        let labels = m
            .classify_cube(&cube, AbundanceConstraint::SumToOneNonNeg)
            .unwrap();
        assert_eq!(labels, vec![0, 1, 2, 0]);
    }

    #[test]
    fn reconstruct_round_trips() {
        let m = simple_model();
        let recon = m.reconstruct(&[0.2, 0.3, 0.5]).unwrap();
        assert!((recon[0] - 0.2).abs() < 1e-9);
        assert!((recon[3] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clamp_renormalize_edge_cases() {
        let mut x = vec![-1.0, 2.0, 2.0];
        clamp_renormalize(&mut x);
        assert_eq!(x, vec![0.0, 0.5, 0.5]);
        let mut zeros = vec![-1.0, -2.0];
        clamp_renormalize(&mut zeros);
        assert_eq!(zeros, vec![0.5, 0.5]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    const ALL_CONSTRAINTS: [AbundanceConstraint; 3] = [
        AbundanceConstraint::None,
        AbundanceConstraint::SumToOne,
        AbundanceConstraint::SumToOneNonNeg,
    ];

    // A deterministic pseudo-random pixel stream (xorshift), spanning
    // several tiles so partial-tile handling is exercised.
    fn synthetic_pixels(n: usize, bands: usize) -> Vec<f32> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut out = Vec::with_capacity(n * bands);
        for _ in 0..n * bands {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Values in [-0.5, 1.5): includes negatives to exercise clamping.
            out.push((state >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 0.5);
        }
        out
    }

    #[test]
    fn batched_abundances_match_oracle() {
        let m = simple_model();
        let pixels = synthetic_pixels(BATCH_TILE_PIXELS + 37, m.bands());
        for constraint in ALL_CONSTRAINTS {
            let mut batch = vec![0.0f64; (BATCH_TILE_PIXELS + 37) * m.count()];
            m.abundances_batch(&pixels, constraint, &mut batch).unwrap();
            for (p, px) in pixels.chunks_exact(m.bands()).enumerate() {
                let oracle = m.abundances(px, constraint).unwrap();
                for (b, o) in batch[p * m.count()..(p + 1) * m.count()]
                    .iter()
                    .zip(&oracle)
                {
                    assert!(
                        (b - o).abs() <= 1e-9 * (1.0 + o.abs()),
                        "constraint {constraint:?} pixel {p}: batch {b} oracle {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_lengths_validated() {
        let m = simple_model();
        let pixels = vec![0.5f32; 2 * m.bands()];
        let mut out = vec![0.0f64; 2 * m.count()];
        assert!(m
            .abundances_batch(&pixels[..5], AbundanceConstraint::None, &mut out)
            .is_err());
        assert!(m
            .abundances_batch(&pixels, AbundanceConstraint::None, &mut out[..3])
            .is_err());
        let mut res = vec![0.0f64; 2];
        assert!(m.residuals_batch(&pixels[..5], &mut res).is_err());
        assert!(m.residuals_batch(&pixels, &mut res[..1]).is_err());
    }

    #[test]
    fn classify_cube_batched_matches_per_pixel_oracle() {
        let m = simple_model();
        // 407 pixels: one full 256-pixel tile plus a 151-pixel remainder.
        let dims = CubeDims::new(37, 11, 4);
        let data = synthetic_pixels(dims.pixels(), dims.bands);
        let cube = Cube::from_vec(dims, Interleave::Bip, data).unwrap();
        for constraint in ALL_CONSTRAINTS {
            let oracle = m.classify_cube(&cube, constraint).unwrap();
            let (batched, timings) = m.classify_cube_batched_timed(&cube, constraint).unwrap();
            assert_eq!(batched, oracle, "constraint {constraint:?}");
            assert!(timings.unmix_s >= 0.0 && timings.argmax_s >= 0.0);
        }
        // Non-BIP input goes through the same conversion as the oracle.
        let bsq = cube.to_interleave(Interleave::Bsq).into_owned();
        assert_eq!(
            m.classify_cube_batched(&bsq, AbundanceConstraint::SumToOneNonNeg)
                .unwrap(),
            m.classify_cube(&cube, AbundanceConstraint::SumToOneNonNeg)
                .unwrap()
        );
        let wrong_bands = Cube::zeros(CubeDims::new(2, 2, 3), Interleave::Bip).unwrap();
        assert!(m
            .classify_cube_batched(&wrong_bands, AbundanceConstraint::None)
            .is_err());
    }

    #[test]
    fn batched_results_invariant_under_thread_count() {
        let m = simple_model();
        let pixels = synthetic_pixels(3 * BATCH_TILE_PIXELS + 5, m.bands());
        let mut reference = vec![0.0f64; (3 * BATCH_TILE_PIXELS + 5) * m.count()];
        rayon::with_threads(1, || {
            m.abundances_batch(&pixels, AbundanceConstraint::SumToOneNonNeg, &mut reference)
                .unwrap();
        });
        for threads in [2, 3, 8] {
            let mut got = vec![0.0f64; reference.len()];
            rayon::with_threads(threads, || {
                m.abundances_batch(&pixels, AbundanceConstraint::SumToOneNonNeg, &mut got)
                    .unwrap();
            });
            // Bit-identical, not merely close: tile boundaries and summation
            // order do not depend on the worker count.
            assert!(
                reference.iter().zip(&got).all(|(a, b)| a == b),
                "abundances differ at {threads} threads"
            );
        }
    }

    #[test]
    fn residuals_batch_matches_residual_norm2() {
        let m = simple_model();
        let n = BATCH_TILE_PIXELS + 13;
        let pixels = synthetic_pixels(n, m.bands());
        let mut batch = vec![0.0f64; n];
        m.residuals_batch(&pixels, &mut batch).unwrap();
        for (p, px) in pixels.chunks_exact(m.bands()).enumerate() {
            let oracle = m.residual_norm2(px).unwrap();
            let scale: f64 = px.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() + 1.0;
            assert!(
                (batch[p] - oracle).abs() <= 1e-9 * scale,
                "pixel {p}: batch {} oracle {oracle}",
                batch[p]
            );
            assert!(batch[p] >= 0.0);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        // The batched operator path must agree with the per-pixel
        // factorization oracle for every constraint on random models and
        // random (possibly negative) pixels.
        #[test]
        fn prop_batch_agrees_with_oracle(seed in 0u64..1u64 << 48) {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 40) as f64 / (1u64 << 24) as f64
            };
            let bands = 4 + (next() * 20.0) as usize; // 4..24
            let count = 2 + (next() * 3.0) as usize; // 2..5 (≤ bands)
            let npix = 1 + (next() * 40.0) as usize;
            let spectra: Vec<Vec<f32>> = (0..count)
                .map(|_| (0..bands).map(|_| 0.05 + next() as f32 * 9.95).collect())
                .collect();
            let refs: Vec<&[f32]> = spectra.iter().map(|s| s.as_slice()).collect();
            let model = LinearMixtureModel::new(&refs).unwrap();
            let pixels: Vec<f32> = (0..npix * bands)
                .map(|_| next() as f32 * 11.0 - 1.0)
                .collect();
            for constraint in ALL_CONSTRAINTS {
                let mut batch = vec![0.0f64; npix * count];
                model.abundances_batch(&pixels, constraint, &mut batch).unwrap();
                for (p, px) in pixels.chunks_exact(bands).enumerate() {
                    let oracle = model.abundances(px, constraint).unwrap();
                    for (b, o) in batch[p * count..(p + 1) * count].iter().zip(&oracle) {
                        proptest::prop_assert!(
                            (b - o).abs() <= 1e-9 * (1.0 + o.abs()),
                            "constraint {:?}: batch {} vs oracle {}",
                            constraint,
                            b,
                            o
                        );
                    }
                }
            }
        }
    }
}
