!!FP1.0 fix-use-before-def
# R2 is never written; the ADD reads garbage on real hardware.
TEX R0, T0, tex0
ADD R1, R0, R2
MOV OC, R1
