//! Error type shared across the hyperspectral substrate.

use std::fmt;

/// Errors produced by cube construction, solvers and classification.
#[derive(Debug, Clone, PartialEq)]
pub enum HsiError {
    /// The supplied buffer length does not match `width * height * bands`.
    DimensionMismatch {
        /// Expected element count.
        expected: usize,
        /// Actual element count supplied.
        actual: usize,
    },
    /// A requested spatial/spectral region falls outside the cube.
    OutOfBounds {
        /// Human-readable description of the offending access.
        what: String,
    },
    /// A cube dimension was zero.
    EmptyDimension {
        /// Which dimension (e.g. "width").
        which: &'static str,
    },
    /// A linear system was singular or not positive definite.
    SingularMatrix,
    /// Operands of a binary operation had incompatible shapes.
    ShapeMismatch {
        /// Left operand shape `(rows, cols)`.
        left: (usize, usize),
        /// Right operand shape `(rows, cols)`.
        right: (usize, usize),
    },
    /// Classification was requested with an invalid class count.
    InvalidClassCount {
        /// Requested number of classes.
        requested: usize,
        /// Number of pixels available.
        available: usize,
    },
    /// A structuring element had an even side or zero size.
    InvalidStructuringElement {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for HsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HsiError::DimensionMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match cube dimensions (expected {expected})"
            ),
            HsiError::OutOfBounds { what } => write!(f, "out of bounds: {what}"),
            HsiError::EmptyDimension { which } => write!(f, "cube dimension `{which}` is zero"),
            HsiError::SingularMatrix => write!(f, "matrix is singular or not positive definite"),
            HsiError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            HsiError::InvalidClassCount {
                requested,
                available,
            } => write!(
                f,
                "invalid class count {requested} (only {available} pixels available)"
            ),
            HsiError::InvalidStructuringElement { reason } => {
                write!(f, "invalid structuring element: {reason}")
            }
        }
    }
}

impl std::error::Error for HsiError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, HsiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HsiError::DimensionMismatch {
            expected: 10,
            actual: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));

        let e = HsiError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));

        let e = HsiError::EmptyDimension { which: "width" };
        assert!(e.to_string().contains("width"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<HsiError>();
    }
}
