//! Onboard-processing scenario: a scene larger than the GPU's video memory
//! is processed in chunks of entire lines (the paper's Section 3.2 chunking),
//! and the result is proven identical to the unchunked run.
//!
//! The paper motivates GPUs for *onboard* remote-sensing payloads, where the
//! full scene streams through a small device. This example shrinks the
//! device's memory to force aggressive chunking.
//!
//! ```text
//! cargo run --release --example onboard_chunked
//! ```

use hyperspec::amc::pipeline::{GpuAmc, KernelMode};
use hyperspec::gpu::timing;
use hyperspec::prelude::*;

fn main() {
    // A long thin scene, like a flight line: 96 samples x 200 lines.
    let dims = CubeDims::new(96, 200, 12);
    let mut state = 0xC0FFEEu64 | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / 16_777_216.0
    };
    let cube =
        Cube::from_fn(dims, Interleave::Bip, |_, _, _| 30.0 + 150.0 * next()).expect("valid dims");
    println!(
        "flight line: {}x{} pixels, {} bands ({:.1} MiB as f32 band planes)",
        dims.width,
        dims.height,
        dims.bands,
        (dims.samples() * 4) as f64 / (1024.0 * 1024.0)
    );

    // A deliberately tiny device: shrink video memory so the whole scene
    // cannot be resident and chunking must kick in.
    let mut small = GpuProfile::fx5950_ultra();
    small.video_memory_mib = 2;
    let amc = GpuAmc::new(
        StructuringElement::square(3).expect("3x3"),
        KernelMode::Closure,
    );
    let chunking = amc
        .plan_chunking(&Gpu::new(small.clone()), &cube)
        .expect("one line must fit even the 2 MiB device");
    println!(
        "planned chunking: {} body lines per chunk, halo {} (2x SE radius)",
        chunking.lines_per_chunk, chunking.halo
    );

    let mut small_gpu = Gpu::new(small);
    let chunked = amc.run(&mut small_gpu, &cube).expect("chunked run");
    println!(
        "chunked run: {} chunks, {} passes, {} KiB uploaded",
        chunked.chunks,
        chunked.stats.passes,
        chunked.stats.bytes_uploaded / 1024
    );
    let st = &chunked.stages;
    println!(
        "per-stage passes: normalize {}, distance {}, minmax {}, mei {}; \
         textures allocated {} (pool reuses {})",
        st.normalize.passes,
        st.distance.passes,
        st.minmax.passes,
        st.mei.passes,
        small_gpu.texture_allocs(),
        small_gpu.pool_hits()
    );

    // Reference: the same scene on a full-memory 7800GTX, unchunked.
    let mut big_gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    let whole = amc.run(&mut big_gpu, &cube).expect("unchunked run");
    assert_eq!(whole.chunks, 1, "full-memory device needs no chunking");
    assert_eq!(
        chunked.mei.scores, whole.mei.scores,
        "chunked output is exactly chunk-free"
    );
    assert_eq!(chunked.min_index, whole.min_index);
    assert_eq!(chunked.max_index, whole.max_index);
    println!("chunked MEI stream identical to the unchunked reference");

    // Cost of chunking: halo recomputation + extra transfers.
    let overhead = chunked.stats.instructions as f64 / whole.stats.instructions as f64;
    println!(
        "chunking overhead: {:.1}% extra shader work, {:.1}% extra upload bytes",
        (overhead - 1.0) * 100.0,
        (chunked.stats.bytes_uploaded as f64 / whole.stats.bytes_uploaded as f64 - 1.0) * 100.0
    );
    let t_small = timing::gpu_time(&chunked.stats, &small_gpu.profile().clone());
    let t_big = timing::gpu_time(&whole.stats, &big_gpu.profile().clone());
    println!(
        "modeled: constrained FX5950 {:.2} ms vs unconstrained 7800GTX {:.2} ms (incl. transfers)",
        t_small.total_ms(),
        t_big.total_ms()
    );
    // The executor pre-packs chunk N+1 while chunk N shades, so uploads can
    // hide behind kernel time: the overlapped transfer model prices that.
    println!(
        "with double-buffered uploads: FX5950 {:.2} ms (saves {:.2} ms of upload latency)",
        t_small.total_ms_mode(timing::TransferMode::Overlapped),
        t_small.overlap_saving_s() * 1e3
    );
}
