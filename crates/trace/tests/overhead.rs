//! Overhead guard: with tracing disabled, the span primitives must be a
//! true no-op. One million enter/exit pairs must finish far inside a
//! generous wall-clock bound even in debug builds.
//!
//! This lives in its own integration binary so it fully controls the
//! process-global enable flag (test binaries run sequentially).

#[test]
fn disabled_spans_are_effectively_free() {
    trace::disable();
    let start = std::time::Instant::now();
    for i in 0..1_000_000u64 {
        let s = trace::span("hot", "iter");
        std::hint::black_box(i);
        drop(s);
    }
    let elapsed = start.elapsed();
    assert!(
        trace::drain_events().is_empty(),
        "disabled tracing must record nothing"
    );
    // Generous: a true no-op takes ~a few ms even unoptimised; anything
    // near this bound means the disabled path started allocating/locking.
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "1M disabled span enter/exits took {elapsed:?}"
    );
}
