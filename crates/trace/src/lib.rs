//! Zero-dependency tracing for the AMC pipeline.
//!
//! Provides three recording primitives with thread/stage attribution:
//!
//! * **Spans** ([`span`] / [`span_with`]) — a begin/end pair bracketing a
//!   region of work. The returned guard records the end event on drop, so
//!   spans nest correctly per thread.
//! * **Instants** ([`instant`]) — a point event (pool hit, eviction, …).
//! * **Counter samples** ([`counter`]) — a named value sampled over time
//!   (bytes resident, queue depth, …), rendered as a track in the viewer.
//!
//! Events are recorded **lock-free per thread** into a thread-local buffer;
//! buffers flush into the global sink when a thread exits (scoped worker
//! threads flush at scope join) or on [`flush_thread`]/export. When tracing
//! is disabled — the default — every primitive is a single relaxed atomic
//! load and an early return: no clock read, no allocation, no lock.
//!
//! Enablement: set the `GPU_SIM_TRACE` environment variable (any value
//! other than `0`/empty), or call [`enable`] programmatically. Tracing only
//! observes timing; traced and untraced runs compute bit-identical results.
//!
//! The captured timeline exports as Chrome trace-event JSON
//! ([`chrome_trace_json`] / [`write_chrome_trace`]) loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The sibling [`metrics`] registry (monotonic counters + log₂-bucket
//! latency histograms) is always on: it records at pass/stage granularity
//! where a mutex lock is negligible, independent of whether the timeline
//! recorder is enabled.
//!
//! The [`analyze`] module turns captured streams ([`snapshot_events`] or an
//! imported trace file) into utilization, overlap, critical-path, and fleet
//! load-balance reports.
//!
//! Enabling tracing also installs a **panic-hook flight recorder**: if the
//! process panics while the recorder is on, everything captured so far is
//! dumped to `out/trace-panic.json` (override the path with the
//! `GPU_SIM_TRACE_PANIC` environment variable; set it to `0` to disable),
//! so a failed CI run still ships a trace artifact.

#![warn(missing_docs)]

pub mod analyze;
pub mod metrics;

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// 0 = not yet initialised from the environment, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is the timeline recorder on? One relaxed atomic load on the fast path;
/// the first call reads `GPU_SIM_TRACE` from the environment.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("GPU_SIM_TRACE")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    let target = if on { STATE_ON } else { STATE_OFF };
    // A racing programmatic enable()/disable() wins over the env default.
    let _ = STATE.compare_exchange(STATE_UNINIT, target, Ordering::Relaxed, Ordering::Relaxed);
    let now_on = STATE.load(Ordering::Relaxed) == STATE_ON;
    if now_on {
        install_flight_recorder();
    }
    now_on
}

/// Turn the timeline recorder on (overrides `GPU_SIM_TRACE`). Also installs
/// the panic-hook flight recorder (once per process).
pub fn enable() {
    STATE.store(STATE_ON, Ordering::Relaxed);
    install_flight_recorder();
}

/// Install a panic hook that dumps the captured timeline to
/// `out/trace-panic.json` (or `$GPU_SIM_TRACE_PANIC`) when the process
/// panics with the recorder enabled. Installed once; chains the previous
/// hook. Best effort by design: only the panicking thread's buffer is
/// flushed eagerly, and write errors are swallowed — a panic path must
/// never panic again.
fn install_flight_recorder() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if !enabled() {
                return;
            }
            let path = std::env::var("GPU_SIM_TRACE_PANIC")
                .unwrap_or_else(|_| "out/trace-panic.json".to_owned());
            if path.is_empty() || path == "0" {
                return;
            }
            let _ = std::panic::catch_unwind(|| {
                let _ = write_chrome_trace(std::path::Path::new(&path));
            });
        }));
    });
}

/// Turn the timeline recorder off (overrides `GPU_SIM_TRACE`).
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first trace event of the process. Monotonic across
/// threads ([`Instant`] is globally monotonic), so per-thread event streams
/// carry non-decreasing timestamps.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Trace-event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`B`).
    Begin,
    /// Span end (`E`).
    End,
    /// Instant event (`i`, thread scoped).
    Instant,
    /// Counter sample (`C`).
    Counter,
}

/// A typed event-argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Stable thread id (see [`set_thread_name`]).
    pub tid: u64,
    /// Event phase.
    pub phase: Phase,
    /// Category (dot-separated taxonomy, e.g. `pipeline.stage`).
    pub cat: &'static str,
    /// Event name (span name, counter name, …).
    pub name: String,
    /// Event arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

// ---------------------------------------------------------------------------
// Sink + per-thread buffers
// ---------------------------------------------------------------------------

struct Sink {
    events: Vec<Event>,
    /// `(tid, name)` in registration order. Names act as stable identities:
    /// a thread registering an already-known name reuses its tid, so
    /// successive short-lived workers with the same role share one timeline
    /// row in the viewer.
    threads: Vec<(u64, String)>,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    events: Vec::new(),
    threads: Vec::new(),
});

/// Lock the sink, tolerating poison: the sink's state is append-only and
/// stays consistent even if a holder panicked, and the panic-hook flight
/// recorder must be able to export after an arbitrary panic.
fn sink_lock() -> std::sync::MutexGuard<'static, Sink> {
    SINK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct LocalBuf {
    tid: u64,
    buf: Vec<Event>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        sink_lock().events.append(&mut self.buf);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

/// Register the current thread in the sink, reusing the tid of an existing
/// name or allocating a fresh one.
fn register_thread(name: Option<&str>) -> LocalBuf {
    let mut sink = sink_lock();
    if let Some(name) = name {
        if let Some(&(tid, _)) = sink.threads.iter().find(|(_, n)| n == name) {
            return LocalBuf {
                tid,
                buf: Vec::new(),
            };
        }
    }
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let name = match name {
        Some(n) => n.to_owned(),
        None => std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{tid}")),
    };
    sink.threads.push((tid, name));
    LocalBuf {
        tid,
        buf: Vec::new(),
    }
}

/// Name the current thread's timeline row. Threads sharing a name share a
/// tid (their non-overlapping lifetimes render as one row). Call before
/// recording; events already buffered on this thread keep their prior tid.
pub fn set_thread_name(name: &str) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        match l.as_mut() {
            Some(lb) => {
                lb.flush();
                let fresh = register_thread(Some(name));
                lb.tid = fresh.tid;
            }
            None => *l = Some(register_thread(Some(name))),
        }
    });
}

fn record(phase: Phase, cat: &'static str, name: String, args: Vec<(&'static str, ArgValue)>) {
    let ts_ns = now_ns();
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let lb = l.get_or_insert_with(|| register_thread(None));
        lb.buf.push(Event {
            ts_ns,
            tid: lb.tid,
            phase,
            cat,
            name,
            args,
        });
    });
}

/// Move the current thread's buffered events into the global sink. Called
/// automatically at thread exit and before every export.
pub fn flush_thread() {
    LOCAL.with(|l| {
        if let Some(lb) = l.borrow_mut().as_mut() {
            lb.flush();
        }
    });
}

/// Discard all captured events (current thread's buffer included). Thread
/// registrations — and thus tids — survive, so successive captures in one
/// process stay comparable.
pub fn reset() {
    LOCAL.with(|l| {
        if let Some(lb) = l.borrow_mut().as_mut() {
            lb.buf.clear();
        }
    });
    sink_lock().events.clear();
}

/// Flush the current thread and take every captured event out of the sink,
/// in per-thread record order. Mainly for tests and custom exporters.
pub fn drain_events() -> Vec<Event> {
    flush_thread();
    std::mem::take(&mut sink_lock().events)
}

/// A non-draining copy of the sink: every captured event (per-thread record
/// order) plus the `(tid, name)` thread registrations. This is the input to
/// [`analyze::analyze`]; unlike [`drain_events`] it leaves the sink intact,
/// so a subsequent [`chrome_trace_json`] export still sees the full capture.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Captured events, in per-thread record order.
    pub events: Vec<Event>,
    /// `(tid, name)` thread registrations, in registration order.
    pub threads: Vec<(u64, String)>,
}

/// Flush the current thread and clone the sink into a [`TraceSnapshot`].
pub fn snapshot_events() -> TraceSnapshot {
    flush_thread();
    let sink = sink_lock();
    TraceSnapshot {
        events: sink.events.clone(),
        threads: sink.threads.clone(),
    }
}

// ---------------------------------------------------------------------------
// Recording primitives
// ---------------------------------------------------------------------------

/// Guard for an open span: records the matching end event when dropped.
/// Inert (and free) when tracing was disabled at creation.
#[must_use = "a span measures the region until the guard drops"]
pub struct Span {
    /// `Some(name)` while the span is live and must emit an end event.
    live: Option<String>,
    cat: &'static str,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.live.take() {
            record(Phase::End, self.cat, name, Vec::new());
        }
    }
}

/// Open a span. A true no-op (no clock read, no allocation) when disabled.
#[inline]
pub fn span(cat: &'static str, name: &str) -> Span {
    span_with(cat, name, &[])
}

/// Open a span with arguments attached to the begin event.
#[inline]
pub fn span_with(cat: &'static str, name: &str, args: &[(&'static str, ArgValue)]) -> Span {
    if !enabled() {
        return Span { live: None, cat };
    }
    record(Phase::Begin, cat, name.to_owned(), args.to_vec());
    Span {
        live: Some(name.to_owned()),
        cat,
    }
}

/// Record an instant event (a point in time, no duration).
#[inline]
pub fn instant(cat: &'static str, name: &str, args: &[(&'static str, ArgValue)]) {
    if !enabled() {
        return;
    }
    record(Phase::Instant, cat, name.to_owned(), args.to_vec());
}

/// Record a counter sample: the viewer renders successive samples of one
/// name as a value-over-time track.
#[inline]
pub fn counter(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    record(
        Phase::Counter,
        "counter",
        name.to_owned(),
        vec![("value", ArgValue::F64(value))],
    );
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// The pid every event carries (one simulated process).
pub const TRACE_PID: u64 = 1;

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => {
            out.push('"');
            json_escape(s, out);
            out.push('"');
        }
    }
}

fn write_event(out: &mut String, ev: &Event) {
    let ph = match ev.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
        Phase::Counter => "C",
    };
    out.push_str("{\"name\":\"");
    json_escape(&ev.name, out);
    out.push_str("\",\"cat\":\"");
    json_escape(ev.cat, out);
    let _ = write!(
        out,
        "\",\"ph\":\"{ph}\",\"pid\":{TRACE_PID},\"tid\":{},\"ts\":{:.3}",
        ev.tid,
        ev.ts_ns as f64 / 1e3
    );
    if ev.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":");
            write_arg_value(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Render everything captured so far as a Chrome trace-event JSON document
/// (metadata events naming the process and each thread, then all events sorted
/// by timestamp). Does not drain the sink; pair with [`reset`] if needed.
pub fn chrome_trace_json() -> String {
    flush_thread();
    let (mut events, threads) = {
        let sink = sink_lock();
        (sink.events.clone(), sink.threads.clone())
    };
    // Stable sort: per-thread streams are recorded in non-decreasing ts
    // order, so equal timestamps keep their begin-before-end ordering.
    events.sort_by_key(|e| e.ts_ns);
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":0,\
         \"args\":{{\"name\":\"hyperspec\"}}}}"
    );
    for (tid, name) in &threads {
        out.push_str(",\n");
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{tid},\
             \"args\":{{\"name\":\""
        );
        json_escape(name, &mut out);
        out.push_str("\"}}");
    }
    for ev in &events {
        out.push_str(",\n");
        write_event(&mut out, ev);
    }
    out.push_str("\n],\n\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Write [`chrome_trace_json`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit tests toggle the global recorder; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_primitives_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        disable();
        reset();
        {
            let _s = span("cat", "quiet");
            instant("cat", "nothing", &[]);
            counter("c", 1.0);
        }
        assert!(drain_events().is_empty());
    }

    #[test]
    fn spans_nest_and_pair_per_thread() {
        let _g = TEST_LOCK.lock().unwrap();
        enable();
        reset();
        {
            let _outer = span_with("t", "outer", &[("k", ArgValue::U64(7))]);
            {
                let _inner = span("t", "inner");
            }
            instant("t", "tick", &[]);
        }
        counter("gauge", 2.5);
        disable();
        let evs = drain_events();
        let kinds: Vec<(Phase, &str)> = evs.iter().map(|e| (e.phase, e.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (Phase::Begin, "outer"),
                (Phase::Begin, "inner"),
                (Phase::End, "inner"),
                (Phase::Instant, "tick"),
                (Phase::End, "outer"),
                (Phase::Counter, "gauge"),
            ]
        );
        // Timestamps are non-decreasing in record order.
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // All on one (registered) thread.
        assert!(evs.iter().all(|e| e.tid == evs[0].tid));
    }

    #[test]
    fn named_threads_share_a_tid_across_lifetimes() {
        let _g = TEST_LOCK.lock().unwrap();
        enable();
        reset();
        let tid_of = |name: &'static str| {
            std::thread::spawn(move || {
                set_thread_name(name);
                let _s = span("t", "work");
                drop(_s);
                flush_thread();
            })
            .join()
            .unwrap();
        };
        tid_of("role-a");
        tid_of("role-a");
        tid_of("role-b");
        disable();
        let evs = drain_events();
        let tids_a: Vec<u64> = evs
            .iter()
            .filter(|e| e.name == "work")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids_a.len(), 6, "three workers, two events each");
        assert_eq!(tids_a[0], tids_a[2], "same name reuses the tid");
        assert_ne!(tids_a[0], tids_a[4], "different name gets a fresh tid");
    }

    #[test]
    fn chrome_export_is_sorted_and_metadata_complete() {
        let _g = TEST_LOCK.lock().unwrap();
        enable();
        reset();
        {
            let _a = span("t", "a");
            let _b = span("t", "b");
        }
        let json = chrome_trace_json();
        disable();
        reset();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        // Braces balance (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // ts values are non-decreasing over the emitted B/E lines.
        let ts: Vec<f64> = json
            .lines()
            .filter(|l| l.contains("\"ph\":\"B\"") || l.contains("\"ph\":\"E\""))
            .map(|l| {
                let i = l.find("\"ts\":").unwrap() + 5;
                l[i..].split([',', '}']).next().unwrap().parse().unwrap()
            })
            .collect();
        assert_eq!(ts.len(), 4);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
