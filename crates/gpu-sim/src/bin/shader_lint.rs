//! `shader_lint` — standalone verifier/linter for fragment programs.
//!
//! Assembles one or more `.fp` source files (or stdin when no file is
//! given), runs the static verifier, and prints rustc-style diagnostics
//! with the offending source line. Exit status: 0 when clean, 1 when any
//! error (or, with `--deny-warnings`, any warning) is reported, 2 on
//! usage errors.
//!
//! By default programs are checked in *lint mode*: every sampler,
//! texture-coordinate set and constant is assumed bound. Passing any of
//! `--samplers`, `--texcoords`, `--consts` or `--outputs-read` switches
//! to pass mode with the given bindings, mirroring what `Gpu::run_pass`
//! enforces at draw time.

use std::io::Read;
use std::process::ExitCode;

use gpu_sim::asm::assemble;
use gpu_sim::isa::{NUM_CONSTS, NUM_SAMPLERS, NUM_TEXCOORDS};
use gpu_sim::verify::{verify, Diagnostic, PassBindings, Severity};
use gpu_sim::GpuProfile;

const USAGE: &str = "\
usage: shader_lint [options] [file.fp ...]

Reads fragment-program assembly from the given files (or stdin when no
file is supplied), verifies each program, and prints diagnostics.

options:
  --profile <fx5950|7800gtx>   device profile to check limits against
                               (default: fx5950)
  --samplers <n>               number of bound texture samplers
  --texcoords <n>              number of bound texture-coordinate sets
  --consts <i,j,...>           comma-separated pass-bound constant indices
                               (use an empty string for none)
  --outputs-read <o0,o2,...>   outputs the pass reads back (default: o0)
  --deny-warnings              exit nonzero on warnings too
  --opt                        report what the optimizer eliminates
                               (per-pass counters, before/after counts)
  --emit                       print the optimized program's disassembly
  -h, --help                   show this help
";

struct Options {
    profile: GpuProfile,
    bindings: Option<PassBindings>,
    deny_warnings: bool,
    opt: bool,
    emit: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut profile = GpuProfile::fx5950_ultra();
    let mut samplers: Option<usize> = None;
    let mut texcoords: Option<usize> = None;
    let mut consts: Option<Vec<u8>> = None;
    let mut outputs_read: Option<[bool; 4]> = None;
    let mut deny_warnings = false;
    let mut opt = false;
    let mut emit = false;
    let mut files = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--deny-warnings" => deny_warnings = true,
            "--opt" => opt = true,
            "--emit" => emit = true,
            "--profile" => {
                profile = match value("--profile")?.as_str() {
                    "fx5950" => GpuProfile::fx5950_ultra(),
                    "7800gtx" => GpuProfile::geforce_7800gtx(),
                    other => return Err(format!("unknown profile `{other}`")),
                };
            }
            "--samplers" => {
                let v = value("--samplers")?;
                samplers = Some(
                    v.parse()
                        .map_err(|_| format!("--samplers: `{v}` is not a count"))?,
                );
            }
            "--texcoords" => {
                let v = value("--texcoords")?;
                texcoords = Some(
                    v.parse()
                        .map_err(|_| format!("--texcoords: `{v}` is not a count"))?,
                );
            }
            "--consts" => {
                let v = value("--consts")?;
                let mut list = Vec::new();
                for part in v.split(',').filter(|p| !p.is_empty()) {
                    list.push(
                        part.trim()
                            .parse()
                            .map_err(|_| format!("--consts: `{part}` is not an index"))?,
                    );
                }
                consts = Some(list);
            }
            "--outputs-read" => {
                let v = value("--outputs-read")?;
                let mut mask = [false; 4];
                for part in v.split(',').filter(|p| !p.is_empty()) {
                    let p = part.trim().to_ascii_lowercase();
                    let idx: usize = p
                        .strip_prefix('o')
                        .unwrap_or(&p)
                        .parse()
                        .map_err(|_| format!("--outputs-read: `{part}` is not an output"))?;
                    if idx >= 4 {
                        return Err(format!("--outputs-read: O{idx} out of range"));
                    }
                    mask[idx] = true;
                }
                outputs_read = Some(mask);
            }
            other if other.starts_with('-') && other.len() > 1 => {
                return Err(format!("unknown option `{other}`"));
            }
            path => files.push(path.to_string()),
        }
    }

    // Any binding flag switches from lint mode to pass mode.
    let bindings = if samplers.is_some()
        || texcoords.is_some()
        || consts.is_some()
        || outputs_read.is_some()
    {
        Some(PassBindings {
            samplers: samplers.unwrap_or(NUM_SAMPLERS),
            texcoord_sets: texcoords.unwrap_or(NUM_TEXCOORDS),
            constants: consts.unwrap_or_else(|| (0..NUM_CONSTS as u8).collect()),
            outputs_read: outputs_read.unwrap_or([true, false, false, false]),
        })
    } else {
        None
    };

    Ok(Options {
        profile,
        bindings,
        deny_warnings,
        opt,
        emit,
        files,
    })
}

/// Prints one diagnostic in rustc style, quoting the source line.
fn print_diagnostic(name: &str, source: &str, d: &Diagnostic) {
    let severity = match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    println!("{severity}[{}]: {}", d.kind.name(), d.message);
    println!("  --> {name}:{}", d.line);
    if let Some(text) = source.lines().nth(d.line.saturating_sub(1)) {
        let gutter = d.line.to_string();
        println!("{:width$} |", "", width = gutter.len());
        println!("{gutter} | {}", text.trim_end());
        println!("{:width$} |", "", width = gutter.len());
    }
}

/// Lints one source file. Returns (errors, warnings) counted.
fn lint_source(name: &str, source: &str, opts: &Options) -> (usize, usize) {
    let program = match assemble(source) {
        Ok(p) => p,
        Err(e) => {
            println!("error[assembly]: {e}");
            println!("  --> {name}");
            return (1, 0);
        }
    };
    let diags = verify(&program, &opts.profile, opts.bindings.as_ref());
    let mut errors = 0;
    let mut warnings = 0;
    for d in &diags {
        print_diagnostic(name, source, d);
        match d.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
    }
    // The optimizer reports ride along without influencing the exit code;
    // programs with errors are not optimized (run_pass would reject them).
    if (opts.opt || opts.emit) && errors == 0 {
        let bindings = opts
            .bindings
            .clone()
            .unwrap_or_else(PassBindings::permissive);
        let (optimized, report) = gpu_sim::optimize(&program, &bindings);
        if opts.opt {
            println!("opt[{name}] {report}");
        }
        if opts.emit {
            print!("{optimized}");
        }
    }
    (errors, warnings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut errors = 0;
    let mut warnings = 0;
    if opts.files.is_empty() {
        let mut source = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut source) {
            eprintln!("error: reading stdin: {e}");
            return ExitCode::from(2);
        }
        let (e, w) = lint_source("<stdin>", &source, &opts);
        errors += e;
        warnings += w;
    } else {
        for path in &opts.files {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read `{path}`: {e}");
                    return ExitCode::from(2);
                }
            };
            let (e, w) = lint_source(path, &source, &opts);
            errors += e;
            warnings += w;
        }
    }

    if errors > 0 || warnings > 0 {
        println!(
            "shader_lint: {errors} error(s), {warnings} warning(s) on {} ({})",
            opts.profile.name,
            if opts.bindings.is_some() {
                "pass mode"
            } else {
                "lint mode"
            },
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
