!!FP1.0 fix-output-not-written
# Fetches a texel but never writes any output register.
TEX R0, T0, tex0
