//! Static verification and linting of fragment programs.
//!
//! [`verify`] runs a dataflow analysis over a [`Program`] *before* any
//! fragment executes, catching the mistakes the real fp30 toolchain caught
//! at compile/bind time (and a few it did not):
//!
//! * **Use-before-def**, lane-precise: `MOV R0.xy, …` followed by
//!   `ADD R1, R0.zzzz, …` reads lanes no instruction wrote. The interpreter
//!   zero-fills temporaries so this is silent garbage at runtime; here it is
//!   a hard error.
//! * **Binding validation**: every sampler, texture-coordinate set and
//!   constant register the program reads must be supplied by the pass (or by
//!   a `DEF`), and every output the pass reads back must be written.
//! * **Profile limits**: static instruction count and dependent
//!   texture-read chain depth against the [`GpuProfile`]'s published limits,
//!   plus register-file bounds for programs built in code rather than
//!   assembled.
//! * **Lints** (warnings): dead writes, `LG2`/`RCP`/`RSQ` inputs with no
//!   epsilon guard on their definition chain, `DEF` constants nothing reads,
//!   and `DEF`s shadowed by pass-bound constants.
//!
//! Call it with `Some(&PassBindings)` for the exact pass context (what
//! [`crate::gpu::Gpu::run_pass`] does) or `None` for standalone lint mode,
//! which assumes the most permissive bindings so only intrinsic program
//! defects are reported.

use crate::device::GpuProfile;
use crate::isa::{
    Instr, Opcode, Program, Reg, NUM_CONSTS, NUM_OUTPUTS, NUM_SAMPLERS, NUM_TEMPS, NUM_TEXCOORDS,
};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The pass would compute garbage or panic; execution is refused.
    Error,
    /// Suspicious but executable; reported by the linter.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Machine-readable diagnostic categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiagKind {
    /// A temp-register lane is read before any instruction writes it.
    UseBeforeDef,
    /// A `TEX` references a sampler the pass does not bind.
    UnboundSampler,
    /// A `T` register the pass does not supply a coordinate set for.
    UnboundTexCoord,
    /// A constant register neither `DEF`ed nor bound by the pass.
    UndefinedConst,
    /// An output the pass reads back is never written.
    OutputNotWritten,
    /// Static instruction count exceeds the profile limit.
    TooManyInstructions,
    /// Dependent texture-read chain deeper than the profile allows.
    TexChainTooDeep,
    /// A register index outside its file (only possible for programs built
    /// in code; the assembler rejects these at parse time).
    RegisterOutOfRange,
    /// An instruction whose operand shape does not match its opcode.
    MalformedInstr,
    /// A write whose result no later instruction observes.
    DeadWrite,
    /// `LG2`/`RCP`/`RSQ` input with no epsilon guard on its def chain.
    UnguardedMathInput,
    /// A `DEF` constant no instruction reads.
    UnusedConst,
    /// A `DEF` constant also bound by the pass (the pass value wins).
    ConstConflict,
}

impl DiagKind {
    /// Stable kebab-case name, used by `shader-lint` output.
    pub fn name(&self) -> &'static str {
        match self {
            DiagKind::UseBeforeDef => "use-before-def",
            DiagKind::UnboundSampler => "unbound-sampler",
            DiagKind::UnboundTexCoord => "unbound-texcoord",
            DiagKind::UndefinedConst => "undefined-const",
            DiagKind::OutputNotWritten => "output-not-written",
            DiagKind::TooManyInstructions => "too-many-instructions",
            DiagKind::TexChainTooDeep => "tex-chain-too-deep",
            DiagKind::RegisterOutOfRange => "register-out-of-range",
            DiagKind::MalformedInstr => "malformed-instr",
            DiagKind::DeadWrite => "dead-write",
            DiagKind::UnguardedMathInput => "unguarded-math-input",
            DiagKind::UnusedConst => "unused-const",
            DiagKind::ConstConflict => "const-conflict",
        }
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Category.
    pub kind: DiagKind,
    /// Error or warning.
    pub severity: Severity,
    /// 1-based source line (0 when the program was built in code).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] line {}: {}",
            self.severity,
            self.kind.name(),
            self.line,
            self.message
        )
    }
}

/// What a render pass supplies to the program.
///
/// Hashable/comparable so the device can key its verification cache on
/// (program, bindings): the same program bound differently must re-verify,
/// while repeated identical passes (the chunked-pipeline common case) hit
/// the cache. Note that bound constant *values* are deliberately absent —
/// verification only depends on which registers are supplied.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PassBindings {
    /// Number of textures bound (`tex0..texN-1`).
    pub samplers: usize,
    /// Number of texture-coordinate sets supplied (`T0..TN-1`).
    pub texcoord_sets: usize,
    /// Constant registers bound by the pass (in addition to `DEF`s).
    pub constants: Vec<u8>,
    /// Which outputs the pass resolves/reads back.
    pub outputs_read: [bool; NUM_OUTPUTS],
}

impl PassBindings {
    /// The most permissive context: everything bound, only `O0` read back.
    /// Standalone lint mode (`bindings: None`) behaves like this except that
    /// *no* output is asserted read, so any written output satisfies the
    /// output check.
    pub fn permissive() -> Self {
        PassBindings {
            samplers: NUM_SAMPLERS,
            texcoord_sets: NUM_TEXCOORDS,
            constants: (0..NUM_CONSTS as u8).collect(),
            outputs_read: [true, false, false, false],
        }
    }
}

/// True if any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Lanes of `src` that instruction `instr` actually reads, as a 4-bit mask.
///
/// Shared with [`crate::opt`]: the optimizer's liveness and propagation
/// passes must agree exactly with the verifier about which lanes an
/// instruction consumes.
pub(crate) fn read_lanes(instr: &Instr, src_index: usize) -> u8 {
    let swz = instr.srcs[src_index].swizzle.0;
    let mut lanes = 0u8;
    match instr.op {
        // Dot products consume a fixed lane count regardless of write mask.
        Opcode::Dp3 => {
            for &l in &swz[..3] {
                lanes |= 1 << l;
            }
        }
        Opcode::Dp4 => {
            for &l in &swz {
                lanes |= 1 << l;
            }
        }
        // TEX reads a 2-component coordinate.
        Opcode::Tex => {
            lanes |= 1 << swz[0];
            lanes |= 1 << swz[1];
        }
        // Componentwise ops read the source lane feeding each written lane.
        _ => {
            for (l, &m) in instr.dst.mask.iter().enumerate() {
                if m {
                    lanes |= 1 << swz[l];
                }
            }
        }
    }
    lanes
}

/// Written lanes of `instr`'s destination as a 4-bit mask (shared with
/// [`crate::opt`]).
pub(crate) fn dst_mask(instr: &Instr) -> u8 {
    instr
        .dst
        .mask
        .iter()
        .enumerate()
        .fold(0u8, |acc, (l, &m)| if m { acc | 1 << l } else { acc })
}

fn lane_names(mask: u8) -> String {
    const LANES: [char; 4] = ['x', 'y', 'z', 'w'];
    (0..4)
        .filter(|l| mask & (1 << l) != 0)
        .map(|l| LANES[l])
        .collect()
}

fn reg_in_range(reg: Reg) -> bool {
    match reg {
        Reg::Temp(i) => (i as usize) < NUM_TEMPS,
        Reg::Const(i) => (i as usize) < NUM_CONSTS,
        Reg::TexCoord(i) => (i as usize) < NUM_TEXCOORDS,
        Reg::Output(i) => (i as usize) < NUM_OUTPUTS,
    }
}

/// Statically verify `program` against a hardware `profile` and, optionally,
/// the exact `bindings` of the pass about to run it.
///
/// Returns every diagnostic found, errors first, then by source line.
/// Execution must be refused when [`has_errors`] holds on the result.
pub fn verify(
    program: &Program,
    profile: &GpuProfile,
    bindings: Option<&PassBindings>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let permissive;
    let (ctx, lint_mode) = match bindings {
        Some(b) => (b, false),
        None => {
            permissive = PassBindings::permissive();
            (&permissive, true)
        }
    };

    structural_checks(program, profile, &mut diags);
    // Dataflow over malformed instructions would index past operand arrays;
    // report the structural errors alone.
    if has_errors(&diags) {
        return finish(diags);
    }

    use_before_def(program, &mut diags);
    binding_checks(program, ctx, lint_mode, &mut diags);
    tex_chain_depth(program, profile, &mut diags);
    dead_writes(program, ctx, lint_mode, &mut diags);
    unguarded_math(program, ctx, &mut diags);
    const_lints(program, ctx, lint_mode, &mut diags);

    finish(diags)
}

fn finish(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by_key(|d| (d.severity, d.line, d.kind));
    diags
}

/// Operand shapes, register-file bounds, and the instruction-count limit.
fn structural_checks(program: &Program, profile: &GpuProfile, diags: &mut Vec<Diagnostic>) {
    if program.len() > profile.max_program_instrs {
        diags.push(Diagnostic {
            kind: DiagKind::TooManyInstructions,
            severity: Severity::Error,
            line: 0,
            message: format!(
                "program `{}` has {} instructions; {} allows {}",
                program.name,
                program.len(),
                profile.name,
                profile.max_program_instrs
            ),
        });
    }
    for d in &program.defs {
        if (d.index as usize) >= NUM_CONSTS {
            diags.push(Diagnostic {
                kind: DiagKind::RegisterOutOfRange,
                severity: Severity::Error,
                line: d.line,
                message: format!("DEF target C{} outside the constant file", d.index),
            });
        }
    }
    for instr in &program.instrs {
        if instr.srcs.len() != instr.op.arity() {
            diags.push(Diagnostic {
                kind: DiagKind::MalformedInstr,
                severity: Severity::Error,
                line: instr.line,
                message: format!(
                    "{} takes {} source(s), found {}",
                    instr.op.mnemonic(),
                    instr.op.arity(),
                    instr.srcs.len()
                ),
            });
            continue;
        }
        if instr.op == Opcode::Tex && instr.sampler.is_none() {
            diags.push(Diagnostic {
                kind: DiagKind::MalformedInstr,
                severity: Severity::Error,
                line: instr.line,
                message: "TEX without a sampler".into(),
            });
        }
        if !matches!(instr.dst.reg, Reg::Temp(_) | Reg::Output(_)) {
            diags.push(Diagnostic {
                kind: DiagKind::MalformedInstr,
                severity: Severity::Error,
                line: instr.line,
                message: format!("destination {} is not writable", instr.dst.reg),
            });
        } else if !reg_in_range(instr.dst.reg) {
            diags.push(Diagnostic {
                kind: DiagKind::RegisterOutOfRange,
                severity: Severity::Error,
                line: instr.line,
                message: format!("destination {} outside its register file", instr.dst.reg),
            });
        }
        for src in &instr.srcs {
            if !reg_in_range(src.reg) {
                diags.push(Diagnostic {
                    kind: DiagKind::RegisterOutOfRange,
                    severity: Severity::Error,
                    line: instr.line,
                    message: format!("source {} outside its register file", src.reg),
                });
            }
            if src.swizzle.0.iter().any(|&l| l > 3) {
                diags.push(Diagnostic {
                    kind: DiagKind::MalformedInstr,
                    severity: Severity::Error,
                    line: instr.line,
                    message: format!("swizzle on {} selects a lane above w", src.reg),
                });
            }
        }
        if let Some(s) = instr.sampler {
            if (s as usize) >= NUM_SAMPLERS {
                diags.push(Diagnostic {
                    kind: DiagKind::RegisterOutOfRange,
                    severity: Severity::Error,
                    line: instr.line,
                    message: format!("sampler tex{s} outside the sampler file"),
                });
            }
        }
    }
}

/// Forward lane-precise reaching-definitions over the temp file.
fn use_before_def(program: &Program, diags: &mut Vec<Diagnostic>) {
    let mut defined = [0u8; NUM_TEMPS];
    for instr in &program.instrs {
        for (si, src) in instr.srcs.iter().enumerate() {
            if let Reg::Temp(t) = src.reg {
                let missing = read_lanes(instr, si) & !defined[t as usize];
                if missing != 0 {
                    diags.push(Diagnostic {
                        kind: DiagKind::UseBeforeDef,
                        severity: Severity::Error,
                        line: instr.line,
                        message: format!(
                            "{} reads R{t}.{} before any write to those lanes",
                            instr.op.mnemonic(),
                            lane_names(missing)
                        ),
                    });
                }
            }
        }
        if let Reg::Temp(t) = instr.dst.reg {
            defined[t as usize] |= dst_mask(instr);
        }
    }
}

/// Samplers, texcoord sets, constants, and read-back outputs.
fn binding_checks(
    program: &Program,
    ctx: &PassBindings,
    lint_mode: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let mut const_defined = [false; NUM_CONSTS];
    for d in &program.defs {
        const_defined[d.index as usize] = true;
    }
    for &c in &ctx.constants {
        if (c as usize) < NUM_CONSTS {
            const_defined[c as usize] = true;
        }
    }

    let mut outputs_written = [false; NUM_OUTPUTS];
    for instr in &program.instrs {
        if let Some(s) = instr.sampler {
            if (s as usize) >= ctx.samplers {
                diags.push(Diagnostic {
                    kind: DiagKind::UnboundSampler,
                    severity: Severity::Error,
                    line: instr.line,
                    message: format!(
                        "TEX samples tex{s} but the pass binds {} texture(s)",
                        ctx.samplers
                    ),
                });
            }
        }
        for src in &instr.srcs {
            match src.reg {
                Reg::TexCoord(t) if (t as usize) >= ctx.texcoord_sets => {
                    diags.push(Diagnostic {
                        kind: DiagKind::UnboundTexCoord,
                        severity: Severity::Error,
                        line: instr.line,
                        message: format!(
                            "reads T{t} but the pass supplies {} coordinate set(s)",
                            ctx.texcoord_sets
                        ),
                    });
                }
                Reg::Const(c) if !const_defined[c as usize] => {
                    diags.push(Diagnostic {
                        kind: DiagKind::UndefinedConst,
                        severity: Severity::Error,
                        line: instr.line,
                        message: format!("reads C{c}, which is neither DEFed nor pass-bound"),
                    });
                }
                _ => {}
            }
        }
        if let Reg::Output(o) = instr.dst.reg {
            outputs_written[o as usize] = true;
        }
    }

    if lint_mode {
        // Without pass context, only require that the program produces
        // something at all.
        if !outputs_written.iter().any(|&w| w) {
            diags.push(Diagnostic {
                kind: DiagKind::OutputNotWritten,
                severity: Severity::Error,
                line: 0,
                message: format!("program `{}` writes no output register", program.name),
            });
        }
    } else {
        for (o, (&read, &written)) in ctx.outputs_read.iter().zip(&outputs_written).enumerate() {
            if read && !written {
                diags.push(Diagnostic {
                    kind: DiagKind::OutputNotWritten,
                    severity: Severity::Error,
                    line: 0,
                    message: format!(
                        "the pass reads back {} but program `{}` never writes it",
                        Reg::Output(o as u8),
                        program.name
                    ),
                });
            }
        }
    }
}

/// Depth of dependent texture reads via per-lane def-use chains.
///
/// A `TEX` whose coordinates come straight from an interpolated `T` register
/// has depth 1; a `TEX` whose coordinates depend (through any arithmetic) on
/// another `TEX`'s result is one level deeper.
fn tex_chain_depth(program: &Program, profile: &GpuProfile, diags: &mut Vec<Diagnostic>) {
    // depth[t][lane]: deepest TEX chain feeding that temp lane.
    let mut depth = [[0u32; 4]; NUM_TEMPS];
    for instr in &program.instrs {
        let mut src_depth = 0u32;
        for (si, src) in instr.srcs.iter().enumerate() {
            if let Reg::Temp(t) = src.reg {
                let lanes = read_lanes(instr, si);
                for (l, &d) in depth[t as usize].iter().enumerate() {
                    if lanes & (1 << l) != 0 {
                        src_depth = src_depth.max(d);
                    }
                }
            }
        }
        let out_depth = if instr.op == Opcode::Tex {
            let d = src_depth + 1;
            if d as usize > profile.max_tex_indirections {
                diags.push(Diagnostic {
                    kind: DiagKind::TexChainTooDeep,
                    severity: Severity::Error,
                    line: instr.line,
                    message: format!(
                        "dependent texture read at depth {d}; {} allows {}",
                        profile.name, profile.max_tex_indirections
                    ),
                });
            }
            d
        } else {
            src_depth
        };
        if let Reg::Temp(t) = instr.dst.reg {
            for (l, &m) in instr.dst.mask.iter().enumerate() {
                if m {
                    depth[t as usize][l] = out_depth;
                }
            }
        }
    }
}

/// Backward lane-precise liveness: flag writes no later instruction reads.
fn dead_writes(
    program: &Program,
    ctx: &PassBindings,
    lint_mode: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let mut live = [0u8; NUM_TEMPS];
    for instr in program.instrs.iter().rev() {
        match instr.dst.reg {
            Reg::Temp(t) => {
                let written = dst_mask(instr);
                if written & live[t as usize] == 0 {
                    diags.push(Diagnostic {
                        kind: DiagKind::DeadWrite,
                        severity: Severity::Warning,
                        line: instr.line,
                        message: format!(
                            "{} writes R{t}.{} but nothing reads those lanes afterwards",
                            instr.op.mnemonic(),
                            lane_names(written)
                        ),
                    });
                }
                live[t as usize] &= !written;
            }
            // Writing an output the pass never resolves is dead too; in
            // lint mode any output counts as observed.
            Reg::Output(o) if !lint_mode && !ctx.outputs_read[o as usize] => {
                diags.push(Diagnostic {
                    kind: DiagKind::DeadWrite,
                    severity: Severity::Warning,
                    line: instr.line,
                    message: format!(
                        "{} writes {} but the pass never reads it back",
                        instr.op.mnemonic(),
                        instr.dst.reg
                    ),
                });
            }
            _ => {}
        }
        for (si, src) in instr.srcs.iter().enumerate() {
            if let Reg::Temp(t) = src.reg {
                live[t as usize] |= read_lanes(instr, si);
            }
        }
    }
}

/// Warn on `RCP`/`RSQ`/`LG2` whose input lanes carry no epsilon guard.
///
/// Guardedness is a structural approximation of "provably positive":
/// `MAX`/`ADD` results count as guarded (the idiomatic `MAX R, R, C.eps`
/// and `ADD R, R, C.eps` guards), `EX2` is positive by construction, `DEF`
/// constants are guarded where their lane value is positive, `MOV`/`ABS`
/// and products of guarded values propagate, and everything else —
/// texture fetches, interpolants, pass-bound constants, subtractions —
/// is unguarded.
fn unguarded_math(program: &Program, _ctx: &PassBindings, diags: &mut Vec<Diagnostic>) {
    let mut const_guarded = [0u8; NUM_CONSTS];
    for d in &program.defs {
        for (l, &v) in d.value.iter().enumerate() {
            if v > 0.0 {
                const_guarded[d.index as usize] |= 1 << l;
            }
        }
    }
    let mut guarded = [0u8; NUM_TEMPS];

    // Lanes of `src` (post-swizzle, per written dst lane) that are guarded.
    let src_guarded = |instr: &Instr, si: usize, guarded: &[u8; NUM_TEMPS]| -> u8 {
        let src = &instr.srcs[si];
        if src.negate {
            return 0; // negation flips sign; never guarded
        }
        let reg_mask = match src.reg {
            Reg::Temp(t) => guarded[t as usize],
            Reg::Const(c) => const_guarded[c as usize],
            _ => 0,
        };
        let swz = src.swizzle.0;
        (0..4).fold(0u8, |acc, l| {
            if reg_mask & (1 << swz[l]) != 0 {
                acc | 1 << l
            } else {
                acc
            }
        })
    };

    for instr in &program.instrs {
        let written = dst_mask(instr);
        // Check the check-worthy ops against their input guardedness.
        if matches!(instr.op, Opcode::Rcp | Opcode::Rsq | Opcode::Lg2) {
            let unguarded = written & !src_guarded(instr, 0, &guarded);
            if unguarded != 0 {
                diags.push(Diagnostic {
                    kind: DiagKind::UnguardedMathInput,
                    severity: Severity::Warning,
                    line: instr.line,
                    message: format!(
                        "{} input {} lane(s) {} may be zero or negative; guard with MAX/ADD \
                         against an epsilon constant",
                        instr.op.mnemonic(),
                        instr.srcs[0].reg,
                        lane_names(unguarded)
                    ),
                });
            }
        }
        // Transfer function: which written lanes become guarded.
        let out_guarded = match instr.op {
            Opcode::Max | Opcode::Add | Opcode::Ex2 => written,
            Opcode::Mov | Opcode::Abs => written & src_guarded(instr, 0, &guarded),
            Opcode::Mul | Opcode::Rcp | Opcode::Rsq => {
                instr.srcs.iter().enumerate().fold(written, |acc, (si, _)| {
                    acc & src_guarded(instr, si, &guarded)
                })
            }
            Opcode::Mad | Opcode::Min => {
                instr.srcs.iter().enumerate().fold(written, |acc, (si, _)| {
                    acc & src_guarded(instr, si, &guarded)
                })
            }
            _ => 0,
        };
        if let Reg::Temp(t) = instr.dst.reg {
            guarded[t as usize] = (guarded[t as usize] & !written) | out_guarded;
        }
    }
}

/// `DEF`s nothing reads, and `DEF`s the pass overrides.
fn const_lints(
    program: &Program,
    ctx: &PassBindings,
    lint_mode: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let mut const_read = [false; NUM_CONSTS];
    for instr in &program.instrs {
        for src in &instr.srcs {
            if let Reg::Const(c) = src.reg {
                const_read[c as usize] = true;
            }
        }
    }
    for d in &program.defs {
        if !const_read[d.index as usize] {
            diags.push(Diagnostic {
                kind: DiagKind::UnusedConst,
                severity: Severity::Warning,
                line: d.line,
                message: format!("DEF C{} is never read", d.index),
            });
        }
        // In lint mode "all constants bound" is an assumption, not a real
        // conflict.
        if !lint_mode && ctx.constants.contains(&d.index) {
            diags.push(Diagnostic {
                kind: DiagKind::ConstConflict,
                severity: Severity::Warning,
                line: d.line,
                message: format!(
                    "DEF C{} is shadowed by a pass-bound constant (the pass value wins)",
                    d.index
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn profile() -> GpuProfile {
        GpuProfile::fx5950_ultra()
    }

    fn lint(src: &str) -> Vec<Diagnostic> {
        verify(&assemble(src).unwrap(), &profile(), None)
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let d = lint(
            "!!ok\nDEF C0, 1e-6, 0, 0, 0\nTEX R0, T0, tex0\nMAX R0, R0, C0.x\n\
             RCP R1, R0\nMOV OC, R1\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lane_precise_use_before_def() {
        // R0.xy written, R0.zz read: flagged.
        let d = lint("MOV R0.xy, T0\nADD OC, R0.zzzz, T0\n");
        assert!(kinds(&d).contains(&DiagKind::UseBeforeDef), "{d:?}");
        assert!(d[0].message.contains("R0.z"), "{}", d[0].message);
        assert_eq!(d[0].line, 2);
        // Reading exactly the written lanes is fine.
        let d = lint("MOV R0.xy, T0\nADD OC.xy, R0.xyxy, T0\n");
        assert!(!kinds(&d).contains(&DiagKind::UseBeforeDef), "{d:?}");
    }

    #[test]
    fn dot_products_read_all_their_lanes() {
        // DP4 reads all four lanes even though the dst mask is .x.
        let d = lint("MOV R0.xyz, T0\nDP4 R1.x, R0, T0\nMOV OC, R1.x\n");
        assert!(kinds(&d).contains(&DiagKind::UseBeforeDef), "{d:?}");
        // DP3 only needs xyz.
        let d = lint("MOV R0.xyz, T0\nDP3 R1, R0, T0\nMOV OC, R1\n");
        assert!(!kinds(&d).contains(&DiagKind::UseBeforeDef), "{d:?}");
    }

    #[test]
    fn tex_reads_two_coordinate_lanes() {
        let d = lint("MOV R0.x, T0\nTEX R1, R0, tex0\nMOV OC, R1\n");
        assert!(kinds(&d).contains(&DiagKind::UseBeforeDef), "{d:?}");
    }

    #[test]
    fn binding_errors_with_pass_context() {
        let p = assemble("TEX R0, T1, tex2\nADD OC, R0, C5\n").unwrap();
        let ctx = PassBindings {
            samplers: 1,
            texcoord_sets: 1,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let d = verify(&p, &profile(), Some(&ctx));
        let k = kinds(&d);
        assert!(k.contains(&DiagKind::UnboundSampler), "{d:?}");
        assert!(k.contains(&DiagKind::UnboundTexCoord), "{d:?}");
        assert!(k.contains(&DiagKind::UndefinedConst), "{d:?}");
    }

    #[test]
    fn output_must_be_written_when_read_back() {
        let p = assemble("MOV O1, T0\n").unwrap();
        let ctx = PassBindings {
            samplers: 0,
            texcoord_sets: 1,
            constants: vec![],
            outputs_read: [true, false, false, false],
        };
        let d = verify(&p, &profile(), Some(&ctx));
        assert!(kinds(&d).contains(&DiagKind::OutputNotWritten), "{d:?}");
        // Lint mode: writing any output is enough.
        let d = verify(&p, &profile(), None);
        assert!(!kinds(&d).contains(&DiagKind::OutputNotWritten), "{d:?}");
        // But a program writing nothing is flagged even in lint mode.
        let d = lint("MOV R0, T0\n");
        assert!(kinds(&d).contains(&DiagKind::OutputNotWritten), "{d:?}");
    }

    #[test]
    fn instruction_limit_enforced() {
        let mut src = String::new();
        for _ in 0..1025 {
            src.push_str("MOV OC, T0\n");
        }
        let d = lint(&src);
        assert!(kinds(&d).contains(&DiagKind::TooManyInstructions), "{d:?}");
        assert!(has_errors(&d));
    }

    #[test]
    fn dependent_tex_chain_depth() {
        // Depth 5 chain on a profile allowing 4.
        let src = "TEX R0, T0, tex0\nTEX R1, R0, tex0\nTEX R2, R1, tex0\n\
                   TEX R3, R2, tex0\nTEX R4, R3, tex0\nMOV OC, R4\n";
        let d = lint(src);
        assert!(kinds(&d).contains(&DiagKind::TexChainTooDeep), "{d:?}");
        // Same chain is fine on the deeper-limit profile.
        let p = assemble(src).unwrap();
        let d = verify(&p, &GpuProfile::geforce_7800gtx(), None);
        assert!(!kinds(&d).contains(&DiagKind::TexChainTooDeep), "{d:?}");
        // Arithmetic between fetches still counts as dependence.
        let src = "TEX R0, T0, tex0\nMUL R0, R0, R0\nTEX R1, R0, tex0\nMOV OC, R1\n";
        let d = lint(src);
        assert!(!has_errors(&d), "{d:?}");
    }

    #[test]
    fn register_bounds_for_programs_built_in_code() {
        use crate::isa::{Dst, Instr, Src, NUM_TEMPS};
        let p = Program {
            name: "bad".into(),
            instrs: vec![Instr {
                op: Opcode::Mov,
                dst: Dst::new(Reg::Output(0)),
                srcs: vec![Src::new(Reg::Temp(NUM_TEMPS as u8))],
                sampler: None,
                line: 0,
            }],
            defs: vec![],
        };
        let d = verify(&p, &profile(), None);
        assert!(kinds(&d).contains(&DiagKind::RegisterOutOfRange), "{d:?}");
        // Wrong arity is malformed.
        let p = Program {
            name: "bad2".into(),
            instrs: vec![Instr {
                op: Opcode::Add,
                dst: Dst::new(Reg::Output(0)),
                srcs: vec![Src::new(Reg::TexCoord(0))],
                sampler: None,
                line: 0,
            }],
            defs: vec![],
        };
        let d = verify(&p, &profile(), None);
        assert!(kinds(&d).contains(&DiagKind::MalformedInstr), "{d:?}");
    }

    #[test]
    fn dead_write_lint() {
        // R1 is never read.
        let d = lint("MOV R1, T0\nMOV OC, T0\n");
        assert!(kinds(&d).contains(&DiagKind::DeadWrite), "{d:?}");
        // Overwritten before any read.
        let d = lint("TEX R0, T0, tex0\nMOV R0, T0\nMOV OC, R0\n");
        assert!(kinds(&d).contains(&DiagKind::DeadWrite), "{d:?}");
        // Partially-live writes are not flagged.
        let d = lint("MOV R0, T0\nMOV OC, R0.x\n");
        assert!(!kinds(&d).contains(&DiagKind::DeadWrite), "{d:?}");
    }

    #[test]
    fn unguarded_math_lint() {
        // Raw texture fetch into RCP: flagged.
        let d = lint("TEX R0, T0, tex0\nRCP R1, R0\nMOV OC, R1\n");
        assert!(kinds(&d).contains(&DiagKind::UnguardedMathInput), "{d:?}");
        // MAX-guarded: clean.
        let d = lint(
            "DEF C0, 1e-6, 0, 0, 0\nTEX R0, T0, tex0\nMAX R0, R0, C0.x\n\
             LG2 R1, R0\nMOV OC, R1\n",
        );
        assert!(!kinds(&d).contains(&DiagKind::UnguardedMathInput), "{d:?}");
        // Guardedness survives multiplication of guarded values.
        let d = lint(
            "DEF C0, 1e-6, 0, 0, 0\nTEX R0, T0, tex0\nTEX R1, T0, tex1\n\
             MAX R0, R0, C0.x\nMAX R1, R1, C0.x\nRCP R2, R1\nMUL R2, R0, R2\n\
             LG2 R2, R2\nMOV OC, R2\n",
        );
        assert!(!kinds(&d).contains(&DiagKind::UnguardedMathInput), "{d:?}");
        // Negation defeats the guard.
        let d = lint(
            "DEF C0, 1e-6, 0, 0, 0\nTEX R0, T0, tex0\nMAX R0, R0, C0.x\n\
             RCP R1, -R0\nMOV OC, R1\n",
        );
        assert!(kinds(&d).contains(&DiagKind::UnguardedMathInput), "{d:?}");
    }

    #[test]
    fn const_lints_fire() {
        // Unused DEF.
        let d = lint("DEF C7, 1, 2, 3, 4\nMOV OC, T0\n");
        assert!(kinds(&d).contains(&DiagKind::UnusedConst), "{d:?}");
        assert_eq!(
            d.iter()
                .find(|x| x.kind == DiagKind::UnusedConst)
                .unwrap()
                .line,
            1
        );
        // DEF shadowed by a pass binding.
        let p = assemble("DEF C0, 1, 1, 1, 1\nMOV OC, C0\n").unwrap();
        let ctx = PassBindings {
            samplers: 0,
            texcoord_sets: 0,
            constants: vec![0],
            outputs_read: [true, false, false, false],
        };
        let d = verify(&p, &profile(), Some(&ctx));
        assert!(kinds(&d).contains(&DiagKind::ConstConflict), "{d:?}");
    }

    #[test]
    fn diagnostics_sort_errors_first() {
        let d = lint("DEF C7, 1, 2, 3, 4\nMOV R1, T0\nADD OC, R0, T0\n");
        assert!(has_errors(&d));
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d.windows(2).all(|w| w[0].severity <= w[1].severity));
    }

    #[test]
    fn diagnostic_display_is_rustc_like() {
        let d = Diagnostic {
            kind: DiagKind::UseBeforeDef,
            severity: Severity::Error,
            line: 7,
            message: "reads R0.z before any write".into(),
        };
        let s = d.to_string();
        assert!(s.contains("error[use-before-def]"));
        assert!(s.contains("line 7"));
    }
}
