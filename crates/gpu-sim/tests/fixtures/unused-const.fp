!!FP1.0 fix-unused-const
DEF C1, 1.0, 2.0, 3.0, 4.0
TEX R0, T0, tex0
MOV OC, R0
