//! Error type for the GPU simulator.

use std::fmt;

/// Errors raised by the simulated device and its toolchain.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Allocating a texture would exceed the device's video memory.
    OutOfVideoMemory {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still free.
        available: usize,
    },
    /// A texture id is stale or was never allocated.
    InvalidTexture {
        /// The offending id value.
        id: u32,
    },
    /// A texture dimension exceeds the device limit or is zero.
    InvalidTextureSize {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
        /// Device maximum side length.
        max_side: usize,
    },
    /// Host buffer size does not match the texture being up/downloaded.
    SizeMismatch {
        /// Expected number of f32 values.
        expected: usize,
        /// Supplied number of f32 values.
        actual: usize,
    },
    /// A shader failed to assemble.
    AssemblyError {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A shader program referenced a resource the pass did not bind.
    BindingError {
        /// Description of the missing binding.
        message: String,
    },
    /// A render pass was misconfigured (e.g. target is also an input).
    InvalidPass {
        /// Description of the configuration error.
        message: String,
    },
    /// Static verification rejected the program before execution.
    VerifyError {
        /// Name of the offending program.
        program: String,
        /// Everything the verifier found (errors and warnings).
        diagnostics: Vec<crate::verify::Diagnostic>,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfVideoMemory {
                requested,
                available,
            } => write!(
                f,
                "out of video memory: requested {requested} B, {available} B free"
            ),
            GpuError::InvalidTexture { id } => write!(f, "invalid texture id {id}"),
            GpuError::InvalidTextureSize {
                width,
                height,
                max_side,
            } => write!(
                f,
                "invalid texture size {width}x{height} (max side {max_side})"
            ),
            GpuError::SizeMismatch { expected, actual } => {
                write!(f, "buffer size mismatch: expected {expected}, got {actual}")
            }
            GpuError::AssemblyError { line, message } => {
                write!(f, "shader assembly error at line {line}: {message}")
            }
            GpuError::BindingError { message } => write!(f, "binding error: {message}"),
            GpuError::InvalidPass { message } => write!(f, "invalid pass: {message}"),
            GpuError::VerifyError {
                program,
                diagnostics,
            } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == crate::verify::Severity::Error)
                    .count();
                write!(
                    f,
                    "program `{program}` failed verification with {errors} error(s)"
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, GpuError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GpuError::OutOfVideoMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = GpuError::AssemblyError {
            line: 7,
            message: "bad opcode".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("bad opcode"));
        let e = GpuError::VerifyError {
            program: "amc".into(),
            diagnostics: vec![crate::verify::Diagnostic {
                kind: crate::verify::DiagKind::UseBeforeDef,
                severity: crate::verify::Severity::Error,
                line: 3,
                message: "reads R2.w before any write".into(),
            }],
        };
        let s = e.to_string();
        assert!(s.contains("`amc`"));
        assert!(s.contains("1 error(s)"));
        assert!(s.contains("use-before-def"));
    }
}
