//! Property-based tests over the core invariants.

use hyperspec::amc::layout;
use hyperspec::gpu::asm;
use hyperspec::hsi::{metrics, pixel, spectral};
use hyperspec::prelude::*;
use proptest::prelude::*;

fn radiance_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(1.0f32..5000.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- spectral distances -------------------------------------------

    #[test]
    fn sid_symmetric_nonnegative_and_zero_on_self(
        a in radiance_vec(12),
        b in radiance_vec(12),
    ) {
        let d_ab = spectral::sid(&a, &b);
        let d_ba = spectral::sid(&b, &a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() <= 1e-5 * (1.0 + d_ab.abs()));
        prop_assert!(spectral::sid(&a, &a) == 0.0);
    }

    #[test]
    fn sid_scale_invariant(a in radiance_vec(8), b in radiance_vec(8), k in 0.1f32..50.0) {
        let scaled: Vec<f32> = a.iter().map(|v| v * k).collect();
        let d1 = spectral::sid(&a, &b);
        let d2 = spectral::sid(&scaled, &b);
        prop_assert!((d1 - d2).abs() <= 1e-4 * (1.0 + d1.abs()), "{d1} vs {d2}");
    }

    #[test]
    fn normalization_yields_probability_vector(a in radiance_vec(16)) {
        let n = pixel::normalized(&a);
        let sum: f32 = n.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(n.iter().all(|&v| v >= 0.0));
    }

    // --- cube layout ----------------------------------------------------

    #[test]
    fn interleave_round_trips(
        w in 1usize..6, h in 1usize..6, bands in 1usize..7,
        seed in 0u64..1000,
    ) {
        let cube = Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |x, y, b| {
            ((x * 31 + y * 17 + b * 7 + seed as usize) % 97) as f32
        }).unwrap();
        for il in Interleave::ALL {
            let reencoded = cube.to_interleave(il).into_owned();
            let conv = reencoded.to_interleave(Interleave::Bip);
            prop_assert_eq!(&*conv, &cube);
        }
    }

    #[test]
    fn band_packing_round_trips(w in 1usize..5, h in 1usize..5, bands in 1usize..10) {
        let cube = Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |x, y, b| {
            (x + 10 * y + 100 * b) as f32
        }).unwrap();
        let packed = layout::pack_cube(&cube);
        let back = layout::unpack_cube(&packed, w, h, bands).unwrap();
        prop_assert_eq!(back, cube);
    }

    #[test]
    fn chunking_covers_every_line_once(
        h in 1usize..40, lines in 1usize..12, halo in 0usize..4,
    ) {
        let cube = Cube::zeros(CubeDims::new(3, h, 2), Interleave::Bip).unwrap();
        let mut covered = vec![0u32; h];
        for chunk in cube.chunks(Chunking::new(lines, halo)) {
            for dy in 0..chunk.body_lines {
                covered[chunk.y_start + dy] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    // --- morphology ------------------------------------------------------

    #[test]
    fn erosion_field_value_never_exceeds_dilation(
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state >> 40) as f32 / 16_777_216.0
        };
        let cube = Cube::from_fn(CubeDims::new(7, 6, 4), Interleave::Bip, |_, _, _| {
            10.0 + 100.0 * next()
        }).unwrap();
        let norm = hyperspec::hsi::morphology::normalize_cube(&cube);
        let se = StructuringElement::square(3).unwrap();
        let m = hyperspec::hsi::morphology::erode_dilate(&norm, &se, SpectralDistance::Sid);
        for i in 0..m.min_value.len() {
            prop_assert!(m.min_value[i] <= m.max_value[i]);
            prop_assert!((m.min_index[i] as usize) < se.len());
            prop_assert!((m.max_index[i] as usize) < se.len());
        }
    }

    // --- assembler --------------------------------------------------------

    #[test]
    fn asm_round_trips_through_text(
        dst in 0u8..16, s0 in 0u8..16, c in 0u8..32, lane in 0u8..4, neg in any::<bool>(),
    ) {
        let src = format!(
            "MAD R{dst}, {}R{s0}.{}, C{c}, R{s0}\nMOV OC, R{dst}",
            if neg { "-" } else { "" },
            ['x', 'y', 'z', 'w'][lane as usize],
        );
        let p1 = asm::assemble(&src).unwrap();
        let p2 = asm::assemble(&p1.to_asm()).unwrap();
        prop_assert_eq!(p1, p2);
    }

    // --- unmixing -----------------------------------------------------------

    #[test]
    fn known_mixture_is_recovered(
        a0 in 0.05f64..0.95,
        seed in 0u64..100,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            20.0 + ((state >> 40) % 4000) as f32
        };
        let e0: Vec<f32> = (0..12).map(|_| next()).collect();
        let e1: Vec<f32> = (0..12).map(|_| next()).collect();
        // Skip degenerate draws where the endmembers nearly coincide.
        prop_assume!(spectral::sid(&e0, &e1) > 1e-3);
        let px: Vec<f32> = e0.iter().zip(&e1)
            .map(|(x, y)| (a0 as f32) * x + (1.0 - a0 as f32) * y)
            .collect();
        let model = LinearMixtureModel::new(&[&e0, &e1]).unwrap();
        let ab = model.abundances(&px, AbundanceConstraint::SumToOne).unwrap();
        prop_assert!((ab[0] - a0).abs() < 0.02, "{} vs {a0}", ab[0]);
        prop_assert!((ab.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    // --- metrics ---------------------------------------------------------

    #[test]
    fn confusion_matrix_invariants(
        labels in prop::collection::vec((0u16..4, 0u16..4), 1..200),
    ) {
        let truth: Vec<u16> = labels.iter().map(|&(t, _)| t).collect();
        let pred: Vec<u16> = labels.iter().map(|&(_, p)| p).collect();
        let cm = metrics::ConfusionMatrix::from_labels(&truth, &pred, 4).unwrap();
        prop_assert_eq!(cm.total() as usize, labels.len());
        let oa = cm.overall_accuracy();
        prop_assert!((0.0..=100.0).contains(&oa));
        prop_assert!(cm.kappa() <= 1.0 + 1e-12);
        let row_sum: u64 = (0..4).map(|t| cm.row_total(t)).sum();
        let col_sum: u64 = (0..4).map(|p| cm.col_total(p)).sum();
        prop_assert_eq!(row_sum, cm.total());
        prop_assert_eq!(col_sum, cm.total());
    }

    #[test]
    fn cluster_mapping_never_decreases_accuracy_vs_identity(
        labels in prop::collection::vec((0u16..3, 0u16..3), 10..100),
    ) {
        let truth: Vec<u16> = labels.iter().map(|&(t, _)| t).collect();
        let pred: Vec<u16> = labels.iter().map(|&(_, p)| p).collect();
        let direct = metrics::ConfusionMatrix::from_labels(&truth, &pred, 3)
            .unwrap()
            .overall_accuracy();
        let mapped = metrics::score_unsupervised(&truth, &pred, 3, 3)
            .unwrap()
            .overall_accuracy();
        // Majority mapping can only merge clusters onto their best class.
        prop_assert!(mapped >= direct - 1e-9, "{mapped} < {direct}");
    }

    // --- timing model -----------------------------------------------------

    #[test]
    fn modeled_gpu_time_monotone_in_work(extra in 1u64..1_000_000) {
        use hyperspec::gpu::counters::PassStats;
        use hyperspec::gpu::timing::gpu_time;
        let base = PassStats {
            fragments: 1000,
            instructions: 50_000,
            texel_fetches: 10_000,
            cache_hits: 9_000,
            cache_misses: 1_000,
            bytes_written: 16_000,
            bytes_uploaded: 1 << 20,
            bytes_downloaded: 1 << 16,
            passes: 5,
            tiles: 40,
        };
        let mut more = base;
        more.instructions += extra;
        let p = GpuProfile::geforce_7800gtx();
        prop_assert!(gpu_time(&more, &p).compute_s >= gpu_time(&base, &p).compute_s);
    }
}
