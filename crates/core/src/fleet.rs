//! Heterogeneous multi-device fleet executor.
//!
//! [`DeviceFleet`] owns N simulated [`Gpu`] devices with arbitrary mixed
//! profiles and shards one chunk plan across them:
//!
//! * **Planning** is fleet-shape-independent: the chunking is derived from
//!   the cube, the structuring element and the *smallest* video memory in
//!   the fleet, then refined to expose at least [`FleetConfig::target_chunks`]
//!   shardable units. The same shape and inputs always produce the same
//!   chunk list no matter how many devices execute it — the foundation of
//!   the bit-identity guarantee below.
//! * **Placement** uses the analytic perf model
//!   ([`perf::predict_chunk_time_s`]): each chunk is priced per device at
//!   the actual chunk geometry (occupancy, halo overhead, contended bus),
//!   and devices receive contiguous runs of chunks proportional to their
//!   modeled throughput.
//! * **Dispatch** rebalances with work-stealing: a device that drains its
//!   queue steals from the back of the victim with the most remaining
//!   modeled work, so a mispriced device or a ragged tail cannot idle the
//!   fleet.
//! * **Transfers** overlap shading per device: each device thread packs
//!   the next chunk at the head of its own queue on a reserved worker
//!   while the current chunk shades, exactly like the single-device
//!   executor's double-buffered uploader — but now across devices too,
//!   with the bus model charging contention when devices share the host
//!   link ([`gpu_sim::bus::BusModel::contended`]).
//!
//! **Determinism.** Each device owns its texture pool, verify/lowering
//! caches and compiled-graph cache (a fresh [`GpuAmc`] clone per device —
//! graphs are keyed per profile), and shading arithmetic is
//! profile-independent in the simulator, so a chunk produces bit-identical
//! texels and [`PassStats`] on every device. Chunk outputs are merged into
//! the global image and the stage counters are folded **in chunk index
//! order** after all devices join — never in completion order — so labels,
//! renders and stats are bit-identical at every fleet shape × thread
//! count, extending the tile-order (thread-count) guarantee to device
//! count.

use crate::layout;
use crate::perf::{self, PredictConfig};
use crate::pipeline::{ChunkScratch, GpuAmc, PipelineOutput, Result, StageStats, StageWall};
use gpu_sim::device::GpuProfile;
use gpu_sim::gpu::Gpu;
use hsi::cube::{Chunk, Chunking, Cube};
use hsi::morphology::MeiImage;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;
use trace::ArgValue;

/// Structured error for an unrecognized `--devices` entry: carries the
/// offending token and every known short name so the CLI can print an
/// actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDeviceError {
    /// The token that failed to resolve.
    pub unknown: String,
    /// Every accepted device name, in paper order.
    pub known: &'static [&'static str],
}

impl std::fmt::Display for UnknownDeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown device `{}`; known devices: {}",
            self.unknown,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownDeviceError {}

/// Parse a comma-separated `--devices` list (e.g. `fx5950,7800gtx`) into
/// profiles. Empty tokens and an empty list are rejected like unknown
/// names, so every accepted list yields a runnable fleet.
pub fn parse_device_list(list: &str) -> std::result::Result<Vec<GpuProfile>, UnknownDeviceError> {
    let unknown = |tok: &str| UnknownDeviceError {
        unknown: tok.to_owned(),
        known: GpuProfile::known_device_names(),
    };
    let mut profiles = Vec::new();
    for tok in list.split(',') {
        let tok = tok.trim();
        profiles.push(GpuProfile::by_name(tok).ok_or_else(|| unknown(tok))?);
    }
    if profiles.is_empty() {
        return Err(unknown(list));
    }
    Ok(profiles)
}

/// Fleet execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Minimum chunk count the planner aims for, so a scene that fits one
    /// device's memory in a single chunk still yields shardable units.
    /// Deliberately independent of the fleet size: the chunk plan — and
    /// therefore every counter — must not change with the device count.
    pub target_chunks: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self { target_chunks: 8 }
    }
}

/// One device's row in the fleet report.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// The device's hardware profile.
    pub profile: GpuProfile,
    /// Chunk indices the placement model initially assigned.
    pub planned: Vec<usize>,
    /// Chunk indices actually executed, in execution order.
    pub executed: Vec<usize>,
    /// Chunks this device stole from other queues.
    pub steals: u64,
    /// Modeled busy seconds for the executed chunks (contended bus,
    /// overlapped transfers).
    pub modeled_s: f64,
    /// Measured host wall seconds of this device's dispatch loop.
    pub wall_s: f64,
}

/// Output of one fleet run: the merged pipeline output (bit-identical to a
/// single-device run over the same chunking) plus per-device accounting.
#[derive(Debug, Clone)]
pub struct FleetOutput {
    /// Merged pipeline output, stitched and folded in chunk index order.
    pub pipeline: PipelineOutput,
    /// The chunk plan every device shared.
    pub chunking: Chunking,
    /// Per-device placement, execution and timing rows.
    pub devices: Vec<DeviceReport>,
    /// Total chunks that moved between queues.
    pub steals: u64,
    /// Modeled fleet makespan: the slowest device's modeled busy time.
    pub modeled_makespan_s: f64,
    /// Measured host wall seconds of the parallel dispatch phase.
    pub wall_s: f64,
}

/// Per-chunk result a device thread hands back for the ordered merge.
struct ChunkResult {
    chunk: usize,
    out: PipelineOutput,
}

/// What one device thread produces: its chunk results (any order — the
/// merge re-orders), its execution log, and its loop wall time.
struct DeviceRun {
    results: Vec<ChunkResult>,
    executed: Vec<usize>,
    steals: u64,
    wall_s: f64,
}

/// Shared dispatch state: one deque per device plus the steal log. A
/// single mutex keeps pop-vs-steal atomic; chunk execution dwarfs the
/// lock hold times by orders of magnitude.
struct Dispatch {
    queues: Vec<VecDeque<usize>>,
}

impl Dispatch {
    /// Pop the next chunk for `me`: own queue front first, else steal from
    /// the back of the victim with the most remaining modeled work (its
    /// own-profile pricing), ties broken toward the lower device index.
    fn next(&mut self, me: usize, cost: &[Vec<f64>]) -> Option<(usize, bool)> {
        if let Some(i) = self.queues[me].pop_front() {
            return Some((i, false));
        }
        let victim = (0..self.queues.len())
            .filter(|&v| v != me && !self.queues[v].is_empty())
            .max_by(|&a, &b| {
                let work = |v: usize| self.queues[v].iter().map(|&i| cost[v][i]).sum::<f64>();
                work(a)
                    .partial_cmp(&work(b))
                    .expect("modeled work is finite")
                    // max_by keeps the *last* maximal element; order the tie
                    // so the lower index wins.
                    .then(b.cmp(&a))
            })?;
        let i = self.queues[victim].pop_back().expect("victim is non-empty");
        Some((i, true))
    }

    /// The chunk `me` would pop next, for pack-ahead prefetching.
    fn peek(&self, me: usize) -> Option<usize> {
        self.queues[me].front().copied()
    }
}

/// A fleet of simulated GPUs sharing one host link.
#[derive(Debug, Clone)]
pub struct DeviceFleet {
    profiles: Vec<GpuProfile>,
    config: FleetConfig,
}

impl DeviceFleet {
    /// Build a fleet from device profiles (at least one).
    pub fn new(profiles: Vec<GpuProfile>) -> Self {
        assert!(!profiles.is_empty(), "a fleet needs at least one device");
        Self {
            profiles,
            config: FleetConfig::default(),
        }
    }

    /// Override the fleet configuration.
    pub fn with_config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// The device profiles, in fleet order.
    pub fn profiles(&self) -> &[GpuProfile] {
        &self.profiles
    }

    /// Plan the shared chunking for a cube: the binary-search planner under
    /// the *smallest* video memory in the fleet (every device must be able
    /// to hold any chunk), refined down so the plan yields at least
    /// [`FleetConfig::target_chunks`] chunks when the image has the lines
    /// for it. Depends on the fleet's *set* of memory sizes only — never on
    /// the device count — so every fleet shape over the same hardware
    /// generation(s) shares one plan.
    pub fn plan_chunking(&self, amc: &GpuAmc, cube: &Cube) -> Result<Chunking> {
        let dims = cube.dims();
        let budget = self
            .profiles
            .iter()
            .map(|p| p.video_memory_bytes())
            .min()
            .expect("fleet is non-empty");
        let planned = amc.plan_chunking_for_budget(budget, dims.width, dims.height, dims.bands)?;
        let target_lines = dims.height.div_ceil(self.config.target_chunks.max(1));
        Ok(Chunking::new(
            planned.lines_per_chunk.min(target_lines.max(1)),
            planned.halo,
        ))
    }

    /// Price every chunk on every device: `cost[d][i]` is the modeled
    /// seconds device `d` spends on chunk `i` (exact predicted counters at
    /// the chunk geometry, contended bus, overlapped transfers).
    fn chunk_costs(&self, amc: &GpuAmc, chunks: &[Chunk]) -> Vec<Vec<f64>> {
        let sharers = self.profiles.len();
        let cfg = PredictConfig::default();
        self.profiles
            .iter()
            .map(|p| {
                chunks
                    .iter()
                    .map(|c| {
                        let d = c.cube.dims();
                        perf::predict_chunk_time_s(
                            d.width,
                            d.height,
                            d.bands,
                            amc.se(),
                            p,
                            sharers,
                            &cfg,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    /// Initial placement: contiguous runs of chunks proportional to each
    /// device's modeled throughput. The ideal makespan of a perfectly
    /// divisible workload is `1 / Σ_d (1/T_d)` where `T_d` is device `d`'s
    /// time for the *whole* chunk list; each device takes chunks until its
    /// own-cost load reaches that ideal, and the last device takes the
    /// remainder. Deterministic: pure arithmetic over the cost matrix.
    fn place(&self, cost: &[Vec<f64>]) -> Vec<Vec<usize>> {
        let n_dev = self.profiles.len();
        let n_chunks = cost[0].len();
        let totals: Vec<f64> = cost.iter().map(|row| row.iter().sum()).collect();
        let ideal = 1.0 / totals.iter().map(|&t| 1.0 / t.max(1e-30)).sum::<f64>();
        let mut placement = vec![Vec::new(); n_dev];
        let (mut d, mut load) = (0usize, 0.0f64);
        // A range loop on purpose: the row `cost[d]` changes as `d`
        // advances mid-walk, so there is no single slice to iterate.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n_chunks {
            // Move on once the device is at (or past) its fair share —
            // charging half the next chunk keeps the boundary chunk with
            // whichever side it overlaps more.
            if d + 1 < n_dev && load + cost[d][i] / 2.0 > ideal {
                d += 1;
                load = 0.0;
            }
            placement[d].push(i);
            load += cost[d][i];
        }
        placement
    }

    /// Run the full pipeline over a cube across the fleet.
    pub fn run(&self, amc: &GpuAmc, cube: &Cube) -> Result<FleetOutput> {
        let chunking = self.plan_chunking(amc, cube)?;
        self.run_with_chunking(amc, cube, chunking)
    }

    /// Run with an explicit (fleet-shape-independent) chunking.
    pub fn run_with_chunking(
        &self,
        amc: &GpuAmc,
        cube: &Cube,
        chunking: Chunking,
    ) -> Result<FleetOutput> {
        let dims = cube.dims();
        let chunks: Vec<Chunk> = cube.chunks(chunking).collect();
        let cost = self.chunk_costs(amc, &chunks);
        let placement = self.place(&cost);
        let n_dev = self.profiles.len();
        // Wall anchor for the analyzer: brackets dispatch through merge so
        // per-device `fleet.chunk` spans reconstruct into one fleet DAG.
        let _run_span = trace::span_with(
            "fleet.run",
            "run",
            &[
                ("devices", ArgValue::U64(n_dev as u64)),
                ("chunks", ArgValue::U64(chunks.len() as u64)),
            ],
        );

        // Device threads run outside the worker pool: split the advertised
        // width across them so the fleet never runs more shading threads
        // than a single-device run would. The override is thread-local, so
        // each device thread re-establishes its share.
        let total_threads = rayon::max_threads();
        let per_device_threads = (total_threads / n_dev).max(1);

        let dispatch = Mutex::new(Dispatch {
            queues: placement
                .iter()
                .map(|p| p.iter().copied().collect())
                .collect(),
        });

        let fleet_start = Instant::now();
        let runs: Vec<Result<DeviceRun>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .profiles
                .iter()
                .enumerate()
                .map(|(me, profile)| {
                    let profile = profile.clone();
                    let se = amc.se().clone();
                    let (mode, fuse) = (amc.mode(), amc.fusion());
                    let (chunks, cost, dispatch) = (&chunks, &cost, &dispatch);
                    s.spawn(move || {
                        rayon::with_threads(per_device_threads, || {
                            run_device(me, profile, se, mode, fuse, chunks, cost, dispatch)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device thread panicked"))
                .collect()
        });
        let wall_s = fleet_start.elapsed().as_secs_f64();

        // Deterministic merge: park every chunk result in its slot, then
        // stitch bodies and fold counters in chunk index order — identical
        // to the single-device loop over the same chunk list.
        let mut slots: Vec<Option<PipelineOutput>> = (0..chunks.len()).map(|_| None).collect();
        let mut devices = Vec::with_capacity(n_dev);
        let mut steals = 0u64;
        for (me, run) in runs.into_iter().enumerate() {
            let run = run?;
            let modeled_s: f64 = run.executed.iter().map(|&i| cost[me][i]).sum();
            steals += run.steals;
            for r in run.results {
                debug_assert!(slots[r.chunk].is_none(), "chunk executed twice");
                slots[r.chunk] = Some(r.out);
            }
            devices.push(DeviceReport {
                profile: self.profiles[me].clone(),
                planned: placement[me].clone(),
                executed: run.executed,
                steals: run.steals,
                modeled_s,
                wall_s: run.wall_s,
            });
        }

        let mut mei_scores = vec![0.0f32; dims.pixels()];
        let mut min_index = vec![0u32; dims.pixels()];
        let mut max_index = vec![0u32; dims.pixels()];
        let mut stages = StageStats::default();
        let mut stage_wall = StageWall::default();
        for (chunk, slot) in chunks.iter().zip(slots) {
            let out = slot.expect("every chunk executed");
            let cw = chunk.cube.dims().width;
            for local_y in chunk.body_range() {
                let global_y = chunk.y_start + (local_y - chunk.halo_top);
                let src = local_y * cw;
                let dst = global_y * dims.width;
                mei_scores[dst..dst + cw].copy_from_slice(&out.mei.scores[src..src + cw]);
                min_index[dst..dst + cw].copy_from_slice(&out.min_index[src..src + cw]);
                max_index[dst..dst + cw].copy_from_slice(&out.max_index[src..src + cw]);
            }
            stages.add(&out.stages);
            stage_wall.add(&out.stage_wall);
        }

        let modeled_makespan_s = devices.iter().map(|d| d.modeled_s).fold(0.0f64, f64::max);
        Ok(FleetOutput {
            pipeline: PipelineOutput {
                mei: MeiImage {
                    width: dims.width,
                    height: dims.height,
                    scores: mei_scores,
                },
                min_index,
                max_index,
                stats: stages.total(),
                stages,
                stage_wall,
                chunks: chunks.len(),
            },
            chunking,
            devices,
            steals,
            modeled_makespan_s,
            wall_s,
        })
    }

    /// Modeled seconds a *single* device of `profile` (uncontended bus)
    /// needs for the same chunk list — the baseline of the scaling curve
    /// and the ≥ 1.8× CI gate.
    pub fn modeled_single_device_s(
        amc: &GpuAmc,
        cube: &Cube,
        chunking: Chunking,
        profile: &GpuProfile,
    ) -> f64 {
        let cfg = PredictConfig::default();
        cube.chunks(chunking)
            .map(|c| {
                let d = c.cube.dims();
                perf::predict_chunk_time_s(d.width, d.height, d.bands, amc.se(), profile, 1, &cfg)
            })
            .sum()
    }
}

/// One device's dispatch loop: pop (or steal) chunks until the fleet
/// drains, shading each on this device while a reserved worker packs the
/// next chunk at the head of the own queue.
#[allow(clippy::too_many_arguments)]
fn run_device(
    me: usize,
    profile: GpuProfile,
    se: hsi::morphology::StructuringElement,
    mode: crate::pipeline::KernelMode,
    fuse: bool,
    chunks: &[Chunk],
    cost: &[Vec<f64>],
    dispatch: &Mutex<Dispatch>,
) -> Result<DeviceRun> {
    if trace::enabled() {
        // One Perfetto row per device: upload/stage/pass spans emitted
        // while this thread shades land on it, so overlap across devices
        // is visible at a glance.
        trace::set_thread_name(&format!("device{me}.{}", profile.short_name()));
    }
    let mut driver = GpuAmc::new(se, mode);
    driver.set_fusion(fuse);
    let mut gpu = Gpu::new(profile);
    let mut scratch = ChunkScratch::default();
    let mut results = Vec::new();
    let mut executed = Vec::new();
    let mut steals = 0u64;
    // Double-buffered staging, per device: `prepacked` holds the chunk a
    // packer thread prepared while the previous chunk shaded.
    let mut prepacked: Option<(usize, Vec<Vec<f32>>)> = None;
    let mut spare: Vec<Vec<f32>> = Vec::new();
    let start = Instant::now();
    loop {
        let Some((i, stolen)) = dispatch.lock().unwrap().next(me, cost) else {
            break;
        };
        steals += stolen as u64;
        let chunk_span = trace::span_with(
            "fleet.chunk",
            "chunk",
            &[
                ("device", ArgValue::U64(me as u64)),
                ("index", ArgValue::U64(i as u64)),
                ("stolen", ArgValue::U64(stolen as u64)),
            ],
        );
        let chunk_start = Instant::now();
        // Use the prefetched buffers when they are for this chunk; a steal
        // (ours or another device's) invalidates the prefetch, so pack
        // synchronously and recycle the buffers.
        let mut packed = match prepacked.take() {
            Some((j, bufs)) if j == i => bufs,
            other => {
                let mut bufs = other.map(|(_, b)| b).unwrap_or_default();
                layout::pack_cube_into(&chunks[i].cube, &mut bufs);
                bufs
            }
        };
        // Prefetch the next chunk still at the head of the own queue (best
        // effort: it may be stolen before this device pops again).
        let next = dispatch.lock().unwrap().peek(me);
        let cd = chunks[i].cube.dims();
        let (result, next_bufs) = std::thread::scope(|s| {
            let packer = next.map(|j| {
                let mut buf = std::mem::take(&mut spare);
                s.spawn(move || {
                    if trace::enabled() {
                        trace::set_thread_name(&format!("device{me}.packer"));
                    }
                    let _pack = trace::span_with(
                        "fleet.pack",
                        "pack",
                        &[
                            ("device", ArgValue::U64(me as u64)),
                            ("chunk", ArgValue::U64(j as u64)),
                        ],
                    );
                    layout::pack_cube_into(&chunks[j].cube, &mut buf);
                    (j, buf)
                })
            });
            // The packer owns one of this device's workers while it runs.
            let _packer_core = packer.as_ref().map(|_| rayon::reserve_thread());
            let result = driver.run_chunk_packed(
                &mut gpu,
                cd.width,
                cd.height,
                cd.bands,
                &packed,
                &mut scratch,
            );
            let next_bufs = packer.map(|h| h.join().expect("packer thread panicked"));
            (result, next_bufs)
        });
        let out = result?;
        if let Some(pair) = next_bufs {
            prepacked = Some(pair);
            spare = std::mem::take(&mut packed);
        } else {
            spare = std::mem::take(&mut packed);
        }
        results.push(ChunkResult { chunk: i, out });
        executed.push(i);
        trace::metrics::observe("fleet.chunk_wall", chunk_start.elapsed());
        drop(chunk_span);
    }
    gpu.drain_pool();
    Ok(DeviceRun {
        results,
        executed,
        steals,
        wall_s: start.elapsed().as_secs_f64(),
    })
}

/// Merge helper used by the tests: bit-pattern view of an MEI image.
#[cfg(test)]
fn mei_bits(m: &MeiImage) -> Vec<u32> {
    m.scores.iter().map(|s| s.to_bits()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::KernelMode;
    use hsi::cube::{Cube, CubeDims, Interleave};
    use hsi::morphology::StructuringElement;
    use proptest::prelude::*;

    fn test_cube(w: usize, h: usize, bands: usize) -> Cube {
        Cube::from_fn(CubeDims::new(w, h, bands), Interleave::Bip, |x, y, b| {
            1.0 + ((x * 31 + y * 17 + b * 7) % 23) as f32
        })
        .unwrap()
    }

    fn fleet_shapes() -> Vec<Vec<GpuProfile>> {
        let fx = GpuProfile::fx5950_ultra;
        let g70 = GpuProfile::geforce_7800gtx;
        vec![
            vec![fx()],
            vec![g70()],
            vec![fx(), g70()],
            vec![g70(), g70()],
            vec![fx(), g70(), g70(), fx()],
        ]
    }

    #[test]
    fn parse_device_list_resolves_and_rejects() {
        let profiles = parse_device_list("fx5950,7800gtx,7800gtx").unwrap();
        assert_eq!(profiles.len(), 3);
        assert_eq!(profiles[0], GpuProfile::fx5950_ultra());
        assert_eq!(profiles[2], GpuProfile::geforce_7800gtx());
        // Whitespace-tolerant.
        assert!(parse_device_list(" 7800gtx , fx5950 ").is_ok());
        let err = parse_device_list("fx5950,riva128").unwrap_err();
        assert_eq!(err.unknown, "riva128");
        assert_eq!(err.known, GpuProfile::known_device_names());
        let msg = err.to_string();
        assert!(msg.contains("riva128") && msg.contains("fx5950") && msg.contains("7800gtx"));
        assert!(parse_device_list("").is_err());
    }

    #[test]
    fn chunk_plan_is_fleet_shape_independent() {
        let cube = test_cube(48, 40, 12);
        let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
        let plans: Vec<Chunking> = fleet_shapes()
            .into_iter()
            .map(|p| DeviceFleet::new(p).plan_chunking(&amc, &cube).unwrap())
            .collect();
        for plan in &plans {
            assert_eq!(plan, &plans[0], "chunk plan varies with fleet shape");
        }
        // The refined plan actually yields multiple shardable chunks.
        assert!(cube.chunks(plans[0]).count() >= 4);
    }

    #[test]
    fn placement_is_proportional_to_modeled_throughput() {
        let cube = test_cube(64, 48, 8);
        let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
        let fleet = DeviceFleet::new(vec![
            GpuProfile::fx5950_ultra(),
            GpuProfile::geforce_7800gtx(),
        ]);
        let chunking = fleet.plan_chunking(&amc, &cube).unwrap();
        let chunks: Vec<Chunk> = cube.chunks(chunking).collect();
        let cost = fleet.chunk_costs(&amc, &chunks);
        let placement = fleet.place(&cost);
        // Every chunk placed exactly once, contiguously, in order.
        let flat: Vec<usize> = placement.iter().flatten().copied().collect();
        assert_eq!(flat, (0..chunks.len()).collect::<Vec<_>>());
        // The 24-pipe 7800GTX gets at least as many chunks as the FX5950.
        assert!(
            placement[1].len() >= placement[0].len(),
            "placement {placement:?}"
        );
        assert!(!placement[0].is_empty() || chunks.len() == 1);
    }

    #[test]
    fn fleet_output_matches_single_device_chunked_run_bitwise() {
        // The acceptance property at test scale: every fleet shape, both
        // sequential and at the default thread pool, reproduces the
        // single-device chunked executor bit for bit — labels (via MEI),
        // indices and every per-stage counter — including a ragged tail
        // (40 lines over 6-line bodies).
        let cube = test_cube(48, 40, 10);
        let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Isa);
        let chunking = Chunking::new(6, 1);
        let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
        let reference = amc.run_with_chunking(&mut gpu, &cube, chunking).unwrap();
        assert!(!cube.dims().height.is_multiple_of(chunking.lines_per_chunk));
        for shape in fleet_shapes() {
            for threads in [1, rayon::max_threads().max(2)] {
                let fleet = DeviceFleet::new(shape.clone());
                let out = rayon::with_threads(threads, || {
                    fleet.run_with_chunking(&amc, &cube, chunking).unwrap()
                });
                let label = format!("shape {shape:?} threads {threads}");
                assert_eq!(
                    mei_bits(&out.pipeline.mei),
                    mei_bits(&reference.mei),
                    "MEI diverged: {label}"
                );
                assert_eq!(out.pipeline.min_index, reference.min_index, "{label}");
                assert_eq!(out.pipeline.max_index, reference.max_index, "{label}");
                assert_eq!(out.pipeline.stages, reference.stages, "{label}");
                assert_eq!(out.pipeline.stats, reference.stats, "{label}");
                assert_eq!(out.pipeline.chunks, reference.chunks, "{label}");
                // Accounting invariants: every chunk executed exactly once.
                let mut all: Vec<usize> = out
                    .devices
                    .iter()
                    .flat_map(|d| d.executed.clone())
                    .collect();
                all.sort_unstable();
                assert_eq!(all, (0..reference.chunks).collect::<Vec<_>>(), "{label}");
                assert_eq!(
                    out.steals,
                    out.devices.iter().map(|d| d.steals).sum::<u64>(),
                    "{label}"
                );
            }
        }
    }

    #[test]
    fn work_stealing_rebalances_a_skewed_placement() {
        // Force all chunks onto device 0's queue; device 1 must steal to
        // participate, and the merged output must stay correct.
        let cube = test_cube(32, 36, 6);
        let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
        let chunking = Chunking::new(4, 1);
        let chunks: Vec<Chunk> = cube.chunks(chunking).collect();
        let fleet = DeviceFleet::new(vec![
            GpuProfile::geforce_7800gtx(),
            GpuProfile::geforce_7800gtx(),
        ]);
        let cost = fleet.chunk_costs(&amc, &chunks);
        let mut dispatch = Dispatch {
            queues: vec![(0..chunks.len()).collect(), VecDeque::new()],
        };
        // Device 1 steals from the back of device 0's queue.
        let (i, stolen) = dispatch.next(1, &cost).unwrap();
        assert!(stolen);
        assert_eq!(i, chunks.len() - 1);
        // Device 0 still pops its own front.
        let (i, stolen) = dispatch.next(0, &cost).unwrap();
        assert!(!stolen);
        assert_eq!(i, 0);
        // And the real executor ends with nothing left behind.
        let out = fleet.run_with_chunking(&amc, &cube, chunking).unwrap();
        let executed: usize = out.devices.iter().map(|d| d.executed.len()).sum();
        assert_eq!(executed, chunks.len());
    }

    #[test]
    fn modeled_two_7800gtx_clear_the_scaling_gate_at_bench_geometry() {
        // The CI gate's model-side precondition at the real bench scene
        // geometry (160×128×96): two 7800GTXs on a shared PCIe x16 link
        // must model ≥ 1.8× the single-device throughput under the fleet
        // chunk plan.
        let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
        let cube = test_cube(160, 128, 96);
        let g70 = GpuProfile::geforce_7800gtx();
        let fleet = DeviceFleet::new(vec![g70.clone(), g70.clone()]);
        let chunking = fleet.plan_chunking(&amc, &cube).unwrap();
        let chunks: Vec<Chunk> = cube.chunks(chunking).collect();
        let cost = fleet.chunk_costs(&amc, &chunks);
        let placement = fleet.place(&cost);
        let makespan = placement
            .iter()
            .enumerate()
            .map(|(d, p)| p.iter().map(|&i| cost[d][i]).sum::<f64>())
            .fold(0.0f64, f64::max);
        let single = DeviceFleet::modeled_single_device_s(&amc, &cube, chunking, &g70);
        let speedup = single / makespan;
        assert!(
            speedup >= 1.8,
            "modeled 2x7800GTX speedup {speedup:.3} < 1.8 (single {single:.6}s, makespan {makespan:.6}s)"
        );
    }

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(6))]
        #[test]
        fn fleet_bit_identity_holds_for_random_geometry(
            width in 12usize..40,
            height in 9usize..36,
            bands in 2usize..10,
            lines in 3usize..7,
        ) {
            // Random cube geometry (usually with a ragged last chunk) ×
            // every fleet shape × sequential and pooled threading: the MEI
            // bits, state indices and per-stage counters must match the
            // single-device chunked run exactly.
            let cube = test_cube(width, height, bands);
            let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Isa);
            let chunking = Chunking::new(lines, 1);
            let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
            let reference = amc.run_with_chunking(&mut gpu, &cube, chunking).unwrap();
            for shape in fleet_shapes() {
                for threads in [1, rayon::max_threads().max(2)] {
                    let fleet = DeviceFleet::new(shape.clone());
                    let out = rayon::with_threads(threads, || {
                        fleet.run_with_chunking(&amc, &cube, chunking).unwrap()
                    });
                    prop_assert_eq!(mei_bits(&out.pipeline.mei), mei_bits(&reference.mei));
                    prop_assert_eq!(&out.pipeline.min_index, &reference.min_index);
                    prop_assert_eq!(&out.pipeline.max_index, &reference.max_index);
                    prop_assert_eq!(&out.pipeline.stages, &reference.stages);
                }
            }
        }
    }
}
