//! Extended morphological filtering: opening/closing compositions (the
//! "sequences of extended morphological transformations" of the paper's
//! reference [11]) used to suppress sub-SE anomalies before classification.
//!
//! ```text
//! cargo run --release --example morphological_filtering
//! ```

use hyperspec::hsi::morphology::{self, StructuringElement};
use hyperspec::prelude::*;

fn main() {
    // Background material with a scattering of single-pixel anomalies.
    let bg = [60.0f32, 30.0, 15.0, 40.0];
    let hot = [10.0f32, 80.0, 70.0, 5.0];
    let dims = CubeDims::new(24, 24, 4);
    let anomalies = [(3usize, 4usize), (11, 7), (18, 15), (6, 20), (20, 3)];
    let cube = Cube::from_fn(dims, Interleave::Bip, |x, y, b| {
        if anomalies.contains(&(x, y)) {
            hot[b]
        } else {
            bg[b]
        }
    })
    .expect("valid dims");

    let se = StructuringElement::square(3).expect("3x3");
    let norm = morphology::normalize_cube(&cube);
    let (mei_before, _) = morphology::mei(&norm, &se, SpectralDistance::Sid);
    let peaks_before = mei_before.scores.iter().filter(|&&s| s > 1e-3).count();
    println!("before filtering: {peaks_before} high-MEI pixels (anomaly windows)");

    // Opening removes bright details smaller than the SE.
    let opened = morphology::open_image(&cube, &se, SpectralDistance::Sid);
    let norm_after = morphology::normalize_cube(&opened);
    let (mei_after, _) = morphology::mei(&norm_after, &se, SpectralDistance::Sid);
    let peaks_after = mei_after.scores.iter().filter(|&&s| s > 1e-3).count();
    println!("after opening:    {peaks_after} high-MEI pixels");
    assert_eq!(peaks_after, 0, "opening must remove sub-SE anomalies");

    // Every anomaly pixel was replaced by background material.
    for &(x, y) in &anomalies {
        assert_eq!(opened.pixel(x, y), bg.to_vec(), "anomaly at ({x},{y})");
    }
    println!(
        "all {} single-pixel anomalies removed by 3x3 opening",
        anomalies.len()
    );

    // Closing, by contrast, preserves this scene entirely (no dark holes).
    let closed = morphology::close_image(&cube, &se, SpectralDistance::Sid);
    let changed = (0..dims.height)
        .flat_map(|y| (0..dims.width).map(move |x| (x, y)))
        .filter(|&(x, y)| closed.pixel(x, y) != cube.pixel(x, y))
        .count();
    println!("closing changed {changed} pixels (bright anomalies survive a closing)");
}
