//! Failure-path coverage across crate boundaries: memory exhaustion,
//! malformed kernels, degenerate inputs.

use hyperspec::amc::pipeline::{AmcError, GpuAmc, KernelMode};
use hyperspec::gpu::asm;
use hyperspec::gpu::error::GpuError;
use hyperspec::prelude::*;

#[test]
fn video_memory_exhaustion_surfaces_as_pipeline_error() {
    // 1 MiB of video memory cannot even hold one band plane of this cube.
    let mut profile = GpuProfile::fx5950_ultra();
    profile.video_memory_mib = 1;
    let mut gpu = Gpu::new(profile);
    let cube = Cube::from_fn(CubeDims::new(256, 256, 8), Interleave::Bip, |x, y, b| {
        (x + y + b) as f32 + 1.0
    })
    .unwrap();
    let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
    // run_chunk bypasses the chunk planner, forcing the allocation failure.
    let err = amc.run_chunk(&mut gpu, &cube).unwrap_err();
    assert!(
        matches!(err, AmcError::Gpu(GpuError::OutOfVideoMemory { .. })),
        "{err}"
    );
    // The error display carries context.
    assert!(err.to_string().contains("video memory"));
}

#[test]
fn chunk_planner_makes_the_same_cube_fit() {
    let mut profile = GpuProfile::fx5950_ultra();
    profile.video_memory_mib = 2;
    let mut gpu = Gpu::new(profile);
    let cube = Cube::from_fn(CubeDims::new(128, 128, 16), Interleave::Bip, |x, y, b| {
        (x * 3 + y * 5 + b) as f32 + 1.0
    })
    .unwrap();
    let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
    let out = amc.run(&mut gpu, &cube).expect("chunked run fits");
    assert!(out.chunks > 1, "planner should have split the image");
    assert_eq!(gpu.allocated_bytes(), 0, "all textures freed");
    assert_eq!(gpu.pooled_bytes(), 0, "pool drained after the run");
}

#[test]
fn infeasible_chunking_is_a_structured_error() {
    // So wide that a single line with halo cannot fit 1 MiB: the planner
    // must refuse up front with the dedicated error, not fail mid-run with
    // an allocation error.
    let mut profile = GpuProfile::fx5950_ultra();
    profile.video_memory_mib = 1;
    let mut gpu = Gpu::new(profile);
    let cube = Cube::from_fn(CubeDims::new(4096, 16, 32), Interleave::Bip, |x, y, b| {
        (x + y + b) as f32 + 1.0
    })
    .unwrap();
    let amc = GpuAmc::new(StructuringElement::square(3).unwrap(), KernelMode::Closure);
    let err = amc.run(&mut gpu, &cube).unwrap_err();
    assert!(matches!(err, AmcError::ChunkingInfeasible { .. }), "{err}");
    assert!(err.to_string().contains("chunking infeasible"));
    assert_eq!(gpu.stats().passes, 0, "nothing may have executed");
}

#[test]
fn malformed_shaders_report_line_and_reason() {
    for (src, needle) in [
        ("FOO R0, R1", "unknown opcode"),
        ("ADD R0, R1", "expects"),
        ("MOV C0, R1", "destination"),
        ("TEX R0, T0, tex16", "sampler"),
        ("MOV R99, R0", "out of range"),
        ("DEF C0, 1, 2", "DEF"),
    ] {
        let err = asm::assemble(src).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "`{src}` -> `{msg}` (wanted `{needle}`)"
        );
    }
}

#[test]
fn texture_size_limits_enforced_end_to_end() {
    let mut gpu = Gpu::new(GpuProfile::geforce_7800gtx());
    assert!(matches!(
        gpu.alloc_texture(5000, 16),
        Err(GpuError::InvalidTextureSize { .. })
    ));
    assert!(matches!(
        gpu.alloc_texture(0, 0),
        Err(GpuError::InvalidTextureSize { .. })
    ));
}

#[test]
fn degenerate_cubes_are_rejected_or_handled() {
    // Zero dimensions rejected at construction.
    assert!(Cube::zeros(CubeDims::new(0, 4, 4), Interleave::Bip).is_err());
    // Single-pixel cube classifies without panicking.
    let cube = Cube::from_fn(CubeDims::new(1, 1, 4), Interleave::Bip, |_, _, b| {
        (b + 1) as f32
    })
    .unwrap();
    let amc = AmcClassifier::new(AmcConfig::paper_default(1));
    let out = amc.classify(&cube).unwrap();
    assert_eq!(out.labels, vec![0]);
}

#[test]
fn requesting_more_classes_than_pixels_fails_cleanly() {
    let cube = Cube::from_fn(CubeDims::new(2, 2, 3), Interleave::Bip, |x, y, b| {
        (x + y * 2 + b * 4) as f32 + 1.0
    })
    .unwrap();
    let amc = AmcClassifier::new(AmcConfig::paper_default(100));
    assert!(amc.classify(&cube).is_err());
}

#[test]
fn invalid_structuring_elements_rejected() {
    assert!(StructuringElement::square(0).is_err());
    assert!(StructuringElement::square(4).is_err());
    assert!(StructuringElement::from_mask(3, 3, vec![false; 9]).is_err());
}

#[test]
fn envi_reader_rejects_corrupt_files() {
    use hyperspec::scene::envi;
    let dir = std::env::temp_dir().join(format!("hsi_fail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cube.raw");
    // Header without a raw file.
    std::fs::write(
        dir.join("cube.raw.hdr"),
        "ENVI\nsamples = 2\nlines = 2\nbands = 1\ndata type = 4\ninterleave = bip\n",
    )
    .unwrap();
    assert!(envi::read_cube(&path).is_err());
    // Unsupported data type.
    std::fs::write(&path, [0u8; 16]).unwrap();
    std::fs::write(
        dir.join("cube.raw.hdr"),
        "ENVI\nsamples = 2\nlines = 2\nbands = 1\ndata type = 12\ninterleave = bip\n",
    )
    .unwrap();
    assert!(envi::read_cube(&path).is_err());
    std::fs::remove_dir_all(dir).ok();
}
