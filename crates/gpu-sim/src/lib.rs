//! # `gpu-sim` — a commodity-GPU stream processor simulator
//!
//! The paper runs its pipeline on 2003–2005 NVIDIA GPUs (FX5950 Ultra,
//! GeForce 7800GTX) programmed through Cg `fp30` fragment shaders. Those
//! devices are unobtainable and modern GPU crates cannot target them, so this
//! crate provides a functional **and** performance-modelling substitute:
//!
//! * [`texture`] — 2D RGBA32F textures with the addressing modes the
//!   graphics pipeline provides (streams live in textures).
//! * [`isa`]/[`asm`]/[`interp`] — an fp30-flavoured SIMD4 fragment ISA, a
//!   textual assembler, and an interpreter (kernels are fragment programs).
//! * [`raster`] — the full-screen-quad rasterizer GPGPU passes use, with
//!   multiple interpolated texture-coordinate sets.
//! * [`gpu`] — the device: texture/framebuffer management under a video
//!   memory budget, render passes executing fragments across parallel pipes
//!   (rayon), and per-pass performance counters.
//! * [`texcache`] — a 2D-blocked texture cache model feeding the memory side
//!   of the timing model.
//! * [`bus`] — AGP 8x / PCI-Express host transfer model.
//! * [`device`]/[`timing`] — published hardware parameters of the paper's
//!   four platforms (Tables 1–2) and the roofline model converting counted
//!   work into modeled milliseconds.
//! * [`stream`] — a small Brook-like stream API (`Stream`, map passes) on
//!   top of the raw device, matching the paper's programming model.
//!
//! Functional semantics are exact (deterministic f32 arithmetic); timing is a
//! model, clearly separated in [`timing`], so experiments can report both
//! "what was computed" and "what it would have cost on the paper's hardware".

#![warn(missing_docs)]

pub mod asm;
pub mod bus;
pub mod counters;
pub mod device;
pub mod error;
pub mod gpu;
pub mod interp;
pub mod isa;
pub mod opt;
pub mod raster;
pub mod stream;
pub mod texcache;
pub mod texture;
pub mod timing;
pub mod verify;

pub use counters::{PassStats, TileCounts};
pub use device::{CpuProfile, GpuProfile};
pub use error::GpuError;
pub use gpu::{Gpu, TextureId};
pub use opt::{optimize, schedule_for_batch, OptCounters, OptReport};
pub use stream::Stream;
pub use verify::{verify, DiagKind, Diagnostic, PassBindings, Severity};
