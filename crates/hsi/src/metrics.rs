//! Classification accuracy metrics (Table 3 of the paper).
//!
//! AMC is unsupervised: its cluster indices carry no ground-truth meaning, so
//! accuracy assessment first maps each cluster to the ground-truth class it
//! overlaps most ([`map_clusters_to_truth`]) — the standard protocol for
//! scoring unsupervised classifiers against a labelled map — and then builds
//! a confusion matrix.

use crate::error::{HsiError, Result};

/// Label value meaning "no ground truth available here" (ignored pixels).
pub const UNLABELLED: u16 = u16::MAX;

/// A square confusion matrix. Rows are ground-truth classes, columns are
/// predicted classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Build from parallel label rasters, skipping [`UNLABELLED`] ground truth.
    pub fn from_labels(truth: &[u16], predicted: &[u16], n_classes: usize) -> Result<Self> {
        if truth.len() != predicted.len() {
            return Err(HsiError::DimensionMismatch {
                expected: truth.len(),
                actual: predicted.len(),
            });
        }
        let mut counts = vec![0u64; n_classes * n_classes];
        for (&t, &p) in truth.iter().zip(predicted) {
            if t == UNLABELLED {
                continue;
            }
            let (t, p) = (t as usize, p as usize);
            if t >= n_classes || p >= n_classes {
                return Err(HsiError::OutOfBounds {
                    what: format!("label ({t}, {p}) exceeds class count {n_classes}"),
                });
            }
            counts[t * n_classes + p] += 1;
        }
        Ok(Self {
            n: n_classes,
            counts,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.n
    }

    /// Count of pixels with truth `t` predicted as `p`.
    pub fn get(&self, t: usize, p: usize) -> u64 {
        self.counts[t * self.n + p]
    }

    /// Total scored pixels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Pixels of ground-truth class `t`.
    pub fn row_total(&self, t: usize) -> u64 {
        self.counts[t * self.n..(t + 1) * self.n].iter().sum()
    }

    /// Pixels predicted as class `p`.
    pub fn col_total(&self, p: usize) -> u64 {
        (0..self.n).map(|t| self.get(t, p)).sum()
    }

    /// Correctly classified pixels (trace).
    pub fn trace(&self) -> u64 {
        (0..self.n).map(|i| self.get(i, i)).sum()
    }

    /// Overall accuracy in percent — the paper's "Overall: 72.35".
    pub fn overall_accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.trace() as f64 / total as f64
    }

    /// Per-class accuracy in percent (producer's accuracy), `NaN`-free:
    /// classes with no ground-truth pixels score 0.
    pub fn per_class_accuracy(&self) -> Vec<f64> {
        (0..self.n)
            .map(|t| {
                let row = self.row_total(t);
                if row == 0 {
                    0.0
                } else {
                    100.0 * self.get(t, t) as f64 / row as f64
                }
            })
            .collect()
    }

    /// Average (mean per-class) accuracy in percent over non-empty classes.
    pub fn average_accuracy(&self) -> f64 {
        let per = self.per_class_accuracy();
        let non_empty: Vec<f64> = (0..self.n)
            .filter(|&t| self.row_total(t) > 0)
            .map(|t| per[t])
            .collect();
        if non_empty.is_empty() {
            0.0
        } else {
            non_empty.iter().sum::<f64>() / non_empty.len() as f64
        }
    }

    /// Cohen's kappa coefficient.
    pub fn kappa(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let po = self.trace() as f64 / total;
        let pe: f64 = (0..self.n)
            .map(|i| (self.row_total(i) as f64 / total) * (self.col_total(i) as f64 / total))
            .sum();
        if (1.0 - pe).abs() < 1e-12 {
            return 0.0;
        }
        (po - pe) / (1.0 - pe)
    }
}

/// Map unsupervised cluster indices to ground-truth classes by majority
/// overlap, returning a remapped copy of `predicted`.
///
/// Each cluster is assigned the ground-truth class with which it shares the
/// most pixels (ignoring [`UNLABELLED`]); clusters that never overlap labelled
/// ground truth keep their own index (clamped into range) so they simply
/// count as errors.
pub fn map_clusters_to_truth(
    truth: &[u16],
    predicted: &[u16],
    n_clusters: usize,
    n_classes: usize,
) -> Result<Vec<u16>> {
    if truth.len() != predicted.len() {
        return Err(HsiError::DimensionMismatch {
            expected: truth.len(),
            actual: predicted.len(),
        });
    }
    // overlap[cluster][class]
    let mut overlap = vec![0u64; n_clusters * n_classes];
    for (&t, &p) in truth.iter().zip(predicted) {
        if t == UNLABELLED {
            continue;
        }
        let (t, p) = (t as usize, p as usize);
        if p >= n_clusters || t >= n_classes {
            return Err(HsiError::OutOfBounds {
                what: format!("cluster {p} / class {t} out of range"),
            });
        }
        overlap[p * n_classes + t] += 1;
    }
    let mapping: Vec<u16> = (0..n_clusters)
        .map(|c| {
            let row = &overlap[c * n_classes..(c + 1) * n_classes];
            let (best, &count) = row
                .iter()
                .enumerate()
                .max_by_key(|&(_, &v)| v)
                .expect("n_classes > 0");
            if count > 0 {
                best as u16
            } else {
                (c.min(n_classes - 1)) as u16
            }
        })
        .collect();
    Ok(predicted.iter().map(|&p| mapping[p as usize]).collect())
}

/// Score an unsupervised prediction against ground truth: majority-map the
/// clusters, then build the confusion matrix.
pub fn score_unsupervised(
    truth: &[u16],
    predicted: &[u16],
    n_clusters: usize,
    n_classes: usize,
) -> Result<ConfusionMatrix> {
    let mapped = map_clusters_to_truth(truth, predicted, n_clusters, n_classes)?;
    ConfusionMatrix::from_labels(truth, &mapped, n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let truth = vec![0u16, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_labels(&truth, &truth, 3).unwrap();
        assert_eq!(cm.overall_accuracy(), 100.0);
        assert_eq!(cm.per_class_accuracy(), vec![100.0; 3]);
        assert_eq!(cm.average_accuracy(), 100.0);
        assert!((cm.kappa() - 1.0).abs() < 1e-12);
        assert_eq!(cm.trace(), 6);
        assert_eq!(cm.total(), 6);
    }

    #[test]
    fn known_confusion_matrix_statistics() {
        // truth:     0 0 0 0 1 1
        // predicted: 0 0 0 1 1 0
        let truth = vec![0u16, 0, 0, 0, 1, 1];
        let pred = vec![0u16, 0, 0, 1, 1, 0];
        let cm = ConfusionMatrix::from_labels(&truth, &pred, 2).unwrap();
        assert_eq!(cm.get(0, 0), 3);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 0), 1);
        assert_eq!(cm.get(1, 1), 1);
        assert_eq!(cm.row_total(0), 4);
        assert_eq!(cm.col_total(0), 4);
        assert!((cm.overall_accuracy() - 100.0 * 4.0 / 6.0).abs() < 1e-9);
        let per = cm.per_class_accuracy();
        assert!((per[0] - 75.0).abs() < 1e-9);
        assert!((per[1] - 50.0).abs() < 1e-9);
        assert!((cm.average_accuracy() - 62.5).abs() < 1e-9);
        // Hand-computed kappa: po = 2/3, pe = (4/6·4/6)+(2/6·2/6) = 5/9.
        let expected_kappa = (2.0 / 3.0 - 5.0 / 9.0) / (1.0 - 5.0 / 9.0);
        assert!((cm.kappa() - expected_kappa).abs() < 1e-9);
    }

    #[test]
    fn unlabelled_pixels_are_skipped() {
        let truth = vec![0u16, UNLABELLED, 1];
        let pred = vec![0u16, 0, 0];
        let cm = ConfusionMatrix::from_labels(&truth, &pred, 2).unwrap();
        assert_eq!(cm.total(), 2);
        assert_eq!(cm.overall_accuracy(), 50.0);
    }

    #[test]
    fn out_of_range_labels_rejected() {
        let truth = vec![0u16, 5];
        let pred = vec![0u16, 0];
        assert!(ConfusionMatrix::from_labels(&truth, &pred, 2).is_err());
        assert!(ConfusionMatrix::from_labels(&[0], &[0, 1], 2).is_err());
    }

    #[test]
    fn empty_matrix_is_zero_not_nan() {
        let cm = ConfusionMatrix::from_labels(&[], &[], 3).unwrap();
        assert_eq!(cm.overall_accuracy(), 0.0);
        assert_eq!(cm.average_accuracy(), 0.0);
        assert_eq!(cm.kappa(), 0.0);
    }

    #[test]
    fn empty_classes_score_zero_and_are_excluded_from_aa() {
        let truth = vec![0u16, 0];
        let pred = vec![0u16, 0];
        let cm = ConfusionMatrix::from_labels(&truth, &pred, 3).unwrap();
        assert_eq!(cm.per_class_accuracy(), vec![100.0, 0.0, 0.0]);
        assert_eq!(cm.average_accuracy(), 100.0);
    }

    #[test]
    fn cluster_mapping_recovers_permutation() {
        // Clusters are a permutation of classes: 0->2, 1->0, 2->1.
        let truth = vec![2u16, 2, 0, 0, 1, 1];
        let pred = vec![0u16, 0, 1, 1, 2, 2];
        let mapped = map_clusters_to_truth(&truth, &pred, 3, 3).unwrap();
        assert_eq!(mapped, truth);
        let cm = score_unsupervised(&truth, &pred, 3, 3).unwrap();
        assert_eq!(cm.overall_accuracy(), 100.0);
    }

    #[test]
    fn cluster_mapping_handles_merged_clusters() {
        // Two clusters both map to class 0: class 1 is never predicted.
        let truth = vec![0u16, 0, 1, 1];
        let pred = vec![0u16, 1, 0, 0];
        let mapped = map_clusters_to_truth(&truth, &pred, 2, 2).unwrap();
        // Cluster 0 overlaps class 0 once and class 1 twice → maps to 1.
        // Cluster 1 overlaps class 0 once → maps to 0.
        assert_eq!(mapped, vec![1, 0, 1, 1]);
    }

    #[test]
    fn unmatched_cluster_keeps_identity() {
        let truth = vec![0u16, UNLABELLED];
        let pred = vec![0u16, 1]; // cluster 1 only hits unlabelled pixels
        let mapped = map_clusters_to_truth(&truth, &pred, 2, 2).unwrap();
        assert_eq!(mapped[1], 1);
    }

    #[test]
    fn mapping_validates_lengths_and_ranges() {
        assert!(map_clusters_to_truth(&[0], &[0, 1], 2, 2).is_err());
        assert!(map_clusters_to_truth(&[0, 0], &[0, 5], 2, 2).is_err());
        assert!(map_clusters_to_truth(&[7, 0], &[0, 1], 2, 2).is_err());
    }
}
